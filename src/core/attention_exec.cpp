/**
 * @file
 * Functional attention executor implementation.
 */

#include "core/attention_exec.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/bsr_gemm.hpp"
#include "kernels/bsr_softmax.hpp"
#include "kernels/softmax_kernels.hpp"
#include "kernels/streaming_attention.hpp"

namespace softrec {

namespace {

constexpr double kNegInfD = -std::numeric_limits<double>::infinity();

} // namespace

AttentionInputs
makeAttentionInputs(const SdaConfig &config)
{
    AttentionInputs inputs{
        Tensor<Half>(Shape({config.seqLen, config.dHead})),
        Tensor<Half>(Shape({config.keyLen(), config.dHead})),
        Tensor<Half>(Shape({config.keyLen(), config.dHead})),
    };
    return inputs;
}

namespace {

Tensor<Half>
runDense(const ExecContext &ctx, const SdaConfig &config,
         const AttentionInputs &inputs, Strategy strategy)
{
    const int64_t L = config.seqLen;
    const int64_t kv = config.keyLen();
    const int64_t dh = config.dHead;

    GemmTiling tiling = config.attnTiling;
    if (strategy == Strategy::Fused)
        tiling.tileN = config.subVector;

    GemmDesc qk;
    qk.name = "sda.qk";
    qk.m = L;
    qk.n = kv;
    qk.k = dh;
    qk.tiling = tiling;
    qk.epilogue.scale = config.scale();
    qk.epilogue.causalMask = config.causalMask;

    GemmDesc av;
    av.name = "sda.av";
    av.m = L;
    av.n = dh;
    av.k = kv;
    av.tiling = config.attnTiling;

    GemmOperands qk_ops;
    qk_ops.a = &inputs.q;
    qk_ops.b = &inputs.k;
    qk_ops.transposeB = true;

    Tensor<Half> out(Shape({L, dh}));

    SoftmaxShape sub;
    sub.rows = L;
    sub.cols = kv;
    sub.subVector = strategy == Strategy::Fused ? tiling.tileN
                                                : config.subVector;
    const Shape md_shape({L, sub.numSubVectors()});

    switch (strategy) {
      case Strategy::Baseline: {
        Tensor<Half> scores(Shape({L, kv}));
        gemmRun(ctx, qk, qk_ops, scores);
        Tensor<Half> probs(Shape({L, kv}));
        SoftmaxShape softmax;
        softmax.rows = L;
        softmax.cols = kv;
        rowSoftmaxRun(ctx, softmax, scores, probs);
        GemmOperands av_ops;
        av_ops.a = &probs;
        av_ops.b = &inputs.v;
        gemmRun(ctx, av, av_ops, out);
        break;
      }
      case Strategy::Decomposed: {
        Tensor<Half> scores(Shape({L, kv}));
        gemmRun(ctx, qk, qk_ops, scores);
        Tensor<Half> x_prime(Shape({L, kv}));
        Tensor<float> local_max(md_shape);
        Tensor<float> local_sum(md_shape);
        lsRun(ctx, sub, scores, x_prime, local_max, local_sum);
        Tensor<float> recon(md_shape);
        irRun(ctx, sub, local_max, local_sum, recon);
        Tensor<Half> probs(Shape({L, kv}));
        gsRun(ctx, sub, x_prime, recon, probs);
        GemmOperands av_ops;
        av_ops.a = &probs;
        av_ops.b = &inputs.v;
        gemmRun(ctx, av, av_ops, out);
        break;
      }
      case Strategy::Fused: {
        Tensor<Half> x_prime(Shape({L, kv}));
        Tensor<float> local_max(md_shape);
        Tensor<float> local_sum(md_shape);
        qk.epilogue.localSoftmax = true;
        LsOutputs ls{&local_max, &local_sum};
        gemmRun(ctx, qk, qk_ops, x_prime, &ls);
        Tensor<float> recon(md_shape);
        irRun(ctx, sub, local_max, local_sum, recon);
        av.prologue.globalScale = true;
        av.prologue.gsSubVector = sub.subVector;
        GemmOperands av_ops;
        av_ops.a = &x_prime;
        av_ops.b = &inputs.v;
        av_ops.gsFactors = &recon;
        gemmRun(ctx, av, av_ops, out);
        break;
      }
    }
    return out;
}

Tensor<Half>
runSparse(const ExecContext &ctx, const SdaConfig &config,
          const AttentionInputs &inputs, Strategy strategy)
{
    SOFTREC_ASSERT(config.sparse(), "sparse attention needs a layout");
    const BsrLayout &layout = *config.layout;
    const int64_t L = config.seqLen;
    const int64_t dh = config.dHead;
    const size_t sub_count =
        size_t(layout.nnzBlocks() * layout.blockSize());

    BsrSddDesc qk;
    qk.layout = &layout;
    qk.dHead = dh;
    qk.scale = config.scale();

    BsrDsdDesc av;
    av.layout = &layout;
    av.dHead = dh;

    BsrSoftmaxDesc sub;
    sub.layout = &layout;

    Tensor<Half> out(Shape({L, dh}));

    switch (strategy) {
      case Strategy::Baseline: {
        BsrMatrix scores(layout);
        bsrSddRun(ctx, qk, inputs.q, inputs.k, scores);
        BsrMatrix probs(layout);
        bsrRowSoftmaxRun(ctx, sub, scores, probs);
        bsrDsdRun(ctx, av, probs, inputs.v, out);
        break;
      }
      case Strategy::Decomposed: {
        BsrMatrix scores(layout);
        bsrSddRun(ctx, qk, inputs.q, inputs.k, scores);
        BsrMatrix x_prime(layout);
        std::vector<float> local_max, local_sum;
        bsrLsRun(ctx, sub, scores, x_prime, local_max, local_sum);
        std::vector<float> recon;
        bsrIrRun(ctx, sub, local_max, local_sum, recon);
        BsrMatrix probs(layout);
        bsrGsRun(ctx, sub, x_prime, recon, probs);
        bsrDsdRun(ctx, av, probs, inputs.v, out);
        break;
      }
      case Strategy::Fused: {
        BsrMatrix x_prime(layout);
        std::vector<float> local_max(sub_count), local_sum(sub_count);
        qk.fuseLocalSoftmax = true;
        bsrSddRun(ctx, qk, inputs.q, inputs.k, x_prime, &local_max,
                  &local_sum);
        std::vector<float> recon;
        bsrIrRun(ctx, sub, local_max, local_sum, recon);
        av.fuseGlobalScale = true;
        bsrDsdRun(ctx, av, x_prime, inputs.v, out, &recon);
        break;
      }
    }
    return out;
}

/** Static scope name per strategy (prof::Scope keeps the pointer). */
const char *
attentionScopeName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::Baseline:
        return "attention.baseline";
      case Strategy::Decomposed:
        return "attention.decomposed";
      case Strategy::Fused:
        return "attention.fused";
    }
    return "attention";
}

} // namespace

Tensor<Half>
runAttention(const ExecContext &ctx, const SdaConfig &config,
             const AttentionInputs &inputs, Strategy strategy)
{
    if (config.backend == AttentionBackend::Streaming) {
        if (config.sparse()) {
            fatal("SOFTREC_ATTENTION=streaming supports dense "
                  "attention only; block-sparse layouts run the "
                  "recomposed backend");
        }
        // Time-only summary scope, like the strategies below; the
        // kernel records its own traffic under "sda.stream".
        prof::Scope scope(ctx, "attention.streaming");
        StreamingAttentionDesc desc;
        desc.seqLen = config.seqLen;
        desc.kvLen = config.keyLen();
        desc.dHead = config.dHead;
        desc.causalMask = config.causalMask;
        desc.scale = config.scale();
        Tensor<Half> out(Shape({config.seqLen, config.dHead}));
        streamingAttentionRun(ctx, desc, inputs.q, inputs.k, inputs.v,
                              out);
        return out;
    }
    // Time-only summary scope; the kernels inside record their own
    // time and traffic under their individual names.
    prof::Scope scope(ctx, attentionScopeName(strategy));
    return config.sparse() ? runSparse(ctx, config, inputs, strategy)
                           : runDense(ctx, config, inputs, strategy);
}

Tensor<float>
referenceDenseAttention(const SdaConfig &config,
                        const AttentionInputs &inputs)
{
    const int64_t L = config.seqLen;
    const int64_t kv = config.keyLen();
    const int64_t dh = config.dHead;
    const double scale = config.scale();
    Tensor<float> out(Shape({L, dh}));
    std::vector<double> scores(static_cast<size_t>(kv), 0.0);
    for (int64_t i = 0; i < L; ++i) {
        for (int64_t j = 0; j < kv; ++j) {
            double s = 0.0;
            for (int64_t d = 0; d < dh; ++d) {
                s += double(float(inputs.q.at(i, d))) *
                     double(float(inputs.k.at(j, d)));
            }
            s *= scale;
            if (config.causalMask && j > i)
                s = kNegInfD;
            scores[size_t(j)] = s;
        }
        // Safe softmax in double precision.
        double m = kNegInfD;
        for (double s : scores)
            m = std::max(m, s);
        double d_sum = 0.0;
        for (double s : scores) {
            if (m != kNegInfD)
                d_sum += std::exp(s - m);
        }
        SOFTREC_CHECK(d_sum > 0.0 || m == kNegInfD,
                      "reference attention row %lld: d = %f must be "
                      "positive for an unmasked row",
                      (long long)i, d_sum);
        for (int64_t d = 0; d < dh; ++d) {
            double acc = 0.0;
            for (int64_t j = 0; j < kv; ++j) {
                const double p = d_sum > 0.0
                    ? std::exp(scores[size_t(j)] - m) / d_sum
                    : 0.0;
                acc += p * double(float(inputs.v.at(j, d)));
            }
            out.at(i, d) = float(acc);
        }
    }
    if constexpr (kCheckedBuild)
        checkFinite(out, "reference attention output");
    return out;
}

Tensor<float>
referenceSparseAttention(const SdaConfig &config,
                         const AttentionInputs &inputs)
{
    SOFTREC_ASSERT(config.sparse(), "sparse reference needs a layout");
    const BsrLayout &layout = *config.layout;
    const int64_t L = config.seqLen;
    const int64_t dh = config.dHead;
    const int64_t bs = layout.blockSize();
    const double scale = config.scale();
    Tensor<float> out(Shape({L, dh}));

    for (int64_t i = 0; i < L; ++i) {
        const int64_t br = i / bs;
        // Collect the row's non-masked column positions.
        std::vector<int64_t> cols;
        for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
             ++k) {
            const int64_t bc = layout.blockCol(k);
            for (int64_t j = 0; j < bs; ++j)
                cols.push_back(bc * bs + j);
        }
        std::vector<double> scores(cols.size());
        for (size_t c = 0; c < cols.size(); ++c) {
            double s = 0.0;
            for (int64_t d = 0; d < dh; ++d) {
                s += double(float(inputs.q.at(i, d))) *
                     double(float(inputs.k.at(cols[c], d)));
            }
            scores[c] = s * scale;
        }
        double m = kNegInfD;
        for (double s : scores)
            m = std::max(m, s);
        double d_sum = 0.0;
        for (double s : scores) {
            if (m != kNegInfD)
                d_sum += std::exp(s - m);
        }
        SOFTREC_CHECK(d_sum > 0.0 || m == kNegInfD,
                      "sparse reference row %lld: d = %f must be "
                      "positive for an unmasked row",
                      (long long)i, d_sum);
        for (int64_t d = 0; d < dh; ++d) {
            double acc = 0.0;
            for (size_t c = 0; c < cols.size(); ++c) {
                const double p = d_sum > 0.0
                    ? std::exp(scores[c] - m) / d_sum
                    : 0.0;
                acc += p * double(float(inputs.v.at(cols[c], d)));
            }
            out.at(i, d) = float(acc);
        }
    }
    if constexpr (kCheckedBuild)
        checkFinite(out, "sparse reference output");
    return out;
}

} // namespace softrec
