/**
 * @file
 * Reference softmax mathematics.
 */

#include "core/softmax_math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace softrec {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

} // namespace

std::vector<double>
safeSoftmax(const std::vector<double> &x)
{
    SOFTREC_ASSERT(!x.empty(), "softmax of an empty vector");
    double m = kNegInf;
    for (double v : x)
        m = std::max(m, v);
    double d = 0.0;
    for (double v : x) {
        if (m != kNegInf)
            d += std::exp(v - m);
    }
    SOFTREC_CHECK(d > 0.0 || m == kNegInf,
                  "safe softmax: d = %f must be positive for an "
                  "unmasked row", d);
    std::vector<double> y(x.size(), 0.0);
    if (d > 0.0) {
        for (size_t i = 0; i < x.size(); ++i)
            y[i] = std::exp(x[i] - m) / d;
    }
    return y;
}

DecomposedRow
localSoftmax(const std::vector<double> &x, int64_t t)
{
    SOFTREC_ASSERT(!x.empty() && t > 0, "bad LS arguments");
    const int64_t len = int64_t(x.size());
    const int64_t n_sv = (len + t - 1) / t;
    DecomposedRow out;
    out.xPrime.resize(x.size());
    out.localMax.assign(size_t(n_sv), kNegInf);
    out.localSum.assign(size_t(n_sv), 0.0);
    for (int64_t sv = 0; sv < n_sv; ++sv) {
        const int64_t lo = sv * t;
        const int64_t hi = std::min(len, lo + t);
        double m_local = kNegInf;
        for (int64_t i = lo; i < hi; ++i)
            m_local = std::max(m_local, x[size_t(i)]);
        double d_local = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
            const double e = m_local == kNegInf
                ? 0.0
                : std::exp(x[size_t(i)] - m_local);
            d_local += e;
            out.xPrime[size_t(i)] = e;
        }
        out.localMax[size_t(sv)] = m_local;
        out.localSum[size_t(sv)] = d_local;
    }
    return out;
}

std::vector<double>
interReduction(const std::vector<double> &local_max,
               const std::vector<double> &local_sum)
{
    SOFTREC_ASSERT(local_max.size() == local_sum.size() &&
                   !local_max.empty(),
                   "IR inputs inconsistent");
    double m = kNegInf;
    for (double v : local_max)
        m = std::max(m, v);
    double d = 0.0;
    for (size_t k = 0; k < local_max.size(); ++k) {
        if (local_max[k] != kNegInf)
            d += std::exp(local_max[k] - m) * local_sum[k];
    }
    SOFTREC_CHECK(d > 0.0 || m == kNegInf,
                  "IR reference: d = %f must be positive for an "
                  "unmasked row", d);
    std::vector<double> recon(local_max.size(), 0.0);
    if (d > 0.0) {
        for (size_t k = 0; k < local_max.size(); ++k) {
            if (local_max[k] != kNegInf)
                recon[k] = std::exp(local_max[k] - m) / d;
        }
    }
    if constexpr (kCheckedBuild)
        checkReconFactors(spanOf(recon), "IR reference r'");
    return recon;
}

std::vector<double>
globalScaling(const std::vector<double> &x_prime,
              const std::vector<double> &recon, int64_t t)
{
    SOFTREC_ASSERT(t > 0, "bad GS sub-vector width");
    std::vector<double> y(x_prime.size());
    for (size_t i = 0; i < x_prime.size(); ++i)
        y[i] = x_prime[i] * recon[i / size_t(t)];
    return y;
}

std::vector<double>
decomposedSoftmax(const std::vector<double> &x, int64_t t)
{
    const DecomposedRow ls = localSoftmax(x, t);
    const std::vector<double> recon =
        interReduction(ls.localMax, ls.localSum);
    return globalScaling(ls.xPrime, recon, t);
}

OnlineNormalizerState
onlineNormalizer(const std::vector<double> &x)
{
    SOFTREC_ASSERT(!x.empty(), "online normalizer of an empty vector");
    OnlineNormalizerState state{kNegInf, 0.0};
    for (double v : x) {
        const double new_max = std::max(state.runningMax, v);
        if (new_max == kNegInf)
            continue; // still only -inf entries seen
        state.runningSum =
            state.runningSum *
                (state.runningMax == kNegInf
                     ? 0.0
                     : std::exp(state.runningMax - new_max)) +
            std::exp(v - new_max);
        state.runningMax = new_max;
    }
    return state;
}

std::vector<double>
onlineSoftmax(const std::vector<double> &x)
{
    const OnlineNormalizerState state = onlineNormalizer(x);
    std::vector<double> y(x.size(), 0.0);
    if (state.runningSum > 0.0) {
        for (size_t i = 0; i < x.size(); ++i)
            y[i] = std::exp(x[i] - state.runningMax) /
                   state.runningSum;
    }
    return y;
}

std::vector<double>
softmaxBackward(const std::vector<double> &y,
                const std::vector<double> &dy)
{
    SOFTREC_ASSERT(y.size() == dy.size() && !y.empty(),
                   "softmax backward sizes inconsistent");
    // dx_k = y_k * (dy_k - sum_i dy_i * y_i), from Eq. (3).
    double dot = 0.0;
    for (size_t i = 0; i < y.size(); ++i)
        dot += dy[i] * y[i];
    std::vector<double> dx(y.size());
    for (size_t k = 0; k < y.size(); ++k)
        dx[k] = y[k] * (dy[k] - dot);
    return dx;
}

} // namespace softrec
