/**
 * @file
 * Reference mathematics of softmax recomposition (paper Sections 3.2
 * and 6), in double precision. These functions are the ground truth
 * the kernel implementations are tested against.
 */

#ifndef SOFTREC_CORE_SOFTMAX_MATH_HPP
#define SOFTREC_CORE_SOFTMAX_MATH_HPP

#include <cstdint>
#include <vector>

namespace softrec {

/** Safe softmax of one row vector (Eq. (1)). */
std::vector<double> safeSoftmax(const std::vector<double> &x);

/** Per-sub-vector intermediates of the decomposed softmax. */
struct DecomposedRow
{
    std::vector<double> xPrime;   //!< exp(x - m'_k), full row
    std::vector<double> localMax; //!< m'_k per sub-vector
    std::vector<double> localSum; //!< d'_k per sub-vector
};

/** Local Softmax (LS) reference over sub-vectors of width t. */
DecomposedRow localSoftmax(const std::vector<double> &x, int64_t t);

/**
 * Inter-sub-vector Reduction (IR) reference: reconstruction factors
 * r'_k = e^(m'_k - m) / d from the LS intermediates (Eq. (2)).
 */
std::vector<double> interReduction(const std::vector<double> &local_max,
                                   const std::vector<double> &local_sum);

/** Global Scaling (GS) reference: y_i = x'_i * r'_{i/t}. */
std::vector<double> globalScaling(const std::vector<double> &x_prime,
                                  const std::vector<double> &recon,
                                  int64_t t);

/**
 * The full recomposed softmax: LS then IR then GS. Mathematically
 * identical to safeSoftmax for any sub-vector width (Eq. (2)).
 */
std::vector<double> decomposedSoftmax(const std::vector<double> &x,
                                      int64_t t);

/**
 * Softmax backward pass (Eq. (3)): given the forward output y and the
 * upstream gradient dy, return dx. Depends only on y — the property
 * that lets recomposition skip storing the softmax *input* during
 * training (paper Section 6).
 */
std::vector<double> softmaxBackward(const std::vector<double> &y,
                                    const std::vector<double> &dy);

/**
 * Online-normalizer softmax (Milakov & Gimelshein 2018, the paper's
 * related work [21]): computes the running max and normalizer in a
 * single pass using the rescaling identity
 * d <- d * e^(m_old - m_new) + e^(x - m_new), then normalizes in a
 * second pass. Mathematically identical to safe softmax; included as
 * the strongest *unfused* softmax baseline.
 */
std::vector<double> onlineSoftmax(const std::vector<double> &x);

/**
 * The intermediate (m, d) pair the online pass maintains; exposed so
 * tests can check the running recurrence against the two-pass values.
 */
struct OnlineNormalizerState
{
    double runningMax;  //!< m after consuming the prefix
    double runningSum;  //!< d after consuming the prefix
};

/** Run the online recurrence over x and return the final (m, d). */
OnlineNormalizerState onlineNormalizer(const std::vector<double> &x);

} // namespace softrec

#endif // SOFTREC_CORE_SOFTMAX_MATH_HPP
