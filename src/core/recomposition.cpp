/**
 * @file
 * Recomposition planner implementation.
 */

#include "core/recomposition.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "kernels/bsr_gemm.hpp"
#include "kernels/bsr_softmax.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/softmax_kernels.hpp"

namespace softrec {

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::Baseline: return "Baseline";
      case Strategy::Decomposed: return "SD";
      case Strategy::Fused: return "SDF";
    }
    return "?";
}

std::vector<Strategy>
allStrategies()
{
    return {Strategy::Baseline, Strategy::Decomposed, Strategy::Fused};
}

double
SdaConfig::scale() const
{
    return 1.0 / std::sqrt(double(dHead));
}

GemmShapeClass
SdaConfig::attentionClass() const
{
    if (sparse())
        return GemmShapeClass::BlockSparse;
    return dHead >= 128 ? GemmShapeClass::AttentionWide
                        : GemmShapeClass::Attention;
}

uint64_t
SdaConfig::attentionMatrixBytes() const
{
    const uint64_t per_problem = sparse()
        ? uint64_t(layout->nnzElements()) * kFp16Bytes
        : uint64_t(seqLen) * uint64_t(keyLen()) * kFp16Bytes;
    return uint64_t(problems()) * per_problem;
}

namespace {

/** Dense SDA schedules. */
SdaSchedule
buildDense(const GpuSpec &spec, const SdaConfig &config,
           Strategy strategy)
{
    SdaSchedule sched;
    sched.strategy = strategy;
    sched.attentionMatrixBytes = config.attentionMatrixBytes();

    GemmTiling tiling = config.attnTiling;
    if (strategy == Strategy::Fused) {
        // Fusion requires T = output tile width (Section 3.3).
        tiling.tileN = config.subVector;
    }

    // QK^T: [L, dHead] x [dHead, L] -> [L, L], scale/mask fused.
    GemmDesc qk;
    qk.name = "sda.qk";
    qk.category = KernelCategory::SdaMatMul;
    qk.batch = config.problems();
    qk.m = config.seqLen;
    qk.n = config.keyLen();
    qk.k = config.dHead;
    qk.shapeClass = config.attentionClass();
    qk.tiling = tiling;
    qk.epilogue.scale = config.scale();
    qk.epilogue.causalMask = config.causalMask;

    // P.V: [L, L] x [L, dHead] -> [L, dHead].
    GemmDesc av;
    av.name = "sda.av";
    av.category = KernelCategory::SdaMatMul;
    av.batch = config.problems();
    av.m = config.seqLen;
    av.n = config.dHead;
    av.k = config.keyLen();
    av.shapeClass = config.attentionClass();
    av.tiling = config.attnTiling;

    SoftmaxShape sub;
    sub.batch = config.problems();
    sub.rows = config.seqLen;
    sub.cols = config.keyLen();
    sub.subVector = strategy == Strategy::Fused ? tiling.tileN
                                                : config.subVector;

    switch (strategy) {
      case Strategy::Baseline: {
        sched.kernels.push_back(gemmProfile(spec, qk));
        SoftmaxShape softmax;
        softmax.name = "sda.softmax";
        softmax.batch = config.problems();
        softmax.rows = config.seqLen;
        softmax.cols = config.keyLen();
        sched.kernels.push_back(rowSoftmaxProfile(spec, softmax));
        sched.kernels.push_back(gemmProfile(spec, av));
        sched.attentionSweeps = 4; // QK write, softmax r/w, AV read
        break;
      }
      case Strategy::Decomposed: {
        sched.kernels.push_back(gemmProfile(spec, qk));
        sub.name = "sda.ls";
        sched.kernels.push_back(lsProfile(spec, sub));
        sub.name = "sda.ir";
        sched.kernels.push_back(irProfile(spec, sub));
        sub.name = "sda.gs";
        sched.kernels.push_back(gsProfile(spec, sub));
        sched.kernels.push_back(gemmProfile(spec, av));
        sched.attentionSweeps = 6; // + LS r/w and GS r/w
        break;
      }
      case Strategy::Fused: {
        qk.name = "sda.qk+ls";
        qk.epilogue.localSoftmax = true;
        sched.kernels.push_back(gemmProfile(spec, qk));
        sub.name = "sda.ir";
        sched.kernels.push_back(irProfile(spec, sub));
        av.name = "sda.av+gs";
        av.prologue.globalScale = true;
        av.prologue.gsSubVector = sub.subVector;
        sched.kernels.push_back(gemmProfile(spec, av));
        sched.attentionSweeps = 2; // fused QK write + fused AV read
        break;
      }
    }

    // The m'/d'/r' side traffic: everything the decomposed kernels
    // move that is not the attention matrix or the Q/K/V/O operands.
    if (strategy != Strategy::Baseline) {
        const uint64_t per_row =
            uint64_t(sub.numSubVectors()) * kFp32Bytes;
        const uint64_t rows = uint64_t(config.problems() * config.seqLen);
        // m' + d' written once and read once; r' written once, read
        // once by GS (or the fused AV prologue).
        sched.intermediateBytes = rows * per_row * 6;
    }
    return sched;
}

/** Block-sparse SDA schedules (Section 3.4). */
SdaSchedule
buildSparse(const GpuSpec &spec, const SdaConfig &config,
            Strategy strategy)
{
    const BsrLayout &layout = *config.layout;
    SOFTREC_ASSERT(layout.rows() == config.seqLen,
                   "layout rows %lld != L %lld",
                   (long long)layout.rows(), (long long)config.seqLen);
    SOFTREC_ASSERT(layout.blockSize() == config.subVector,
                   "sparse sub-vector width must equal the block size "
                   "(%lld != %lld)", (long long)config.subVector,
                   (long long)layout.blockSize());

    SdaSchedule sched;
    sched.strategy = strategy;
    sched.attentionMatrixBytes = config.attentionMatrixBytes();

    BsrSddDesc qk;
    qk.name = "sda.qk";
    qk.batch = config.problems();
    qk.layout = &layout;
    qk.dHead = config.dHead;
    qk.scale = config.scale();

    BsrDsdDesc av;
    av.name = "sda.av";
    av.batch = config.problems();
    av.layout = &layout;
    av.dHead = config.dHead;

    BsrSoftmaxDesc sub;
    sub.batch = config.problems();
    sub.layout = &layout;

    switch (strategy) {
      case Strategy::Baseline: {
        sched.kernels.push_back(bsrSddProfile(spec, qk));
        sub.name = "sda.softmax";
        sched.kernels.push_back(bsrRowSoftmaxProfile(spec, sub));
        sched.kernels.push_back(bsrDsdProfile(spec, av));
        sched.attentionSweeps = 4;
        break;
      }
      case Strategy::Decomposed: {
        sched.kernels.push_back(bsrSddProfile(spec, qk));
        sub.name = "sda.ls";
        sched.kernels.push_back(bsrLsProfile(spec, sub));
        sub.name = "sda.ir";
        sched.kernels.push_back(bsrIrProfile(spec, sub));
        sub.name = "sda.gs";
        sched.kernels.push_back(bsrGsProfile(spec, sub));
        sched.kernels.push_back(bsrDsdProfile(spec, av));
        sched.attentionSweeps = 6;
        break;
      }
      case Strategy::Fused: {
        qk.name = "sda.qk+ls";
        qk.fuseLocalSoftmax = true;
        sched.kernels.push_back(bsrSddProfile(spec, qk));
        sub.name = "sda.ir";
        sched.kernels.push_back(bsrIrProfile(spec, sub));
        av.name = "sda.av+gs";
        av.fuseGlobalScale = true;
        sched.kernels.push_back(bsrDsdProfile(spec, av));
        sched.attentionSweeps = 2;
        break;
      }
    }

    if (strategy != Strategy::Baseline) {
        const uint64_t sub_vectors =
            uint64_t(config.problems()) *
            uint64_t(layout.nnzBlocks() * layout.blockSize());
        sched.intermediateBytes = sub_vectors * kFp32Bytes * 6;
    }
    return sched;
}

} // namespace

int64_t
chooseSubVector(int64_t key_len, int64_t preferred)
{
    SOFTREC_ASSERT(key_len > 0 && preferred > 0,
                   "sub-vector selection needs positive lengths");
    for (int64_t t = std::min(key_len, preferred); t > 1; --t) {
        if (key_len % t == 0)
            return t;
    }
    return 1;
}

SdaSchedule
buildSdaSchedule(const GpuSpec &spec, const SdaConfig &config,
                 Strategy strategy)
{
    SOFTREC_ASSERT(config.batch > 0 && config.heads > 0 &&
                   config.seqLen > 0 && config.dHead > 0,
                   "empty SDA configuration");
    SOFTREC_ASSERT(config.subVector > 0 &&
                   config.keyLen() % config.subVector == 0,
                   "sub-vector width %lld must divide the key length "
                   "%lld", (long long)config.subVector,
                   (long long)config.keyLen());
    SOFTREC_ASSERT(!config.sparse() || config.kvLen == 0 ||
                   config.kvLen == config.seqLen,
                   "block-sparse attention layouts are square");
    return config.sparse() ? buildSparse(spec, config, strategy)
                           : buildDense(spec, config, strategy);
}

} // namespace softrec
