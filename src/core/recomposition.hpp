/**
 * @file
 * The softmax recomposition planner — the paper's primary contribution
 * as a schedule rewrite.
 *
 * Given one scaled-dot-product-attention (SDA) block, emit the kernel
 * launch sequence under one of three strategies:
 *
 *  - Baseline: QK^T GEMM (scale/mask fused) -> row softmax -> P.V GEMM;
 *  - Decomposed (SD): softmax split into LS -> IR -> GS kernels whose
 *    data access patterns match the adjacent GEMM tiles (Section 3.2);
 *  - Fused (SDF): LS folded into the QK^T epilogue and GS into the P.V
 *    prologue; only the tiny IR kernel remains (Section 3.3).
 *
 * Works for dense attention and for block-sparse attention layouts
 * (Section 3.4). The schedule also reports how many times the L x L
 * attention matrix crosses the off-chip boundary — the quantity Fig. 6
 * shows dropping from four sweeps to two.
 */

#ifndef SOFTREC_CORE_RECOMPOSITION_HPP
#define SOFTREC_CORE_RECOMPOSITION_HPP

#include <string>
#include <vector>

#include "kernels/gemm.hpp"
#include "kernels/streaming_attention.hpp"
#include "sim/kernel_profile.hpp"
#include "sparse/bsr.hpp"

namespace softrec {

/** Softmax execution strategy for the SDA block. */
enum class Strategy {
    Baseline,   //!< fused row softmax (TensorRT/DeepSpeed style)
    Decomposed, //!< SD: standalone LS / IR / GS kernels
    Fused,      //!< SDF: LS and GS fused into the adjacent GEMMs
};

/** Display name ("Baseline", "SD", "SDF"). */
const char *strategyName(Strategy strategy);

/** All three strategies, in presentation order. */
std::vector<Strategy> allStrategies();

/** Shape and options of one SDA block invocation. */
struct SdaConfig
{
    int64_t batch = 1;   //!< sequences per batch
    int64_t heads = 16;  //!< attention heads H_num
    int64_t seqLen = 4096; //!< query sequence length L
    /**
     * Key/value sequence length; 0 means "same as seqLen". Differs in
     * encoder-decoder cross-attention, where the decoder's queries
     * attend over the encoder's hidden states (paper Section 2.1).
     */
    int64_t kvLen = 0;
    int64_t dHead = 64;  //!< per-head hidden size D_head
    bool causalMask = false; //!< decoder-style masking
    /** Block-sparse attention structure; nullptr = dense. */
    const BsrLayout *layout = nullptr;
    /** Sub-vector width T (= GEMM output tile width under fusion). */
    int64_t subVector = 64;
    /** Tiling of the dense attention GEMMs. */
    GemmTiling attnTiling;
    /**
     * Execution backend: Recomposed runs the strategy pipeline;
     * Streaming runs the single-pass online-softmax kernel (dense
     * only) and ignores the strategy. Selected by the
     * SOFTREC_ATTENTION knob at the config layer.
     */
    AttentionBackend backend = AttentionBackend::Recomposed;

    /** Effective key/value length (kvLen, or seqLen when unset). */
    int64_t keyLen() const { return kvLen > 0 ? kvLen : seqLen; }
    /** 1 / sqrt(D_head). */
    double scale() const;
    /** True when a block-sparse layout is configured. */
    bool sparse() const { return layout != nullptr; }
    /** batch x heads: independent attention problems. */
    int64_t problems() const { return batch * heads; }
    /** Efficiency class of the attention GEMMs. */
    GemmShapeClass attentionClass() const;
    /** Bytes of the (dense or sparse) attention matrix, all problems. */
    uint64_t attentionMatrixBytes() const;
};

/** A planned SDA block: kernels plus traffic bookkeeping. */
struct SdaSchedule
{
    Strategy strategy = Strategy::Baseline;
    std::vector<KernelProfile> kernels;
    /**
     * Off-chip crossings of the attention matrix inside the block
     * (reads + writes of attention-matrix-sized operands). Four in the
     * baseline, six under SD, two under SDF (Fig. 6).
     */
    int attentionSweeps = 0;
    /** Size of one full attention-matrix sweep. */
    uint64_t attentionMatrixBytes = 0;
    /** Off-chip bytes of the m'/d'/r' intermediates (SD and SDF). */
    uint64_t intermediateBytes = 0;
};

/**
 * Plan the SDA block's kernel sequence for a strategy on a GPU.
 * The returned profiles are ready to Gpu::launch in order.
 */
SdaSchedule buildSdaSchedule(const GpuSpec &spec, const SdaConfig &config,
                             Strategy strategy);

/**
 * Largest sub-vector width that divides key_len and does not exceed
 * preferred (so fusion's T = tile-width constraint is satisfiable for
 * any sequence length, not just multiples of 64). Returns preferred
 * unchanged when it already divides key_len.
 */
int64_t chooseSubVector(int64_t key_len, int64_t preferred);

} // namespace softrec

#endif // SOFTREC_CORE_RECOMPOSITION_HPP
