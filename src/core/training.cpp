/**
 * @file
 * Training-time recomposition implementation.
 */

#include "core/training.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "core/softmax_math.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/softmax_kernels.hpp"
#include "sim/calibration.hpp"
#include "sim/cost_model.hpp"

namespace softrec {

AttentionGradients
referenceAttentionBackward(const SdaConfig &config,
                           const AttentionInputs &inputs,
                           const Tensor<float> &d_out)
{
    SOFTREC_ASSERT(!config.sparse(),
                   "reference backward covers dense attention");
    const int64_t L = config.seqLen;
    const int64_t dh = config.dHead;
    SOFTREC_ASSERT(d_out.shape() == Shape({L, dh}),
                   "dO shape must be [L, dHead]");
    const double scale = config.scale();
    constexpr double neg_inf =
        -std::numeric_limits<double>::infinity();

    AttentionGradients grads{Tensor<float>(Shape({L, dh})),
                             Tensor<float>(Shape({L, dh})),
                             Tensor<float>(Shape({L, dh}))};

    // Recompute P row by row (double precision), then apply the chain
    // rule: dV += P^T dO; dP = dO V^T; dS = P (dP - sum(dP P));
    // dQ = scale dS K; dK = scale dS^T Q.
    std::vector<double> scores(static_cast<size_t>(L), 0.0);
    std::vector<double> d_probs(static_cast<size_t>(L), 0.0);
    for (int64_t i = 0; i < L; ++i) {
        for (int64_t j = 0; j < L; ++j) {
            double s = 0.0;
            for (int64_t d = 0; d < dh; ++d) {
                s += double(float(inputs.q.at(i, d))) *
                     double(float(inputs.k.at(j, d)));
            }
            s *= scale;
            if (config.causalMask && j > i)
                s = neg_inf;
            scores[size_t(j)] = s;
        }
        const std::vector<double> probs = safeSoftmax(scores);

        // dP_ij = sum_d dO_id V_jd.
        for (int64_t j = 0; j < L; ++j) {
            double dp = 0.0;
            for (int64_t d = 0; d < dh; ++d) {
                dp += double(d_out.at(i, d)) *
                      double(float(inputs.v.at(j, d)));
            }
            d_probs[size_t(j)] = dp;
        }
        // dV_jd += P_ij dO_id.
        for (int64_t j = 0; j < L; ++j) {
            for (int64_t d = 0; d < dh; ++d) {
                grads.dV.at(j, d) +=
                    float(probs[size_t(j)] * double(d_out.at(i, d)));
            }
        }
        const std::vector<double> d_scores =
            softmaxBackward(probs, d_probs);
        // dQ_id += scale dS_ij K_jd; dK_jd += scale dS_ij Q_id.
        for (int64_t j = 0; j < L; ++j) {
            const double ds = scale * d_scores[size_t(j)];
            if (ds == 0.0)
                continue;
            for (int64_t d = 0; d < dh; ++d) {
                grads.dQ.at(i, d) +=
                    float(ds * double(float(inputs.k.at(j, d))));
                grads.dK.at(j, d) +=
                    float(ds * double(float(inputs.q.at(i, d))));
            }
        }
    }
    return grads;
}

std::vector<KernelProfile>
SdaTrainingSchedule::all() const
{
    std::vector<KernelProfile> out = forward;
    out.insert(out.end(), backward.begin(), backward.end());
    return out;
}

namespace {

/** Attention GEMM descriptor shared by the backward builders. */
GemmDesc
attnGemm(const SdaConfig &config, const std::string &name, int64_t m,
         int64_t n, int64_t k)
{
    GemmDesc desc;
    desc.name = name;
    desc.category = KernelCategory::SdaMatMul;
    desc.batch = config.problems();
    desc.m = m;
    desc.n = n;
    desc.k = k;
    desc.shapeClass = config.attentionClass();
    desc.tiling = config.attnTiling;
    return desc;
}

/** Bytes of one full attention matrix across all problems. */
uint64_t
matrixBytes(const SdaConfig &config)
{
    return config.attentionMatrixBytes();
}

/** Bytes of the per-sub-vector fp32 side data (r' or c). */
uint64_t
sideBytes(const SdaConfig &config)
{
    const int64_t n_sv = ceilDiv(config.seqLen, config.subVector);
    return uint64_t(config.problems() * config.seqLen * n_sv) *
           kFp32Bytes;
}

/** The softmax-backward row kernel: dS = P (dP - rowsum(dP P)). */
KernelProfile
softmaxBackwardProfile(const GpuSpec &spec, const SdaConfig &config)
{
    (void)spec;
    KernelProfile prof;
    prof.name = "bwd.softmax";
    prof.category = KernelCategory::Softmax;
    prof.geom.numBlocks = config.problems() * config.seqLen;
    prof.geom.block.threads = 128;
    // Two full rows (P and dP) staged per TB.
    prof.geom.block.smemBytes =
        uint64_t(2 * config.seqLen) *
        calib::kRowSoftmaxStagingBytesPerElem;
    prof.geom.block.regsPerThread = 40;
    prof.dramReadBytes = 2 * matrixBytes(config); // P and dP
    prof.dramWriteBytes = matrixBytes(config);    // dS
    const double elems = double(config.problems()) *
                         double(config.seqLen) * double(config.seqLen);
    prof.cudaFlops = 4.0 * elems;
    prof.serializationFactor = rowSoftmaxSerialization(config.seqLen);
    return prof;
}

} // namespace

SdaTrainingSchedule
buildSdaTrainingSchedule(const GpuSpec &spec, const SdaConfig &config,
                         Strategy strategy)
{
    SOFTREC_ASSERT(!config.sparse(),
                   "training schedules cover dense attention");
    const int64_t L = config.seqLen;
    const int64_t dh = config.dHead;

    SdaTrainingSchedule sched;
    sched.strategy = strategy;
    sched.forward = buildSdaSchedule(spec, config, strategy).kernels;

    const double fuse_penalty =
        calib::kFusedWorkPerElement / double(dh);
    const uint64_t matrix = matrixBytes(config);
    const uint64_t side = sideBytes(config);

    if (strategy == Strategy::Baseline) {
        // Frameworks writing softmax backward against the input keep
        // both S and P alive between the passes.
        sched.activations = ActivationPolicy::StoreScoresAndProbs;
        sched.activationBytes = 2 * matrix;

        // dV = P^T dO.
        GemmDesc dv = attnGemm(config, "bwd.dv", L, dh, L);
        sched.backward.push_back(gemmProfile(spec, dv));
        // dP = dO V^T.
        GemmDesc dp = attnGemm(config, "bwd.dp", L, L, dh);
        sched.backward.push_back(gemmProfile(spec, dp));
        // Standalone softmax backward.
        sched.backward.push_back(softmaxBackwardProfile(spec, config));
        // dQ = dS K and dK = dS^T Q.
        sched.backward.push_back(
            gemmProfile(spec, attnGemm(config, "bwd.dq", L, dh, L)));
        sched.backward.push_back(
            gemmProfile(spec, attnGemm(config, "bwd.dk", L, dh, L)));
        return sched;
    }

    // SD and SDF train from X' and r' (P is never materialized, S
    // never exists off chip). SD keeps a standalone softmax-backward
    // kernel that reads X'/r' instead of P; SDF fuses its reduction
    // into the dP GEMM epilogue and its correction into the dQ/dK
    // prologues, leaving a small IR-like reduction.
    sched.activations = ActivationPolicy::StoreProbsOnly;
    sched.activationBytes = matrix + side; // X' plus r'

    // dV = P^T dO with P = X' r' recovered on load.
    GemmDesc dv = attnGemm(config, "bwd.dv+gs", L, dh, L);
    KernelProfile dv_prof = gemmProfile(spec, dv);
    dv_prof.dramReadBytes += side;
    dv_prof.cudaFlops +=
        double(config.problems()) * double(L) * double(L);
    dv_prof.fusedPenalty += fuse_penalty;
    sched.backward.push_back(dv_prof);

    if (strategy == Strategy::Decomposed) {
        sched.backward.push_back(
            gemmProfile(spec, attnGemm(config, "bwd.dp", L, L, dh)));
        KernelProfile sb = softmaxBackwardProfile(spec, config);
        sb.name = "bwd.softmax.sd";
        sb.dramReadBytes += side; // + r' to reconstruct P
        sched.backward.push_back(sb);
        sched.backward.push_back(
            gemmProfile(spec, attnGemm(config, "bwd.dq", L, dh, L)));
        sched.backward.push_back(
            gemmProfile(spec, attnGemm(config, "bwd.dk", L, dh, L)));
        return sched;
    }

    // SDF backward.
    // dP GEMM with a fused partial-reduction epilogue: stores dP and
    // per-tile partial sums c' of dP*P (reads the X' tile for that).
    GemmDesc dp = attnGemm(config, "bwd.dp+pr", L, L, dh);
    KernelProfile dp_prof = gemmProfile(spec, dp);
    dp_prof.dramReadBytes += matrix + side; // X' tiles and r'
    dp_prof.dramWriteBytes += side;         // partial sums c'
    dp_prof.cudaFlops +=
        3.0 * double(config.problems()) * double(L) * double(L);
    dp_prof.fusedPenalty += fuse_penalty;
    sched.backward.push_back(dp_prof);

    // IR-analogue: reduce the per-sub-vector partials into the row
    // constants c.
    SoftmaxShape reduce;
    reduce.name = "bwd.ir";
    reduce.batch = config.problems();
    reduce.rows = L;
    reduce.cols = L;
    reduce.subVector = config.subVector;
    sched.backward.push_back(irProfile(spec, reduce));

    // dQ and dK consume dS = X' r' (dP - c) materialized on the fly
    // in their prologues: each reads dP and X' (plus r' and c).
    for (const char *name : {"bwd.dq+sb", "bwd.dk+sb"}) {
        GemmDesc desc = attnGemm(config, name, L, dh, L);
        KernelProfile prof = gemmProfile(spec, desc);
        prof.dramReadBytes += matrix + 2 * side; // + X', r', c
        prof.cudaFlops +=
            3.0 * double(config.problems()) * double(L) * double(L);
        prof.fusedPenalty += 1.5 * fuse_penalty;
        sched.backward.push_back(prof);
    }
    return sched;
}

} // namespace softrec
