/**
 * @file
 * Functional single-head attention executor.
 *
 * Runs one scaled-dot-product-attention head end to end on the CPU
 * using the functional kernel implementations, under any of the three
 * strategies. All strategies compute the same mathematics; tests and
 * examples use this to demonstrate that recomposition is exact (up to
 * fp16 storage rounding of the X' intermediate).
 */

#ifndef SOFTREC_CORE_ATTENTION_EXEC_HPP
#define SOFTREC_CORE_ATTENTION_EXEC_HPP

#include "common/exec_context.hpp"
#include "core/recomposition.hpp"
#include "fp16/half.hpp"
#include "sparse/bsr_matrix.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** Q/K/V of one attention head, each [L, dHead] fp16. */
struct AttentionInputs
{
    Tensor<Half> q;
    Tensor<Half> k;
    Tensor<Half> v;
};

/** Make zeroed inputs of the right shapes for a config. */
AttentionInputs makeAttentionInputs(const SdaConfig &config);

/**
 * Execute one attention head functionally under a strategy,
 * dispatching on config.layout: dense when null, block-sparse
 * otherwise. config.batch and config.heads are ignored (single
 * problem).
 *
 * @return the attention output, [L, dHead] fp16
 */
Tensor<Half> runAttention(const ExecContext &ctx,
                          const SdaConfig &config,
                          const AttentionInputs &inputs,
                          Strategy strategy);

/**
 * Double-precision reference attention (dense), computed directly from
 * the definition; the gold standard for the functional tests.
 */
Tensor<float> referenceDenseAttention(const SdaConfig &config,
                                      const AttentionInputs &inputs);

/**
 * Double-precision reference attention over a block-sparse layout
 * (softmax over the non-masked positions only).
 */
Tensor<float> referenceSparseAttention(const SdaConfig &config,
                                       const AttentionInputs &inputs);

} // namespace softrec

#endif // SOFTREC_CORE_ATTENTION_EXEC_HPP
