/**
 * @file
 * Training-time softmax recomposition (paper Section 6).
 *
 * The softmax backward pass (Eq. (3)) is expressible purely in terms
 * of the forward *output* Y, so a recomposed forward pass — which
 * never materializes the softmax input S off chip — remains valid for
 * training. This module provides:
 *
 *  - a double-precision reference backward pass through one attention
 *    head (gradients dQ, dK, dV from dO), used by the gradient tests;
 *  - kernel schedules for one SDA block's training step (forward +
 *    backward) under the baseline and under recomposition, extending
 *    the paper's argument into a concrete backward plan: the softmax
 *    backward's row reduction fuses into the dP = dO.V^T epilogue the
 *    same way LS fuses into QK^T, and the elementwise
 *    dS = P (dP - c) correction fuses into the dQ/dK prologues the
 *    way GS does;
 *  - activation-storage accounting (what must persist between the
 *    passes under each policy).
 */

#ifndef SOFTREC_CORE_TRAINING_HPP
#define SOFTREC_CORE_TRAINING_HPP

#include "core/attention_exec.hpp"
#include "core/recomposition.hpp"

namespace softrec {

/** Gradients of one attention head w.r.t. its inputs (fp32). */
struct AttentionGradients
{
    Tensor<float> dQ;
    Tensor<float> dK;
    Tensor<float> dV;
};

/**
 * Double-precision reference backward through dense single-head
 * attention: given the forward inputs and the upstream gradient dO,
 * return dQ, dK, dV. Recomputes the forward internally.
 */
AttentionGradients referenceAttentionBackward(
    const SdaConfig &config, const AttentionInputs &inputs,
    const Tensor<float> &d_out);

/** What the forward pass stores for the backward pass. */
enum class ActivationPolicy {
    /**
     * Store the softmax input S *and* output P (what a framework does
     * when the softmax backward is written against the input).
     */
    StoreScoresAndProbs,
    /**
     * Store only the output P — legal because of Eq. (3), and the
     * policy recomposition requires (S never exists off chip).
     */
    StoreProbsOnly,
};

/** A planned training step of one SDA block. */
struct SdaTrainingSchedule
{
    Strategy strategy = Strategy::Baseline;
    ActivationPolicy activations =
        ActivationPolicy::StoreScoresAndProbs;
    std::vector<KernelProfile> forward;  //!< forward-pass kernels
    std::vector<KernelProfile> backward; //!< backward-pass kernels
    /** Bytes persisted from forward to backward. */
    uint64_t activationBytes = 0;

    /** All kernels, forward then backward. */
    std::vector<KernelProfile> all() const;
};

/**
 * Plan one SDA block's training step.
 *
 * Baseline: forward as in inference plus activation stores; backward
 * runs dV, dP, softmax-backward, dQ, dK as separate kernels.
 * Fused (SDF): recomposed forward; backward fuses the softmax-backward
 * reduction into the dP GEMM epilogue and the correction into the
 * dQ/dK prologues, leaving only a small standalone reduction (the
 * backward analogue of IR). Decomposed (SD) uses the standalone
 * backward sub-kernels.
 */
SdaTrainingSchedule buildSdaTrainingSchedule(const GpuSpec &spec,
                                             const SdaConfig &config,
                                             Strategy strategy);

} // namespace softrec

#endif // SOFTREC_CORE_TRAINING_HPP
