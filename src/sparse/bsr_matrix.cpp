/**
 * @file
 * BSR matrix implementation.
 */

#include "sparse/bsr_matrix.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace softrec {

BsrMatrix::BsrMatrix(const BsrLayout &layout)
    : layout_(layout),
      data_(size_t(layout.nnzBlocks() * layout.blockSize() *
                   layout.blockSize()))
{}

Half &
BsrMatrix::at(int64_t block_idx, int64_t i, int64_t j)
{
    const int64_t bs = layout_.blockSize();
    SOFTREC_ASSERT(block_idx >= 0 && block_idx < layout_.nnzBlocks() &&
                   i >= 0 && i < bs && j >= 0 && j < bs,
                   "BSR access (%lld, %lld, %lld) out of range",
                   (long long)block_idx, (long long)i, (long long)j);
    return data_[size_t((block_idx * bs + i) * bs + j)];
}

const Half &
BsrMatrix::at(int64_t block_idx, int64_t i, int64_t j) const
{
    return const_cast<BsrMatrix *>(this)->at(block_idx, i, j);
}

Half *
BsrMatrix::blockData(int64_t block_idx)
{
    const int64_t bs = layout_.blockSize();
    SOFTREC_ASSERT(block_idx >= 0 && block_idx < layout_.nnzBlocks(),
                   "block %lld out of range", (long long)block_idx);
    return &data_[size_t(block_idx * bs * bs)];
}

const Half *
BsrMatrix::blockData(int64_t block_idx) const
{
    return const_cast<BsrMatrix *>(this)->blockData(block_idx);
}

BsrMatrix
BsrMatrix::fromDense(const BsrLayout &layout, const Tensor<Half> &dense)
{
    SOFTREC_ASSERT(dense.shape() == Shape({layout.rows(), layout.cols()}),
                   "dense shape %s != layout %lld x %lld",
                   dense.shape().toString().c_str(),
                   (long long)layout.rows(), (long long)layout.cols());
    BsrMatrix out(layout);
    const int64_t bs = layout.blockSize();
    for (int64_t br = 0; br < layout.blockRows(); ++br) {
        for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
             ++k) {
            const int64_t bc = layout.blockCol(k);
            for (int64_t i = 0; i < bs; ++i)
                for (int64_t j = 0; j < bs; ++j)
                    out.at(k, i, j) =
                        dense.at(br * bs + i, bc * bs + j);
        }
    }
    return out;
}

Tensor<Half>
BsrMatrix::toDense() const
{
    Tensor<Half> dense(Shape({layout_.rows(), layout_.cols()}));
    const int64_t bs = layout_.blockSize();
    for (int64_t br = 0; br < layout_.blockRows(); ++br) {
        for (int64_t k = layout_.rowBegin(br); k < layout_.rowEnd(br);
             ++k) {
            const int64_t bc = layout_.blockCol(k);
            for (int64_t i = 0; i < bs; ++i)
                for (int64_t j = 0; j < bs; ++j)
                    dense.at(br * bs + i, bc * bs + j) = at(k, i, j);
        }
    }
    return dense;
}

void
BsrMatrix::clear()
{
    std::fill(data_.begin(), data_.end(), Half());
}

} // namespace softrec
