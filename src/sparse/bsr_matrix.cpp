/**
 * @file
 * BSR matrix implementation.
 */

#include "sparse/bsr_matrix.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace softrec {

BsrMatrix::BsrMatrix(const BsrLayout &layout)
    : layout_(layout),
      data_(size_t(layout.nnzBlocks() * layout.blockSize() *
                   layout.blockSize()))
{}

BsrMatrix
BsrMatrix::fromDense(const BsrLayout &layout, const Tensor<Half> &dense)
{
    SOFTREC_ASSERT(dense.shape() == Shape({layout.rows(), layout.cols()}),
                   "dense shape %s != layout %lld x %lld",
                   dense.shape().toString().c_str(),
                   (long long)layout.rows(), (long long)layout.cols());
    BsrMatrix out(layout);
    const int64_t bs = layout.blockSize();
    for (int64_t br = 0; br < layout.blockRows(); ++br) {
        for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
             ++k) {
            const int64_t bc = layout.blockCol(k);
            for (int64_t i = 0; i < bs; ++i)
                for (int64_t j = 0; j < bs; ++j)
                    out.at(k, i, j) =
                        dense.at(br * bs + i, bc * bs + j);
        }
    }
    return out;
}

Tensor<Half>
BsrMatrix::toDense() const
{
    Tensor<Half> dense(Shape({layout_.rows(), layout_.cols()}));
    const int64_t bs = layout_.blockSize();
    for (int64_t br = 0; br < layout_.blockRows(); ++br) {
        for (int64_t k = layout_.rowBegin(br); k < layout_.rowEnd(br);
             ++k) {
            const int64_t bc = layout_.blockCol(k);
            for (int64_t i = 0; i < bs; ++i)
                for (int64_t j = 0; j < bs; ++j)
                    dense.at(br * bs + i, bc * bs + j) = at(k, i, j);
        }
    }
    return dense;
}

void
BsrMatrix::clear()
{
    std::fill(data_.begin(), data_.end(), Half());
}

} // namespace softrec
