/**
 * @file
 * Block-sparse matrix with FP16 block storage, the operand type of the
 * block-sparse attention kernels (DeepSpeed/Triton style).
 */

#ifndef SOFTREC_SPARSE_BSR_MATRIX_HPP
#define SOFTREC_SPARSE_BSR_MATRIX_HPP

#include <vector>

#include "common/check.hpp"
#include "fp16/half.hpp"
#include "sparse/bsr.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/**
 * FP16 values for every non-zero block of a BsrLayout, stored
 * block-by-block in layout order, row-major within each block.
 */
class BsrMatrix
{
  private:
    // Shared const/non-const accessor bodies, defined before their
    // callers because the deduced (auto) return type must be known at
    // the point of use. Self deduces as [const] BsrMatrix, so the
    // return type picks up constness without the const_cast-through-
    // this idiom (UB-adjacent and flagged by softrec_analyze's
    // const-cast rule).
    template <typename Self>
    static auto &
    atImpl(Self &self, int64_t block_idx, int64_t i, int64_t j)
    {
        const int64_t bs = self.layout_.blockSize();
        SOFTREC_CHECK(block_idx >= 0 &&
                      block_idx < self.layout_.nnzBlocks() &&
                      i >= 0 && i < bs && j >= 0 && j < bs,
                      "BSR access (%lld, %lld, %lld) out of range",
                      (long long)block_idx, (long long)i, (long long)j);
        return self.data_[size_t((block_idx * bs + i) * bs + j)];
    }

    template <typename Self>
    static auto *
    blockDataImpl(Self &self, int64_t block_idx)
    {
        const int64_t bs = self.layout_.blockSize();
        SOFTREC_CHECK(block_idx >= 0 &&
                      block_idx < self.layout_.nnzBlocks(),
                      "block %lld out of range", (long long)block_idx);
        return &self.data_[size_t(block_idx * bs * bs)];
    }

  public:
    /** Zero-valued matrix over a layout. */
    explicit BsrMatrix(const BsrLayout &layout);

    /** The structural layout. */
    const BsrLayout &layout() const { return layout_; }

    /** Element (i, j) within stored block block_idx. */
    Half &
    at(int64_t block_idx, int64_t i, int64_t j)
    {
        return atImpl(*this, block_idx, i, j);
    }
    /** Element (i, j) within stored block block_idx (const). */
    const Half &
    at(int64_t block_idx, int64_t i, int64_t j) const
    {
        return atImpl(*this, block_idx, i, j);
    }

    /** Pointer to a stored block's row-major data. */
    Half *
    blockData(int64_t block_idx)
    {
        return blockDataImpl(*this, block_idx);
    }
    /** Pointer to a stored block's row-major data (const). */
    const Half *
    blockData(int64_t block_idx) const
    {
        return blockDataImpl(*this, block_idx);
    }

    /**
     * Gather the non-zero positions of a dense matrix into this
     * layout; dense values at zero blocks are discarded.
     */
    static BsrMatrix fromDense(const BsrLayout &layout,
                               const Tensor<Half> &dense);

    /** Expand to dense with zeros at the structural zeros. */
    Tensor<Half> toDense() const;

    /** Set every stored value to zero. */
    void clear();

  private:
    BsrLayout layout_;
    std::vector<Half> data_;
};

} // namespace softrec

#endif // SOFTREC_SPARSE_BSR_MATRIX_HPP
