/**
 * @file
 * Block-sparse matrix with FP16 block storage, the operand type of the
 * block-sparse attention kernels (DeepSpeed/Triton style).
 */

#ifndef SOFTREC_SPARSE_BSR_MATRIX_HPP
#define SOFTREC_SPARSE_BSR_MATRIX_HPP

#include <vector>

#include "fp16/half.hpp"
#include "sparse/bsr.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/**
 * FP16 values for every non-zero block of a BsrLayout, stored
 * block-by-block in layout order, row-major within each block.
 */
class BsrMatrix
{
  public:
    /** Zero-valued matrix over a layout. */
    explicit BsrMatrix(const BsrLayout &layout);

    /** The structural layout. */
    const BsrLayout &layout() const { return layout_; }

    /** Element (i, j) within stored block block_idx. */
    Half &at(int64_t block_idx, int64_t i, int64_t j);
    /** Element (i, j) within stored block block_idx (const). */
    const Half &at(int64_t block_idx, int64_t i, int64_t j) const;

    /** Pointer to a stored block's row-major data. */
    Half *blockData(int64_t block_idx);
    /** Pointer to a stored block's row-major data (const). */
    const Half *blockData(int64_t block_idx) const;

    /**
     * Gather the non-zero positions of a dense matrix into this
     * layout; dense values at zero blocks are discarded.
     */
    static BsrMatrix fromDense(const BsrLayout &layout,
                               const Tensor<Half> &dense);

    /** Expand to dense with zeros at the structural zeros. */
    Tensor<Half> toDense() const;

    /** Set every stored value to zero. */
    void clear();

  private:
    BsrLayout layout_;
    std::vector<Half> data_;
};

} // namespace softrec

#endif // SOFTREC_SPARSE_BSR_MATRIX_HPP
