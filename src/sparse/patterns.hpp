/**
 * @file
 * Attention sparsity pattern generators.
 *
 * Reproduces the published sparse-attention layouts the paper evaluates:
 * BigBird (window + global + random blocks) and Longformer (sliding
 * window + global tokens), plus dense / causal / window building blocks
 * used by tests and ablations. All patterns are expressed on the block
 * grid of a BsrLayout.
 */

#ifndef SOFTREC_SPARSE_PATTERNS_HPP
#define SOFTREC_SPARSE_PATTERNS_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "sparse/bsr.hpp"

namespace softrec {

/** Fully dense layout (every block non-zero). */
BsrLayout densePattern(int64_t seq_len, int64_t block_size);

/** Causal (lower block-triangular) layout, used by decoder models. */
BsrLayout causalPattern(int64_t seq_len, int64_t block_size);

/**
 * Symmetric sliding-window layout: block (r, c) is kept when
 * |r - c| <= window_blocks.
 */
BsrLayout slidingWindowPattern(int64_t seq_len, int64_t block_size,
                               int64_t window_blocks);

/**
 * Causal sliding-window layout (GPT-Neo "local" attention): block
 * (r, c) is kept when 0 <= r - c <= window_blocks.
 */
BsrLayout causalWindowPattern(int64_t seq_len, int64_t block_size,
                              int64_t window_blocks);

/** Parameters of the BigBird block-sparse pattern. */
struct BigBirdParams
{
    int64_t blockSize = 64;     //!< square block edge, in tokens
    int64_t windowBlocks = 3;   //!< width of the sliding window, blocks
    int64_t globalBlocks = 2;   //!< leading rows/cols kept dense
    int64_t randomBlocks = 3;   //!< extra random blocks per block row
    uint64_t seed = 0x816bu;    //!< RNG seed for the random component
};

/**
 * BigBird pattern (Zaheer et al., 2020): a sliding window of
 * windowBlocks, globalBlocks leading block rows and columns kept fully
 * dense, and randomBlocks additional uniformly random blocks per row.
 */
BsrLayout bigBirdPattern(int64_t seq_len, const BigBirdParams &params);

/** Parameters of the Longformer block-sparse pattern. */
struct LongformerParams
{
    int64_t blockSize = 64;    //!< square block edge, in tokens
    /**
     * One-sided attention window in tokens; Longformer-large uses 512
     * (256 tokens each side of the diagonal).
     */
    int64_t windowTokens = 512;
    int64_t globalBlocks = 1;  //!< leading rows/cols kept dense (CLS etc.)
};

/**
 * Longformer pattern (Beltagy et al., 2020): symmetric sliding window of
 * windowTokens plus globally attending leading tokens.
 */
BsrLayout longformerPattern(int64_t seq_len,
                            const LongformerParams &params);

} // namespace softrec

#endif // SOFTREC_SPARSE_PATTERNS_HPP
