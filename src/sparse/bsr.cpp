/**
 * @file
 * BSR layout implementation.
 */

#include "sparse/bsr.hpp"

#include <algorithm>
#include <cstddef>

#include "common/logging.hpp"

namespace softrec {

BsrLayout::BsrLayout(int64_t block_size, int64_t block_rows,
                     int64_t block_cols, std::vector<int64_t> row_ptr,
                     std::vector<int64_t> col_idx)
    : blockSize_(block_size), blockRows_(block_rows),
      blockCols_(block_cols), rowPtr_(std::move(row_ptr)),
      colIdx_(std::move(col_idx))
{
    validate();
}

BsrLayout
BsrLayout::fromMask(int64_t block_size, int64_t block_rows,
                    int64_t block_cols, const std::vector<bool> &mask)
{
    SOFTREC_ASSERT(int64_t(mask.size()) == block_rows * block_cols,
                   "mask size %zu != %lld x %lld", mask.size(),
                   (long long)block_rows, (long long)block_cols);
    std::vector<int64_t> row_ptr(size_t(block_rows) + 1, 0);
    std::vector<int64_t> col_idx;
    for (int64_t r = 0; r < block_rows; ++r) {
        for (int64_t c = 0; c < block_cols; ++c) {
            if (mask[size_t(r * block_cols + c)])
                col_idx.push_back(c);
        }
        row_ptr[size_t(r) + 1] = int64_t(col_idx.size());
    }
    return BsrLayout(block_size, block_rows, block_cols,
                     std::move(row_ptr), std::move(col_idx));
}

void
BsrLayout::validate() const
{
    SOFTREC_ASSERT(blockSize_ > 0, "block size must be positive");
    SOFTREC_ASSERT(blockRows_ > 0 && blockCols_ > 0,
                   "block grid must be non-empty");
    SOFTREC_ASSERT(int64_t(rowPtr_.size()) == blockRows_ + 1,
                   "rowPtr size %zu != blockRows %lld + 1",
                   rowPtr_.size(), (long long)blockRows_);
    SOFTREC_ASSERT(rowPtr_.front() == 0, "rowPtr must start at 0");
    SOFTREC_ASSERT(rowPtr_.back() == int64_t(colIdx_.size()),
                   "rowPtr end %lld != colIdx size %zu",
                   (long long)rowPtr_.back(), colIdx_.size());
    for (int64_t r = 0; r < blockRows_; ++r) {
        SOFTREC_ASSERT(rowPtr_[size_t(r)] <= rowPtr_[size_t(r) + 1],
                       "rowPtr must be non-decreasing at row %lld",
                       (long long)r);
        for (int64_t k = rowPtr_[size_t(r)]; k < rowPtr_[size_t(r) + 1];
             ++k) {
            const int64_t col = colIdx_[size_t(k)];
            SOFTREC_ASSERT(col >= 0 && col < blockCols_,
                           "block col %lld out of range", (long long)col);
            if (k > rowPtr_[size_t(r)]) {
                SOFTREC_ASSERT(colIdx_[size_t(k) - 1] < col,
                               "block cols must be sorted and unique in "
                               "row %lld", (long long)r);
            }
        }
    }
}

double
BsrLayout::density() const
{
    return double(nnzBlocks()) / double(blockRows_ * blockCols_);
}

int64_t
BsrLayout::rowNnzBlocks(int64_t block_row) const
{
    return rowEnd(block_row) - rowBegin(block_row);
}

int64_t
BsrLayout::rowBegin(int64_t block_row) const
{
    SOFTREC_ASSERT(block_row >= 0 && block_row < blockRows_,
                   "block row %lld out of range", (long long)block_row);
    return rowPtr_[size_t(block_row)];
}

int64_t
BsrLayout::rowEnd(int64_t block_row) const
{
    SOFTREC_ASSERT(block_row >= 0 && block_row < blockRows_,
                   "block row %lld out of range", (long long)block_row);
    return rowPtr_[size_t(block_row) + 1];
}

bool
BsrLayout::hasBlock(int64_t block_row, int64_t block_col) const
{
    return blockIndex(block_row, block_col) >= 0;
}

int64_t
BsrLayout::blockIndex(int64_t block_row, int64_t block_col) const
{
    const auto begin = colIdx_.begin() + std::ptrdiff_t(rowBegin(block_row));
    const auto end = colIdx_.begin() + std::ptrdiff_t(rowEnd(block_row));
    auto it = std::lower_bound(begin, end, block_col);
    if (it == end || *it != block_col)
        return -1;
    return int64_t(it - colIdx_.begin());
}

std::vector<bool>
BsrLayout::toMask() const
{
    std::vector<bool> mask(size_t(blockRows_ * blockCols_), false);
    for (int64_t r = 0; r < blockRows_; ++r)
        for (int64_t k = rowBegin(r); k < rowEnd(r); ++k)
            mask[size_t(r * blockCols_ + colIdx_[size_t(k)])] = true;
    return mask;
}

std::string
BsrLayout::toString() const
{
    return strprintf("BSR %lldx%lld blocks of %lldx%lld, %lld nnz blocks "
                     "(%.1f%% dense)",
                     (long long)blockRows_, (long long)blockCols_,
                     (long long)blockSize_, (long long)blockSize_,
                     (long long)nnzBlocks(), density() * 100.0);
}

SparsityStats
analyzeSparsity(const BsrLayout &layout)
{
    SparsityStats stats;
    stats.nnzBlocks = layout.nnzBlocks();
    stats.density = layout.density();
    stats.minRowBlocks = layout.blockCols();
    stats.maxRowBlocks = 0;
    for (int64_t r = 0; r < layout.blockRows(); ++r) {
        const int64_t n = layout.rowNnzBlocks(r);
        stats.minRowBlocks = std::min(stats.minRowBlocks, n);
        stats.maxRowBlocks = std::max(stats.maxRowBlocks, n);
    }
    stats.meanRowBlocks =
        double(stats.nnzBlocks) / double(layout.blockRows());
    stats.imbalance = stats.meanRowBlocks > 0.0
        ? double(stats.maxRowBlocks) / stats.meanRowBlocks
        : 1.0;
    return stats;
}

} // namespace softrec
