/**
 * @file
 * Block-sparse-row (BSR) layout for sparse attention matrices.
 *
 * Sparse attention kernels (DeepSpeed / Triton style, per the paper's
 * Section 3.4) define sparsity at the granularity of square blocks so
 * that computation inside a block stays dense and tensor-core friendly.
 * A BsrLayout records, per block row, the sorted column indices of the
 * non-zero blocks.
 */

#ifndef SOFTREC_SPARSE_BSR_HPP
#define SOFTREC_SPARSE_BSR_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace softrec {

/** Block-sparse-row layout over a (blockRows x blockCols) block grid. */
class BsrLayout
{
  public:
    /**
     * Build a layout from explicit structure.
     *
     * @param block_size edge length of each square block, in elements
     * @param block_rows number of block rows
     * @param block_cols number of block columns
     * @param row_ptr CSR-style offsets into col_idx, size block_rows + 1
     * @param col_idx sorted, unique block-column indices per block row
     */
    BsrLayout(int64_t block_size, int64_t block_rows, int64_t block_cols,
              std::vector<int64_t> row_ptr, std::vector<int64_t> col_idx);

    /** Build a layout from a row-major block mask (true = non-zero). */
    static BsrLayout fromMask(int64_t block_size, int64_t block_rows,
                              int64_t block_cols,
                              const std::vector<bool> &mask);

    /** Edge length of each square block, in elements. */
    int64_t blockSize() const { return blockSize_; }
    /** Number of block rows. */
    int64_t blockRows() const { return blockRows_; }
    /** Number of block columns. */
    int64_t blockCols() const { return blockCols_; }
    /** Matrix height in elements. */
    int64_t rows() const { return blockRows_ * blockSize_; }
    /** Matrix width in elements. */
    int64_t cols() const { return blockCols_ * blockSize_; }

    /** Total non-zero blocks. */
    int64_t nnzBlocks() const { return int64_t(colIdx_.size()); }
    /** Total non-zero elements. */
    int64_t nnzElements() const
    {
        return nnzBlocks() * blockSize_ * blockSize_;
    }
    /** Fraction of blocks that are non-zero, in [0, 1]. */
    double density() const;

    /** Non-zero blocks in a block row. */
    int64_t rowNnzBlocks(int64_t block_row) const;

    /** Begin offset of a block row in the block index array. */
    int64_t rowBegin(int64_t block_row) const;
    /** End offset of a block row in the block index array. */
    int64_t rowEnd(int64_t block_row) const;

    /** Block-column index of the k-th stored block. */
    int64_t blockCol(int64_t k) const { return colIdx_[size_t(k)]; }

    /** True if block (block_row, block_col) is non-zero. */
    bool hasBlock(int64_t block_row, int64_t block_col) const;

    /**
     * Index of block (block_row, block_col) in block storage order, or
     * -1 if the block is zero.
     */
    int64_t blockIndex(int64_t block_row, int64_t block_col) const;

    /** Expand to a row-major block mask. */
    std::vector<bool> toMask() const;

    /** One-line summary for logs. */
    std::string toString() const;

  private:
    void validate() const;

    int64_t blockSize_;
    int64_t blockRows_;
    int64_t blockCols_;
    std::vector<int64_t> rowPtr_;
    std::vector<int64_t> colIdx_;
};

/**
 * Summary statistics of a layout's per-row block occupancy; feeds the
 * load-imbalance term of the performance model (paper Section 5.2).
 */
struct SparsityStats
{
    int64_t nnzBlocks = 0;       //!< total non-zero blocks
    double density = 0.0;        //!< non-zero block fraction
    int64_t minRowBlocks = 0;    //!< fewest blocks in any block row
    int64_t maxRowBlocks = 0;    //!< most blocks in any block row
    double meanRowBlocks = 0.0;  //!< average blocks per block row
    /**
     * max/mean per-row blocks; 1.0 means perfectly balanced rows,
     * larger values mean a straggler row dominates.
     */
    double imbalance = 1.0;
};

/** Compute occupancy statistics for a layout. */
SparsityStats analyzeSparsity(const BsrLayout &layout);

} // namespace softrec

#endif // SOFTREC_SPARSE_BSR_HPP
