/**
 * @file
 * Implementation of the attention sparsity pattern generators.
 */

#include "sparse/patterns.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace softrec {

namespace {

int64_t
blockGridSize(int64_t seq_len, int64_t block_size)
{
    SOFTREC_ASSERT(block_size > 0, "block size must be positive");
    if (seq_len % block_size != 0) {
        fatal("sequence length %lld is not a multiple of block size %lld",
              (long long)seq_len, (long long)block_size);
    }
    return seq_len / block_size;
}

} // namespace

BsrLayout
densePattern(int64_t seq_len, int64_t block_size)
{
    const int64_t n = blockGridSize(seq_len, block_size);
    std::vector<bool> mask(size_t(n * n), true);
    return BsrLayout::fromMask(block_size, n, n, mask);
}

BsrLayout
causalPattern(int64_t seq_len, int64_t block_size)
{
    const int64_t n = blockGridSize(seq_len, block_size);
    std::vector<bool> mask(size_t(n * n), false);
    for (int64_t r = 0; r < n; ++r)
        for (int64_t c = 0; c <= r; ++c)
            mask[size_t(r * n + c)] = true;
    return BsrLayout::fromMask(block_size, n, n, mask);
}

BsrLayout
slidingWindowPattern(int64_t seq_len, int64_t block_size,
                     int64_t window_blocks)
{
    const int64_t n = blockGridSize(seq_len, block_size);
    std::vector<bool> mask(size_t(n * n), false);
    for (int64_t r = 0; r < n; ++r) {
        const int64_t lo = std::max<int64_t>(0, r - window_blocks);
        const int64_t hi = std::min<int64_t>(n - 1, r + window_blocks);
        for (int64_t c = lo; c <= hi; ++c)
            mask[size_t(r * n + c)] = true;
    }
    return BsrLayout::fromMask(block_size, n, n, mask);
}

BsrLayout
causalWindowPattern(int64_t seq_len, int64_t block_size,
                    int64_t window_blocks)
{
    const int64_t n = blockGridSize(seq_len, block_size);
    std::vector<bool> mask(size_t(n * n), false);
    for (int64_t r = 0; r < n; ++r) {
        const int64_t lo = std::max<int64_t>(0, r - window_blocks);
        for (int64_t c = lo; c <= r; ++c)
            mask[size_t(r * n + c)] = true;
    }
    return BsrLayout::fromMask(block_size, n, n, mask);
}

BsrLayout
bigBirdPattern(int64_t seq_len, const BigBirdParams &params)
{
    const int64_t n = blockGridSize(seq_len, params.blockSize);
    SOFTREC_ASSERT(params.windowBlocks >= 1, "window must be >= 1 block");
    std::vector<bool> mask(size_t(n * n), false);

    // Sliding window: windowBlocks total width centred on the diagonal.
    const int64_t half = params.windowBlocks / 2;
    for (int64_t r = 0; r < n; ++r) {
        const int64_t lo = std::max<int64_t>(0, r - half);
        const int64_t hi = std::min<int64_t>(n - 1, r + half);
        for (int64_t c = lo; c <= hi; ++c)
            mask[size_t(r * n + c)] = true;
    }

    // Global blocks: leading rows and columns fully dense (ITC variant).
    const int64_t g = std::min(params.globalBlocks, n);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t c = 0; c < g; ++c) {
            mask[size_t(r * n + c)] = true;
            mask[size_t(c * n + r)] = true;
        }
    }

    // Random blocks: randomBlocks distinct extra blocks per block row,
    // drawn from the not-yet-selected columns.
    Rng rng(params.seed);
    for (int64_t r = 0; r < n; ++r) {
        std::vector<int64_t> candidates;
        for (int64_t c = 0; c < n; ++c)
            if (!mask[size_t(r * n + c)])
                candidates.push_back(c);
        const int64_t want =
            std::min<int64_t>(params.randomBlocks,
                              int64_t(candidates.size()));
        if (want <= 0)
            continue;
        auto picks = rng.sampleWithoutReplacement(
            uint64_t(candidates.size()), uint64_t(want));
        for (uint64_t p : picks)
            mask[size_t(r * n + candidates[size_t(p)])] = true;
    }

    return BsrLayout::fromMask(params.blockSize, n, n, mask);
}

BsrLayout
longformerPattern(int64_t seq_len, const LongformerParams &params)
{
    const int64_t n = blockGridSize(seq_len, params.blockSize);
    // One-sided window in blocks; window covers +/- windowTokens/2.
    const int64_t half_blocks = std::max<int64_t>(
        1, (params.windowTokens / 2 + params.blockSize - 1) /
               params.blockSize);
    std::vector<bool> mask(size_t(n * n), false);
    for (int64_t r = 0; r < n; ++r) {
        const int64_t lo = std::max<int64_t>(0, r - half_blocks);
        const int64_t hi = std::min<int64_t>(n - 1, r + half_blocks);
        for (int64_t c = lo; c <= hi; ++c)
            mask[size_t(r * n + c)] = true;
    }
    const int64_t g = std::min(params.globalBlocks, n);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t c = 0; c < g; ++c) {
            mask[size_t(r * n + c)] = true;
            mask[size_t(c * n + r)] = true;
        }
    }
    return BsrLayout::fromMask(params.blockSize, n, n, mask);
}

} // namespace softrec
