/**
 * @file
 * Occupancy calculator implementation.
 */

#include "sim/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace softrec {

Occupancy
computeOccupancy(const GpuSpec &spec, const BlockResources &res,
                 int64_t grid_blocks)
{
    SOFTREC_ASSERT(res.threads > 0 &&
                   res.threads <= spec.maxThreadsPerBlock,
                   "threads per block %d outside (0, %d]", res.threads,
                   spec.maxThreadsPerBlock);
    SOFTREC_ASSERT(grid_blocks > 0, "empty grid");

    // A resource a kernel does not use must not label the limit, so
    // unused resources report an effectively unbounded block count.
    const int unbounded = std::numeric_limits<int>::max();
    const int by_threads = spec.maxThreadsPerSm / res.threads;
    const int by_smem = res.smemBytes == 0
        ? unbounded
        : int(spec.smemPerSm / res.smemBytes);
    const int64_t regs_per_block =
        int64_t(res.regsPerThread) * res.threads;
    const int by_regs = regs_per_block == 0
        ? unbounded
        : int(spec.regsPerSm / regs_per_block);
    const int by_blocks = spec.maxBlocksPerSm;
    // Grid limit: with fewer TBs than SMs not every SM gets one; we
    // account for that as the average TBs available per SM, floored at
    // the per-SM granularity the other limits use.
    const int by_grid = int(std::max<int64_t>(
        1, (grid_blocks + spec.numSms - 1) / spec.numSms));

    Occupancy occ;
    occ.blocksPerSm = by_threads;
    occ.limit = Occupancy::Limit::Threads;
    if (by_smem < occ.blocksPerSm) {
        occ.blocksPerSm = by_smem;
        occ.limit = Occupancy::Limit::SharedMemory;
    }
    if (by_regs < occ.blocksPerSm) {
        occ.blocksPerSm = by_regs;
        occ.limit = Occupancy::Limit::Registers;
    }
    if (by_blocks < occ.blocksPerSm) {
        occ.blocksPerSm = by_blocks;
        occ.limit = Occupancy::Limit::Blocks;
    }
    if (by_grid < occ.blocksPerSm) {
        occ.blocksPerSm = by_grid;
        occ.limit = Occupancy::Limit::Grid;
    }
    if (occ.blocksPerSm <= 0) {
        fatal("kernel with %d threads, %llu B smem, %d regs/thread does "
              "not fit on %s", res.threads,
              (unsigned long long)res.smemBytes, res.regsPerThread,
              spec.name.c_str());
    }

    const int warps_per_block = (res.threads + 31) / 32;
    occ.warpsPerSm = occ.blocksPerSm * warps_per_block;
    occ.warpsPerSm = std::min(occ.warpsPerSm, spec.maxWarpsPerSm());
    occ.fraction = double(occ.warpsPerSm) / double(spec.maxWarpsPerSm());
    return occ;
}

const char *
occupancyLimitName(Occupancy::Limit limit)
{
    switch (limit) {
      case Occupancy::Limit::Threads: return "threads";
      case Occupancy::Limit::SharedMemory: return "shared-memory";
      case Occupancy::Limit::Registers: return "registers";
      case Occupancy::Limit::Blocks: return "blocks";
      case Occupancy::Limit::Grid: return "grid";
    }
    return "?";
}

} // namespace softrec
