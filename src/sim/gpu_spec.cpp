/**
 * @file
 * The three evaluation GPUs from the paper's Table 1.
 */

#include "sim/gpu_spec.hpp"

#include <vector>

#include "common/units.hpp"

namespace softrec {

GpuSpec
GpuSpec::a100()
{
    GpuSpec spec;
    spec.name = "A100";
    spec.dramBandwidth = 1555.0 * Giga;
    spec.fp16CudaFlops = 42.3 * Tera;
    spec.fp16TensorFlops = 169.0 * Tera;
    spec.l1PerSm = 192 * KiB;
    spec.l2Bytes = 40 * MiB;
    spec.numSms = 108;
    spec.smemPerSm = 164 * KiB;
    spec.maxThreadsPerSm = 2048;
    spec.maxThreadsPerBlock = 1024;
    spec.maxBlocksPerSm = 32;
    spec.regsPerSm = 65536;
    spec.dramEnergyPerByte = 56e-12; // HBM2e
    return spec;
}

GpuSpec
GpuSpec::rtx3090()
{
    GpuSpec spec;
    spec.name = "RTX 3090";
    spec.dramBandwidth = 936.2 * Giga;
    spec.fp16CudaFlops = 29.3 * Tera;
    spec.fp16TensorFlops = 58.0 * Tera;
    spec.l1PerSm = 128 * KiB;
    spec.l2Bytes = 6 * MiB;
    spec.numSms = 82;
    spec.smemPerSm = 100 * KiB;
    spec.maxThreadsPerSm = 1536;
    spec.maxThreadsPerBlock = 1024;
    spec.maxBlocksPerSm = 16;
    spec.regsPerSm = 65536;
    spec.dramEnergyPerByte = 72e-12; // GDDR6X
    return spec;
}

GpuSpec
GpuSpec::t4()
{
    GpuSpec spec;
    spec.name = "T4";
    spec.dramBandwidth = 320.0 * Giga;
    spec.fp16CudaFlops = 24.0 * Tera;
    spec.fp16TensorFlops = 24.0 * Tera;
    spec.l1PerSm = 64 * KiB;
    spec.l2Bytes = 4 * MiB;
    spec.numSms = 40;
    spec.smemPerSm = 64 * KiB;
    spec.maxThreadsPerSm = 1024;
    spec.maxThreadsPerBlock = 1024;
    spec.maxBlocksPerSm = 16;
    spec.regsPerSm = 65536;
    spec.dramEnergyPerByte = 64e-12; // GDDR6
    return spec;
}

std::vector<GpuSpec>
GpuSpec::all()
{
    return {a100(), rtx3090(), t4()};
}

} // namespace softrec
