/**
 * @file
 * GPU hardware specifications (paper Table 1) plus the microarchitectural
 * parameters the occupancy and bandwidth models need.
 */

#ifndef SOFTREC_SIM_GPU_SPEC_HPP
#define SOFTREC_SIM_GPU_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace softrec {

/**
 * Static description of a GPU. Peak rates follow the paper's Table 1
 * (based on GPU base clocks); SM counts and per-SM limits come from the
 * vendor whitepapers the paper cites.
 */
struct GpuSpec
{
    std::string name;           //!< marketing name, e.g. "A100"

    // --- Table 1 ---
    double dramBandwidth = 0;   //!< peak off-chip bandwidth, B/s
    double fp16CudaFlops = 0;   //!< peak FP16 rate on CUDA cores, FLOP/s
    double fp16TensorFlops = 0; //!< peak FP16 rate on tensor cores, FLOP/s
    uint64_t l1PerSm = 0;       //!< unified L1/shared-memory per SM, bytes
    uint64_t l2Bytes = 0;       //!< L2 cache size, bytes

    // --- per-SM limits (vendor whitepapers) ---
    int numSms = 0;             //!< streaming multiprocessors
    uint64_t smemPerSm = 0;     //!< max shared memory usable by TBs, bytes
    int maxThreadsPerSm = 0;    //!< resident thread limit per SM
    int maxThreadsPerBlock = 0; //!< thread limit per TB
    int maxBlocksPerSm = 0;     //!< resident TB limit per SM
    int regsPerSm = 0;          //!< 32-bit registers per SM

    /**
     * Off-chip access energy, J/byte (HBM2e ~7 pJ/bit, GDDR6/6X
     * ~8-9 pJ/bit); used for the paper's energy-reduction claim.
     */
    double dramEnergyPerByte = 56e-12;

    /** Maximum resident warps per SM. */
    int maxWarpsPerSm() const { return maxThreadsPerSm / 32; }

    /** NVIDIA A100 (SXM, 40 GB HBM2e). */
    static GpuSpec a100();
    /** NVIDIA GeForce RTX 3090 (GA102, GDDR6X). */
    static GpuSpec rtx3090();
    /** NVIDIA Tesla T4 (TU104, GDDR6). */
    static GpuSpec t4();

    /** All three evaluation GPUs, A100 first. */
    static std::vector<GpuSpec> all();
};

} // namespace softrec

#endif // SOFTREC_SIM_GPU_SPEC_HPP
