/**
 * @file
 * Category and bound naming.
 */

#include "sim/kernel_profile.hpp"

namespace softrec {

const char *
kernelCategoryName(KernelCategory category)
{
    switch (category) {
      case KernelCategory::SdaMatMul: return "MatMul(SDA)";
      case KernelCategory::Softmax: return "Softmax";
      case KernelCategory::SoftmaxLs: return "Softmax-LS";
      case KernelCategory::SoftmaxIr: return "Softmax-IR";
      case KernelCategory::SoftmaxGs: return "Softmax-GS";
      case KernelCategory::Fc: return "FC";
      case KernelCategory::FeedForward: return "FeedForward";
      case KernelCategory::Other: return "Other";
    }
    return "?";
}

bool
isSoftmaxSubLayer(KernelCategory category)
{
    return category == KernelCategory::SoftmaxLs ||
           category == KernelCategory::SoftmaxIr ||
           category == KernelCategory::SoftmaxGs;
}

bool
isSoftmaxWork(KernelCategory category)
{
    return category == KernelCategory::Softmax ||
           isSoftmaxSubLayer(category);
}

const char *
timeBoundName(TimeBound bound)
{
    switch (bound) {
      case TimeBound::Memory: return "memory";
      case TimeBound::TensorCore: return "tensor-core";
      case TimeBound::CudaCore: return "cuda-core";
      case TimeBound::Launch: return "launch";
    }
    return "?";
}

} // namespace softrec
