/**
 * @file
 * Human-readable reports over a simulated GPU's timeline: the
 * Nsight-Compute-style per-kernel view (time, boundedness, achieved
 * bandwidth, occupancy) and a run summary. Used by examples and
 * debugging sessions.
 */

#ifndef SOFTREC_SIM_REPORT_HPP
#define SOFTREC_SIM_REPORT_HPP

#include <string>

#include "common/table.hpp"
#include "sim/gpu.hpp"

namespace softrec {

/**
 * Per-kernel table of one run: name, category, time, share of total,
 * limiting resource, achieved bandwidth, and occupancy. Collapses
 * consecutive identical launches (same name and cost) into one row
 * with a repeat count, so a 24-layer model stays readable.
 */
TextTable renderTimeline(const Gpu &gpu);

/** One-paragraph run summary (time, traffic, top category). */
std::string summarizeRun(const Gpu &gpu);

/**
 * Category roll-up table (the Fig. 2 view of an arbitrary run).
 */
TextTable renderCategories(const Gpu &gpu);

/** Where one kernel sits on the device's roofline. */
struct RooflinePoint
{
    std::string name;            //!< kernel name
    double operationalIntensity; //!< FLOP per DRAM byte
    double achievedFlops;        //!< FLOP/s over the kernel's runtime
    double peakFraction;         //!< achieved / applicable peak
    bool memoryBound;            //!< left of the ridge point
};

/** Roofline coordinates of one launch record. */
RooflinePoint rooflineOf(const GpuSpec &spec,
                         const LaunchRecord &record);

/**
 * Roofline table of a run (unique kernels only): operational
 * intensity against the device ridge point
 * (peak FLOPs / peak bandwidth), the classic memory-wall view the
 * paper's Section 2.3 argument rests on.
 */
TextTable renderRoofline(const Gpu &gpu);

} // namespace softrec

#endif // SOFTREC_SIM_REPORT_HPP
