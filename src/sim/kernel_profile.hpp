/**
 * @file
 * Kernel launch descriptors and per-launch statistics.
 *
 * A KernelProfile is what a kernel implementation reports about one
 * launch: geometry, off-chip traffic, and arithmetic work. The cost
 * model turns a profile into KernelStats (time, boundedness, achieved
 * bandwidth). Profiles are produced by the same tiling code that the
 * functional execution uses, so traffic numbers are consistent with the
 * math actually performed.
 */

#ifndef SOFTREC_SIM_KERNEL_PROFILE_HPP
#define SOFTREC_SIM_KERNEL_PROFILE_HPP

#include <cstdint>
#include <string>

#include "sim/occupancy.hpp"

namespace softrec {

/**
 * Execution-time categories used by the paper's breakdown figures
 * (Fig. 2 groups, Fig. 5 softmax sub-layers).
 */
enum class KernelCategory {
    SdaMatMul,   //!< QK^T and P.V attention GEMMs (dense or sparse)
    Softmax,     //!< baseline fused row softmax
    SoftmaxLs,   //!< decomposed local softmax
    SoftmaxIr,   //!< decomposed inter-sub-vector reduction
    SoftmaxGs,   //!< decomposed global scaling
    Fc,          //!< QKV/output projection GEMMs in the MHA block
    FeedForward, //!< the two FF GEMMs
    Other,       //!< layernorm, residual, bias, embedding, masking
};

/** Display name of a category. */
const char *kernelCategoryName(KernelCategory category);

/** True for the three decomposed-softmax categories. */
bool isSoftmaxSubLayer(KernelCategory category);

/** True for any softmax-related category (baseline or decomposed). */
bool isSoftmaxWork(KernelCategory category);

/** Launch geometry of one kernel. */
struct LaunchGeometry
{
    int64_t numBlocks = 1;      //!< thread blocks in the grid
    BlockResources block;       //!< per-TB resource usage
};

/** Everything the cost model needs to price one kernel launch. */
struct KernelProfile
{
    std::string name;           //!< e.g. "gemm.qk+ls"
    KernelCategory category = KernelCategory::Other;
    LaunchGeometry geom;

    uint64_t dramReadBytes = 0;  //!< off-chip bytes read
    uint64_t dramWriteBytes = 0; //!< off-chip bytes written

    double tensorFlops = 0.0;   //!< FLOPs on tensor cores
    double cudaFlops = 0.0;     //!< FLOPs on CUDA cores
    double sfuOps = 0.0;        //!< special-function ops (exp)

    /**
     * Tensor-core efficiency class for GEMM work (see calibration.hpp);
     * must be positive when tensorFlops > 0.
     */
    double gemmEfficiency = 0.0;

    /**
     * Relative mainloop slowdown (>= 1.0) from softmax work fused
     * into the GEMM (LS epilogue or GS prologue); computed by the
     * kernel from the fused work per mainloop depth.
     */
    double fusedPenalty = 1.0;

    /**
     * Fraction of memory lanes doing useful work. Below 1.0 for the
     * baseline sparse softmax whose worst-case row allocation leaves
     * most threads idle (paper Section 5.1).
     */
    double laneUtilization = 1.0;

    /**
     * Serialization of dependent passes within a TB (baseline row
     * softmax); 1.0 for streaming kernels.
     */
    double serializationFactor = 1.0;

    /** Max/mean work per TB; > 1.0 derates throughput. */
    double workImbalance = 1.0;

    /** Total off-chip traffic. */
    uint64_t dramBytes() const { return dramReadBytes + dramWriteBytes; }
};

/** What bounded a kernel's execution time. */
enum class TimeBound { Memory, TensorCore, CudaCore, Launch };

/** Display name of a bound. */
const char *timeBoundName(TimeBound bound);

/** Cost-model output for one launch. */
struct KernelStats
{
    double seconds = 0.0;       //!< total modeled time
    double dramSeconds = 0.0;   //!< time if purely memory bound
    double tensorSeconds = 0.0; //!< time if purely tensor-core bound
    double cudaSeconds = 0.0;   //!< time if purely CUDA-core/SFU bound
    double overheadSeconds = 0.0; //!< launch overhead
    TimeBound bound = TimeBound::Memory; //!< dominant term
    Occupancy occupancy;        //!< resident warps etc.
    double achievedBandwidth = 0.0; //!< useful DRAM B/s during the kernel
    double bandwidthUtilization = 0.0; //!< achieved / peak
};

} // namespace softrec

#endif // SOFTREC_SIM_KERNEL_PROFILE_HPP
