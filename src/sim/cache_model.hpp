/**
 * @file
 * Trace-driven set-associative cache model.
 *
 * The kernel profiles estimate DRAM traffic with two closed-form
 * rules (operand residency and A-strip reuse, kernel_common.hpp).
 * This module provides an independent check: a line-granularity
 * set-associative LRU cache that can replay the actual address trace
 * of a tiled GEMM and report the DRAM traffic the rules are
 * approximating. Tests cross-validate the two at reduced scale.
 */

#ifndef SOFTREC_SIM_CACHE_MODEL_HPP
#define SOFTREC_SIM_CACHE_MODEL_HPP

#include <cstdint>
#include <vector>

namespace softrec {

/** Aggregate statistics of one trace replay. */
struct CacheStats
{
    uint64_t accesses = 0;     //!< total line-granular accesses
    uint64_t hits = 0;         //!< lines served from the cache
    uint64_t readMisses = 0;   //!< read lines fetched from DRAM
    uint64_t writeMisses = 0;  //!< write lines allocated (no fetch)
    uint64_t writebacks = 0;   //!< dirty lines evicted to DRAM

    /** Total misses of either kind. */
    uint64_t misses() const { return readMisses + writeMisses; }

    /**
     * Bytes fetched from DRAM. Write misses allocate without a fill
     * (the GEMM stores whole lines), so only read misses fetch.
     */
    uint64_t dramReadBytes(uint64_t line_size) const
    {
        return readMisses * line_size;
    }
    /** Bytes written to DRAM (writebacks x line size). */
    uint64_t dramWriteBytes(uint64_t line_size) const
    {
        return writebacks * line_size;
    }
    /** Hit fraction in [0, 1]. */
    double hitRate() const
    {
        return accesses ? double(hits) / double(accesses) : 0.0;
    }
};

/**
 * Set-associative write-back LRU cache over 64-bit byte addresses.
 */
class CacheModel
{
  public:
    /**
     * @param capacity_bytes total cache size
     * @param line_bytes cache line size (power of two)
     * @param ways associativity
     */
    CacheModel(uint64_t capacity_bytes, uint64_t line_bytes, int ways);

    /** Cache line size. */
    uint64_t lineBytes() const { return lineBytes_; }
    /** Number of sets. */
    uint64_t numSets() const { return numSets_; }

    /** Read one byte address (whole line allocated). */
    void read(uint64_t address);
    /** Write one byte address (write-allocate, marks dirty). */
    void write(uint64_t address);
    /** Read a contiguous byte range. */
    void readRange(uint64_t address, uint64_t bytes);
    /** Write a contiguous byte range. */
    void writeRange(uint64_t address, uint64_t bytes);

    /** Flush all dirty lines (counted as writebacks) and clear. */
    void flush();

    /** Statistics so far. */
    const CacheStats &stats() const { return stats_; }

    /** Reset statistics and contents. */
    void reset();

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    void access(uint64_t address, bool is_write);

    uint64_t lineBytes_;
    uint64_t numSets_;
    int ways_;
    uint64_t tick_ = 0;
    std::vector<Line> lines_; // numSets_ x ways_
    CacheStats stats_;
};

/**
 * Replay the address trace of the outer-product tiled GEMM
 * C[m,n] = A[m,k] . B[k,n] (row-major operands at disjoint base
 * addresses, fp16 elements) through a cache and return its stats.
 * Tiles iterate exactly as the functional kernel does: output tiles
 * row-major, K-steps innermost, A/B tiles streamed per step, C tile
 * written once at the end.
 *
 * @param elem_bytes bytes per element (2 for fp16)
 */
CacheStats traceTiledGemm(CacheModel &cache, int64_t m, int64_t n,
                          int64_t k, int64_t tile_m, int64_t tile_n,
                          int64_t tile_k, int64_t elem_bytes = 2);

} // namespace softrec

#endif // SOFTREC_SIM_CACHE_MODEL_HPP
