/**
 * @file
 * Cache model implementation.
 */

#include "sim/cache_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace softrec {

namespace {

bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace

CacheModel::CacheModel(uint64_t capacity_bytes, uint64_t line_bytes,
                       int ways)
    : lineBytes_(line_bytes), ways_(ways)
{
    SOFTREC_ASSERT(isPowerOfTwo(line_bytes),
                   "line size must be a power of two");
    SOFTREC_ASSERT(ways > 0, "associativity must be positive");
    SOFTREC_ASSERT(capacity_bytes >= line_bytes * uint64_t(ways),
                   "cache smaller than one set");
    numSets_ = capacity_bytes / (line_bytes * uint64_t(ways));
    SOFTREC_ASSERT(numSets_ > 0, "cache has no sets");
    lines_.resize(size_t(numSets_) * size_t(ways_));
}

void
CacheModel::access(uint64_t address, bool is_write)
{
    ++stats_.accesses;
    ++tick_;
    const uint64_t line_addr = address / lineBytes_;
    const uint64_t set = line_addr % numSets_;
    const uint64_t tag = line_addr / numSets_;
    Line *set_base = &lines_[size_t(set) * size_t(ways_)];

    // Hit?
    for (int w = 0; w < ways_; ++w) {
        Line &line = set_base[w];
        if (line.valid && line.tag == tag) {
            ++stats_.hits;
            line.lastUse = tick_;
            line.dirty = line.dirty || is_write;
            return;
        }
    }

    // Miss: fill into the LRU way (write misses allocate w/o fetch).
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;
    // Prefer an invalid way; otherwise evict the least recently used.
    Line *victim = nullptr;
    for (int w = 0; w < ways_ && !victim; ++w) {
        if (!set_base[w].valid)
            victim = &set_base[w];
    }
    if (!victim) {
        victim = set_base;
        for (int w = 1; w < ways_; ++w) {
            if (set_base[w].lastUse < victim->lastUse)
                victim = &set_base[w];
        }
    }
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    victim->dirty = is_write;
}

void
CacheModel::read(uint64_t address)
{
    access(address, false);
}

void
CacheModel::write(uint64_t address)
{
    access(address, true);
}

void
CacheModel::readRange(uint64_t address, uint64_t bytes)
{
    const uint64_t first = address / lineBytes_;
    const uint64_t last = (address + bytes - 1) / lineBytes_;
    for (uint64_t line = first; line <= last; ++line)
        read(line * lineBytes_);
}

void
CacheModel::writeRange(uint64_t address, uint64_t bytes)
{
    const uint64_t first = address / lineBytes_;
    const uint64_t last = (address + bytes - 1) / lineBytes_;
    for (uint64_t line = first; line <= last; ++line)
        write(line * lineBytes_);
}

void
CacheModel::flush()
{
    for (Line &line : lines_) {
        if (line.valid && line.dirty)
            ++stats_.writebacks;
        line = Line{};
    }
}

void
CacheModel::reset()
{
    for (Line &line : lines_)
        line = Line{};
    stats_ = CacheStats{};
    tick_ = 0;
}

CacheStats
traceTiledGemm(CacheModel &cache, int64_t m, int64_t n, int64_t k,
               int64_t tile_m, int64_t tile_n, int64_t tile_k,
               int64_t elem_bytes)
{
    SOFTREC_ASSERT(m > 0 && n > 0 && k > 0, "empty GEMM trace");
    // Disjoint base addresses, generously aligned.
    const uint64_t a_base = 0;
    const uint64_t b_base =
        a_base + uint64_t(m * k * elem_bytes + 4096);
    const uint64_t c_base =
        b_base + uint64_t(k * n * elem_bytes + 4096);

    for (int64_t m0 = 0; m0 < m; m0 += tile_m) {
        const int64_t mh = std::min(tile_m, m - m0);
        for (int64_t n0 = 0; n0 < n; n0 += tile_n) {
            const int64_t nw = std::min(tile_n, n - n0);
            for (int64_t k0 = 0; k0 < k; k0 += tile_k) {
                const int64_t kw = std::min(tile_k, k - k0);
                // A tile: rows m0..m0+mh, cols k0..k0+kw (row-major).
                for (int64_t i = 0; i < mh; ++i) {
                    cache.readRange(
                        a_base + uint64_t(((m0 + i) * k + k0) *
                                          elem_bytes),
                        uint64_t(kw * elem_bytes));
                }
                // B tile: rows k0..k0+kw, cols n0..n0+nw.
                for (int64_t kk = 0; kk < kw; ++kk) {
                    cache.readRange(
                        b_base + uint64_t(((k0 + kk) * n + n0) *
                                          elem_bytes),
                        uint64_t(nw * elem_bytes));
                }
            }
            // C tile written once after accumulation.
            for (int64_t i = 0; i < mh; ++i) {
                cache.writeRange(
                    c_base +
                        uint64_t(((m0 + i) * n + n0) * elem_bytes),
                    uint64_t(nw * elem_bytes));
            }
        }
    }
    cache.flush();
    return cache.stats();
}

} // namespace softrec
