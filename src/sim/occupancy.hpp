/**
 * @file
 * Thread-block occupancy calculator.
 *
 * Mirrors the CUDA occupancy calculator: given a TB's resource usage
 * (threads, shared memory, registers), compute how many TBs fit on one
 * SM and therefore how many warps are resident — the quantity that
 * drives achievable memory-level parallelism in the bandwidth model.
 */

#ifndef SOFTREC_SIM_OCCUPANCY_HPP
#define SOFTREC_SIM_OCCUPANCY_HPP

#include <cstdint>

#include "sim/gpu_spec.hpp"

namespace softrec {

/** Resources one thread block consumes. */
struct BlockResources
{
    int threads = 128;          //!< threads per TB
    uint64_t smemBytes = 0;     //!< shared memory per TB, bytes
    int regsPerThread = 32;     //!< registers per thread
};

/** Result of the occupancy computation for one kernel on one GPU. */
struct Occupancy
{
    int blocksPerSm = 0;        //!< resident TBs per SM
    int warpsPerSm = 0;         //!< resident warps per SM
    double fraction = 0.0;      //!< warpsPerSm / maxWarpsPerSm
    /** Which limit bound the occupancy. */
    enum class Limit { Threads, SharedMemory, Registers, Blocks, Grid };
    Limit limit = Limit::Threads;
};

/**
 * Compute occupancy of a kernel with the given per-TB resources.
 *
 * @param spec target GPU
 * @param res per-TB resource usage
 * @param grid_blocks total TBs in the launch; occupancy cannot exceed
 *                    what the grid supplies per SM
 */
Occupancy computeOccupancy(const GpuSpec &spec, const BlockResources &res,
                           int64_t grid_blocks);

/** Human-readable name of an occupancy limit. */
const char *occupancyLimitName(Occupancy::Limit limit);

} // namespace softrec

#endif // SOFTREC_SIM_OCCUPANCY_HPP
