/**
 * @file
 * The simulated GPU device: executes kernel launches through the cost
 * model and keeps a timeline plus per-category aggregates, playing the
 * role Nsight Compute plays in the paper's methodology.
 */

#ifndef SOFTREC_SIM_GPU_HPP
#define SOFTREC_SIM_GPU_HPP

#include <map>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/kernel_profile.hpp"

namespace softrec {

/** One executed launch: what ran and what it cost. */
struct LaunchRecord
{
    KernelProfile profile;  //!< the launch descriptor
    KernelStats stats;      //!< the cost model's verdict
    double startSeconds = 0.0; //!< timeline position
};

/** Aggregate view of a run, grouped by KernelCategory. */
struct CategoryTotals
{
    double seconds = 0.0;
    uint64_t dramReadBytes = 0;
    uint64_t dramWriteBytes = 0;
    int64_t launches = 0;

    uint64_t dramBytes() const { return dramReadBytes + dramWriteBytes; }
};

/**
 * A simulated GPU. Launch kernels in program order; query the timeline
 * and aggregates afterwards.
 */
class Gpu
{
  public:
    /** Create a device with the given hardware spec. */
    explicit Gpu(GpuSpec spec) : spec_(std::move(spec)) {}

    /** The device's hardware description. */
    const GpuSpec &spec() const { return spec_; }

    /** Execute one kernel; returns its stats and records it. */
    const KernelStats &launch(const KernelProfile &profile);

    /** Discard all recorded launches. */
    void reset();

    /** All launches in program order. */
    const std::vector<LaunchRecord> &timeline() const { return timeline_; }

    /** Total modeled wall-clock time. */
    double totalSeconds() const { return clock_; }

    /** Total off-chip traffic (read + write). */
    uint64_t totalDramBytes() const;

    /** Total off-chip reads. */
    uint64_t totalDramReadBytes() const;

    /** Total off-chip writes. */
    uint64_t totalDramWriteBytes() const;

    /** Per-category totals over the whole timeline. */
    std::map<KernelCategory, CategoryTotals> byCategory() const;

    /** Seconds spent in one category. */
    double secondsIn(KernelCategory category) const;

    /** Off-chip bytes moved by one category. */
    uint64_t dramBytesIn(KernelCategory category) const;

    /** Number of launches whose name contains the given substring. */
    int64_t countLaunches(const std::string &name_substring) const;

  private:
    GpuSpec spec_;
    std::vector<LaunchRecord> timeline_;
    double clock_ = 0.0;
};

} // namespace softrec

#endif // SOFTREC_SIM_GPU_HPP
