/**
 * @file
 * Cost-model implementation.
 */

#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sim/calibration.hpp"

namespace softrec {

double
rowSoftmaxSerialization(int64_t row_len)
{
    SOFTREC_ASSERT(row_len > 0, "row length must be positive");
    if (row_len <= calib::kRowSoftmaxRefLen)
        return calib::kRowSoftmaxBaseEff;
    const double octaves =
        std::log2(double(row_len) / double(calib::kRowSoftmaxRefLen));
    return calib::kRowSoftmaxBaseEff /
           (1.0 + calib::kRowSoftmaxLenPenalty * octaves);
}

double
waveEfficiency(int64_t grid_blocks, int64_t concurrent)
{
    SOFTREC_ASSERT(grid_blocks > 0 && concurrent > 0,
                   "wave efficiency needs positive sizes");
    if (grid_blocks >= concurrent) {
        const int64_t waves =
            (grid_blocks + concurrent - 1) / concurrent;
        return double(grid_blocks) / double(waves * concurrent);
    }
    // Fewer TBs than concurrent slots: only a fraction of the machine
    // is working at all.
    return double(grid_blocks) / double(concurrent);
}

KernelStats
evaluateKernel(const GpuSpec &spec, const KernelProfile &profile)
{
    KernelStats stats;
    stats.occupancy = computeOccupancy(spec, profile.geom.block,
                                       profile.geom.numBlocks);

    // --- Memory term ---
    // Memory-level parallelism: resident warps (scaled by the fraction
    // of lanes issuing useful accesses) against the warps needed to
    // saturate DRAM.
    const double sat_warps =
        calib::kSaturationWarpFraction * spec.maxWarpsPerSm();
    const double useful_warps =
        stats.occupancy.warpsPerSm * profile.laneUtilization;
    // Tensor-core kernels keep deep asynchronous-copy pipelines in
    // flight, so their memory-level parallelism does not depend on
    // resident warp count the way latency-bound kernels' does.
    const double mlp = profile.tensorFlops > 0.0
        ? 1.0
        : std::clamp(useful_warps / sat_warps,
                     calib::kMinMemoryParallelism, 1.0);

    const int64_t concurrent =
        int64_t(stats.occupancy.blocksPerSm) * spec.numSms;
    const double wave =
        waveEfficiency(profile.geom.numBlocks, concurrent);
    const int64_t waves =
        (profile.geom.numBlocks + concurrent - 1) / concurrent;

    // A straggler TB only stalls the machine during its own wave; with
    // many waves behind it the imbalance amortizes away.
    const double amortized_imbalance =
        1.0 + (std::max(1.0, profile.workImbalance) - 1.0) /
                  double(waves);
    const double imbalance_derate =
        std::pow(amortized_imbalance, calib::kImbalanceExponent);

    SOFTREC_ASSERT(profile.laneUtilization > 0.0 &&
                   profile.laneUtilization <= 1.0,
                   "lane utilization %.3f outside (0, 1] in %s",
                   profile.laneUtilization, profile.name.c_str());
    SOFTREC_ASSERT(profile.serializationFactor > 0.0 &&
                   profile.serializationFactor <= 1.0,
                   "serialization %.3f outside (0, 1] in %s",
                   profile.serializationFactor, profile.name.c_str());

    const double bw_derate = calib::kStreamEfficiency *
                             profile.serializationFactor * mlp * wave /
                             imbalance_derate;
    const double effective_bw = spec.dramBandwidth * bw_derate;
    stats.dramSeconds = profile.dramBytes() > 0
        ? double(profile.dramBytes()) / effective_bw
        : 0.0;

    // --- Tensor-core term ---
    if (profile.tensorFlops > 0.0) {
        SOFTREC_ASSERT(profile.gemmEfficiency > 0.0,
                       "GEMM work without an efficiency class in %s",
                       profile.name.c_str());
        SOFTREC_ASSERT(profile.fusedPenalty >= 1.0,
                       "fused penalty %.3f below 1 in %s",
                       profile.fusedPenalty, profile.name.c_str());
        double eff = profile.gemmEfficiency / profile.fusedPenalty;
        eff *= wave / imbalance_derate;
        stats.tensorSeconds =
            profile.tensorFlops / (spec.fp16TensorFlops * eff);
    }

    // --- CUDA-core / SFU term ---
    double cuda_seconds = 0.0;
    if (profile.cudaFlops > 0.0) {
        cuda_seconds += profile.cudaFlops /
                        (spec.fp16CudaFlops * calib::kCudaEfficiency);
    }
    if (profile.sfuOps > 0.0) {
        cuda_seconds += profile.sfuOps /
                        (spec.fp16CudaFlops * calib::kSfuRateFraction);
    }
    stats.cudaSeconds = cuda_seconds;

    stats.overheadSeconds = calib::kKernelLaunchOverhead;

    const double work = std::max({stats.dramSeconds, stats.tensorSeconds,
                                  stats.cudaSeconds});
    stats.seconds = work + stats.overheadSeconds;
    if (work == 0.0 || stats.overheadSeconds > work) {
        stats.bound = TimeBound::Launch;
    } else if (work == stats.dramSeconds) {
        stats.bound = TimeBound::Memory;
    } else if (work == stats.tensorSeconds) {
        stats.bound = TimeBound::TensorCore;
    } else {
        stats.bound = TimeBound::CudaCore;
    }

    stats.achievedBandwidth = stats.seconds > 0.0
        ? double(profile.dramBytes()) / stats.seconds
        : 0.0;
    stats.bandwidthUtilization =
        stats.achievedBandwidth / spec.dramBandwidth;
    return stats;
}

} // namespace softrec
