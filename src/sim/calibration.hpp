/**
 * @file
 * Calibration constants of the GPU performance model.
 *
 * The original paper measures real kernels with Nsight Compute on
 * A100 / RTX 3090 / T4. This reproduction replaces the hardware with an
 * analytical model; the constants below are the model's only free
 * parameters. Each is an *efficiency class* with a physical meaning, set
 * once, globally, and validated against the paper's reported numbers in
 * EXPERIMENTS.md (they are not tuned per experiment).
 *
 * Derivations (A100, BERT-large, L = 4096, FP16) are spelled out in
 * DESIGN.md Section 5.
 */

#ifndef SOFTREC_SIM_CALIBRATION_HPP
#define SOFTREC_SIM_CALIBRATION_HPP

namespace softrec {
namespace calib {

/**
 * Fraction of peak DRAM bandwidth a well-coalesced streaming kernel
 * sustains (copy-kernel efficiency). ~85-90% is typical for HBM2e and
 * GDDR6 parts.
 */
inline constexpr double kStreamEfficiency = 0.88;

/**
 * Tensor-core efficiency of large, square-ish FC / FeedForward GEMMs
 * (M = L, N,K >= 1024). cuBLAS reaches 75-85% of peak on these shapes.
 */
inline constexpr double kGemmEffLargeFc = 0.80;

/**
 * Tensor-core efficiency of the thin attention GEMMs (QK^T with
 * K = D_head = 64, and P.V with N = D_head = 64). The tiny inner/outer
 * dimension starves the MMA pipeline; CUTLASS lands near a third of
 * peak on these shapes.
 */
inline constexpr double kGemmEffAttention = 0.32;

/**
 * Mild efficiency bonus for wider attention heads: with D_head = 128
 * (GPT-Neo) the mainloop has twice the work per tile. Applied as an
 * interpolation toward kGemmEffLargeFc.
 */
inline constexpr double kGemmEffAttentionWide = 0.42;

/**
 * Tensor-core efficiency of block-sparse SDD/DSD GEMMs over 64x64
 * blocks, before the load-imbalance derating (paper Section 5.2).
 */
inline constexpr double kGemmEffBlockSparse = 0.30;

/**
 * Efficiency of element-wise math on the CUDA cores (bias, GeLU,
 * residual adds, the non-SFU part of softmax).
 */
inline constexpr double kCudaEfficiency = 0.60;

/**
 * Throughput of special-function-unit ops (exp) relative to the FP16
 * CUDA-core FMA rate. SFUs issue at 1/4 the FP32 rate and exp costs a
 * couple of instructions, so ~1/8 of the FP16 FMA rate.
 */
inline constexpr double kSfuRateFraction = 0.125;

/**
 * Cost of one fused-softmax element (exp on the SFU, max/scale, and
 * the tensor-core pipeline disruption it causes), expressed in
 * MAC-equivalents of the GEMM mainloop. The relative slowdown of a
 * fused GEMM is 1 + kFusedWorkPerElement / depth, where depth is the
 * mainloop length each fused element amortizes over (K for an LS
 * epilogue, N for a GS prologue). With D_head = 64 this yields the
 * +28% to +55% MatMul-time growth the paper reports under SDF.
 */
inline constexpr double kFusedWorkPerElement = 27.0;

/**
 * Bandwidth efficiency of the baseline one-row-per-TB softmax kernel on
 * a *dense* L = 4096 attention matrix, relative to kStreamEfficiency.
 * The three dependent passes (max, sum, scale) over the row serialize
 * behind block-wide reductions and barriers. Calibrated so that dense
 * softmax decomposition costs ~6% end-to-end on BERT (paper Fig. 8:
 * SD = 0.94x).
 */
inline constexpr double kRowSoftmaxBaseEff = 0.80;

/**
 * Per-octave degradation of the row-softmax kernel as rows lengthen
 * (longer reductions, more smem pressure per TB). Yields ~0.57 relative
 * efficiency at L = 4096 starting from 0.80 at L = 512.
 */
inline constexpr double kRowSoftmaxLenPenalty = 0.135;

/**
 * Reference row length at which kRowSoftmaxBaseEff applies.
 */
inline constexpr int64_t kRowSoftmaxRefLen = 512;

/**
 * Exponent of the load-imbalance derating: efficiency is divided by
 * imbalance^kImbalanceExponent where imbalance = max/mean work per TB.
 * 0.5 reflects that stragglers are partially hidden by oversubscribing
 * SMs with many TBs.
 */
inline constexpr double kImbalanceExponent = 0.5;

/**
 * Warps per SM (as a fraction of the maximum) needed to saturate DRAM
 * bandwidth. Below this occupancy the achieved bandwidth scales down
 * linearly (memory-level-parallelism limit).
 */
inline constexpr double kSaturationWarpFraction = 0.48;

/**
 * Lower bound on the memory-level-parallelism derate: even a kernel
 * with very few useful lanes keeps some requests in flight.
 */
inline constexpr double kMinMemoryParallelism = 0.10;

/**
 * Fixed host-side launch + scheduling overhead per kernel.
 */
inline constexpr double kKernelLaunchOverhead = 4.0e-6;

/**
 * Bytes of shared memory the baseline row-softmax kernel stages per row
 * element (fp32 staging of the fp16 row).
 */
inline constexpr int64_t kRowSoftmaxStagingBytesPerElem = 4;

} // namespace calib
} // namespace softrec

#endif // SOFTREC_SIM_CALIBRATION_HPP
