/**
 * @file
 * Simulated GPU device implementation.
 */

#include "sim/gpu.hpp"

namespace softrec {

const KernelStats &
Gpu::launch(const KernelProfile &profile)
{
    LaunchRecord record;
    record.profile = profile;
    record.stats = evaluateKernel(spec_, profile);
    record.startSeconds = clock_;
    clock_ += record.stats.seconds;
    timeline_.push_back(std::move(record));
    return timeline_.back().stats;
}

void
Gpu::reset()
{
    timeline_.clear();
    clock_ = 0.0;
}

uint64_t
Gpu::totalDramBytes() const
{
    return totalDramReadBytes() + totalDramWriteBytes();
}

uint64_t
Gpu::totalDramReadBytes() const
{
    uint64_t total = 0;
    for (const auto &rec : timeline_)
        total += rec.profile.dramReadBytes;
    return total;
}

uint64_t
Gpu::totalDramWriteBytes() const
{
    uint64_t total = 0;
    for (const auto &rec : timeline_)
        total += rec.profile.dramWriteBytes;
    return total;
}

std::map<KernelCategory, CategoryTotals>
Gpu::byCategory() const
{
    std::map<KernelCategory, CategoryTotals> totals;
    for (const auto &rec : timeline_) {
        CategoryTotals &bucket = totals[rec.profile.category];
        bucket.seconds += rec.stats.seconds;
        bucket.dramReadBytes += rec.profile.dramReadBytes;
        bucket.dramWriteBytes += rec.profile.dramWriteBytes;
        ++bucket.launches;
    }
    return totals;
}

double
Gpu::secondsIn(KernelCategory category) const
{
    double total = 0.0;
    for (const auto &rec : timeline_)
        if (rec.profile.category == category)
            total += rec.stats.seconds;
    return total;
}

uint64_t
Gpu::dramBytesIn(KernelCategory category) const
{
    uint64_t total = 0;
    for (const auto &rec : timeline_)
        if (rec.profile.category == category)
            total += rec.profile.dramBytes();
    return total;
}

int64_t
Gpu::countLaunches(const std::string &name_substring) const
{
    int64_t count = 0;
    for (const auto &rec : timeline_)
        if (rec.profile.name.find(name_substring) != std::string::npos)
            ++count;
    return count;
}

} // namespace softrec
