/**
 * @file
 * Timeline report implementation.
 */

#include "sim/report.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace softrec {

TextTable
renderTimeline(const Gpu &gpu)
{
    TextTable table("Kernel timeline");
    table.setHeader({"kernel", "count", "time (total)", "share",
                     "bound", "BW", "occupancy"});
    const auto &timeline = gpu.timeline();
    const double total = gpu.totalSeconds();

    size_t i = 0;
    while (i < timeline.size()) {
        // Collapse consecutive launches of the same kernel.
        size_t j = i;
        double group_seconds = 0.0;
        while (j < timeline.size() &&
               timeline[j].profile.name == timeline[i].profile.name &&
               timeline[j].stats.seconds ==
                   timeline[i].stats.seconds) {
            group_seconds += timeline[j].stats.seconds;
            ++j;
        }
        const LaunchRecord &rec = timeline[i];
        table.addRow({
            rec.profile.name,
            strprintf("%zu", j - i),
            formatSeconds(group_seconds),
            strprintf("%.1f%%",
                      total > 0 ? 100.0 * group_seconds / total : 0.0),
            timeBoundName(rec.stats.bound),
            formatBandwidth(rec.stats.achievedBandwidth),
            strprintf("%d blk/SM (%s)",
                      rec.stats.occupancy.blocksPerSm,
                      occupancyLimitName(rec.stats.occupancy.limit)),
        });
        i = j;
    }
    return table;
}

std::string
summarizeRun(const Gpu &gpu)
{
    const auto by_category = gpu.byCategory();
    KernelCategory top = KernelCategory::Other;
    double top_seconds = -1.0;
    for (const auto &[category, totals] : by_category) {
        if (totals.seconds > top_seconds) {
            top_seconds = totals.seconds;
            top = category;
        }
    }
    return strprintf(
        "%zu kernels in %s, %s of off-chip traffic; %s dominates "
        "(%.1f%% of time)",
        gpu.timeline().size(),
        formatSeconds(gpu.totalSeconds()).c_str(),
        formatBytes(gpu.totalDramBytes()).c_str(),
        kernelCategoryName(top),
        gpu.totalSeconds() > 0
            ? 100.0 * top_seconds / gpu.totalSeconds()
            : 0.0);
}

TextTable
renderCategories(const Gpu &gpu)
{
    TextTable table("Time by category");
    table.setHeader({"category", "time", "share", "traffic",
                     "launches"});
    const double total = gpu.totalSeconds();
    for (const auto &[category, totals] : gpu.byCategory()) {
        table.addRow({
            kernelCategoryName(category),
            formatSeconds(totals.seconds),
            strprintf("%.1f%%",
                      total > 0 ? 100.0 * totals.seconds / total : 0.0),
            formatBytes(totals.dramBytes()),
            strprintf("%lld", (long long)totals.launches),
        });
    }
    return table;
}

RooflinePoint
rooflineOf(const GpuSpec &spec, const LaunchRecord &record)
{
    RooflinePoint point;
    point.name = record.profile.name;
    const double flops = record.profile.tensorFlops +
                         record.profile.cudaFlops;
    const double bytes = double(record.profile.dramBytes());
    point.operationalIntensity = bytes > 0 ? flops / bytes : 1e9;
    point.achievedFlops = record.stats.seconds > 0
        ? flops / record.stats.seconds
        : 0.0;
    const double peak = record.profile.tensorFlops > 0
        ? spec.fp16TensorFlops
        : spec.fp16CudaFlops;
    point.peakFraction = peak > 0 ? point.achievedFlops / peak : 0.0;
    const double ridge = peak / spec.dramBandwidth;
    point.memoryBound = point.operationalIntensity < ridge;
    return point;
}

TextTable
renderRoofline(const Gpu &gpu)
{
    TextTable table(strprintf(
        "Roofline (%s: ridge at %.0f FLOP/B tensor, %.1f FLOP/B cuda)",
        gpu.spec().name.c_str(),
        gpu.spec().fp16TensorFlops / gpu.spec().dramBandwidth,
        gpu.spec().fp16CudaFlops / gpu.spec().dramBandwidth));
    table.setHeader({"kernel", "FLOP/B", "achieved", "of peak",
                     "regime"});
    std::vector<std::string> seen;
    for (const LaunchRecord &record : gpu.timeline()) {
        if (std::find(seen.begin(), seen.end(), record.profile.name) !=
            seen.end())
            continue;
        seen.push_back(record.profile.name);
        const RooflinePoint point = rooflineOf(gpu.spec(), record);
        table.addRow({
            point.name,
            strprintf("%.2f", point.operationalIntensity),
            formatFlops(point.achievedFlops),
            strprintf("%.1f%%", 100.0 * point.peakFraction),
            point.memoryBound ? "memory-bound" : "compute-bound",
        });
    }
    return table;
}

} // namespace softrec
