/**
 * @file
 * The roofline-with-occupancy kernel cost model.
 *
 * Time per kernel is max(memory time, tensor-core time, CUDA-core/SFU
 * time) plus launch overhead. Memory time divides useful bytes by an
 * effective bandwidth that degrades with low occupancy, idle lanes,
 * serialized passes, work imbalance, and wave-quantization tails —
 * exactly the mechanisms the paper identifies for the baseline softmax
 * kernels (Sections 3.1, 5.1, 5.2).
 */

#ifndef SOFTREC_SIM_COST_MODEL_HPP
#define SOFTREC_SIM_COST_MODEL_HPP

#include "sim/gpu_spec.hpp"
#include "sim/kernel_profile.hpp"

namespace softrec {

/** Price one kernel launch on one GPU. */
KernelStats evaluateKernel(const GpuSpec &spec,
                           const KernelProfile &profile);

/**
 * Serialization factor of the baseline one-row-per-TB softmax kernel
 * as a function of row length (dependent max/sum/scale passes behind
 * block-wide barriers). 1.0 would be perfect streaming.
 */
double rowSoftmaxSerialization(int64_t row_len);

/**
 * Parallel efficiency lost to wave quantization: a grid of
 * `grid_blocks` TBs executed `concurrent` at a time runs in full waves
 * plus a ragged tail. Returns utilized fraction in (0, 1].
 */
double waveEfficiency(int64_t grid_blocks, int64_t concurrent);

} // namespace softrec

#endif // SOFTREC_SIM_COST_MODEL_HPP
