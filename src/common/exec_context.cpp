/**
 * @file
 * ThreadPool / parallelFor / ExecContext implementation.
 */

#include "common/exec_context.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/logging.hpp"

namespace softrec {

namespace {

/**
 * Set for the duration of ThreadPool::drain() on every participating
 * thread (workers and the submitter), so nested parallel regions can
 * detect they are already inside a run and execute inline.
 */
thread_local bool tl_inside_pool_run = false;

/**
 * Per-thread accumulator slot: 0 for external threads (including the
 * submitter), 1 + worker index for pool workers (set once at worker
 * start). See currentThreadSlot().
 */
thread_local int tl_thread_slot = 0;

/**
 * Process-wide high-water mark for slot indices: 1 + the largest
 * worker count of any ThreadPool constructed so far.
 */
std::atomic<int> g_max_slots{1};

} // namespace

ThreadPool::ThreadPool(int threads)
{
    SOFTREC_ASSERT(threads >= 1, "thread pool needs >= 1 thread, got %d",
                   threads);
    int prev = g_max_slots.load(std::memory_order_relaxed);
    while (prev < threads &&
           !g_max_slots.compare_exchange_weak(prev, threads,
                                              std::memory_order_relaxed)) {
    }
    workers_.reserve(size_t(threads - 1));
    for (int i = 0; i < threads - 1; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Shutdown-ordering invariant: the pool must be quiescent
        // when destroyed. A job still in flight here would mean some
        // prof::Scope (or other consumer of worker results) could
        // merge per-thread slots while workers still write them.
        SOFTREC_ASSERT(job_ == nullptr && pending_ == 0 && active_ == 0,
                       "ThreadPool destroyed with a job in flight "
                       "(pending=%lld active=%lld)",
                       (long long)pending_, (long long)active_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::insideRun()
{
    return tl_inside_pool_run;
}

void
ThreadPool::drain(const std::function<void(int64_t)> &chunk, int64_t total)
{
    const bool was_inside = tl_inside_pool_run;
    tl_inside_pool_run = true;
    for (;;) {
        const int64_t idx =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (idx >= total)
            break;
        try {
            chunk(idx);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        bool job_done = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_done = (--pending_ == 0);
        }
        if (job_done)
            done_cv_.notify_all();
    }
    tl_inside_pool_run = was_inside;
}

void
ThreadPool::workerLoop(int slot)
{
    tl_thread_slot = slot;
    uint64_t last_seen = 0;
    for (;;) {
        const std::function<void(int64_t)> *job = nullptr;
        int64_t total = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_cv_.wait(lock, [&] {
                return stop_ ||
                       (generation_ != last_seen && job_ != nullptr);
            });
            if (stop_)
                return;
            last_seen = generation_;
            job = job_;
            total = total_;
            ++active_;
        }
        drain(*job, total);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
        done_cv_.notify_all();
    }
}

void
ThreadPool::run(int64_t num_chunks,
                const std::function<void(int64_t)> &chunk)
{
    SOFTREC_ASSERT(num_chunks >= 0, "negative chunk count %lld",
                   (long long)num_chunks);
    if (num_chunks == 0)
        return;
    // Inline paths: no workers, a single chunk, or a nested run from
    // inside a chunk (the pool is busy with the enclosing job).
    // Exceptions propagate directly here.
    if (workers_.empty() || insideRun() || num_chunks == 1) {
        for (int64_t i = 0; i < num_chunks; ++i)
            chunk(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SOFTREC_ASSERT(job_ == nullptr,
                       "concurrent top-level ThreadPool::run from two "
                       "external threads is not supported");
        job_ = &chunk;
        total_ = num_chunks;
        pending_ = num_chunks;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        ++generation_;
    }
    wake_cv_.notify_all();
    drain(chunk, num_chunks);
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Wait until the chunks are done AND every worker has left
        // drain(): a worker that consumed its final (out-of-range)
        // claim may otherwise still touch next_ after this job's
        // state is recycled for the next run.
        done_cv_.wait(lock,
                      [&] { return pending_ == 0 && active_ == 0; });
        job_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

int
currentThreadSlot()
{
    return tl_thread_slot;
}

int
maxThreadSlots()
{
    return g_max_slots.load(std::memory_order_relaxed);
}

std::optional<int>
tryParseThreadCount(const char *text, std::string *why)
{
    if (text == nullptr || *text == '\0')
        return 1;
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 1 || value > 1024) {
        if (why != nullptr) {
            *why = strprintf("SOFTREC_THREADS='%s' is not an integer "
                             "in [1, 1024]", text);
        }
        return std::nullopt;
    }
    return int(value);
}

int
parseThreadCount(const char *text)
{
    std::string why;
    const std::optional<int> parsed = tryParseThreadCount(text, &why);
    if (!parsed) {
        warn("%s; running serial", why.c_str());
        return 1;
    }
    return *parsed;
}

namespace {

/**
 * Process-wide shared pool state. Guarded by a mutex so concurrent
 * fromEnv() calls are safe; the pool itself is created lazily on the
 * first call and destroyed at exit (joining its workers) or by
 * resetSharedPoolForTest().
 */
std::mutex g_shared_pool_mutex;
std::unique_ptr<ThreadPool> g_shared_pool;
bool g_shared_pool_latched = false;

} // namespace

ExecContext
ExecContext::fromEnv()
{
    std::lock_guard<std::mutex> lock(g_shared_pool_mutex);
    if (!g_shared_pool_latched) {
        g_shared_pool_latched = true;
        const int threads =
            parseThreadCount(std::getenv("SOFTREC_THREADS"));
        if (threads > 1)
            g_shared_pool = std::make_unique<ThreadPool>(threads);
    }
    ExecContext ctx;
    ctx.pool = g_shared_pool.get();
    return ctx;
}

void
ExecContext::resetSharedPoolForTest()
{
    std::lock_guard<std::mutex> lock(g_shared_pool_mutex);
    // Destruction asserts the pool is quiescent and joins every
    // worker, ordering their writes before whatever the caller does
    // next (e.g. a profiler snapshot).
    g_shared_pool.reset();
    g_shared_pool_latched = false;
}

void
parallelFor(const ExecContext &ctx, int64_t begin, int64_t end,
            int64_t grain,
            const std::function<void(int64_t, int64_t)> &body)
{
    SOFTREC_ASSERT(grain > 0, "parallelFor grain must be positive");
    if (end <= begin)
        return;
    const int64_t span = end - begin;
    const int64_t num_chunks = (span + grain - 1) / grain;
    auto chunk = [&](int64_t c) {
        const int64_t c0 = begin + c * grain;
        const int64_t c1 = std::min(end, c0 + grain);
        body(c0, c1);
    };
    if (ctx.pool == nullptr || num_chunks == 1 ||
        ThreadPool::insideRun()) {
        for (int64_t c = 0; c < num_chunks; ++c)
            chunk(c);
        return;
    }
    ctx.pool->run(num_chunks, chunk);
}

} // namespace softrec
