/**
 * @file
 * Profiler implementation: scope lifecycle and locked aggregation.
 */

#include "common/profiler.hpp"

#include <algorithm>

namespace softrec {
namespace prof {

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.clear();
}

std::map<std::string, ScopeStats>
Profiler::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

ScopeStats
Profiler::statsFor(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = stats_.find(name);
    return it == stats_.end() ? ScopeStats{} : it->second;
}

void
Profiler::addEvent(const char *name, int64_t count)
{
    ScopeStats delta;
    delta.calls = count;
    merge(name, delta);
}

void
Profiler::merge(const char *name, const ScopeStats &delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ScopeStats &total = stats_[name];
    total.seconds += delta.seconds;
    total.bytesRead += delta.bytesRead;
    total.bytesWritten += delta.bytesWritten;
    total.calls += delta.calls;
    total.maxThreads = std::max(total.maxThreads, delta.maxThreads);
}

Scope::Scope(const ExecContext &ctx, const char *name, Kind kind)
{
    if (ctx.profiler == nullptr)
        return;
    profiler_ = ctx.profiler;
    name_ = name;
    kind_ = kind;
    threads_ = ctx.threads();
    // Sized for every slot any thread in the process can report
    // under, so nested scopes running inside worker chunks (which see
    // the worker's slot, not slot 0) always index in bounds.
    slots_.resize(size_t(maxThreadSlots()));
    if (kind_ == Kind::Timed)
        start_ = std::chrono::steady_clock::now();
}

Scope::~Scope()
{
    if (profiler_ == nullptr)
        return;
    ScopeStats delta;
    if (kind_ == Kind::Timed) {
        const auto stop = std::chrono::steady_clock::now();
        delta.seconds =
            std::chrono::duration<double>(stop - start_).count();
    }
    // The pool's completion handshake (ThreadPool::run returns only
    // after every worker left drain(), under the pool mutex) ordered
    // all worker slot writes before this read.
    for (const Slot &slot : slots_) {
        delta.bytesRead += slot.read;
        delta.bytesWritten += slot.written;
    }
    delta.calls = 1;
    delta.maxThreads = threads_;
    profiler_->merge(name_, delta);
}

} // namespace prof
} // namespace softrec
