/**
 * @file
 * Low-overhead kernel profiler: named scopes recording wall time and
 * byte traffic (reads/writes issued by each functional kernel), with
 * race-free aggregation under the ThreadPool.
 *
 * Usage: attach a Profiler to an ExecContext (`ctx.profiler = &prof`)
 * and wrap each kernel body in a `prof::Scope`. Chunk bodies report
 * traffic through `addRead`/`addWrite`, which accumulate into a
 * cache-line-padded per-thread slot (indexed by currentThreadSlot())
 * — no atomics or locks on the hot path. The Scope destructor merges
 * the slots into the Profiler under a mutex; the pool's completion
 * handshake orders every worker's slot writes before the merge, so
 * the whole scheme is clean under ThreadSanitizer.
 *
 * When no profiler is attached (`ctx.profiler == nullptr`, the
 * default) a Scope is inert: no clock read, no allocation, and
 * `active()` is false so instrumented hot loops skip the counter
 * calls entirely.
 *
 * Traffic semantics: counters record the *unique operand bytes* a
 * kernel invocation touches (inputs read once, outputs written once),
 * mirroring the modeled DRAM traffic of `src/sim` under the paper's
 * on-chip-staging assumption — not the raw number of load/store
 * instructions. See docs/ARCHITECTURE.md "Observability".
 */

#ifndef SOFTREC_COMMON_PROFILER_HPP
#define SOFTREC_COMMON_PROFILER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.hpp"

namespace softrec {
namespace prof {

/** Aggregated totals for one named scope. */
struct ScopeStats
{
    double seconds = 0.0;       //!< summed wall time of timed scopes
    uint64_t bytesRead = 0;     //!< operand bytes read
    uint64_t bytesWritten = 0;  //!< operand bytes written
    int64_t calls = 0;          //!< scope entries (kernel invocations)
    int maxThreads = 1;         //!< widest concurrency seen
};

/**
 * Aggregation sink. Thread-safe: merge/snapshot/reset may be called
 * concurrently (Scope destructors merge from whichever thread runs
 * them). Scopes hold a pointer to the Profiler, so it must outlive
 * every ExecContext that references it.
 */
class Profiler
{
  public:
    /** Drop all accumulated stats. */
    void reset();

    /** Copy of all per-scope totals, keyed (and sorted) by name. */
    std::map<std::string, ScopeStats> snapshot() const;

    /** Totals for one scope; default ScopeStats if never entered. */
    ScopeStats statsFor(const std::string &name) const;

    /**
     * Record `count` occurrences of a named event (admission-mode
     * transitions, stream cancellations, …): bumps the scope's call
     * counter with zero time and zero traffic, so events share the
     * report plumbing with kernel scopes. `name` must outlive the
     * profiler (string literals in practice).
     */
    void addEvent(const char *name, int64_t count = 1);

  private:
    friend class Scope;
    void merge(const char *name, const ScopeStats &delta);

    mutable std::mutex mutex_;
    std::map<std::string, ScopeStats> stats_;
};

/**
 * RAII scope: construction notes the start time, destruction merges
 * elapsed wall time plus the per-thread traffic slots into the
 * context's profiler. A BytesOnly scope merges traffic and call count
 * but zero seconds — used for the fused-LS/GS byte attribution inside
 * GEMM epilogues/prologues, whose time is already counted by the
 * enclosing GEMM scope.
 *
 * `name` must outlive the scope (string literals in practice).
 */
class Scope
{
  public:
    enum class Kind { Timed, BytesOnly };

    Scope(const ExecContext &ctx, const char *name,
          Kind kind = Kind::Timed);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    /** True when a profiler is attached and counters are recorded. */
    bool active() const { return profiler_ != nullptr; }

    /** Credit `bytes` of operand reads to the calling thread's slot. */
    void addRead(uint64_t bytes)
    {
        if (profiler_ != nullptr)
            slots_[size_t(currentThreadSlot())].read += bytes;
    }

    /** Credit `bytes` of operand writes to the calling thread's slot. */
    void addWrite(uint64_t bytes)
    {
        if (profiler_ != nullptr)
            slots_[size_t(currentThreadSlot())].written += bytes;
    }

  private:
    /**
     * Padded to a cache line so two threads bumping adjacent slots
     * never false-share.
     */
    struct alignas(64) Slot
    {
        uint64_t read = 0;
        uint64_t written = 0;
    };

    Profiler *profiler_ = nullptr; //!< nullptr = inert scope
    const char *name_ = nullptr;
    Kind kind_ = Kind::Timed;
    int threads_ = 1;
    std::chrono::steady_clock::time_point start_;
    std::vector<Slot> slots_;
};

/**
 * Count an event against the context's profiler (inert, like Scope,
 * when none is attached).
 */
inline void
event(const ExecContext &ctx, const char *name, int64_t count = 1)
{
    if (ctx.profiler != nullptr)
        ctx.profiler->addEvent(name, count);
}

} // namespace prof
} // namespace softrec

#endif // SOFTREC_COMMON_PROFILER_HPP
