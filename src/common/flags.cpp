/**
 * @file
 * Flag parser implementation.
 */

#include "common/flags.hpp"

#include <cstdlib>
#include <sstream>

#include "common/logging.hpp"

namespace softrec {

void
FlagParser::addString(const std::string &name,
                      const std::string &default_value,
                      const std::string &help)
{
    SOFTREC_ASSERT(!flags_.count(name), "duplicate flag --%s",
                   name.c_str());
    flags_[name] = Flag{Kind::String, help, default_value};
    order_.push_back(name);
}

void
FlagParser::addInt(const std::string &name, int64_t default_value,
                   const std::string &help)
{
    SOFTREC_ASSERT(!flags_.count(name), "duplicate flag --%s",
                   name.c_str());
    flags_[name] =
        Flag{Kind::Int, help, std::to_string(default_value)};
    order_.push_back(name);
}

void
FlagParser::addBool(const std::string &name, const std::string &help)
{
    SOFTREC_ASSERT(!flags_.count(name), "duplicate flag --%s",
                   name.c_str());
    flags_[name] = Flag{Kind::Bool, help, "0"};
    order_.push_back(name);
}

bool
FlagParser::parse(const std::vector<std::string> &args)
{
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) {
            warn("unknown flag --%s", name.c_str());
            return false;
        }
        Flag &flag = it->second;
        if (flag.kind == Kind::Bool) {
            if (has_value && value != "true" && value != "false" &&
                value != "0" && value != "1") {
                warn("--%s takes no value", name.c_str());
                return false;
            }
            flag.value =
                (!has_value || value == "true" || value == "1") ? "1"
                                                                : "0";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= args.size()) {
                warn("--%s needs a value", name.c_str());
                return false;
            }
            value = args[++i];
        }
        if (flag.kind == Kind::Int) {
            char *end = nullptr;
            (void)std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                warn("--%s needs an integer, got '%s'", name.c_str(),
                     value.c_str());
                return false;
            }
        }
        flag.value = value;
    }
    return true;
}

std::string
FlagParser::getString(const std::string &name) const
{
    auto it = flags_.find(name);
    SOFTREC_ASSERT(it != flags_.end() &&
                   it->second.kind == Kind::String,
                   "unregistered string flag --%s", name.c_str());
    return it->second.value;
}

int64_t
FlagParser::getInt(const std::string &name) const
{
    auto it = flags_.find(name);
    SOFTREC_ASSERT(it != flags_.end() && it->second.kind == Kind::Int,
                   "unregistered int flag --%s", name.c_str());
    return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

bool
FlagParser::getBool(const std::string &name) const
{
    auto it = flags_.find(name);
    SOFTREC_ASSERT(it != flags_.end() && it->second.kind == Kind::Bool,
                   "unregistered bool flag --%s", name.c_str());
    return it->second.value == "1";
}

std::string
FlagParser::usage() const
{
    std::ostringstream out;
    for (const std::string &name : order_) {
        const Flag &flag = flags_.at(name);
        out << "  --" << name;
        if (flag.kind == Kind::String)
            out << " <string, default \"" << flag.value << "\">";
        else if (flag.kind == Kind::Int)
            out << " <int, default " << flag.value << ">";
        out << "\n      " << flag.help << "\n";
    }
    return out.str();
}

} // namespace softrec
