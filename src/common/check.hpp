/**
 * @file
 * Checked-build invariant machinery.
 *
 * SOFTREC_CHECK() is the hot-path companion to SOFTREC_ASSERT(): the
 * condition is compiled in (and enforced) only when the build defines
 * SOFTREC_CHECKED_BUILD (CMake: -DSOFTREC_CHECKED_BUILD=ON), so
 * per-element bounds checks and numeric invariants cost nothing in
 * release builds while the CI checked build still exercises them.
 * The disabled form keeps the condition inside a constant-false branch
 * so it stays type-checked and variables used only in checks do not
 * trigger -Wunused warnings.
 *
 * The checkXxx() helpers below enforce the softmax-recomposition
 * numeric contracts from Eq. (2) of the paper: no NaN poison in
 * kernel operands, reconstruction factors r' in [0, 1] (zero only for
 * fully masked sub-vectors), and post-GS probability rows summing
 * to ~1. They panic unconditionally when called; call sites gate on
 * `if constexpr (kCheckedBuild)`.
 */

#ifndef SOFTREC_COMMON_CHECK_HPP
#define SOFTREC_COMMON_CHECK_HPP

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace softrec {

/** True when this translation unit was compiled as a checked build. */
#ifdef SOFTREC_CHECKED_BUILD
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/**
 * Enforce an invariant in checked builds only. Compiles to nothing
 * (but stays type-checked) when SOFTREC_CHECKED_BUILD is not defined.
 */
#define SOFTREC_CHECK(cond, ...)                                          \
    do {                                                                  \
        if (::softrec::kCheckedBuild && !(cond)) {                        \
            ::softrec::panic("checked build: '%s' failed at %s:%d: %s",   \
                             #cond, __FILE__, __LINE__,                   \
                             ::softrec::strprintf(__VA_ARGS__).c_str());  \
        }                                                                 \
    } while (0)

/** Tolerance for post-GS row sums; covers FP16 storage rounding. */
inline constexpr double kRowSumTolerance = 1e-2;

/**
 * Panic if any element is NaN, +inf, or (unless allowed as mask
 * padding) -inf. Works on any tensor-like type with data()/numel().
 */
template <typename TensorT>
void
checkFinite(const TensorT &t, const char *what, bool allow_neg_inf = false)
{
    const auto *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        const float v = float(p[i]);
        if (std::isnan(v)) {
            panic("%s: NaN poison at linear index %lld", what,
                  (long long)i);
        }
        if (std::isinf(v) && !(allow_neg_inf && v < 0.0f)) {
            panic("%s: non-finite value %f at linear index %lld", what,
                  double(v), (long long)i);
        }
    }
}

/**
 * Panic unless every row of a rank-2 probability matrix sums to ~1.
 * Fully masked rows (all-zero) are allowed: safe softmax emits zeros
 * when every logit is -inf.
 */
template <typename TensorT>
void
checkRowSumsNearOne(const TensorT &y, const char *what)
{
    if (y.shape().rank() != 2) {
        panic("%s: row-sum check needs rank 2, got %s", what,
              y.shape().toString().c_str());
    }
    const int64_t rows = y.shape().dim(0);
    const int64_t cols = y.shape().dim(1);
    for (int64_t i = 0; i < rows; ++i) {
        double sum = 0.0;
        for (int64_t j = 0; j < cols; ++j)
            sum += double(float(y.at(i, j)));
        if (sum != 0.0 && std::abs(sum - 1.0) > kRowSumTolerance) {
            panic("%s: row %lld sums to %.6f, expected ~1 "
                  "(or 0 for a fully masked row)",
                  what, (long long)i, sum);
        }
    }
}

/**
 * Panic unless every reconstruction factor r' = e^(m'-m) / d lies in
 * [0, 1]. Exact zero is legal only for fully masked sub-vectors; any
 * negative, above-one, or non-finite factor means the IR reduction
 * was corrupted.
 */
template <typename TensorT>
void
checkReconFactors(const TensorT &r, const char *what)
{
    const auto *p = r.data();
    for (int64_t i = 0; i < r.numel(); ++i) {
        const float v = float(p[i]);
        if (!(v >= 0.0f) || v > 1.0f || std::isnan(v)) {
            panic("%s: reconstruction factor %f at linear index %lld "
                  "outside (0, 1] (0 allowed only for masked "
                  "sub-vectors)",
                  what, double(v), (long long)i);
        }
    }
}

/** Span adapter so the vector-based BSR paths can reuse the checks. */
template <typename T>
struct SpanView
{
    const T *ptr;
    int64_t count;

    const T *data() const { return ptr; }
    int64_t numel() const { return count; }
};

template <typename T>
SpanView<T>
spanOf(const std::vector<T> &v)
{
    return SpanView<T>{v.data(), int64_t(v.size())};
}

} // namespace softrec

#endif // SOFTREC_COMMON_CHECK_HPP
