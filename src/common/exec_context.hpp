/**
 * @file
 * Host-parallel execution runtime: a persistent ThreadPool, the
 * chunked parallelFor primitive built on it, and ExecContext — the
 * handle every functional *Run entry point takes as its first
 * parameter.
 *
 * Determinism contract: parallelFor splits [begin, end) into chunks
 * of exactly `grain` iterations (the last chunk may be ragged). The
 * chunk boundaries depend only on the range and the grain — never on
 * the thread count — and every kernel writes disjoint outputs per
 * chunk with the same per-chunk accumulation order as the serial
 * loop. Outputs are therefore bit-identical for any thread count,
 * including the serial default (verified by
 * tests/test_parallel_determinism.cpp).
 */

#ifndef SOFTREC_COMMON_EXEC_CONTEXT_HPP
#define SOFTREC_COMMON_EXEC_CONTEXT_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace softrec {

namespace prof {
class Profiler; // common/profiler.hpp
}

/**
 * Persistent worker pool. `threads` is the total concurrency: the
 * pool spawns `threads - 1` workers and the submitting thread
 * participates in every run, so a 1-thread pool has no workers and
 * executes inline.
 *
 * run() is exception-safe (the first exception thrown by a chunk is
 * rethrown on the submitting thread after all claimed chunks finish)
 * and nested-safe (a run() issued from inside a chunk executes its
 * chunks inline on the calling thread instead of deadlocking on the
 * busy pool). Concurrent top-level submissions from two different
 * external threads are not supported.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the submitting thread). */
    int threads() const { return int(workers_.size()) + 1; }

    /**
     * Execute chunk(0) .. chunk(num_chunks - 1) across the pool.
     * Chunks are claimed dynamically, so completion *order* varies
     * with scheduling — chunks must write disjoint outputs.
     */
    void run(int64_t num_chunks,
             const std::function<void(int64_t)> &chunk);

    /**
     * True while the calling thread is executing a chunk of some
     * run() — on a worker or on the participating submitter. Nested
     * parallel regions use this to degrade to inline execution.
     */
    static bool insideRun();

  private:
    void workerLoop(int slot);
    /** Claim and execute chunks of the current job until exhausted. */
    void drain(const std::function<void(int64_t)> &chunk, int64_t total);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    const std::function<void(int64_t)> *job_ = nullptr;
    std::atomic<int64_t> next_{0}; //!< next unclaimed chunk index
    int64_t total_ = 0;            //!< chunks in the current job
    int64_t pending_ = 0;          //!< chunks not yet completed
    int64_t active_ = 0;           //!< workers inside drain()
    uint64_t generation_ = 0;      //!< bumped per job to wake workers
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * Execution options threaded through every functional *Run entry
 * point. Default-constructed (no pool) it runs everything serially,
 * so existing call sites migrate mechanically; fromEnv() attaches the
 * process-wide pool sized by SOFTREC_THREADS.
 *
 * Future execution options (NUMA placement, streams, profiling hooks)
 * extend this struct without touching kernel signatures again.
 */
struct ExecContext
{
    ThreadPool *pool = nullptr; //!< nullptr = serial execution
    prof::Profiler *profiler = nullptr; //!< nullptr = profiling off

    /** Concurrency this context executes with. */
    int threads() const { return pool ? pool->threads() : 1; }

    /** True when no pool is attached (serial execution). */
    bool serial() const { return pool == nullptr; }

    /**
     * Context backed by the process-wide shared pool, sized by the
     * SOFTREC_THREADS environment variable. The variable is latched
     * on the first call (unset, empty, or 1 means serial); use
     * resetSharedPoolForTest() to re-read it.
     */
    static ExecContext fromEnv();

    /**
     * Tear down the process-wide shared pool and un-latch the
     * SOFTREC_THREADS parse, so the next fromEnv() re-reads the
     * environment. Test-only: lets one process exercise both the
     * serial and pooled paths. The caller must guarantee that no
     * live ExecContext still references the old pool and that no
     * parallelFor is in flight; worker threads are joined before the
     * call returns, which orders all of their per-thread profiler
     * slot writes before any later profiler merge.
     */
    static void resetSharedPoolForTest();
};

/**
 * Parse a SOFTREC_THREADS-style thread count. Returns 1 (serial) for
 * null/empty input and warns + returns 1 for anything that is not an
 * integer in [1, 1024]. Exposed for the unit tests.
 */
int parseThreadCount(const char *text);

/**
 * Strict variant of parseThreadCount for callers that must not boot
 * misconfigured (the serving engine): returns the parsed count, or
 * std::nullopt with an actionable message in *why when the text is
 * not an integer in [1, 1024]. Null/empty input is valid (serial).
 */
std::optional<int> tryParseThreadCount(const char *text,
                                       std::string *why);

/**
 * Slot index of the calling thread for per-thread accumulation:
 * 0 for any thread that is not a pool worker (the submitter included),
 * 1 + worker index for pool workers. Distinct concurrently-running
 * threads of one run() always map to distinct slots.
 */
int currentThreadSlot();

/**
 * Upper bound (exclusive) on currentThreadSlot() across every thread
 * in the process: 1 + the largest worker count of any ThreadPool
 * constructed so far. Size per-thread accumulator arrays with this.
 */
int maxThreadSlots();

/**
 * Run body(chunk_begin, chunk_end) over [begin, end) in chunks of
 * `grain` iterations. Chunk boundaries are a pure function of
 * (begin, end, grain) — see the determinism contract above. Runs
 * inline when the context is serial, the range fits one chunk, or the
 * caller is already inside a parallel region (nested case).
 */
void parallelFor(const ExecContext &ctx, int64_t begin, int64_t end,
                 int64_t grain,
                 const std::function<void(int64_t, int64_t)> &body);

} // namespace softrec

#endif // SOFTREC_COMMON_EXEC_CONTEXT_HPP
