/**
 * @file
 * Implementation of the statistics registry.
 */

#include "common/stats.hpp"

#include <cmath>

namespace softrec {

void
StatGroup::add(const std::string &stat, double delta)
{
    auto [it, inserted] = values_.try_emplace(stat, 0.0);
    if (inserted)
        order_.push_back(stat);
    it->second += delta;
}

void
StatGroup::set(const std::string &stat, double value)
{
    auto [it, inserted] = values_.try_emplace(stat, value);
    if (inserted)
        order_.push_back(stat);
    else
        it->second = value;
}

double
StatGroup::get(const std::string &stat) const
{
    auto it = values_.find(stat);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string &stat) const
{
    return values_.count(stat) > 0;
}

std::vector<std::pair<std::string, double>>
StatGroup::entries() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(order_.size());
    for (const auto &name : order_)
        out.emplace_back(name, values_.at(name));
    return out;
}

void
StatGroup::reset()
{
    values_.clear();
    order_.clear();
}

void
RunningStat::sample(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    sumSquares_ += value * value;
}

double
RunningStat::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSquares_ / double(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

} // namespace softrec
