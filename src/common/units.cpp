/**
 * @file
 * Implementation of unit-formatting helpers.
 */

#include "common/units.hpp"

#include "common/logging.hpp"

namespace softrec {

std::string
formatBytes(uint64_t bytes)
{
    if (bytes >= GiB)
        return strprintf("%.2f GiB", double(bytes) / double(GiB));
    if (bytes >= MiB)
        return strprintf("%.2f MiB", double(bytes) / double(MiB));
    if (bytes >= KiB)
        return strprintf("%.2f KiB", double(bytes) / double(KiB));
    return strprintf("%llu B", static_cast<unsigned long long>(bytes));
}

std::string
formatSeconds(double seconds)
{
    if (seconds >= 1.0)
        return strprintf("%.3f s", seconds);
    if (seconds >= 1e-3)
        return strprintf("%.3f ms", seconds * 1e3);
    if (seconds >= 1e-6)
        return strprintf("%.3f us", seconds * 1e6);
    return strprintf("%.1f ns", seconds * 1e9);
}

std::string
formatFlops(double flops_per_sec)
{
    if (flops_per_sec >= Tera)
        return strprintf("%.1f TFLOPS", flops_per_sec / Tera);
    return strprintf("%.1f GFLOPS", flops_per_sec / Giga);
}

std::string
formatBandwidth(double bytes_per_sec)
{
    return strprintf("%.1f GB/s", bytes_per_sec / Giga);
}

} // namespace softrec
