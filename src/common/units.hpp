/**
 * @file
 * Physical units and human-readable formatting helpers.
 *
 * The simulator internally keeps time in seconds (double), sizes in bytes
 * (uint64_t), bandwidth in bytes/second and compute rates in FLOP/s.
 */

#ifndef SOFTREC_COMMON_UNITS_HPP
#define SOFTREC_COMMON_UNITS_HPP

#include <cstdint>
#include <string>

namespace softrec {

/** Bytes in one kibibyte. */
inline constexpr uint64_t KiB = 1024ull;
/** Bytes in one mebibyte. */
inline constexpr uint64_t MiB = 1024ull * KiB;
/** Bytes in one gibibyte. */
inline constexpr uint64_t GiB = 1024ull * MiB;

/** Decimal giga, used for GB/s and GFLOPS. */
inline constexpr double Giga = 1e9;
/** Decimal tera, used for TFLOPS. */
inline constexpr double Tera = 1e12;

/** Format a byte count as e.g. "512.0 MiB". */
std::string formatBytes(uint64_t bytes);

/** Format a duration in seconds as e.g. "1.25 ms". */
std::string formatSeconds(double seconds);

/** Format a FLOP/s rate as e.g. "169.0 TFLOPS". */
std::string formatFlops(double flops_per_sec);

/** Format a bandwidth in B/s as e.g. "1555.0 GB/s". */
std::string formatBandwidth(double bytes_per_sec);

} // namespace softrec

#endif // SOFTREC_COMMON_UNITS_HPP
