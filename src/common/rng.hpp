/**
 * @file
 * Deterministic random-number generation for workloads and tests.
 *
 * A small xoshiro256** generator wrapped with the distributions the
 * workload generators need (uniform, normal, Zipfian). Determinism across
 * platforms matters more than statistical sophistication here, so we do
 * not use <random> distributions (their sequences are
 * implementation-defined).
 */

#ifndef SOFTREC_COMMON_RNG_HPP
#define SOFTREC_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace softrec {

/**
 * Deterministic pseudo-random generator (xoshiro256**) with the
 * distributions used throughout SoftRec.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same sequence. */
    explicit Rng(uint64_t seed = 0x5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be positive. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Zipfian rank in [0, n) with exponent s (s = 0 is uniform).
     * Uses an inverse-CDF table; cheap for repeated draws with the same
     * (n, s) because the table is cached.
     */
    uint64_t zipf(uint64_t n, double s);

    /** Sample k distinct integers from [0, n) (k <= n). */
    std::vector<uint64_t> sampleWithoutReplacement(uint64_t n, uint64_t k);

  private:
    uint64_t state_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;

    // Cached Zipf CDF for the last (n, s) pair.
    uint64_t zipfN_ = 0;
    double zipfS_ = -1.0;
    std::vector<double> zipfCdf_;
};

} // namespace softrec

#endif // SOFTREC_COMMON_RNG_HPP
