/**
 * @file
 * ASCII table rendering for the benchmark harnesses. Every figure/table
 * reproduction prints one of these so the bench output mirrors the
 * paper's rows and series.
 */

#ifndef SOFTREC_COMMON_TABLE_HPP
#define SOFTREC_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace softrec {

/**
 * A simple column-aligned text table with a title and a header row.
 */
class TextTable
{
  public:
    /** Create a table; the title prints above the header. */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header cells (defines the column count). */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    // A row with no cells renders as a separator.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace softrec

#endif // SOFTREC_COMMON_TABLE_HPP
