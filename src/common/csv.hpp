/**
 * @file
 * Minimal CSV writer so every figure harness can leave a
 * machine-readable copy of its series next to the console table
 * (plotting-ready reproduction artifacts).
 */

#ifndef SOFTREC_COMMON_CSV_HPP
#define SOFTREC_COMMON_CSV_HPP

#include <string>
#include <vector>

namespace softrec {

/** Row-oriented CSV document with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Set the header row (defines the column count). */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render the document to a string. */
    std::string render() const;

    /**
     * Write to a file; returns false (with a warn) on I/O failure
     * rather than aborting a bench run.
     */
    bool writeFile(const std::string &path) const;

    /** Number of data rows so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    static std::string escape(const std::string &cell);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace softrec

#endif // SOFTREC_COMMON_CSV_HPP
