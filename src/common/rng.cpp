/**
 * @file
 * Implementation of the deterministic RNG.
 */

#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace softrec {

namespace {

/** splitmix64, used only to expand the seed into the xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    SOFTREC_ASSERT(n > 0, "uniformInt needs a positive range");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return value % n;
}

double
Rng::normal()
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(theta);
    haveSpareNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    SOFTREC_ASSERT(n > 0, "zipf needs a positive support size");
    if (zipfN_ != n || zipfS_ != s) {
        zipfCdf_.resize(n);
        double total = 0.0;
        for (uint64_t rank = 0; rank < n; ++rank) {
            total += 1.0 / std::pow(double(rank + 1), s);
            zipfCdf_[rank] = total;
        }
        for (auto &c : zipfCdf_)
            c /= total;
        zipfN_ = n;
        zipfS_ = s;
    }
    const double u = uniform();
    auto it = std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
    return uint64_t(it - zipfCdf_.begin());
}

std::vector<uint64_t>
Rng::sampleWithoutReplacement(uint64_t n, uint64_t k)
{
    SOFTREC_ASSERT(k <= n, "cannot sample %llu of %llu without replacement",
                   (unsigned long long)k, (unsigned long long)n);
    // Floyd's algorithm: O(k) memory, no O(n) shuffle.
    std::vector<uint64_t> chosen;
    chosen.reserve(k);
    for (uint64_t j = n - k; j < n; ++j) {
        uint64_t t = uniformInt(j + 1);
        if (std::find(chosen.begin(), chosen.end(), t) != chosen.end())
            t = j;
        chosen.push_back(t);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace softrec
