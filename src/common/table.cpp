/**
 * @file
 * Implementation of the ASCII table renderer.
 */

#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/logging.hpp"

namespace softrec {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SOFTREC_ASSERT(!header_.empty(), "setHeader must precede addRow");
    SOFTREC_ASSERT(cells.size() == header_.size(),
                   "row width %zu != header width %zu",
                   cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        std::string line = "+";
        for (size_t w : widths)
            line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };
    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c];
            line += std::string(widths[c] - cells[c].size() + 1, ' ');
            line += "|";
        }
        return line + "\n";
    };

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    out << rule() << renderRow(header_) << rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out << rule();
        else
            out << renderRow(row);
    }
    out << rule();
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace softrec
