/**
 * @file
 * A small named-statistics registry, in the spirit of gem5's stats
 * package. Kernels and the simulator record scalars into named groups;
 * benches and reports read them back or dump everything.
 */

#ifndef SOFTREC_COMMON_STATS_HPP
#define SOFTREC_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace softrec {

/**
 * A group of named scalar statistics. Values accumulate; reset() clears.
 */
class StatGroup
{
  public:
    /** Create a group with a dotted name, e.g. "gpu.dram". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Group name. */
    const std::string &name() const { return name_; }

    /** Add delta to the named scalar (creating it at zero). */
    void add(const std::string &stat, double delta);

    /** Overwrite the named scalar. */
    void set(const std::string &stat, double value);

    /** Read a scalar; returns 0 for unknown names. */
    double get(const std::string &stat) const;

    /** True if the scalar has ever been written. */
    bool has(const std::string &stat) const;

    /** All (name, value) pairs in insertion order. */
    std::vector<std::pair<std::string, double>> entries() const;

    /** Clear every scalar back to absent. */
    void reset();

  private:
    std::string name_;
    std::map<std::string, double> values_;
    std::vector<std::string> order_;
};

/**
 * Accumulates a distribution's summary statistics without storing
 * samples: count, sum, min, max, mean, and (population) stddev.
 */
class RunningStat
{
  public:
    /** Record one sample. */
    void sample(double value);

    /** Number of samples recorded. */
    uint64_t count() const { return count_; }
    /** Sum of samples. */
    double sum() const { return sum_; }
    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    /** Population standard deviation (0 when empty). */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSquares_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace softrec

#endif // SOFTREC_COMMON_STATS_HPP
