/**
 * @file
 * CSV writer implementation.
 */

#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace softrec {

void
CsvWriter::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    SOFTREC_ASSERT(!header_.empty(), "setHeader must precede addRow");
    SOFTREC_ASSERT(cells.size() == header_.size(),
                   "CSV row width %zu != header width %zu",
                   cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    return out + "\"";
}

std::string
CsvWriter::render() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out << ',';
            out << escape(cells[i]);
        }
        out << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file) {
        warn("cannot write CSV to %s", path.c_str());
        return false;
    }
    file << render();
    return bool(file);
}

} // namespace softrec
