/**
 * @file
 * Logging and error-reporting primitives for SoftRec.
 *
 * Follows the gem5 convention: fatal() reports a condition that is the
 * user's fault (bad configuration, invalid arguments) and exits cleanly,
 * while panic() reports an internal invariant violation (a SoftRec bug)
 * and aborts. inform() and warn() emit status without stopping.
 */

#ifndef SOFTREC_COMMON_LOGGING_HPP
#define SOFTREC_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace softrec {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

namespace log {

/** Severity levels for the message sink. */
enum class Level { Info, Warn, Fatal, Panic };

/** Sink callback type; tests can intercept messages. */
using Sink = void (*)(Level, const std::string &);

/** Replace the message sink; returns the previous sink. */
Sink setSink(Sink sink);

/** Emit a message at the given level through the current sink. */
void emit(Level level, const std::string &msg);

} // namespace log

/** Informative status message; never stops execution. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error (bad config, bad arguments)
 * and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a SoftRec bug) and abort.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an internal invariant with a formatted explanation.
 * Unlike assert(3) this is active in all build types.
 */
#define SOFTREC_ASSERT(cond, ...)                                         \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::softrec::panic("assertion '%s' failed: %s", #cond,          \
                             ::softrec::strprintf(__VA_ARGS__).c_str());  \
        }                                                                 \
    } while (0)

} // namespace softrec

#endif // SOFTREC_COMMON_LOGGING_HPP
