/**
 * @file
 * Machine-readable benchmark reports: every bench writes a
 * `BENCH_<name>.json` so the perf trajectory is tracked across PRs
 * (validated by tools/check_bench_json.py).
 *
 * Schema "softrec-bench-v1":
 *
 *     {
 *       "schema": "softrec-bench-v1",
 *       "name": "<bench name>",
 *       "config": { "<key>": <string|number|bool>, ... },
 *       "kernels": [
 *         { "name": "<scope>", "ms": <number>,
 *           "bytes_read": <integer>, "bytes_written": <integer>,
 *           "calls": <integer>, "threads": <integer> }, ...
 *       ],
 *       "derived": { "<key>": <number>, ... }
 *     }
 *
 * All numbers are emitted with std::to_chars, so the output is
 * locale-independent by construction.
 */

#ifndef SOFTREC_COMMON_BENCH_REPORT_HPP
#define SOFTREC_COMMON_BENCH_REPORT_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/profiler.hpp"

namespace softrec {

/** One per-kernel row of a benchmark report. */
struct BenchKernelRow
{
    std::string name;
    double ms = 0.0;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    int64_t calls = 0;
    int threads = 1;
};

/** Builder for one BENCH_<name>.json document. */
class BenchReport
{
  public:
    explicit BenchReport(std::string name);

    /** Record a config entry (insertion order is preserved). */
    void setConfig(const std::string &key, const std::string &value);
    void setConfig(const std::string &key, const char *value);
    void setConfig(const std::string &key, int64_t value);
    void setConfig(const std::string &key, double value);
    void setConfig(const std::string &key, bool value);

    /** Append one kernel row. */
    void addKernel(const BenchKernelRow &row);

    /** Append every scope of a profiler snapshot, sorted by name. */
    void addKernels(const prof::Profiler &profiler);

    /** Record a derived metric (speedup, traffic ratio, ...). */
    void setDerived(const std::string &key, double value);

    /** Render the JSON document (trailing newline included). */
    std::string render() const;

    /** Render to `path`; warns and returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Conventional output path: `BENCH_<name>.json`, placed under
     * $SOFTREC_BENCH_DIR when that is set (CI points it at the repo
     * root so the perf trajectory accumulates there instead of being
     * stranded inside throwaway build trees).
     */
    std::string defaultPath() const;

  private:
    std::string name_;
    //! key -> already-rendered JSON value
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<BenchKernelRow> kernels_;
    std::vector<std::pair<std::string, double>> derived_;
};

/** Locale-independent shortest-round-trip JSON number. */
std::string jsonNumber(double value);

/** JSON string literal, quotes included. */
std::string jsonQuote(const std::string &text);

} // namespace softrec

#endif // SOFTREC_COMMON_BENCH_REPORT_HPP
