/**
 * @file
 * Implementation of the SoftRec logging primitives.
 */

#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <locale.h>
#include <stdexcept>
#include <vector>

namespace softrec {

namespace {

/**
 * Pins the calling thread to the "C" locale for its lifetime, so
 * printf-family float formatting always uses '.' as the decimal
 * separator — a comma-decimal process locale must not corrupt CSV,
 * table, or JSON output built through strprintf.
 */
class CLocaleGuard
{
  public:
    CLocaleGuard()
    {
        static locale_t c_locale =
            newlocale(LC_ALL_MASK, "C", locale_t(0));
        if (c_locale != locale_t(0))
            prev_ = uselocale(c_locale);
    }
    ~CLocaleGuard()
    {
        if (prev_ != locale_t(0))
            uselocale(prev_);
    }
    CLocaleGuard(const CLocaleGuard &) = delete;
    CLocaleGuard &operator=(const CLocaleGuard &) = delete;

  private:
    locale_t prev_ = locale_t(0);
};

} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    const CLocaleGuard c_locale;
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

namespace log {

namespace {

const char *
levelTag(Level level)
{
    switch (level) {
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Fatal: return "fatal";
      case Level::Panic: return "panic";
    }
    return "?";
}

void
defaultSink(Level level, const std::string &msg)
{
    std::FILE *stream = level == Level::Info ? stdout : stderr;
    std::fprintf(stream, "%s: %s\n", levelTag(level), msg.c_str());
    std::fflush(stream);
}

Sink currentSink = defaultSink;

} // namespace

Sink
setSink(Sink sink)
{
    Sink prev = currentSink;
    currentSink = sink ? sink : defaultSink;
    return prev;
}

void
emit(Level level, const std::string &msg)
{
    currentSink(level, msg);
}

} // namespace log

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    log::emit(log::Level::Info, vstrprintf(fmt, args));
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    log::emit(log::Level::Warn, vstrprintf(fmt, args));
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    log::emit(log::Level::Fatal, msg);
    // Thrown (rather than exit(1)) so that unit tests can observe fatal
    // conditions; main() wrappers catch FatalError and exit cleanly.
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    log::emit(log::Level::Panic, msg);
    throw std::logic_error("panic: " + msg);
}

} // namespace softrec
