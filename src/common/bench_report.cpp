/**
 * @file
 * Benchmark JSON report implementation.
 */

#include "common/bench_report.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace softrec {

std::string
jsonNumber(double value)
{
    // JSON has no inf/nan literals; they only arise from degenerate
    // inputs (e.g. a zero-traffic ratio), so emit null and let the
    // schema checker flag any row where it matters.
    if (!std::isfinite(value))
        return "null";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", c);
                out += esc;
            } else {
                out += c;
            }
        }
    }
    return out + "\"";
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void
BenchReport::setConfig(const std::string &key, const std::string &value)
{
    config_.emplace_back(key, jsonQuote(value));
}

void
BenchReport::setConfig(const std::string &key, const char *value)
{
    setConfig(key, std::string(value));
}

void
BenchReport::setConfig(const std::string &key, int64_t value)
{
    config_.emplace_back(key, std::to_string(value));
}

void
BenchReport::setConfig(const std::string &key, double value)
{
    config_.emplace_back(key, jsonNumber(value));
}

void
BenchReport::setConfig(const std::string &key, bool value)
{
    config_.emplace_back(key, value ? "true" : "false");
}

void
BenchReport::addKernel(const BenchKernelRow &row)
{
    kernels_.push_back(row);
}

void
BenchReport::addKernels(const prof::Profiler &profiler)
{
    for (const auto &[name, stats] : profiler.snapshot()) {
        BenchKernelRow row;
        row.name = name;
        row.ms = stats.seconds * 1e3;
        row.bytesRead = stats.bytesRead;
        row.bytesWritten = stats.bytesWritten;
        row.calls = stats.calls;
        row.threads = stats.maxThreads;
        kernels_.push_back(row);
    }
}

void
BenchReport::setDerived(const std::string &key, double value)
{
    derived_.emplace_back(key, value);
}

std::string
BenchReport::render() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"softrec-bench-v1\",\n";
    out << "  \"name\": " << jsonQuote(name_) << ",\n";

    out << "  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
        out << (i ? ",\n    " : "\n    ")
            << jsonQuote(config_[i].first) << ": "
            << config_[i].second;
    }
    out << (config_.empty() ? "" : "\n  ") << "},\n";

    out << "  \"kernels\": [";
    for (size_t i = 0; i < kernels_.size(); ++i) {
        const BenchKernelRow &row = kernels_[i];
        out << (i ? ",\n    " : "\n    ") << "{\"name\": "
            << jsonQuote(row.name)
            << ", \"ms\": " << jsonNumber(row.ms)
            << ", \"bytes_read\": " << row.bytesRead
            << ", \"bytes_written\": " << row.bytesWritten
            << ", \"calls\": " << row.calls
            << ", \"threads\": " << row.threads << "}";
    }
    out << (kernels_.empty() ? "" : "\n  ") << "],\n";

    out << "  \"derived\": {";
    for (size_t i = 0; i < derived_.size(); ++i) {
        out << (i ? ",\n    " : "\n    ")
            << jsonQuote(derived_[i].first) << ": "
            << jsonNumber(derived_[i].second);
    }
    out << (derived_.empty() ? "" : "\n  ") << "}\n";
    out << "}\n";
    return out.str();
}

bool
BenchReport::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file) {
        warn("cannot write bench report to %s", path.c_str());
        return false;
    }
    file << render();
    return bool(file);
}

std::string
BenchReport::defaultPath() const
{
    std::string file = "BENCH_" + name_ + ".json";
    const char *dir = std::getenv("SOFTREC_BENCH_DIR");
    if (dir == nullptr || *dir == '\0')
        return file;
    std::string prefix(dir);
    if (prefix.back() != '/')
        prefix += '/';
    return prefix + file;
}

} // namespace softrec
