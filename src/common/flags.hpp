/**
 * @file
 * Tiny command-line flag parser for the tools: supports
 * `--name value`, `--name=value`, boolean `--name`, and positional
 * arguments, with registered descriptions for usage text.
 */

#ifndef SOFTREC_COMMON_FLAGS_HPP
#define SOFTREC_COMMON_FLAGS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace softrec {

/** Declarative flag set + parser. */
class FlagParser
{
  public:
    /** Register a string flag with a default and help text. */
    void addString(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);
    /** Register an integer flag. */
    void addInt(const std::string &name, int64_t default_value,
                const std::string &help);
    /** Register a boolean flag (present = true). */
    void addBool(const std::string &name, const std::string &help);

    /**
     * Parse argv-style arguments (excluding argv[0]). Returns false
     * (with a warn) on an unknown flag or a malformed value.
     */
    bool parse(const std::vector<std::string> &args);

    /** Value accessors (registered defaults if unset). */
    std::string getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Arguments that were not flags, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render usage text from the registered flags. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Bool };
    struct Flag
    {
        Kind kind;
        std::string help;
        std::string value; // string form; bools use "0"/"1"
    };

    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace softrec

#endif // SOFTREC_COMMON_FLAGS_HPP
