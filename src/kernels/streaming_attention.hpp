/**
 * @file
 * Single-pass fused streaming attention (online softmax).
 *
 * The recomposed strategies (core/recomposition.hpp) cut the softmax
 * layer's off-chip traffic by fusing LS/GS into the adjacent GEMMs,
 * but they still materialize the full L x kv score matrix between the
 * two GEMMs. The streaming kernel is the logical endpoint of that
 * line (FLASH-D / operation-fusion style): for each query row it
 * iterates key/value tiles keeping a running maximum m, a running
 * denominator d, and a rescaled fp32 output accumulator, so the score
 * matrix never exists in memory — only one kStreamKeyTile-wide score
 * tile per row is ever staged, and it lives in a per-strip workspace.
 * The final 1/d is folded into the output epilogue as one reciprocal
 * multiply per row (division-free inner loop).
 *
 * Numerics contract: streaming accumulates in a different order than
 * the recomposed path, so equivalence with it is *tolerance-based*
 * (max-abs-error bounds, see docs/ARCHITECTURE.md "Fused streaming
 * attention"), never bit-identity. Within the streaming backend,
 * however, determinism is exact: the prefill kernel and
 * decodeAttendStreamRun process key tiles of the same constant width
 * in the same ascending order with an identical per-tile update
 * sequence, and causally masked tail positions are exact no-ops, so
 * incremental decode is bit-identical to full-prefix recompute for
 * any thread count, SIMD backend, and batch composition — the same
 * KV-equivalence contract the recomposed path offers.
 */

#ifndef SOFTREC_KERNELS_STREAMING_ATTENTION_HPP
#define SOFTREC_KERNELS_STREAMING_ATTENTION_HPP

#include <cstdint>

#include "common/exec_context.hpp"
#include "fp16/half.hpp"
#include "kernels/decode_attention.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/**
 * Attention execution backend, selected by the SOFTREC_ATTENTION
 * environment knob (config layer) or set explicitly on SdaConfig /
 * FunctionalLayerConfig. Recomposed runs the paper's strategy
 * pipeline (Baseline / SD / SDF); Streaming runs the single-pass
 * online-softmax kernel and ignores the strategy.
 */
enum class AttentionBackend
{
    Recomposed, //!< strategy pipeline over a materialized score matrix
    Streaming,  //!< tiled online softmax; no score matrix in memory
};

/** Display name ("recomposed", "streaming"). */
const char *attentionBackendName(AttentionBackend backend);

/**
 * Parse the SOFTREC_ATTENTION environment variable: unset or empty
 * means Recomposed, "recomposed" / "streaming" select the backend,
 * and anything else hard-errors (fatal) — the ServeConfig::fromEnv
 * policy, so a typo can never silently run the wrong kernel.
 */
AttentionBackend attentionBackendFromEnv();

/**
 * Key/value tile width of the streaming kernels. Shared by the
 * prefill kernel and decodeAttendStreamRun: processing key tiles of
 * the same constant width in the same order is what makes streaming
 * decode bit-identical to streaming prefill rows.
 */
inline constexpr int64_t kStreamKeyTile = 64;

/** Shape of one single-head streaming-attention problem. */
struct StreamingAttentionDesc
{
    int64_t seqLen = 0;      //!< query rows L
    int64_t kvLen = 0;       //!< key/value rows
    int64_t dHead = 64;      //!< head width
    bool causalMask = false; //!< row i attends positions [0, i]
    double scale = 1.0;      //!< QK^T scale (1/sqrt(dHead))
};

/**
 * Single-pass attention over one head: out = softmax(scale * QK^T) V
 * without ever writing the score matrix. K is packed once into fp32
 * panels ([tile][dHead][kStreamKeyTile], the gemm.cpp transposeB
 * layout) and V into fp32 rows; query strips then run in parallel,
 * each row folding one key tile at a time into its running (m, d,
 * accumulator) state. Deterministic for any thread count (rows are
 * row-local); tolerance-equal to the recomposed path.
 *
 * @param q   [seqLen, dHead] fp16
 * @param k,v [kvLen, dHead] fp16
 * @param out [seqLen, dHead] fp16
 */
void streamingAttentionRun(const ExecContext &ctx,
                           const StreamingAttentionDesc &desc,
                           const Tensor<Half> &q, const Tensor<Half> &k,
                           const Tensor<Half> &v, Tensor<Half> &out);

/**
 * Streaming (online-softmax, division-free) variant of
 * decodeAttendRun: same signature, same cached-row access, but the
 * score row is never staged through memory — each kStreamKeyTile-wide
 * tile of scores is folded into running (m, d, accumulator) state,
 * and the single 1/d lands in the output epilogue. Bit-identical to
 * the rows streamingAttentionRun produces for the same context (see
 * the file comment); tolerance-equal to decodeAttendRun.
 */
void decodeAttendStreamRun(const ExecContext &ctx,
                           const DecodeAttendDesc &desc,
                           const Half *q_row, const KvRowsView &k,
                           const KvRowsView &v, Half *out,
                           DecodeAttendWorkspace *ws = nullptr);

} // namespace softrec

#endif // SOFTREC_KERNELS_STREAMING_ATTENTION_HPP
