/**
 * @file
 * Dense GEMM kernel with the outer-product dataflow of Fig. 3(b), plus
 * the fused epilogues/prologues that softmax recomposition needs:
 *
 *  - epilogue: scale, causal mask, bias, GeLU, and Local Softmax (LS) —
 *    the paper's fusion of the first decomposed softmax sub-layer into
 *    the preceding MatMul (Section 3.3);
 *  - prologue: Global Scaling (GS) applied while loading the LHS
 *    operand — the fusion of the last sub-layer into the following
 *    MatMul.
 *
 * Each kernel exposes (a) an analytical launch profile for the GPU
 * cost model and (b) a functional CPU implementation that mirrors the
 * tiled dataflow exactly (fp32 accumulation, fp16 storage), used by the
 * tests and examples.
 */

#ifndef SOFTREC_KERNELS_GEMM_HPP
#define SOFTREC_KERNELS_GEMM_HPP

#include <string>

#include "common/exec_context.hpp"
#include "fp16/half.hpp"
#include "kernels/kernel_common.hpp"
#include "sim/kernel_profile.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** GEMM efficiency classes (see calibration.hpp for the values). */
enum class GemmShapeClass {
    LargeFc,        //!< big FC/FF GEMMs, N/K >= 1024
    Attention,      //!< thin QK^T / P.V GEMMs with D_head = 64
    AttentionWide,  //!< attention GEMMs with D_head >= 128
    BlockSparse,    //!< block-sparse SDD/DSD GEMMs
};

/** Tensor-core efficiency of a shape class. */
double gemmEfficiencyOf(GemmShapeClass shape_class);

/** Element-wise work appended after the GEMM mainloop. */
struct GemmEpilogue
{
    double scale = 1.0;        //!< multiply outputs (1/sqrt(D_head))
    bool causalMask = false;   //!< mask j > i to -inf before softmax
    bool bias = false;         //!< add a per-column bias vector
    bool gelu = false;         //!< GeLU activation (FF first GEMM)
    bool localSoftmax = false; //!< fused LS sub-layer (SDF)

    /** True if any epilogue work is configured. */
    bool any() const
    {
        return scale != 1.0 || causalMask || bias || gelu ||
               localSoftmax;
    }
};

/** Element-wise work applied while loading the LHS operand. */
struct GemmPrologue
{
    bool globalScale = false; //!< fused GS sub-layer (SDF)
    /** Sub-vector width T the incoming X' was produced with. */
    int64_t gsSubVector = 64;
};

/** Full description of one (possibly batched) GEMM launch. */
struct GemmDesc
{
    std::string name = "gemm";
    KernelCategory category = KernelCategory::Fc;
    int64_t batch = 1; //!< independent problems (batch x heads)
    int64_t m = 0;     //!< output rows
    int64_t n = 0;     //!< output columns
    int64_t k = 0;     //!< inner dimension
    GemmShapeClass shapeClass = GemmShapeClass::LargeFc;
    GemmTiling tiling;
    GemmEpilogue epilogue;
    GemmPrologue prologue;
    /** Max/mean work per TB (1.0 for dense). */
    double workImbalance = 1.0;
};

/**
 * Analytical launch profile of the GEMM on a given GPU: geometry,
 * DRAM traffic under the L2 reuse rule, and arithmetic work.
 */
KernelProfile gemmProfile(const GpuSpec &spec, const GemmDesc &desc);

/** Per-sub-vector outputs of a fused LS epilogue. */
struct LsOutputs
{
    /** Local maxima m', shape [m, ceil(n / tileN)]. */
    Tensor<float> *localMax = nullptr;
    /** Local normalizers d', shape [m, ceil(n / tileN)]. */
    Tensor<float> *localSum = nullptr;
};

/** Operands of a functional (2-D, batch = 1) GEMM execution. */
struct GemmOperands
{
    const Tensor<Half> *a = nullptr; //!< [m, k]
    const Tensor<Half> *b = nullptr; //!< [k, n], or [n, k] transposed
    bool transposeB = false;         //!< Q.K^T convention
    const Tensor<float> *bias = nullptr; //!< [n], fp32
    /** GS factors r', shape [m, ceil(k / gsSubVector)], fp32. */
    const Tensor<float> *gsFactors = nullptr;
};

/**
 * Functional tiled GEMM, faithful to the modeled dataflow: fp16
 * operands, fp32 tile accumulators, epilogue applied per output tile
 * (so a fused LS uses sub-vectors of exactly tileN columns), results
 * rounded to fp16 on store. Parallelizes over m-tile strips; each
 * strip owns its accumulator and writes disjoint output rows, so
 * results are bit-identical for any thread count.
 *
 * @param ctx execution context (serial when default-constructed)
 * @param desc launch description (batch must be 1)
 * @param ops operand tensors
 * @param c output, shape [m, n]
 * @param ls destination for m'/d' when epilogue.localSoftmax is set
 */
void gemmRun(const ExecContext &ctx, const GemmDesc &desc,
             const GemmOperands &ops, Tensor<Half> &c,
             const LsOutputs *ls = nullptr);

/** GeLU (tanh approximation), exposed for reuse and tests. */
float geluApprox(float x);

} // namespace softrec

#endif // SOFTREC_KERNELS_GEMM_HPP
