/**
 * @file
 * Block-sparse attention GEMMs (DeepSpeed/Triton style, Section 3.4):
 *
 *  - SDD (sampled dense-dense): S = Q . K^T evaluated only at the
 *    layout's non-zero blocks, optionally with scale and a fused LS
 *    epilogue (SDF);
 *  - DSD (dense = sparse . dense): O = P . V where P is block-sparse,
 *    optionally with a fused GS prologue applied as P blocks load.
 */

#ifndef SOFTREC_KERNELS_BSR_GEMM_HPP
#define SOFTREC_KERNELS_BSR_GEMM_HPP

#include <string>
#include <vector>

#include "common/exec_context.hpp"

#include "sim/kernel_profile.hpp"
#include "sparse/bsr_matrix.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** Description of an SDD launch (Q.K^T into a sparse layout). */
struct BsrSddDesc
{
    std::string name = "gemm.sdd";
    int64_t batch = 1;
    const BsrLayout *layout = nullptr; //!< output sparsity structure
    int64_t dHead = 64;                //!< inner dimension
    double scale = 1.0;                //!< 1/sqrt(D_head) epilogue
    bool fuseLocalSoftmax = false;     //!< SDF: LS in the epilogue
};

/** SDD launch profile (one TB per non-zero output block). */
KernelProfile bsrSddProfile(const GpuSpec &spec, const BsrSddDesc &desc);

/**
 * Functional SDD: for every non-zero block (br, bc) of the layout,
 * S_block = scale * Q[br rows] . K[bc rows]^T. With fuseLocalSoftmax,
 * additionally runs LS per block row segment (sub-vector = block
 * width) and stores X' = exp(s - m') instead of s.
 *
 * @param q [L, dHead] fp16
 * @param k_mat [L, dHead] fp16 (rows are keys; used transposed)
 * @param s out, values on desc.layout
 * @param local_max out (fused LS only), size nnzBlocks * blockSize
 * @param local_sum out (fused LS only), size nnzBlocks * blockSize
 */
void bsrSddRun(const ExecContext &ctx, const BsrSddDesc &desc,
               const Tensor<Half> &q, const Tensor<Half> &k_mat,
               BsrMatrix &s, std::vector<float> *local_max = nullptr,
               std::vector<float> *local_sum = nullptr);

/** Description of a DSD launch (sparse P times dense V). */
struct BsrDsdDesc
{
    std::string name = "gemm.dsd";
    int64_t batch = 1;
    const BsrLayout *layout = nullptr; //!< P's sparsity structure
    int64_t dHead = 64;                //!< output width
    bool fuseGlobalScale = false;      //!< SDF: GS in the prologue
};

/** DSD launch profile (one TB per output block row). */
KernelProfile bsrDsdProfile(const GpuSpec &spec, const BsrDsdDesc &desc);

/**
 * Functional DSD: O = P . V over the non-zero blocks of P. With
 * fuseGlobalScale, each loaded P element is multiplied by its
 * sub-vector's reconstruction factor r' first.
 *
 * @param p block-sparse attention probabilities (or X' under fusion)
 * @param v [L, dHead] fp16
 * @param o out, [L, dHead] fp16
 * @param recon r' (fused GS only), size nnzBlocks * blockSize
 */
void bsrDsdRun(const ExecContext &ctx, const BsrDsdDesc &desc,
               const BsrMatrix &p, const Tensor<Half> &v,
               Tensor<Half> &o,
               const std::vector<float> *recon = nullptr);

} // namespace softrec

#endif // SOFTREC_KERNELS_BSR_GEMM_HPP
