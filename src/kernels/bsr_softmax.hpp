/**
 * @file
 * Block-sparse softmax kernels (Section 3.4).
 *
 * The baseline kernel mirrors DeepSpeed's sparse softmax: one thread
 * block per attention row with *worst-case* (full row length) resource
 * allocation, which is what destroys its memory-bandwidth utilization
 * (paper Section 5.1). The decomposed LS/IR/GS variants allocate per
 * sub-vector (= per non-zero block) instead.
 *
 * Intermediate m'/d'/r' values are indexed per (stored block, row
 * within block): index = block_idx * block_size + local_row.
 */

#ifndef SOFTREC_KERNELS_BSR_SOFTMAX_HPP
#define SOFTREC_KERNELS_BSR_SOFTMAX_HPP

#include <string>
#include <vector>

#include "common/exec_context.hpp"

#include "sim/kernel_profile.hpp"
#include "sparse/bsr_matrix.hpp"

namespace softrec {

/** Problem shape shared by the block-sparse softmax kernels. */
struct BsrSoftmaxDesc
{
    std::string name = "softmax.bsr";
    int64_t batch = 1;               //!< independent matrices
    const BsrLayout *layout = nullptr; //!< attention sparsity structure
};

/** Baseline block-sparse row-softmax profile (worst-case allocation). */
KernelProfile bsrRowSoftmaxProfile(const GpuSpec &spec,
                                   const BsrSoftmaxDesc &desc);

/** Functional block-sparse safe softmax along rows (batch must be 1). */
void bsrRowSoftmaxRun(const ExecContext &ctx,
                      const BsrSoftmaxDesc &desc, const BsrMatrix &in,
                      BsrMatrix &out);

/** Decomposed block-sparse LS profile (one TB per non-zero block). */
KernelProfile bsrLsProfile(const GpuSpec &spec,
                           const BsrSoftmaxDesc &desc);

/**
 * Functional block-sparse Local Softmax. Sub-vectors are the rows of
 * each non-zero block (T = block size).
 *
 * @param local_max out, size nnzBlocks * blockSize
 * @param local_sum out, size nnzBlocks * blockSize
 */
void bsrLsRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
              const BsrMatrix &in, BsrMatrix &x_prime,
              std::vector<float> &local_max,
              std::vector<float> &local_sum);

/** Decomposed block-sparse IR profile. */
KernelProfile bsrIrProfile(const GpuSpec &spec,
                           const BsrSoftmaxDesc &desc);

/**
 * Functional block-sparse Inter-sub-vector Reduction: reduces each
 * row's (m', d') pairs across that row's non-zero blocks and emits
 * reconstruction factors r' (size nnzBlocks * blockSize).
 */
void bsrIrRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
              const std::vector<float> &local_max,
              const std::vector<float> &local_sum,
              std::vector<float> &recon);

/** Decomposed block-sparse GS profile. */
KernelProfile bsrGsProfile(const GpuSpec &spec,
                           const BsrSoftmaxDesc &desc);

/** Functional block-sparse Global Scaling: y = x' * r'. */
void bsrGsRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
              const BsrMatrix &x_prime,
              const std::vector<float> &recon, BsrMatrix &y);

} // namespace softrec

#endif // SOFTREC_KERNELS_BSR_SOFTMAX_HPP
