/**
 * @file
 * Streaming-attention implementation.
 *
 * Bit-identity contract between the two entry points: both fold key
 * tiles of kStreamKeyTile positions in ascending order, and for each
 * tile run the *same* update sequence (onlineTileUpdate below):
 *
 *  - scores: fp32 accumulation in ascending d per element, then the
 *    conditional scale multiply — the per-element order of the packed
 *    GEMM micro-kernel and of decodeAttendRun's score loop;
 *  - tile max, m_new = max(m, tile_max); a tile whose running max is
 *    still -inf is skipped (guards exp(-inf - -inf));
 *  - rescale = exp(m - m_new) applied to d and (when != 1) to the
 *    accumulator, then e_j = exp(s_j - m_new) accumulated j-ascending
 *    into d and j-outer / d-inner into the accumulator;
 *  - epilogue: one reciprocal inv = 1/d multiplied into the fp32
 *    accumulator (division-free inner loop), then the fp16 store.
 *
 * A causally masked prefill row stops its tile sweep at the diagonal,
 * which is exactly the ragged final tile a decode step of the same
 * context sees — so streaming prefill row i and streaming decode at
 * context i+1 produce identical bits, and incremental decode through
 * decodeAttendStreamRun is bit-identical to full-prefix streaming
 * recompute (tests/test_streaming_attention.cpp).
 */

#include "kernels/streaming_attention.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/kernel_common.hpp"

namespace softrec {

const char *
attentionBackendName(AttentionBackend backend)
{
    switch (backend) {
      case AttentionBackend::Recomposed:
        return "recomposed";
      case AttentionBackend::Streaming:
        return "streaming";
    }
    return "?";
}

AttentionBackend
attentionBackendFromEnv()
{
    const char *env = std::getenv("SOFTREC_ATTENTION");
    if (env == nullptr || *env == '\0')
        return AttentionBackend::Recomposed;
    if (std::strcmp(env, "recomposed") == 0)
        return AttentionBackend::Recomposed;
    if (std::strcmp(env, "streaming") == 0)
        return AttentionBackend::Streaming;
    fatal("SOFTREC_ATTENTION='%s' is invalid: expected 'recomposed' "
          "or 'streaming'; unset it to use the default (recomposed)",
          env);
}

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/**
 * Fold one w-wide tile of scaled scores into a row's running
 * (m, d, acc) state. `v_row(j)` returns the fp32 V row of tile
 * position j. Both kernels call exactly this, which is what makes
 * their outputs bit-identical for the same (q, K, V, context).
 */
template <typename VRowFn>
inline void
onlineTileUpdate(float *SOFTREC_RESTRICT s, int64_t w, int64_t dh,
                 float &m, float &d, float *SOFTREC_RESTRICT acc,
                 VRowFn &&v_row)
{
    float tile_max = kNegInf;
    for (int64_t j = 0; j < w; ++j)
        tile_max = std::max(tile_max, s[j]);
    const float m_new = std::max(m, tile_max);
    if (m_new == kNegInf)
        return; // every score so far is -inf; nothing to accumulate
    // softrec-lint: allow(raw-exp) — this IS a safe softmax: both
    // exponents are <= 0 by construction (m, s[j] <= m_new).
    const float rescale = std::exp(m - m_new); // 1.0 when m == m_new
    float tile_sum = 0.0f;
    for (int64_t j = 0; j < w; ++j) {
        // softrec-lint: allow(raw-exp) — see above.
        const float e = std::exp(s[j] - m_new);
        s[j] = e;
        tile_sum += e;
    }
    d = d * rescale + tile_sum;
    if (rescale != 1.0f) {
        for (int64_t dd = 0; dd < dh; ++dd)
            acc[dd] *= rescale;
    }
    for (int64_t j = 0; j < w; ++j) {
        const float p = s[j];
        const float *vr = v_row(j);
        for (int64_t dd = 0; dd < dh; ++dd)
            acc[dd] += p * vr[dd];
    }
    m = m_new;
}

/**
 * Normalize and store one finished row: the single division of the
 * whole row, folded into the epilogue as a reciprocal multiply. A row
 * whose every score was -inf (m still -inf, d == 0) stores zeros,
 * matching decodeAttendRun's fully-masked behaviour.
 */
inline void
storeRow(float *SOFTREC_RESTRICT acc, int64_t dh, float m, float d,
         Half *out)
{
    SOFTREC_CHECK(d > 0.0f || m == kNegInf,
                  "streaming attention normalizer d = %f must be "
                  "positive for a row with any finite score",
                  double(d));
    if (d > 0.0f) {
        const float inv = 1.0f / d;
        for (int64_t dd = 0; dd < dh; ++dd)
            acc[dd] *= inv;
    } else {
        for (int64_t dd = 0; dd < dh; ++dd)
            acc[dd] = 0.0f;
    }
    floatToHalf(acc, out, dh);
}

/**
 * Score one key tile for a strip of query rows: s[i, j] += q_i . k_j
 * over the packed fp32 panel, with gemm.cpp's 4-row register blocking.
 * Accumulation is d-ascending per element, so blocking is invisible
 * in the result bits (each element is an independent dot product).
 */
void
scoreTile(const float *SOFTREC_RESTRICT q_rows,
          const float *SOFTREC_RESTRICT panel,
          float *SOFTREC_RESTRICT s, int64_t rows, int64_t dh)
{
    constexpr int64_t ldn = kStreamKeyTile;
    std::fill(s, s + rows * ldn, 0.0f);
    int64_t i = 0;
    for (; i + 4 <= rows; i += 4) {
        const float *a0 = q_rows + (i + 0) * dh;
        const float *a1 = q_rows + (i + 1) * dh;
        const float *a2 = q_rows + (i + 2) * dh;
        const float *a3 = q_rows + (i + 3) * dh;
        float *c0 = s + (i + 0) * ldn;
        float *c1 = s + (i + 1) * ldn;
        float *c2 = s + (i + 2) * ldn;
        float *c3 = s + (i + 3) * ldn;
        for (int64_t kk = 0; kk < dh; ++kk) {
            const float *b = panel + kk * ldn;
            const float v0 = a0[kk], v1 = a1[kk];
            const float v2 = a2[kk], v3 = a3[kk];
            for (int64_t j = 0; j < ldn; ++j) {
                c0[j] += v0 * b[j];
                c1[j] += v1 * b[j];
                c2[j] += v2 * b[j];
                c3[j] += v3 * b[j];
            }
        }
    }
    for (; i < rows; ++i) {
        const float *ar = q_rows + i * dh;
        float *cr = s + i * ldn;
        for (int64_t kk = 0; kk < dh; ++kk) {
            const float *b = panel + kk * ldn;
            const float v = ar[kk];
            for (int64_t j = 0; j < ldn; ++j)
                cr[j] += v * b[j];
        }
    }
}

/** Query strip height (rows per parallelFor chunk). */
constexpr int64_t kStreamQueryTile = 64;

} // namespace

void
streamingAttentionRun(const ExecContext &ctx,
                      const StreamingAttentionDesc &desc,
                      const Tensor<Half> &q, const Tensor<Half> &k,
                      const Tensor<Half> &v, Tensor<Half> &out)
{
    const int64_t L = desc.seqLen;
    const int64_t kv = desc.kvLen;
    const int64_t dh = desc.dHead;
    SOFTREC_ASSERT(L > 0 && kv > 0 && dh > 0,
                   "streaming attention has an empty problem");
    SOFTREC_ASSERT(q.shape() == Shape({L, dh}) &&
                   k.shape() == Shape({kv, dh}) &&
                   v.shape() == Shape({kv, dh}) &&
                   out.shape() == Shape({L, dh}),
                   "streaming attention operand shapes inconsistent "
                   "with the descriptor");
    // Unique-operand traffic: K and V are packed (read) once up front
    // on the submitting thread; per-strip q reads and output writes
    // are credited by whichever thread runs the strip. There is no
    // score-matrix term — that absence is the measured win.
    prof::Scope scope(ctx, "sda.stream");
    if (scope.active())
        scope.addRead(uint64_t(2 * kv * dh) * kFp16Bytes); // K, V

    // Pack K once into one fp32 panel per key tile, laid out
    // [dHead][kStreamKeyTile] (the gemm.cpp transposeB scatter), so
    // scoreTile streams it contiguously; ragged tail columns are
    // zero-padded and never consumed. V is converted once into fp32
    // rows shared read-only by every strip.
    const int64_t tiles = ceilDiv(kv, kStreamKeyTile);
    std::vector<float> kpack(size_t(tiles) * size_t(dh) *
                             size_t(kStreamKeyTile), 0.0f);
    std::vector<float> krow(size_t(dh), 0.0f);
    for (int64_t j = 0; j < kv; ++j) {
        halfToFloat(k.rowPtr(j), krow.data(), dh);
        float *panel = &kpack[size_t((j / kStreamKeyTile) * dh *
                                     kStreamKeyTile)];
        const int64_t jj = j % kStreamKeyTile;
        for (int64_t kk = 0; kk < dh; ++kk)
            panel[kk * kStreamKeyTile + jj] = krow[kk];
    }
    std::vector<float> vpack(size_t(kv) * size_t(dh));
    for (int64_t j = 0; j < kv; ++j)
        halfToFloat(v.rowPtr(j), &vpack[size_t(j * dh)], dh);

    // Parallel over query strips: every row's (m, d, acc) evolution is
    // row-local, so strip boundaries are invisible in the result bits
    // and the output is bit-identical for any thread count.
    const int64_t strips = ceilDiv(L, kStreamQueryTile);
    parallelFor(ctx, 0, strips, 1, [&](int64_t s0, int64_t s1) {
        std::vector<float> qf(size_t(kStreamQueryTile) * size_t(dh));
        std::vector<float> sbuf(size_t(kStreamQueryTile) *
                                size_t(kStreamKeyTile));
        std::vector<float> accbuf(size_t(kStreamQueryTile) *
                                  size_t(dh));
        std::vector<float> mbuf(size_t(kStreamQueryTile), kNegInf);
        std::vector<float> dbuf(size_t(kStreamQueryTile), 0.0f);
        for (int64_t strip = s0; strip < s1; ++strip) {
            const int64_t r0 = strip * kStreamQueryTile;
            const int64_t rh = std::min(kStreamQueryTile, L - r0);
            if (scope.active()) {
                scope.addRead(uint64_t(rh * dh) * kFp16Bytes);
                scope.addWrite(uint64_t(rh * dh) * kFp16Bytes);
            }
            for (int64_t i = 0; i < rh; ++i)
                halfToFloat(q.rowPtr(r0 + i), &qf[size_t(i * dh)], dh);
            std::fill(accbuf.begin(), accbuf.end(), 0.0f);
            std::fill(mbuf.begin(), mbuf.end(), kNegInf);
            std::fill(dbuf.begin(), dbuf.end(), 0.0f);

            // The strip's tile sweep stops at its last row's context;
            // each row additionally clamps its own consumption to the
            // diagonal, which is exactly the ragged-tile shape a
            // decode step of the same context sees.
            const int64_t strip_kv =
                desc.causalMask ? std::min(kv, r0 + rh) : kv;
            for (int64_t t0 = 0; t0 < strip_kv; t0 += kStreamKeyTile) {
                const int64_t w_full =
                    std::min(kStreamKeyTile, kv - t0);
                scoreTile(qf.data(),
                          &kpack[size_t((t0 / kStreamKeyTile) * dh *
                                        kStreamKeyTile)],
                          sbuf.data(), rh, dh);
                if (desc.scale != 1.0) {
                    for (int64_t i = 0; i < rh; ++i) {
                        float *sr = &sbuf[size_t(i * kStreamKeyTile)];
                        for (int64_t j = 0; j < w_full; ++j)
                            sr[j] *= float(desc.scale);
                    }
                }
                for (int64_t i = 0; i < rh; ++i) {
                    const int64_t valid = desc.causalMask
                        ? std::min(r0 + i + 1, kv)
                        : kv;
                    if (t0 >= valid)
                        continue;
                    const int64_t w =
                        std::min(w_full, valid - t0);
                    const float *vtile = &vpack[size_t(t0 * dh)];
                    onlineTileUpdate(
                        &sbuf[size_t(i * kStreamKeyTile)], w, dh,
                        mbuf[size_t(i)], dbuf[size_t(i)],
                        &accbuf[size_t(i * dh)],
                        [vtile, dh](int64_t j) {
                            return vtile + j * dh;
                        });
                }
            }
            for (int64_t i = 0; i < rh; ++i)
                storeRow(&accbuf[size_t(i * dh)], dh, mbuf[size_t(i)],
                         dbuf[size_t(i)], out.rowPtr(r0 + i));
        }
    });
}

void
decodeAttendStreamRun(const ExecContext &ctx,
                      const DecodeAttendDesc &desc, const Half *q_row,
                      const KvRowsView &k, const KvRowsView &v,
                      Half *out, DecodeAttendWorkspace *ws)
{
    const int64_t dh = desc.dHead;
    const int64_t context = k.rows;
    SOFTREC_ASSERT(dh > 0 && context > 0 && v.rows == context,
                   "decode attention needs matching K/V contexts "
                   "(k=%lld, v=%lld)", (long long)context,
                   (long long)v.rows);
    SOFTREC_ASSERT(desc.headOffset >= 0 &&
                   desc.headOffset + dh <= k.rowWidth &&
                   k.rowWidth == v.rowWidth,
                   "head slice outside the cached row");

    // q/K/V/out only: the streaming kernel has no score-row staging
    // traffic, which is exactly its advantage over decodeAttendRun's
    // softmax.row.decode crossings.
    prof::Scope scope(ctx, "decode.attend.stream");
    if (scope.active()) {
        scope.addRead(uint64_t(dh) * kFp16Bytes +               // q
                      uint64_t(2 * context * dh) *
                          uint64_t(k.elemBytes()));             // K, V
        scope.addWrite(uint64_t(dh) * kFp16Bytes);
    }

    DecodeAttendWorkspace local;
    DecodeAttendWorkspace &w = ws != nullptr ? *ws : local;
    // The score "row" is one kStreamKeyTile-wide tile, never the full
    // context; rowH stays untouched (no fp16 staging round-trip).
    w.prepare(dh, kStreamKeyTile);
    std::vector<float> &qf = w.qf;
    std::vector<float> &lane = w.lane;
    std::vector<float> &tile = w.row;
    std::vector<float> &acc = w.acc;
    halfToFloat(q_row, qf.data(), dh);
    std::fill(acc.begin(), acc.end(), 0.0f);
    float m = kNegInf;
    float d = 0.0f;

    for (int64_t t0 = 0; t0 < context; t0 += kStreamKeyTile) {
        const int64_t tw = std::min(kStreamKeyTile, context - t0);
        // Scores for this tile: the same d-ascending fp32 dot and
        // conditional scale as decodeAttendRun, reading cached K rows
        // in place.
        for (int64_t j = 0; j < tw; ++j) {
            k.loadRow(t0 + j, desc.headOffset, dh, lane.data());
            float s = 0.0f;
            for (int64_t kk = 0; kk < dh; ++kk)
                s += qf[size_t(kk)] * lane[size_t(kk)];
            tile[size_t(j)] = s;
        }
        if (desc.scale != 1.0) {
            for (int64_t j = 0; j < tw; ++j)
                tile[size_t(j)] *= float(desc.scale);
        }
        onlineTileUpdate(tile.data(), tw, dh, m, d, acc.data(),
                         [&](int64_t j) {
                             v.loadRow(t0 + j, desc.headOffset, dh,
                                       lane.data());
                             return lane.data();
                         });
    }
    storeRow(acc.data(), dh, m, d, out);
}

} // namespace softrec
