/**
 * @file
 * Single-query attention over a block-allocated KV cache — the inner
 * kernel of one autoregressive decode step.
 *
 * A decode step's attention "matrix" is one 1 x C score row per head
 * (C = context length so far), so there is nothing for softmax
 * recomposition to save here; the kernel's job is to read the cached
 * K/V rows in place (no per-step repacking or reconversion of the
 * whole prefix) while reproducing the prefill path's arithmetic
 * bit for bit: the same k-ascending fp32 accumulation as the packed
 * GEMM micro-kernel, the same three-pass safe softmax as
 * rowSoftmaxRun, and the same fp16 storage round-trips between
 * stages. tests/test_decode.cpp proves incremental decode through
 * this kernel is bit-identical to full-prefix recompute at every
 * step, for any thread count and SIMD backend.
 */

#ifndef SOFTREC_KERNELS_DECODE_ATTENTION_HPP
#define SOFTREC_KERNELS_DECODE_ATTENTION_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/exec_context.hpp"
#include "fp16/half.hpp"

namespace softrec {

/**
 * KV-cache storage element format. F16 is the bit-exact reference
 * (rows are stored exactly as the projection kernels produced them);
 * I8 stores each block as int8 with one per-block fp32 scale/zero
 * header, halving KV bytes so the serve engine admits ~2x the tokens
 * at a fixed slab byte budget.
 */
enum class KvDtype
{
    F16,
    I8,
};

/**
 * Per-block quantization header of an I8 block. Symmetric scheme:
 * scale = blockAmax / 127, zero stays 0.0 (kept in the header so the
 * dequant expression `(q - zero) * scale` matches the conventional
 * affine form and an asymmetric format can slot in later). A freshly
 * opened all-zero block has scale == 0 and dequantizes to zeros.
 */
struct KvBlockQuant
{
    float scale = 0.0f;
    float zero = 0.0f;
};

/**
 * Bytes reserved for the I8 header at the front of a block — padded
 * past sizeof(KvBlockQuant) so the int8 payload starts 16-aligned.
 */
constexpr int64_t kKvBlockQuantBytes = 16;

/**
 * Read-only view of cached rows stored in fixed-size slab blocks
 * (serve/kv_cache.hpp produces these). Row `pos` lives in block
 * `pos / blockTokens` at row offset `pos % blockTokens`; every row is
 * `rowWidth` elements (the model width, all heads concatenated) of
 * the view's storage format. Kernels read rows through loadRow(),
 * which dequantizes into caller-owned fp32 lane buffers — the decode
 * hot path stays allocation-free in every format.
 */
struct KvRowsView
{
    const std::byte *const *blocks = nullptr; //!< block base pointers
    int64_t blockTokens = 0;          //!< rows per block
    int64_t rowWidth = 0;             //!< elements per row (dModel)
    int64_t rows = 0;                 //!< valid rows (context C)
    KvDtype dtype = KvDtype::F16;     //!< storage element format

    /** Stored bytes per element (profiler traffic attribution). */
    int64_t
    elemBytes() const
    {
        return dtype == KvDtype::F16 ? 2 : 1;
    }

    /** Pointer to cached row `pos` (all heads). F16 views only. */
    const Half *
    row(int64_t pos) const
    {
        return reinterpret_cast<const Half *>(
                   blocks[pos / blockTokens]) +
               (pos % blockTokens) * rowWidth;
    }

    /** Quantization header of row `pos`'s block. I8 views only. */
    const KvBlockQuant &
    blockQuant(int64_t pos) const
    {
        return *reinterpret_cast<const KvBlockQuant *>(
            blocks[pos / blockTokens]);
    }

    /** Pointer to quantized row `pos` (all heads). I8 views only. */
    const int8_t *
    rowI8(int64_t pos) const
    {
        return reinterpret_cast<const int8_t *>(
                   blocks[pos / blockTokens] + kKvBlockQuantBytes) +
               (pos % blockTokens) * rowWidth;
    }

    /**
     * Read `n` fp32 elements of row `pos` starting at column `col`
     * into `dst`. F16 rows go through the batch conversion substrate
     * (bit-identical to the pre-quantization read path); I8 rows
     * dequantize with their block's scale/zero header.
     */
    void
    loadRow(int64_t pos, int64_t col, int64_t n, float *dst) const
    {
        if (dtype == KvDtype::F16) {
            halfToFloat(row(pos) + col, dst, n);
            return;
        }
        const KvBlockQuant &q = blockQuant(pos);
        const int8_t *src = rowI8(pos) + col;
        for (int64_t i = 0; i < n; ++i)
            dst[i] = (float(src[i]) - q.zero) * q.scale;
    }
};

/**
 * View over the first `rows` rows of one contiguous fp16 staging
 * buffer, presented as a single pseudo-block spanning `block_tokens`
 * rows. Chunked prefill attends over its exact (pre-quantization)
 * K/V staging through this, reusing the cache-read kernels
 * unchanged: they address rows only through row()/loadRow(), so a
 * one-block view is indistinguishable from slab blocks and the bits
 * cannot depend on the blocking. `block` must point to a stable
 * `const std::byte *` (the caller owns the pointer cell) whose
 * target buffer outlives the view.
 */
inline KvRowsView
contiguousKvView(const std::byte *const *block, int64_t block_tokens,
                 int64_t row_width, int64_t rows)
{
    KvRowsView view;
    view.blocks = block;
    view.blockTokens = block_tokens;
    view.rowWidth = row_width;
    view.rows = rows;
    view.dtype = KvDtype::F16;
    return view;
}

/** Shape of one cached-decode attention row. */
struct DecodeAttendDesc
{
    int64_t dHead = 64;     //!< per-head width
    int64_t headOffset = 0; //!< column of this head in a cached row
    double scale = 1.0;     //!< QK^T epilogue scale (1/sqrt(dHead))
};

/**
 * Reusable staging buffers for decodeAttendRun. The kernel runs once
 * per (request, head) every decode step, so allocating its fp32
 * staging rows inside the call would put ~5 mallocs on the per-token
 * path; callers that decode in a loop keep one workspace per worker
 * slot (ExecContext::currentThreadSlot()) and pass it in. prepare()
 * only reallocates when the context outgrows the high-water mark,
 * which with vector's geometric growth amortizes to zero as the
 * cache fills.
 */
struct DecodeAttendWorkspace
{
    std::vector<float> qf;    //!< query row, fp32, dHead
    std::vector<float> lane;  //!< one cached row's head slice, fp32
    std::vector<float> row;   //!< score/probability row, fp32
    std::vector<Half> rowH;   //!< fp16 round-trip of the score row
    std::vector<float> acc;   //!< output accumulator, fp32, dHead

    /** Size every buffer for one (dHead, context) problem. */
    void
    prepare(int64_t d_head, int64_t context)
    {
        qf.resize(size_t(d_head));
        lane.resize(size_t(d_head));
        row.resize(size_t(context));
        rowH.resize(size_t(context));
        acc.resize(size_t(d_head));
    }
};

/**
 * One head's decode-step attention: score the query row against every
 * cached K row, safe-softmax the score row, and reduce against the
 * cached V rows.
 *
 * @param q_row the query head slice, dHead contiguous halfs
 * @param k,v   cached rows; both views must have rows >= 1 (the
 *              current token's K/V must already be appended)
 * @param out   destination, dHead halfs
 * @param ws    staging buffers to reuse; nullptr makes the call
 *              allocate its own (fine for tests, not for the decode
 *              loop)
 */
void decodeAttendRun(const ExecContext &ctx,
                     const DecodeAttendDesc &desc, const Half *q_row,
                     const KvRowsView &k, const KvRowsView &v,
                     Half *out, DecodeAttendWorkspace *ws = nullptr);

} // namespace softrec

#endif // SOFTREC_KERNELS_DECODE_ATTENTION_HPP
