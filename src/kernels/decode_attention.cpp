/**
 * @file
 * KV-cached decode attention implementation.
 *
 * Bit-identity contract with the prefill path (gemmRun + rowSoftmaxRun
 * + gemmRun on the full prefix):
 *
 *  - scores: fp32 accumulation in ascending d per element, then the
 *    scale epilogue, then an fp16 store — exactly the per-element
 *    order of the packed GEMM micro-kernel (which accumulates
 *    k-ascending whatever the tiling) and its epilogue/store.
 *  - softmax: the same staged three-pass safe softmax as
 *    rowSoftmaxRun. The prefill row additionally carries exp(-inf)=0
 *    terms for the causally masked tail; appending exact zeros to a
 *    running fp32 sum does not change its bits, so the shorter row
 *    here produces identical probabilities.
 *  - output: fp32 accumulation in ascending key order per element —
 *    the micro-kernel's k-ascending order for the P.V GEMM, whose
 *    masked tail contributes p = 0 terms that are bit-level no-ops.
 *
 * All Half<->float conversions use the batch converters, which are
 * bit-identical to scalar conversion on every backend.
 */

#include "kernels/decode_attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <optional>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/kernel_common.hpp"

namespace softrec {

void
decodeAttendRun(const ExecContext &ctx, const DecodeAttendDesc &desc,
                const Half *q_row, const KvRowsView &k,
                const KvRowsView &v, Half *out,
                DecodeAttendWorkspace *ws)
{
    const int64_t dh = desc.dHead;
    const int64_t context = k.rows;
    SOFTREC_ASSERT(dh > 0 && context > 0 && v.rows == context,
                   "decode attention needs matching K/V contexts "
                   "(k=%lld, v=%lld)", (long long)context,
                   (long long)v.rows);
    SOFTREC_ASSERT(desc.headOffset >= 0 &&
                   desc.headOffset + dh <= k.rowWidth &&
                   k.rowWidth == v.rowWidth,
                   "head slice outside the cached row");
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();

    prof::Scope scope(ctx, "decode.attend");
    // The fp16 score-row staging below (score store -> softmax read
    // -> probability store -> P.V read) is the same four crossings
    // the batch path attributes to its softmax.* scopes, so it gets
    // the same byte-only attribution here; without it the decode /
    // prefill traffic ratios are skewed in decode's favour.
    std::optional<prof::Scope> row_scope;
    if (scope.active()) {
        scope.addRead(uint64_t(dh) * kFp16Bytes +              // q
                      uint64_t(2 * context * dh) *
                          uint64_t(k.elemBytes()));            // K, V
        scope.addWrite(uint64_t(dh) * kFp16Bytes);
        // softrec-lint: allow(hot-path-alloc) — profiling-only
        // branch; a disabled profiler never reaches this emplace.
        row_scope.emplace(ctx, "softmax.row.decode",
                          prof::Scope::Kind::BytesOnly);
        row_scope->addWrite(uint64_t(2 * context) * kFp16Bytes);
        row_scope->addRead(uint64_t(2 * context) * kFp16Bytes);
    }

    DecodeAttendWorkspace local;
    DecodeAttendWorkspace &w = ws != nullptr ? *ws : local;
    w.prepare(dh, context);
    std::vector<float> &qf = w.qf;
    std::vector<float> &lane = w.lane;
    std::vector<float> &row = w.row;
    std::vector<Half> &row_h = w.rowH;
    halfToFloat(q_row, qf.data(), dh);

    // Scores: q . K^T with the scale epilogue, stored through fp16.
    for (int64_t pos = 0; pos < context; ++pos) {
        k.loadRow(pos, desc.headOffset, dh, lane.data());
        float acc = 0.0f;
        for (int64_t d = 0; d < dh; ++d)
            acc += qf[size_t(d)] * lane[size_t(d)];
        if (desc.scale != 1.0)
            acc *= float(desc.scale);
        row[size_t(pos)] = acc;
    }
    floatToHalf(row.data(), row_h.data(), context);

    // Safe softmax over the score row (rowSoftmaxRun's three passes).
    halfToFloat(row_h.data(), row.data(), context);
    float max_val = kNegInf;
    for (int64_t j = 0; j < context; ++j)
        max_val = std::max(max_val, row[size_t(j)]);
    float denom = 0.0f;
    for (int64_t j = 0; j < context; ++j) {
        const float e = max_val == kNegInf
            ? 0.0f
            : std::exp(row[size_t(j)] - max_val);
        row[size_t(j)] = e;
        denom += e;
    }
    for (int64_t j = 0; j < context; ++j)
        row[size_t(j)] = denom > 0.0f ? row[size_t(j)] / denom : 0.0f;
    floatToHalf(row.data(), row_h.data(), context);
    SOFTREC_CHECK(denom > 0.0f || max_val == kNegInf,
                  "decode attention normalizer d = %f must be positive "
                  "(the current token always attends to itself)",
                  double(denom));

    // Output: P . V in ascending key order per output element.
    halfToFloat(row_h.data(), row.data(), context);
    std::vector<float> &acc = w.acc;
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (int64_t pos = 0; pos < context; ++pos) {
        v.loadRow(pos, desc.headOffset, dh, lane.data());
        const float p = row[size_t(pos)];
        for (int64_t d = 0; d < dh; ++d)
            acc[size_t(d)] += p * lane[size_t(d)];
    }
    floatToHalf(acc.data(), out, dh);
}

} // namespace softrec
