/**
 * @file
 * Shared kernel helpers.
 */

#include "kernels/kernel_common.hpp"

#include "common/logging.hpp"

namespace softrec {

uint64_t
operandDramBytes(uint64_t operand_bytes, int64_t passes,
                 uint64_t l2_bytes)
{
    SOFTREC_ASSERT(passes >= 1, "operand must be swept at least once");
    // 80% of L2 is usable residency (the rest churns with the other
    // operands' streams).
    const double resident = 0.8 * double(l2_bytes);
    if (double(operand_bytes) <= resident)
        return operand_bytes;
    // Partially resident: the resident fraction hits L2 on re-sweeps,
    // the remainder re-fetches from DRAM every pass.
    const double hit = resident / double(operand_bytes);
    const double effective_passes =
        1.0 + double(passes - 1) * (1.0 - hit);
    return uint64_t(double(operand_bytes) * effective_passes);
}

} // namespace softrec
