/**
 * @file
 * Element-wise kernel implementations.
 */

#include "kernels/elementwise.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernel_common.hpp"

namespace softrec {

namespace {

/** Common streaming-kernel geometry: 256 threads, 4 elems/thread. */
LaunchGeometry
streamingGeometry(int64_t elems)
{
    LaunchGeometry geom;
    geom.numBlocks = std::max<int64_t>(1, ceilDiv(elems, 1024));
    geom.block.threads = 256;
    geom.block.smemBytes = 0;
    geom.block.regsPerThread = 32;
    return geom;
}

} // namespace

KernelProfile
layerNormProfile(const GpuSpec &spec, const std::string &name,
                 int64_t rows, int64_t width)
{
    (void)spec;
    SOFTREC_ASSERT(rows > 0 && width > 0, "empty layernorm %s",
                   name.c_str());
    KernelProfile prof;
    prof.name = name;
    prof.category = KernelCategory::Other;
    prof.geom.numBlocks = rows;
    prof.geom.block.threads = 128;
    prof.geom.block.smemBytes = uint64_t(width) * kFp32Bytes;
    prof.geom.block.regsPerThread = 32;
    const uint64_t bytes = uint64_t(rows * width) * kFp16Bytes;
    prof.dramReadBytes = bytes + uint64_t(2 * width) * kFp32Bytes;
    prof.dramWriteBytes = bytes;
    prof.cudaFlops = 6.0 * double(rows) * double(width);
    // Two dependent passes (statistics, then normalize).
    prof.serializationFactor = 0.85;
    return prof;
}

void
layerNormRun(const ExecContext &ctx, const Tensor<Half> &in,
             const Tensor<float> &gamma, const Tensor<float> &beta,
             Tensor<Half> &out, float epsilon)
{
    SOFTREC_ASSERT(in.shape().rank() == 2, "layernorm input must be 2-D");
    const int64_t rows = in.shape().dim(0);
    const int64_t width = in.shape().dim(1);
    SOFTREC_ASSERT(out.shape() == in.shape() &&
                   gamma.shape() == Shape({width}) &&
                   beta.shape() == Shape({width}),
                   "layernorm shapes inconsistent");
    prof::Scope scope(ctx, "ew.layernorm");
    if (scope.active())
        scope.addRead(uint64_t(2 * width) * kFp32Bytes); // gamma, beta
    parallelFor(ctx, 0, rows, 8, [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t bytes =
                uint64_t(row1 - row0) * uint64_t(width) * kFp16Bytes;
            scope.addRead(bytes);
            scope.addWrite(bytes);
        }
        std::vector<float> row(size_t(width), 0.0f);
        const float *g = gamma.data();
        const float *b = beta.data();
        for (int64_t i = row0; i < row1; ++i) {
            halfToFloat(in.rowPtr(i), row.data(), width);
            float mean = 0.0f;
            for (int64_t j = 0; j < width; ++j)
                mean += row[size_t(j)];
            mean /= float(width);
            float var = 0.0f;
            for (int64_t j = 0; j < width; ++j) {
                const float d = row[size_t(j)] - mean;
                var += d * d;
            }
            var /= float(width);
            const float inv_std = 1.0f / std::sqrt(var + epsilon);
            for (int64_t j = 0; j < width; ++j) {
                const float norm = (row[size_t(j)] - mean) * inv_std;
                row[size_t(j)] = norm * g[j] + b[j];
            }
            floatToHalf(row.data(), out.rowPtr(i), width);
        }
    });
}

KernelProfile
residualAddProfile(const GpuSpec &spec, const std::string &name,
                   int64_t elems)
{
    (void)spec;
    SOFTREC_ASSERT(elems > 0, "empty residual add %s", name.c_str());
    KernelProfile prof;
    prof.name = name;
    prof.category = KernelCategory::Other;
    prof.geom = streamingGeometry(elems);
    prof.dramReadBytes = uint64_t(2 * elems) * kFp16Bytes;
    prof.dramWriteBytes = uint64_t(elems) * kFp16Bytes;
    prof.cudaFlops = double(elems);
    return prof;
}

void
residualAddRun(const ExecContext &ctx, const Tensor<Half> &a,
               const Tensor<Half> &b, Tensor<Half> &out)
{
    SOFTREC_ASSERT(a.shape() == b.shape() && a.shape() == out.shape(),
                   "residual shapes inconsistent");
    prof::Scope scope(ctx, "ew.residual");
    parallelFor(ctx, 0, a.numel(), 4096, [&](int64_t i0, int64_t i1) {
        if (scope.active()) {
            const uint64_t elems = uint64_t(i1 - i0);
            scope.addRead(2 * elems * kFp16Bytes);
            scope.addWrite(elems * kFp16Bytes);
        }
        // The chunk is a contiguous linear span: widen both inputs
        // once, add in fp32, narrow once.
        const int64_t len = i1 - i0;
        std::vector<float> fa(size_t(len), 0.0f);
        std::vector<float> fb(size_t(len), 0.0f);
        halfToFloat(a.data() + i0, fa.data(), len);
        halfToFloat(b.data() + i0, fb.data(), len);
        for (int64_t i = 0; i < len; ++i)
            fa[size_t(i)] += fb[size_t(i)];
        floatToHalf(fa.data(), out.data() + i0, len);
    });
}

KernelProfile
biasActProfile(const GpuSpec &spec, const std::string &name,
               int64_t rows, int64_t width, bool gelu)
{
    (void)spec;
    SOFTREC_ASSERT(rows > 0 && width > 0, "empty bias kernel %s",
                   name.c_str());
    KernelProfile prof;
    prof.name = name;
    prof.category = KernelCategory::Other;
    const int64_t elems = rows * width;
    prof.geom = streamingGeometry(elems);
    prof.dramReadBytes =
        uint64_t(elems) * kFp16Bytes + uint64_t(width) * kFp32Bytes;
    prof.dramWriteBytes = uint64_t(elems) * kFp16Bytes;
    prof.cudaFlops = (gelu ? 9.0 : 1.0) * double(elems);
    prof.sfuOps = gelu ? double(elems) : 0.0;
    return prof;
}

void
biasActRun(const ExecContext &ctx, const Tensor<Half> &in,
           const Tensor<float> &bias, bool gelu, Tensor<Half> &out)
{
    SOFTREC_ASSERT(in.shape().rank() == 2 && in.shape() == out.shape(),
                   "bias kernel shapes inconsistent");
    const int64_t rows = in.shape().dim(0);
    const int64_t width = in.shape().dim(1);
    SOFTREC_ASSERT(bias.shape() == Shape({width}), "bias misshaped");
    prof::Scope scope(ctx, "ew.bias_act");
    if (scope.active())
        scope.addRead(uint64_t(width) * kFp32Bytes); // bias vector
    parallelFor(ctx, 0, rows, 8, [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t bytes =
                uint64_t(row1 - row0) * uint64_t(width) * kFp16Bytes;
            scope.addRead(bytes);
            scope.addWrite(bytes);
        }
        std::vector<float> row(size_t(width), 0.0f);
        const float *b = bias.data();
        for (int64_t i = row0; i < row1; ++i) {
            halfToFloat(in.rowPtr(i), row.data(), width);
            for (int64_t j = 0; j < width; ++j) {
                float v = row[size_t(j)] + b[j];
                if (gelu)
                    v = geluApprox(v);
                row[size_t(j)] = v;
            }
            floatToHalf(row.data(), out.rowPtr(i), width);
        }
    });
}

KernelProfile
scaleMaskProfile(const GpuSpec &spec, const std::string &name,
                 int64_t batch, int64_t rows, int64_t cols)
{
    (void)spec;
    SOFTREC_ASSERT(batch > 0 && rows > 0 && cols > 0,
                   "empty scale/mask %s", name.c_str());
    KernelProfile prof;
    prof.name = name;
    prof.category = KernelCategory::Other;
    const int64_t elems = batch * rows * cols;
    prof.geom = streamingGeometry(elems);
    prof.dramReadBytes = uint64_t(elems) * kFp16Bytes;
    prof.dramWriteBytes = uint64_t(elems) * kFp16Bytes;
    prof.cudaFlops = 2.0 * double(elems);
    return prof;
}

KernelProfile
reshapeProfile(const GpuSpec &spec, const std::string &name,
               int64_t elems)
{
    (void)spec;
    SOFTREC_ASSERT(elems > 0, "empty reshape %s", name.c_str());
    KernelProfile prof;
    prof.name = name;
    prof.category = KernelCategory::Other;
    prof.geom = streamingGeometry(elems);
    prof.dramReadBytes = uint64_t(elems) * kFp16Bytes;
    prof.dramWriteBytes = uint64_t(elems) * kFp16Bytes;
    return prof;
}

KernelProfile
embeddingProfile(const GpuSpec &spec, const std::string &name,
                 int64_t rows, int64_t width)
{
    (void)spec;
    SOFTREC_ASSERT(rows > 0 && width > 0, "empty embedding %s",
                   name.c_str());
    KernelProfile prof;
    prof.name = name;
    prof.category = KernelCategory::Other;
    const int64_t elems = rows * width;
    prof.geom = streamingGeometry(elems);
    // Token ids plus the gathered embedding rows.
    prof.dramReadBytes =
        uint64_t(rows) * 4 + uint64_t(elems) * kFp16Bytes;
    prof.dramWriteBytes = uint64_t(elems) * kFp16Bytes;
    return prof;
}

} // namespace softrec
