/**
 * @file
 * Shared definitions for the kernel library: element sizes, tile
 * shapes, and the L2-residency rule used by the traffic formulas.
 */

#ifndef SOFTREC_KERNELS_KERNEL_COMMON_HPP
#define SOFTREC_KERNELS_KERNEL_COMMON_HPP

#include <cstdint>

#include "sim/gpu_spec.hpp"

/**
 * No-alias hint for micro-kernel pointer parameters: the packed
 * operand panels and the accumulator tile never overlap, and telling
 * the compiler so lets it vectorize the inner loops without emitting
 * runtime overlap checks.
 */
#if defined(__GNUC__) || defined(__clang__)
#define SOFTREC_RESTRICT __restrict
#else
#define SOFTREC_RESTRICT
#endif

namespace softrec {

/** Bytes per FP16 element. */
inline constexpr int64_t kFp16Bytes = 2;
/** Bytes per FP32 element (intermediate m', d', r' values). */
inline constexpr int64_t kFp32Bytes = 4;

/**
 * Output-tile shape of the outer-product-dataflow GEMM (Fig. 3(b)).
 * tileN doubles as the softmax sub-vector width T when LS is fused
 * (paper Section 3.3: "setting T of the LS kernel equal to the output
 * tile width of the MatMul kernel").
 */
struct GemmTiling
{
    int64_t tileM = 128;    //!< output tile height
    int64_t tileN = 64;     //!< output tile width (= T under fusion)
    int64_t tileK = 32;     //!< mainloop K step
    int threads = 256;      //!< threads per TB
    int regsPerThread = 128; //!< accumulators + pipeline registers

    /** Shared memory for double-buffered A and B tile staging. */
    uint64_t
    smemBytes() const
    {
        const int64_t a = tileM * tileK;
        const int64_t b = tileK * tileN;
        return uint64_t(2 * (a + b) * kFp16Bytes);
    }
};

/**
 * DRAM traffic of one GEMM operand under the streaming reuse rule: an
 * operand that fits in L2 is fetched from DRAM once and re-read from
 * L2 afterwards; one that does not fit is re-fetched on every pass
 * over it.
 *
 * @param operand_bytes total size of the operand
 * @param passes how many times the kernel sweeps the operand
 * @param l2_bytes L2 capacity of the target GPU
 */
uint64_t operandDramBytes(uint64_t operand_bytes, int64_t passes,
                          uint64_t l2_bytes);

/** ceil(a / b) for positive ints. */
inline int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace softrec

#endif // SOFTREC_KERNELS_KERNEL_COMMON_HPP
