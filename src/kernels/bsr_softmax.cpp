/**
 * @file
 * Block-sparse softmax kernel implementations.
 */

#include "kernels/bsr_softmax.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/kernel_common.hpp"
#include "sim/calibration.hpp"
#include "sim/cost_model.hpp"

namespace softrec {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

const BsrLayout &
checkedLayout(const BsrSoftmaxDesc &desc)
{
    SOFTREC_ASSERT(desc.layout != nullptr, "BSR softmax without layout");
    SOFTREC_ASSERT(desc.batch > 0, "empty batch in %s",
                   desc.name.c_str());
    return *desc.layout;
}

/** Bytes of all non-zero attention values. */
uint64_t
nnzBytes(const BsrLayout &layout)
{
    return uint64_t(layout.nnzElements()) * kFp16Bytes;
}

/** Count of per-sub-vector intermediates (one per block row element). */
uint64_t
subVectorCount(const BsrLayout &layout)
{
    return uint64_t(layout.nnzBlocks() * layout.blockSize());
}

/**
 * Checked-build invariant: every unmasked logical row of a BSR
 * probability matrix sums to ~1 over its stored blocks.
 */
void
checkBsrRowSums(const BsrLayout &layout, const BsrMatrix &m,
                const char *what)
{
    const int64_t bs = layout.blockSize();
    for (int64_t br = 0; br < layout.blockRows(); ++br) {
        for (int64_t i = 0; i < bs; ++i) {
            double sum = 0.0;
            for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
                 ++k) {
                for (int64_t j = 0; j < bs; ++j)
                    // softrec-lint: allow(half-loop-conv) --
                    // checked-build diagnostic, not a hot path
                    sum += double(float(m.at(k, i, j)));
            }
            if (sum != 0.0 && std::abs(sum - 1.0) > kRowSumTolerance) {
                panic("%s: row %lld sums to %.6f, expected ~1 "
                      "(or 0 for a fully masked row)",
                      what, (long long)(br * bs + i), sum);
            }
        }
    }
}

} // namespace

KernelProfile
bsrRowSoftmaxProfile(const GpuSpec &spec, const BsrSoftmaxDesc &desc)
{
    (void)spec;
    const BsrLayout &layout = checkedLayout(desc);
    const SparsityStats stats = analyzeSparsity(layout);

    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::Softmax;
    prof.geom.numBlocks = desc.batch * layout.rows();
    prof.geom.block.threads = 128;
    // Worst-case allocation: the number and position of non-zeros per
    // row is not known at launch time, so every TB reserves staging
    // for a full row (Section 5.1).
    prof.geom.block.smemBytes =
        uint64_t(layout.cols()) * calib::kRowSoftmaxStagingBytesPerElem;
    prof.geom.block.regsPerThread = 40;

    prof.dramReadBytes = uint64_t(desc.batch) * nnzBytes(layout);
    prof.dramWriteBytes = prof.dramReadBytes;

    const double elems =
        double(desc.batch) * double(layout.nnzElements());
    prof.cudaFlops = 4.0 * elems;
    prof.sfuOps = elems;
    prof.serializationFactor = rowSoftmaxSerialization(layout.cols());
    // Most lanes of the worst-case-sized TB have no non-zero to load.
    prof.laneUtilization = std::max(1e-3, stats.density);
    prof.workImbalance = stats.imbalance;
    return prof;
}

void
bsrRowSoftmaxRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
                 const BsrMatrix &in, BsrMatrix &out)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional BSR softmax handles one matrix");
    const BsrLayout &layout = checkedLayout(desc);
    const int64_t bs = layout.blockSize();
    prof::Scope scope(ctx, "softmax.bsr.row");
    // Parallel over block rows: each chunk writes disjoint blocks.
    parallelFor(ctx, 0, layout.blockRows(), 1,
                [&](int64_t br0, int64_t br1) {
    // One logical row's stored segments staged contiguously in fp32:
    // segment s of the row holds block rowBegin+s's bs elements. exp
    // values overwrite the staging row during the normalizer pass and
    // are reused by the scale pass (one exp per element, not two).
    // Sized once per chunk to the widest block row (not re-resized
    // per row, which would put the allocator inside the row loop);
    // only the current row's row_len prefix is live.
    int64_t max_nnz = 0;
    for (int64_t br = br0; br < br1; ++br)
        max_nnz = std::max(max_nnz,
                           layout.rowEnd(br) - layout.rowBegin(br));
    std::vector<float> row(size_t(max_nnz * bs));
    for (int64_t br = br0; br < br1; ++br) {
        const int64_t row_nnz = layout.rowEnd(br) - layout.rowBegin(br);
        const size_t row_len = size_t(row_nnz * bs);
        if (scope.active()) {
            const uint64_t row_bytes =
                uint64_t(row_nnz) * uint64_t(bs * bs) * kFp16Bytes;
            scope.addRead(row_bytes);
            scope.addWrite(row_bytes);
        }
        for (int64_t i = 0; i < bs; ++i) {
            for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
                 ++k) {
                const int64_t s = k - layout.rowBegin(br);
                halfToFloat(in.blockData(k) + i * bs,
                            &row[size_t(s * bs)], bs);
            }
            float max_val = kNegInf;
            for (size_t x = 0; x < row_len; ++x)
                max_val = std::max(max_val, row[x]);
            float denom = 0.0f;
            for (size_t x = 0; x < row_len; ++x) {
                const float e = max_val == kNegInf
                    ? 0.0f
                    : std::exp(row[x] - max_val);
                row[x] = e;
                denom += e;
            }
            for (size_t x = 0; x < row_len; ++x)
                row[x] = denom > 0.0f ? row[x] / denom : 0.0f;
            for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
                 ++k) {
                const int64_t s = k - layout.rowBegin(br);
                floatToHalf(&row[size_t(s * bs)],
                            out.blockData(k) + i * bs, bs);
            }
            SOFTREC_CHECK(denom > 0.0f || max_val == kNegInf,
                          "BSR softmax row %lld: d = %f must be "
                          "positive for an unmasked row",
                          (long long)(br * bs + i), double(denom));
        }
    }
    });
    if constexpr (kCheckedBuild)
        checkBsrRowSums(layout, out, "bsrRowSoftmax output");
}

KernelProfile
bsrLsProfile(const GpuSpec &spec, const BsrSoftmaxDesc &desc)
{
    (void)spec;
    const BsrLayout &layout = checkedLayout(desc);
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SoftmaxLs;
    // One TB per non-zero block: allocation matches actual work.
    prof.geom.numBlocks = desc.batch * layout.nnzBlocks();
    prof.geom.block.threads = 128;
    prof.geom.block.smemBytes =
        uint64_t(layout.blockSize() * layout.blockSize()) * kFp16Bytes;
    prof.geom.block.regsPerThread = 40;

    prof.dramReadBytes = uint64_t(desc.batch) * nnzBytes(layout);
    prof.dramWriteBytes =
        uint64_t(desc.batch) *
        (nnzBytes(layout) + subVectorCount(layout) * 2 * kFp32Bytes);

    const double elems =
        double(desc.batch) * double(layout.nnzElements());
    prof.cudaFlops = 3.0 * elems;
    prof.sfuOps = elems;
    return prof;
}

void
bsrLsRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
         const BsrMatrix &in, BsrMatrix &x_prime,
         std::vector<float> &local_max, std::vector<float> &local_sum)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional BSR LS handles one matrix");
    const BsrLayout &layout = checkedLayout(desc);
    const int64_t bs = layout.blockSize();
    const size_t count = size_t(subVectorCount(layout));
    local_max.assign(count, kNegInf);
    local_sum.assign(count, 0.0f);
    prof::Scope scope(ctx, "softmax.bsr.ls");
    // Parallel over stored blocks: each block owns its rows of
    // x_prime and its m'/d' slots.
    parallelFor(ctx, 0, layout.nnzBlocks(), 4,
                [&](int64_t blk0, int64_t blk1) {
    if (scope.active()) {
        const uint64_t blocks = uint64_t(blk1 - blk0);
        const uint64_t matrix = blocks * uint64_t(bs * bs) * kFp16Bytes;
        const uint64_t md = blocks * uint64_t(bs) * 2 * kFp32Bytes;
        scope.addRead(matrix);
        scope.addWrite(matrix + md); // X' plus m'/d'
    }
    // One block row (bs contiguous halves) staged in fp32 at a time.
    std::vector<float> row(size_t(bs), 0.0f);
    for (int64_t k = blk0; k < blk1; ++k) {
        for (int64_t i = 0; i < bs; ++i) {
            halfToFloat(in.blockData(k) + i * bs, row.data(), bs);
            float m_local = kNegInf;
            for (int64_t j = 0; j < bs; ++j)
                m_local = std::max(m_local, row[size_t(j)]);
            float d_local = 0.0f;
            for (int64_t j = 0; j < bs; ++j) {
                const float e = m_local == kNegInf
                    ? 0.0f
                    : std::exp(row[size_t(j)] - m_local);
                d_local += e;
                row[size_t(j)] = e;
            }
            floatToHalf(row.data(), x_prime.blockData(k) + i * bs, bs);
            local_max[size_t(k * bs + i)] = m_local;
            local_sum[size_t(k * bs + i)] = d_local;
            SOFTREC_CHECK(d_local > 0.0f || m_local == kNegInf,
                          "BSR LS block %lld row %lld: d' = %f must be "
                          "positive unless fully masked",
                          (long long)k, (long long)i, double(d_local));
        }
    }
    });
    if constexpr (kCheckedBuild)
        checkFinite(spanOf(local_sum), "BSR LS d' output");
}

KernelProfile
bsrIrProfile(const GpuSpec &spec, const BsrSoftmaxDesc &desc)
{
    (void)spec;
    const BsrLayout &layout = checkedLayout(desc);
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SoftmaxIr;
    prof.geom.numBlocks = std::max<int64_t>(
        1, ceilDiv(desc.batch * layout.rows(), 256));
    prof.geom.block.threads = 256;
    prof.geom.block.regsPerThread = 32;

    const uint64_t md_count =
        uint64_t(desc.batch) * subVectorCount(layout);
    prof.dramReadBytes = md_count * 2 * kFp32Bytes;
    prof.dramWriteBytes = md_count * kFp32Bytes;
    prof.cudaFlops = 4.0 * double(md_count);
    prof.sfuOps = double(md_count);
    const SparsityStats stats = analyzeSparsity(layout);
    prof.workImbalance = stats.imbalance;
    return prof;
}

void
bsrIrRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
         const std::vector<float> &local_max,
         const std::vector<float> &local_sum, std::vector<float> &recon)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional BSR IR handles one matrix");
    const BsrLayout &layout = checkedLayout(desc);
    const int64_t bs = layout.blockSize();
    const size_t count = size_t(subVectorCount(layout));
    SOFTREC_ASSERT(local_max.size() == count &&
                   local_sum.size() == count,
                   "BSR IR input size mismatch");
    recon.assign(count, 0.0f);
    prof::Scope scope(ctx, "softmax.bsr.ir");
    // Parallel over block rows: each row's r' slots are disjoint.
    parallelFor(ctx, 0, layout.blockRows(), 1,
                [&](int64_t br0, int64_t br1) {
    for (int64_t br = br0; br < br1; ++br) {
        if (scope.active()) {
            const uint64_t md_count =
                uint64_t(layout.rowEnd(br) - layout.rowBegin(br)) *
                uint64_t(bs);
            scope.addRead(md_count * 2 * kFp32Bytes); // m', d'
            scope.addWrite(md_count * kFp32Bytes);    // r'
        }
        for (int64_t i = 0; i < bs; ++i) {
            float m_global = kNegInf;
            for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
                 ++k) {
                m_global = std::max(m_global,
                                    local_max[size_t(k * bs + i)]);
            }
            float d_global = 0.0f;
            for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
                 ++k) {
                const float m_local = local_max[size_t(k * bs + i)];
                if (m_local == kNegInf)
                    continue;
                d_global += std::exp(m_local - m_global) *
                            local_sum[size_t(k * bs + i)];
            }
            SOFTREC_CHECK(d_global > 0.0f || m_global == kNegInf,
                          "BSR IR row %lld: global normalizer d = %f "
                          "must be positive for an unmasked row",
                          (long long)(br * bs + i), double(d_global));
            for (int64_t k = layout.rowBegin(br); k < layout.rowEnd(br);
                 ++k) {
                const float m_local = local_max[size_t(k * bs + i)];
                if (m_local == kNegInf || d_global <= 0.0f) {
                    recon[size_t(k * bs + i)] = 0.0f;
                } else {
                    recon[size_t(k * bs + i)] =
                        std::exp(m_local - m_global) / d_global;
                }
            }
        }
    }
    });
    if constexpr (kCheckedBuild)
        checkReconFactors(spanOf(recon), "BSR IR r' output");
}

KernelProfile
bsrGsProfile(const GpuSpec &spec, const BsrSoftmaxDesc &desc)
{
    (void)spec;
    const BsrLayout &layout = checkedLayout(desc);
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SoftmaxGs;
    prof.geom.numBlocks = desc.batch * layout.nnzBlocks();
    prof.geom.block.threads = 128;
    prof.geom.block.smemBytes = 0;
    prof.geom.block.regsPerThread = 32;

    prof.dramReadBytes =
        uint64_t(desc.batch) *
        (nnzBytes(layout) + subVectorCount(layout) * kFp32Bytes);
    prof.dramWriteBytes = uint64_t(desc.batch) * nnzBytes(layout);
    prof.cudaFlops =
        double(desc.batch) * double(layout.nnzElements());
    return prof;
}

void
bsrGsRun(const ExecContext &ctx, const BsrSoftmaxDesc &desc,
         const BsrMatrix &x_prime, const std::vector<float> &recon,
         BsrMatrix &y)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional BSR GS handles one matrix");
    const BsrLayout &layout = checkedLayout(desc);
    const int64_t bs = layout.blockSize();
    SOFTREC_ASSERT(recon.size() == size_t(subVectorCount(layout)),
                   "BSR GS r' size mismatch");
    prof::Scope scope(ctx, "softmax.bsr.gs");
    // Element-wise streaming: parallel over stored blocks.
    parallelFor(ctx, 0, layout.nnzBlocks(), 4,
                [&](int64_t blk0, int64_t blk1) {
        if (scope.active()) {
            const uint64_t blocks = uint64_t(blk1 - blk0);
            const uint64_t matrix =
                blocks * uint64_t(bs * bs) * kFp16Bytes;
            scope.addRead(matrix +
                          blocks * uint64_t(bs) * kFp32Bytes); // X', r'
            scope.addWrite(matrix);
        }
        std::vector<float> row(size_t(bs), 0.0f);
        for (int64_t k = blk0; k < blk1; ++k) {
            for (int64_t i = 0; i < bs; ++i) {
                const float r = recon[size_t(k * bs + i)];
                halfToFloat(x_prime.blockData(k) + i * bs, row.data(),
                            bs);
                for (int64_t j = 0; j < bs; ++j)
                    row[size_t(j)] *= r;
                floatToHalf(row.data(), y.blockData(k) + i * bs, bs);
            }
        }
    });
    // No row-sum check here: GS is a plain linear scaling, and the
    // sum-to-one identity only holds when (x_prime, recon) come from
    // a genuine LS -> IR chain. Callers composing the full pipeline
    // are covered by the bsrRowSoftmaxRun check, which the
    // decomposed-vs-baseline tests compare against elementwise.
}

} // namespace softrec
