/**
 * @file
 * Fused multi-head-attention kernel implementation.
 */

#include "kernels/fused_mha.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/units.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernel_common.hpp"
#include "sim/calibration.hpp"

namespace softrec {

uint64_t
fusedMhaSmemBytes(const FusedMhaDesc &desc)
{
    // K and V staged in full (fp16) plus one fp32 attention-row tile.
    const uint64_t kv = uint64_t(2 * desc.seqLen * desc.dHead) *
                        kFp16Bytes;
    const uint64_t row_tile =
        uint64_t(desc.rowsPerBlock * desc.seqLen) * 0; // in registers
    const uint64_t stats =
        uint64_t(desc.rowsPerBlock) * 2 * kFp32Bytes;
    return kv + row_tile + stats;
}

bool
fusedMhaSupported(const GpuSpec &spec, const FusedMhaDesc &desc)
{
    // Leave headroom for the scheduler; FasterTransformer's published
    // limit (L <= 384 at D_head = 64) falls out of this inequality on
    // the A100 and earlier parts.
    return fusedMhaSmemBytes(desc) <= spec.smemPerSm * 3 / 4;
}

KernelProfile
fusedMhaProfile(const GpuSpec &spec, const FusedMhaDesc &desc)
{
    SOFTREC_ASSERT(desc.batch > 0 && desc.seqLen > 0 && desc.dHead > 0,
                   "empty fused MHA %s", desc.name.c_str());
    if (!fusedMhaSupported(spec, desc)) {
        fatal("fused MHA needs %s of shared memory per TB for L = "
              "%lld but %s offers %s; use softmax recomposition for "
              "long sequences",
              formatBytes(fusedMhaSmemBytes(desc)).c_str(),
              (long long)desc.seqLen, spec.name.c_str(),
              formatBytes(spec.smemPerSm).c_str());
    }

    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SdaMatMul;
    prof.geom.numBlocks =
        desc.batch * ceilDiv(desc.seqLen, desc.rowsPerBlock);
    prof.geom.block.threads = 256;
    prof.geom.block.smemBytes = fusedMhaSmemBytes(desc);
    prof.geom.block.regsPerThread = 128;

    // Only the layer inputs and output touch DRAM: the attention
    // matrix never exists off chip.
    const uint64_t qkv_bytes =
        uint64_t(3 * desc.seqLen * desc.dHead) * kFp16Bytes;
    const uint64_t o_bytes =
        uint64_t(desc.seqLen * desc.dHead) * kFp16Bytes;
    prof.dramReadBytes = uint64_t(desc.batch) * qkv_bytes;
    prof.dramWriteBytes = uint64_t(desc.batch) * o_bytes;

    const double attn_elems =
        double(desc.batch) * double(desc.seqLen) * double(desc.seqLen);
    prof.tensorFlops = 2.0 * 2.0 * attn_elems * double(desc.dHead);
    prof.gemmEfficiency = gemmEfficiencyOf(
        desc.dHead >= 128 ? GemmShapeClass::AttentionWide
                          : GemmShapeClass::Attention);
    // Softmax work runs inline between the two GEMM stages: both an
    // LS-like epilogue and a GS-like prologue worth of disruption.
    prof.fusedPenalty =
        1.0 + 2.0 * calib::kFusedWorkPerElement / double(desc.dHead);
    prof.cudaFlops = 4.0 * attn_elems;
    prof.sfuOps = attn_elems;
    return prof;
}

void
fusedMhaRun(const ExecContext &ctx, const FusedMhaDesc &desc,
            const Tensor<Half> &q, const Tensor<Half> &k,
            const Tensor<Half> &v, Tensor<Half> &out)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional fused MHA handles one head");
    const int64_t L = desc.seqLen;
    const int64_t dh = desc.dHead;
    const Shape expect({L, dh});
    SOFTREC_ASSERT(q.shape() == expect && k.shape() == expect &&
                   v.shape() == expect && out.shape() == expect,
                   "fused MHA operand shapes must be [L, dHead]");
    constexpr float neg_inf = -std::numeric_limits<float>::infinity();

    // Only the layer inputs and output touch off-chip memory: the
    // attention matrix lives entirely in the per-chunk scores buffer.
    prof::Scope scope(ctx, desc.name.c_str());
    if (scope.active()) {
        scope.addRead(uint64_t(3 * L * dh) * kFp16Bytes); // Q, K, V
        scope.addWrite(uint64_t(L * dh) * kFp16Bytes);    // O
    }

    // Q, K, V widened to fp32 once up front (they are contiguous
    // [L, dh] tensors); every row chunk reads them read-only. This
    // models the kernel staging K/V on chip instead of reconverting
    // them per query row.
    std::vector<float> qf(size_t(L) * size_t(dh));
    std::vector<float> kf(size_t(L) * size_t(dh));
    std::vector<float> vf(size_t(L) * size_t(dh));
    halfToFloat(q.data(), qf.data(), L * dh);
    halfToFloat(k.data(), kf.data(), L * dh);
    halfToFloat(v.data(), vf.data(), L * dh);

    // Parallel over query rows; each chunk owns a scores buffer and
    // writes disjoint output rows (bit-identical at any thread count).
    parallelFor(ctx, 0, L, 8, [&](int64_t row0, int64_t row1) {
        std::vector<float> scores(size_t(L), 0.0f);
        std::vector<float> orow(size_t(dh), 0.0f);
        for (int64_t i = row0; i < row1; ++i) {
            const float *qrow = &qf[size_t(i) * size_t(dh)];
            float row_max = neg_inf;
            for (int64_t j = 0; j < L; ++j) {
                const float *krow = &kf[size_t(j) * size_t(dh)];
                float s = 0.0f;
                for (int64_t d = 0; d < dh; ++d)
                    s += qrow[d] * krow[d];
                s *= float(desc.scale);
                if (desc.causalMask && j > i)
                    s = neg_inf;
                scores[size_t(j)] = s;
                row_max = std::max(row_max, s);
            }
            float denom = 0.0f;
            for (int64_t j = 0; j < L; ++j) {
                const float e = row_max == neg_inf
                    ? 0.0f
                    : std::exp(scores[size_t(j)] - row_max);
                scores[size_t(j)] = e;
                denom += e;
            }
            SOFTREC_CHECK(denom > 0.0f || row_max == neg_inf,
                          "fused MHA row %lld: normalizer d = %f must "
                          "be positive for an unmasked row",
                          (long long)i, double(denom));
            const float inv = denom > 0.0f ? 1.0f / denom : 0.0f;
            // P.V with j outer / d inner: per output element the j
            // accumulation order is unchanged (ascending), but V rows
            // are now swept contiguously.
            std::fill(orow.begin(), orow.end(), 0.0f);
            for (int64_t j = 0; j < L; ++j) {
                const float p = scores[size_t(j)];
                const float *vrow = &vf[size_t(j) * size_t(dh)];
                for (int64_t d = 0; d < dh; ++d)
                    orow[size_t(d)] += p * vrow[d];
            }
            for (int64_t d = 0; d < dh; ++d)
                orow[size_t(d)] *= inv;
            floatToHalf(orow.data(), out.rowPtr(i), dh);
        }
    });
    if constexpr (kCheckedBuild)
        checkFinite(out, "fused MHA output");
}

} // namespace softrec
