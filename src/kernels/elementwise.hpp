/**
 * @file
 * Memory-bound element-wise and normalization kernels that fill out
 * the transformer layer schedule: LayerNorm, residual add, standalone
 * bias/GeLU and scale/mask (for the unfused library baselines of
 * Fig. 7), head reshapes, and embedding lookup.
 */

#ifndef SOFTREC_KERNELS_ELEMENTWISE_HPP
#define SOFTREC_KERNELS_ELEMENTWISE_HPP

#include <string>

#include "common/exec_context.hpp"
#include "fp16/half.hpp"
#include "sim/kernel_profile.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** LayerNorm over [rows, width] (two-pass mean/var + scale). */
KernelProfile layerNormProfile(const GpuSpec &spec,
                               const std::string &name, int64_t rows,
                               int64_t width);

/** Functional LayerNorm with fp32 statistics (row-parallel). */
void layerNormRun(const ExecContext &ctx, const Tensor<Half> &in,
                  const Tensor<float> &gamma, const Tensor<float> &beta,
                  Tensor<Half> &out, float epsilon = 1e-5f);

/** Residual addition out = a + b over `elems` fp16 elements. */
KernelProfile residualAddProfile(const GpuSpec &spec,
                                 const std::string &name, int64_t elems);

/** Functional residual addition (element-chunk parallel). */
void residualAddRun(const ExecContext &ctx, const Tensor<Half> &a,
                    const Tensor<Half> &b, Tensor<Half> &out);

/** Standalone bias + optional GeLU over [rows, width]. */
KernelProfile biasActProfile(const GpuSpec &spec, const std::string &name,
                             int64_t rows, int64_t width, bool gelu);

/** Functional bias + optional GeLU (row-parallel). */
void biasActRun(const ExecContext &ctx, const Tensor<Half> &in,
                const Tensor<float> &bias, bool gelu,
                Tensor<Half> &out);

/**
 * Standalone scale and/or mask pass over the attention matrix — what
 * an unfused library (HuggingFace eager mode) launches between the
 * QK^T GEMM and the softmax.
 */
KernelProfile scaleMaskProfile(const GpuSpec &spec,
                               const std::string &name, int64_t batch,
                               int64_t rows, int64_t cols);

/**
 * Head split/merge reshape of a [L, Dm] activation (read + write),
 * launched around the SDA block by layout-sensitive libraries.
 */
KernelProfile reshapeProfile(const GpuSpec &spec, const std::string &name,
                             int64_t elems);

/** Embedding gather producing [rows, width] fp16. */
KernelProfile embeddingProfile(const GpuSpec &spec,
                               const std::string &name, int64_t rows,
                               int64_t width);

} // namespace softrec

#endif // SOFTREC_KERNELS_ELEMENTWISE_HPP
