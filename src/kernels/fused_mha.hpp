/**
 * @file
 * Fully fused multi-head-attention kernel for short sequences.
 *
 * FasterTransformer/TensorRT ship a single kernel that computes the
 * entire QK^T -> softmax -> P.V chain with the attention row resident
 * on chip — but, as the paper notes in its related work, only for
 * short inputs (L <= 384 in FasterTransformer) because the K and V
 * operands must fit in each thread block's shared memory. This module
 * models that kernel so the library baselines and the short-sequence
 * ablation can include it, and provides the functional equivalent.
 */

#ifndef SOFTREC_KERNELS_FUSED_MHA_HPP
#define SOFTREC_KERNELS_FUSED_MHA_HPP

#include <string>

#include "common/exec_context.hpp"
#include "fp16/half.hpp"
#include "sim/kernel_profile.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** One fused-MHA launch: all heads of one attention layer. */
struct FusedMhaDesc
{
    std::string name = "sda.fused_mha";
    int64_t batch = 1;      //!< batch x heads problems
    int64_t seqLen = 384;   //!< sequence length L
    int64_t dHead = 64;     //!< per-head width
    double scale = 0.125;   //!< 1/sqrt(dHead)
    bool causalMask = false;
    int64_t rowsPerBlock = 64; //!< query rows per thread block
};

/** Shared memory one TB needs: staged K and V plus the row tile. */
uint64_t fusedMhaSmemBytes(const FusedMhaDesc &desc);

/**
 * True when the fused kernel is usable: the K/V staging for a full
 * sequence fits the GPU's per-TB shared memory budget. Long sequences
 * fail this — the gap softmax recomposition exists to fill.
 */
bool fusedMhaSupported(const GpuSpec &spec, const FusedMhaDesc &desc);

/** Launch profile; call only when fusedMhaSupported. */
KernelProfile fusedMhaProfile(const GpuSpec &spec,
                              const FusedMhaDesc &desc);

/**
 * Functional fused MHA for one head (batch must be 1): computes
 * softmax(scale * Q.K^T [masked]) . V with fp32 intermediates and no
 * materialized attention matrix. Parallel over query rows;
 * bit-identical for any thread count.
 */
void fusedMhaRun(const ExecContext &ctx, const FusedMhaDesc &desc,
                 const Tensor<Half> &q, const Tensor<Half> &k,
                 const Tensor<Half> &v, Tensor<Half> &out);

} // namespace softrec

#endif // SOFTREC_KERNELS_FUSED_MHA_HPP
