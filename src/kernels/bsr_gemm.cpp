/**
 * @file
 * Block-sparse GEMM implementations.
 */

#include "kernels/bsr_gemm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernel_common.hpp"
#include "sim/calibration.hpp"

namespace softrec {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

} // namespace

KernelProfile
bsrSddProfile(const GpuSpec &spec, const BsrSddDesc &desc)
{
    SOFTREC_ASSERT(desc.layout != nullptr && desc.batch > 0 &&
                   desc.dHead > 0,
                   "bad SDD description %s", desc.name.c_str());
    const BsrLayout &layout = *desc.layout;
    const int64_t bs = layout.blockSize();

    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SdaMatMul;
    prof.geom.numBlocks = desc.batch * layout.nnzBlocks();
    prof.geom.block.threads = 256;
    prof.geom.block.smemBytes =
        uint64_t(2 * 2 * bs * 32) * kFp16Bytes; // double-buffered A/B
    prof.geom.block.regsPerThread = 96;

    const uint64_t q_bytes =
        uint64_t(layout.rows() * desc.dHead) * kFp16Bytes;
    const uint64_t k_bytes =
        uint64_t(layout.cols() * desc.dHead) * kFp16Bytes;
    const uint64_t s_bytes = uint64_t(layout.nnzElements()) * kFp16Bytes;
    // Q and K strips are small and L2-resident; each is fetched from
    // DRAM once per batch item.
    uint64_t reads =
        operandDramBytes(q_bytes, layout.blockCols(), spec.l2Bytes) +
        operandDramBytes(k_bytes, layout.blockRows(), spec.l2Bytes);
    uint64_t writes = s_bytes;
    if (desc.fuseLocalSoftmax) {
        writes += uint64_t(layout.nnzBlocks() * bs) * 2 * kFp32Bytes;
    }
    prof.dramReadBytes = uint64_t(desc.batch) * reads;
    prof.dramWriteBytes = uint64_t(desc.batch) * writes;

    const double nnz_elems =
        double(desc.batch) * double(layout.nnzElements());
    prof.tensorFlops = 2.0 * nnz_elems * double(desc.dHead);
    prof.gemmEfficiency = gemmEfficiencyOf(GemmShapeClass::BlockSparse);
    double epilogue = 0.0, sfu = 0.0;
    if (desc.scale != 1.0)
        epilogue += nnz_elems;
    if (desc.fuseLocalSoftmax) {
        epilogue += 3.0 * nnz_elems;
        sfu += nnz_elems;
    }
    prof.cudaFlops = epilogue;
    prof.sfuOps = sfu;
    if (desc.fuseLocalSoftmax)
        prof.fusedPenalty +=
            calib::kFusedWorkPerElement / double(desc.dHead);
    // One TB per non-zero block: work is uniform across TBs.
    prof.workImbalance = 1.0;
    return prof;
}

void
bsrSddRun(const ExecContext &ctx, const BsrSddDesc &desc,
          const Tensor<Half> &q, const Tensor<Half> &k_mat,
          BsrMatrix &s, std::vector<float> *local_max,
          std::vector<float> *local_sum)
{
    SOFTREC_ASSERT(desc.batch == 1, "functional SDD handles one head");
    const BsrLayout &layout = *desc.layout;
    const int64_t bs = layout.blockSize();
    SOFTREC_ASSERT(q.shape() == Shape({layout.rows(), desc.dHead}) &&
                   k_mat.shape() == Shape({layout.cols(), desc.dHead}),
                   "SDD operand shapes must be [L, dHead]");
    if (desc.fuseLocalSoftmax) {
        SOFTREC_ASSERT(local_max && local_sum,
                       "fused SDD needs LS outputs");
        local_max->assign(size_t(layout.nnzBlocks() * bs), kNegInf);
        local_sum->assign(size_t(layout.nnzBlocks() * bs), 0.0f);
    }

    prof::Scope scope(ctx, desc.name.c_str());
    std::optional<prof::Scope> ls_scope;
    if (scope.active()) {
        scope.addRead(uint64_t((layout.rows() + layout.cols()) *
                               desc.dHead) * kFp16Bytes); // Q, K
        if (desc.fuseLocalSoftmax)
            ls_scope.emplace(ctx, "softmax.bsr.ls.fused",
                             prof::Scope::Kind::BytesOnly);
    }

    // Q and K widened to fp32 once per call: every stored block reads
    // the same rows, so per-block reconversion would multiply the
    // conversion cost by the row's non-zero count.
    std::vector<float> qf(size_t(layout.rows()) * size_t(desc.dHead));
    std::vector<float> kf(size_t(layout.cols()) * size_t(desc.dHead));
    halfToFloat(q.data(), qf.data(), layout.rows() * desc.dHead);
    halfToFloat(k_mat.data(), kf.data(), layout.cols() * desc.dHead);

    // Parallel over block rows: each row's stored blocks (and their
    // m'/d' slots) are disjoint; each chunk owns its accumulator.
    parallelFor(ctx, 0, layout.blockRows(), 1,
                [&](int64_t br0, int64_t br1) {
    std::vector<float> acc(size_t(bs * bs));
    for (int64_t br = br0; br < br1; ++br) {
        if (scope.active()) {
            const uint64_t row_nnz =
                uint64_t(layout.rowEnd(br) - layout.rowBegin(br));
            scope.addWrite(row_nnz * uint64_t(bs * bs) * kFp16Bytes);
            if (ls_scope) // m'/d' per (block, row-in-block)
                ls_scope->addWrite(row_nnz * uint64_t(bs) * 2 *
                                   kFp32Bytes);
        }
        for (int64_t kk = layout.rowBegin(br); kk < layout.rowEnd(br);
             ++kk) {
            const int64_t bc = layout.blockCol(kk);
            // Dense block GEMM: acc = Q[br] . K[bc]^T, fp32 accumulate.
            for (int64_t i = 0; i < bs; ++i) {
                const float *qrow =
                    &qf[size_t(br * bs + i) * size_t(desc.dHead)];
                for (int64_t j = 0; j < bs; ++j) {
                    const float *krow =
                        &kf[size_t(bc * bs + j) * size_t(desc.dHead)];
                    float sum = 0.0f;
                    for (int64_t d = 0; d < desc.dHead; ++d)
                        sum += qrow[d] * krow[d];
                    acc[size_t(i * bs + j)] =
                        sum * float(desc.scale);
                }
            }
            // Epilogue: plain store, or fused LS per block row; the
            // block's rows narrow through the batch converter.
            for (int64_t i = 0; i < bs; ++i) {
                float *row = &acc[size_t(i * bs)];
                if (desc.fuseLocalSoftmax) {
                    float m_local = kNegInf;
                    for (int64_t j = 0; j < bs; ++j)
                        m_local = std::max(m_local, row[j]);
                    float d_local = 0.0f;
                    for (int64_t j = 0; j < bs; ++j) {
                        const float e = m_local == kNegInf
                            ? 0.0f
                            : std::exp(row[j] - m_local);
                        d_local += e;
                        row[j] = e;
                    }
                    (*local_max)[size_t(kk * bs + i)] = m_local;
                    (*local_sum)[size_t(kk * bs + i)] = d_local;
                }
                floatToHalf(row, s.blockData(kk) + i * bs, bs);
            }
        }
    }
    });
}

KernelProfile
bsrDsdProfile(const GpuSpec &spec, const BsrDsdDesc &desc)
{
    SOFTREC_ASSERT(desc.layout != nullptr && desc.batch > 0 &&
                   desc.dHead > 0,
                   "bad DSD description %s", desc.name.c_str());
    const BsrLayout &layout = *desc.layout;
    const int64_t bs = layout.blockSize();
    const SparsityStats stats = analyzeSparsity(layout);

    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SdaMatMul;
    // One TB per output block row: its work scales with the row's
    // non-zero count, which is what load-imbalances sparse attention
    // (Section 5.2).
    prof.geom.numBlocks = desc.batch * layout.blockRows();
    prof.geom.block.threads = 256;
    prof.geom.block.smemBytes =
        uint64_t(2 * (bs * 32 + 32 * desc.dHead)) * kFp16Bytes;
    prof.geom.block.regsPerThread = 96;

    const uint64_t p_bytes = uint64_t(layout.nnzElements()) * kFp16Bytes;
    const uint64_t v_bytes =
        uint64_t(layout.cols() * desc.dHead) * kFp16Bytes;
    const uint64_t o_bytes =
        uint64_t(layout.rows() * desc.dHead) * kFp16Bytes;
    uint64_t reads =
        p_bytes +
        operandDramBytes(v_bytes, layout.blockRows(), spec.l2Bytes);
    if (desc.fuseGlobalScale)
        reads += uint64_t(layout.nnzBlocks() * bs) * kFp32Bytes;
    prof.dramReadBytes = uint64_t(desc.batch) * reads;
    prof.dramWriteBytes = uint64_t(desc.batch) * o_bytes;

    const double nnz_elems =
        double(desc.batch) * double(layout.nnzElements());
    prof.tensorFlops = 2.0 * nnz_elems * double(desc.dHead);
    prof.gemmEfficiency = gemmEfficiencyOf(GemmShapeClass::BlockSparse);
    if (desc.fuseGlobalScale) {
        prof.cudaFlops = nnz_elems;
        prof.fusedPenalty +=
            calib::kFusedWorkPerElement / double(desc.dHead);
    }
    prof.workImbalance = stats.imbalance;
    return prof;
}

void
bsrDsdRun(const ExecContext &ctx, const BsrDsdDesc &desc,
          const BsrMatrix &p, const Tensor<Half> &v, Tensor<Half> &o,
          const std::vector<float> *recon)
{
    SOFTREC_ASSERT(desc.batch == 1, "functional DSD handles one head");
    const BsrLayout &layout = *desc.layout;
    const int64_t bs = layout.blockSize();
    SOFTREC_ASSERT(v.shape() == Shape({layout.cols(), desc.dHead}) &&
                   o.shape() == Shape({layout.rows(), desc.dHead}),
                   "DSD operand shapes must be [L, dHead]");
    if (desc.fuseGlobalScale) {
        SOFTREC_ASSERT(recon && recon->size() ==
                           size_t(layout.nnzBlocks() * bs),
                       "fused DSD needs r'");
    }
    o.fill(Half());
    prof::Scope scope(ctx, desc.name.c_str());
    std::optional<prof::Scope> gs_scope;
    if (scope.active()) {
        scope.addRead(uint64_t(layout.cols() * desc.dHead) *
                      kFp16Bytes); // V
        if (desc.fuseGlobalScale)
            gs_scope.emplace(ctx, "softmax.bsr.gs.fused",
                             prof::Scope::Kind::BytesOnly);
    }
    // V widened once per call: every block row gathers from the same
    // value rows, so per-element reconversion would scale with nnz.
    std::vector<float> vf(size_t(layout.cols()) * size_t(desc.dHead));
    halfToFloat(v.data(), vf.data(), layout.cols() * desc.dHead);

    // Parallel over block rows: output rows are disjoint per chunk.
    parallelFor(ctx, 0, layout.blockRows(), 1,
                [&](int64_t br0, int64_t br1) {
    std::vector<float> pbuf(size_t(bs), 0.0f);
    std::vector<float> obuf(size_t(desc.dHead));
    for (int64_t br = br0; br < br1; ++br) {
        if (scope.active()) {
            const uint64_t row_nnz =
                uint64_t(layout.rowEnd(br) - layout.rowBegin(br));
            scope.addRead(row_nnz * uint64_t(bs * bs) * kFp16Bytes);
            scope.addWrite(uint64_t(bs * desc.dHead) * kFp16Bytes);
            if (gs_scope) // r' per (block, row-in-block)
                gs_scope->addRead(row_nnz * uint64_t(bs) * kFp32Bytes);
        }
        for (int64_t i = 0; i < bs; ++i) {
            // kk outer / j mid / d inner: per output element (i, d)
            // the (kk, j) accumulation order is unchanged (ascending),
            // but V rows are swept contiguously and each P block row
            // widens through the batch converter exactly once.
            std::fill(obuf.begin(), obuf.end(), 0.0f);
            for (int64_t kk = layout.rowBegin(br);
                 kk < layout.rowEnd(br); ++kk) {
                const int64_t bc = layout.blockCol(kk);
                halfToFloat(p.blockData(kk) + i * bs, pbuf.data(), bs);
                const float r = desc.fuseGlobalScale
                    ? (*recon)[size_t(kk * bs + i)]
                    : 1.0f;
                for (int64_t j = 0; j < bs; ++j) {
                    // Same value as the old (p * r) * v ordering.
                    const float s = pbuf[size_t(j)] * r;
                    const float *vrow =
                        &vf[size_t(bc * bs + j) * size_t(desc.dHead)];
                    for (int64_t d = 0; d < desc.dHead; ++d)
                        obuf[size_t(d)] += s * vrow[d];
                }
            }
            floatToHalf(obuf.data(), o.rowPtr(br * bs + i), desc.dHead);
        }
    }
    });
}

} // namespace softrec
