/**
 * @file
 * Dense softmax kernels.
 *
 *  - rowSoftmax*: the baseline fused safe-softmax kernel (one row
 *    vector per thread block, Fig. 3(a)); the configuration the paper's
 *    baseline inherits from TensorRT.
 *  - ls / ir / gs: the three decomposed sub-layer kernels of Fig. 4
 *    (Local Softmax, Inter-sub-vector Reduction, Global Scaling), run
 *    standalone in the SD configuration.
 *
 * Functional implementations compute with fp32 intermediates on fp16
 * storage, mirroring the modeled kernels, and parallelize over rows
 * through the ExecContext they take as first parameter (bit-identical
 * for any thread count — see common/exec_context.hpp).
 */

#ifndef SOFTREC_KERNELS_SOFTMAX_KERNELS_HPP
#define SOFTREC_KERNELS_SOFTMAX_KERNELS_HPP

#include <string>

#include "common/exec_context.hpp"
#include "fp16/half.hpp"
#include "sim/kernel_profile.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/**
 * Problem shape shared by all dense softmax kernels. The whole-row
 * kernels (rowSoftmax*, onlineRowSoftmax*) ignore subVector; the
 * decomposed LS/IR/GS kernels require it > 0.
 */
struct SoftmaxShape
{
    std::string name = "softmax";
    int64_t batch = 1;      //!< independent matrices (batch x heads)
    int64_t rows = 0;       //!< attention rows (L)
    int64_t cols = 0;       //!< attention columns (L)
    int64_t subVector = 0;  //!< sub-vector width T; 0 = whole-row

    /** Number of sub-vectors per row (N_sv = ceil(L / T)). */
    int64_t numSubVectors() const;
};

/** Baseline row-softmax launch profile (one row per TB). */
KernelProfile rowSoftmaxProfile(const GpuSpec &spec,
                                const SoftmaxShape &desc);

/** Functional safe softmax along rows: out = softmax(in). */
void rowSoftmaxRun(const ExecContext &ctx, const SoftmaxShape &desc,
                   const Tensor<Half> &in, Tensor<Half> &out);

/**
 * Online-normalizer row softmax (Milakov & Gimelshein, related work
 * [21]): computes max and normalizer in a single fused pass, so only
 * two dependent passes remain instead of three. Same off-chip traffic
 * as the baseline kernel but a better serialization factor — still an
 * unfused kernel, so it cannot remove the attention-matrix sweeps the
 * way recomposition does.
 */
KernelProfile onlineRowSoftmaxProfile(const GpuSpec &spec,
                                      const SoftmaxShape &desc);

/** Functional online-normalizer softmax along rows. */
void onlineRowSoftmaxRun(const ExecContext &ctx,
                         const SoftmaxShape &desc,
                         const Tensor<Half> &in, Tensor<Half> &out);

/** LS kernel profile: square tiles of sub-vectors per TB. */
KernelProfile lsProfile(const GpuSpec &spec, const SoftmaxShape &desc);

/**
 * Functional Local Softmax: per sub-vector k of each row, emit
 * X'= exp(x - m'_k), the local max m'_k and local sum d'_k.
 *
 * @param x_prime out, same shape as in (fp16)
 * @param local_max out, [rows, N_sv] (fp32)
 * @param local_sum out, [rows, N_sv] (fp32)
 */
void lsRun(const ExecContext &ctx, const SoftmaxShape &desc,
           const Tensor<Half> &in, Tensor<Half> &x_prime,
           Tensor<float> &local_max, Tensor<float> &local_sum);

/** IR kernel profile: one row's (m', d') pairs per thread. */
KernelProfile irProfile(const GpuSpec &spec, const SoftmaxShape &desc);

/**
 * Functional Inter-sub-vector Reduction: per row, reduce
 * m = max_k m'_k and d = sum_k e^(m'_k - m) d'_k, then emit the
 * reconstruction factors r'_k = e^(m'_k - m) / d.
 *
 * @param recon out, [rows, N_sv] (fp32)
 */
void irRun(const ExecContext &ctx, const SoftmaxShape &desc,
           const Tensor<float> &local_max,
           const Tensor<float> &local_sum, Tensor<float> &recon);

/** GS kernel profile: element-wise streaming. */
KernelProfile gsProfile(const GpuSpec &spec, const SoftmaxShape &desc);

/** Functional Global Scaling: y = x' * r'[row, j / T]. */
void gsRun(const ExecContext &ctx, const SoftmaxShape &desc,
           const Tensor<Half> &x_prime, const Tensor<float> &recon,
           Tensor<Half> &y);

} // namespace softrec

#endif // SOFTREC_KERNELS_SOFTMAX_KERNELS_HPP
