/**
 * @file
 * Dense GEMM kernel implementation: analytical profile + functional
 * tiled execution.
 */

#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "sim/calibration.hpp"

namespace softrec {

double
gemmEfficiencyOf(GemmShapeClass shape_class)
{
    switch (shape_class) {
      case GemmShapeClass::LargeFc:
        return calib::kGemmEffLargeFc;
      case GemmShapeClass::Attention:
        return calib::kGemmEffAttention;
      case GemmShapeClass::AttentionWide:
        return calib::kGemmEffAttentionWide;
      case GemmShapeClass::BlockSparse:
        return calib::kGemmEffBlockSparse;
    }
    panic("unknown GEMM shape class");
}

KernelProfile
gemmProfile(const GpuSpec &spec, const GemmDesc &desc)
{
    SOFTREC_ASSERT(desc.m > 0 && desc.n > 0 && desc.k > 0 &&
                   desc.batch > 0,
                   "GEMM %s has empty problem", desc.name.c_str());
    const GemmTiling &t = desc.tiling;
    const int64_t tiles_m = ceilDiv(desc.m, t.tileM);
    const int64_t tiles_n = ceilDiv(desc.n, t.tileN);

    KernelProfile prof;
    prof.name = desc.name;
    prof.category = desc.category;
    prof.geom.numBlocks = desc.batch * tiles_m * tiles_n;
    prof.geom.block.threads = t.threads;
    prof.geom.block.smemBytes = t.smemBytes();
    prof.geom.block.regsPerThread = t.regsPerThread;

    // --- DRAM traffic (per batch item, then scaled) ---
    const uint64_t a_bytes = uint64_t(desc.m * desc.k) * kFp16Bytes;
    const uint64_t b_bytes = uint64_t(desc.k * desc.n) * kFp16Bytes;
    const uint64_t c_bytes = uint64_t(desc.m * desc.n) * kFp16Bytes;

    // A-operand reuse works at strip granularity: with row-major tile
    // rasterization, one TB row's A strip (tileM x k) is re-read for
    // every tile in that row with nothing but small B strips between
    // accesses, so a strip that fits in L2 makes A effectively
    // single-pass from DRAM.
    const uint64_t a_strip_bytes = uint64_t(t.tileM * desc.k) * kFp16Bytes;
    const int64_t a_passes =
        a_strip_bytes <= uint64_t(0.8 * double(spec.l2Bytes)) ? 1
                                                              : tiles_n;
    // B is swept once per tile row; its reuse distance is the whole
    // operand, so the whole-operand residency rule applies.
    uint64_t reads = operandDramBytes(a_bytes, a_passes, spec.l2Bytes) +
                     operandDramBytes(b_bytes, tiles_m, spec.l2Bytes);
    uint64_t writes = c_bytes;

    if (desc.epilogue.bias)
        reads += uint64_t(desc.n) * kFp32Bytes;
    if (desc.epilogue.localSoftmax) {
        // m' and d' per (row, sub-vector), fp32.
        writes += uint64_t(desc.m * tiles_n) * 2 * kFp32Bytes;
    }
    if (desc.prologue.globalScale) {
        // r' per (row, incoming sub-vector), fp32.
        reads += uint64_t(desc.m *
                          ceilDiv(desc.k, desc.prologue.gsSubVector)) *
                 kFp32Bytes;
    }
    prof.dramReadBytes = uint64_t(desc.batch) * reads;
    prof.dramWriteBytes = uint64_t(desc.batch) * writes;

    // --- Arithmetic ---
    prof.tensorFlops =
        2.0 * double(desc.batch) * double(desc.m) * double(desc.n) *
        double(desc.k);
    prof.gemmEfficiency = gemmEfficiencyOf(desc.shapeClass);

    const double out_elems =
        double(desc.batch) * double(desc.m) * double(desc.n);
    double epilogue_flops = 0.0;
    double sfu_ops = 0.0;
    if (desc.epilogue.scale != 1.0)
        epilogue_flops += out_elems;
    if (desc.epilogue.causalMask)
        epilogue_flops += out_elems;
    if (desc.epilogue.bias)
        epilogue_flops += out_elems;
    if (desc.epilogue.gelu) {
        epilogue_flops += 8.0 * out_elems;
        sfu_ops += out_elems; // tanh
    }
    if (desc.epilogue.localSoftmax) {
        epilogue_flops += 3.0 * out_elems; // max, subtract, accumulate
        sfu_ops += out_elems;              // exp
    }
    if (desc.prologue.globalScale) {
        epilogue_flops +=
            double(desc.batch) * double(desc.m) * double(desc.k);
    }
    prof.cudaFlops = epilogue_flops;
    prof.sfuOps = sfu_ops;
    // Fused softmax work slows the mainloop in proportion to how
    // little GEMM depth each fused element amortizes over: K steps
    // per output element for an LS epilogue, N columns per LHS
    // element for a GS prologue.
    if (desc.epilogue.localSoftmax)
        prof.fusedPenalty +=
            calib::kFusedWorkPerElement / double(desc.k);
    if (desc.prologue.globalScale)
        prof.fusedPenalty +=
            calib::kFusedWorkPerElement / double(desc.n);
    prof.workImbalance = desc.workImbalance;
    return prof;
}

float
geluApprox(float x)
{
    const float c = 0.7978845608028654f; // sqrt(2/pi)
    const float inner = c * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

void
gemmRun(const ExecContext &ctx, const GemmDesc &desc,
        const GemmOperands &ops, Tensor<Half> &c, const LsOutputs *ls)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional GEMM handles one batch item; loop "
                   "outside (%s)", desc.name.c_str());
    SOFTREC_ASSERT(ops.a && ops.b, "GEMM operands missing");
    const int64_t m = desc.m, n = desc.n, k = desc.k;
    SOFTREC_ASSERT(ops.a->shape() == Shape({m, k}),
                   "A shape %s != [m, k]",
                   ops.a->shape().toString().c_str());
    const Shape expect_b =
        ops.transposeB ? Shape({n, k}) : Shape({k, n});
    SOFTREC_ASSERT(ops.b->shape() == expect_b, "B shape %s unexpected",
                   ops.b->shape().toString().c_str());
    SOFTREC_ASSERT(c.shape() == Shape({m, n}), "C shape %s != [m, n]",
                   c.shape().toString().c_str());
    if (desc.epilogue.bias) {
        SOFTREC_ASSERT(ops.bias && ops.bias->shape() == Shape({n}),
                       "bias missing or misshaped");
    }
    const int64_t gs_sub = desc.prologue.gsSubVector;
    if (desc.prologue.globalScale) {
        SOFTREC_ASSERT(ops.gsFactors &&
                       ops.gsFactors->shape() ==
                           Shape({m, ceilDiv(k, gs_sub)}),
                       "GS factors missing or misshaped");
    }
    const GemmTiling &t = desc.tiling;
    const int64_t tiles_n = ceilDiv(n, t.tileN);
    if (desc.epilogue.localSoftmax) {
        SOFTREC_ASSERT(ls && ls->localMax && ls->localSum,
                       "LS outputs missing");
        SOFTREC_ASSERT(ls->localMax->shape() == Shape({m, tiles_n}) &&
                       ls->localSum->shape() == Shape({m, tiles_n}),
                       "LS output shapes must be [m, ceil(n/tileN)]");
    }

    const float neg_inf = -std::numeric_limits<float>::infinity();

    // Unique-operand traffic accounting: B (and bias) are credited
    // once up front on the submitting thread; per-strip A reads and C
    // writes are credited by whichever thread runs the strip. Fused
    // LS/GS extras go to byte-only scopes so softmax-layer traffic
    // can be summed per strategy without double-counting GEMM time.
    prof::Scope scope(ctx, desc.name.c_str());
    std::optional<prof::Scope> ls_scope;
    std::optional<prof::Scope> gs_scope;
    if (scope.active()) {
        uint64_t fixed_reads = uint64_t(k * n) * kFp16Bytes;
        if (desc.epilogue.bias)
            fixed_reads += uint64_t(n) * kFp32Bytes;
        scope.addRead(fixed_reads);
        if (desc.epilogue.localSoftmax)
            ls_scope.emplace(ctx, "softmax.ls.fused",
                             prof::Scope::Kind::BytesOnly);
        if (desc.prologue.globalScale)
            gs_scope.emplace(ctx, "softmax.gs.fused",
                             prof::Scope::Kind::BytesOnly);
    }

    // One m-tile strip of output: all n-tiles for rows [m0, m0 + mh).
    // Takes its own accumulator so parallel strips never share state.
    auto runStrip = [&](int64_t m0, std::vector<float> &acc) {
        const int64_t mh = std::min(t.tileM, m - m0);
        for (int64_t n0 = 0; n0 < n; n0 += t.tileN) {
            const int64_t nw = std::min(t.tileN, n - n0);
            std::fill(acc.begin(), acc.end(), 0.0f);

            // Mainloop: outer-product accumulation over K steps, with
            // the GS prologue applied as the A operand is "loaded".
            for (int64_t k0 = 0; k0 < k; k0 += t.tileK) {
                const int64_t kw = std::min(t.tileK, k - k0);
                for (int64_t i = 0; i < mh; ++i) {
                    for (int64_t kk = 0; kk < kw; ++kk) {
                        float a_val =
                            float(ops.a->at(m0 + i, k0 + kk));
                        if (desc.prologue.globalScale) {
                            a_val *= ops.gsFactors->at(
                                m0 + i, (k0 + kk) / gs_sub);
                        }
                        if (a_val == 0.0f)
                            continue;
                        for (int64_t j = 0; j < nw; ++j) {
                            const float b_val = ops.transposeB
                                ? float(ops.b->at(n0 + j, k0 + kk))
                                : float(ops.b->at(k0 + kk, n0 + j));
                            acc[size_t(i * t.tileN + j)] +=
                                a_val * b_val;
                        }
                    }
                }
            }

            // Epilogue on the fp32 tile.
            for (int64_t i = 0; i < mh; ++i) {
                float *row = &acc[size_t(i * t.tileN)];
                for (int64_t j = 0; j < nw; ++j) {
                    float v = row[j];
                    if (desc.epilogue.scale != 1.0)
                        v *= float(desc.epilogue.scale);
                    if (desc.epilogue.causalMask &&
                        (n0 + j) > (m0 + i)) {
                        v = neg_inf;
                    }
                    if (desc.epilogue.bias)
                        v += ops.bias->at(n0 + j);
                    if (desc.epilogue.gelu)
                        v = geluApprox(v);
                    row[j] = v;
                }

                if (desc.epilogue.localSoftmax) {
                    // One sub-vector: this row segment of width nw.
                    float local_max = neg_inf;
                    for (int64_t j = 0; j < nw; ++j)
                        local_max = std::max(local_max, row[j]);
                    float local_sum = 0.0f;
                    for (int64_t j = 0; j < nw; ++j) {
                        const float e = local_max == neg_inf
                            ? 0.0f
                            : std::exp(row[j] - local_max);
                        local_sum += e;
                        c.at(m0 + i, n0 + j) = Half(e);
                    }
                    ls->localMax->at(m0 + i, n0 / t.tileN) = local_max;
                    ls->localSum->at(m0 + i, n0 / t.tileN) = local_sum;
                    SOFTREC_CHECK(local_sum > 0.0f ||
                                  local_max == neg_inf,
                                  "fused LS epilogue (%lld, %lld): "
                                  "d' = %f must be positive unless "
                                  "fully masked",
                                  (long long)(m0 + i),
                                  (long long)(n0 / t.tileN),
                                  double(local_sum));
                } else {
                    for (int64_t j = 0; j < nw; ++j)
                        c.at(m0 + i, n0 + j) = Half(row[j]);
                }
            }
        }
    };

    // Parallel over m-tile strips: each strip owns its accumulator
    // and writes disjoint output rows (and disjoint LS rows), so the
    // result is bit-identical for any thread count.
    const int64_t strips = ceilDiv(m, t.tileM);
    parallelFor(ctx, 0, strips, 1, [&](int64_t strip0, int64_t strip1) {
        std::vector<float> acc(size_t(t.tileM * t.tileN));
        for (int64_t strip = strip0; strip < strip1; ++strip) {
            const int64_t m0 = strip * t.tileM;
            if (scope.active()) {
                const uint64_t mh = uint64_t(std::min(t.tileM, m - m0));
                scope.addRead(mh * uint64_t(k) * kFp16Bytes);
                scope.addWrite(mh * uint64_t(n) * kFp16Bytes);
                if (ls_scope) // m'/d' per (row, sub-vector)
                    ls_scope->addWrite(mh * uint64_t(tiles_n) * 2 *
                                       kFp32Bytes);
                if (gs_scope) // r' per (row, incoming sub-vector)
                    gs_scope->addRead(
                        mh * uint64_t(ceilDiv(k, gs_sub)) * kFp32Bytes);
            }
            runStrip(m0, acc);
        }
    });
}

} // namespace softrec
