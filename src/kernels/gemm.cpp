/**
 * @file
 * Dense GEMM kernel implementation: analytical profile + functional
 * tiled execution.
 */

#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "sim/calibration.hpp"

namespace softrec {

double
gemmEfficiencyOf(GemmShapeClass shape_class)
{
    switch (shape_class) {
      case GemmShapeClass::LargeFc:
        return calib::kGemmEffLargeFc;
      case GemmShapeClass::Attention:
        return calib::kGemmEffAttention;
      case GemmShapeClass::AttentionWide:
        return calib::kGemmEffAttentionWide;
      case GemmShapeClass::BlockSparse:
        return calib::kGemmEffBlockSparse;
    }
    panic("unknown GEMM shape class");
}

KernelProfile
gemmProfile(const GpuSpec &spec, const GemmDesc &desc)
{
    SOFTREC_ASSERT(desc.m > 0 && desc.n > 0 && desc.k > 0 &&
                   desc.batch > 0,
                   "GEMM %s has empty problem", desc.name.c_str());
    const GemmTiling &t = desc.tiling;
    const int64_t tiles_m = ceilDiv(desc.m, t.tileM);
    const int64_t tiles_n = ceilDiv(desc.n, t.tileN);

    KernelProfile prof;
    prof.name = desc.name;
    prof.category = desc.category;
    prof.geom.numBlocks = desc.batch * tiles_m * tiles_n;
    prof.geom.block.threads = t.threads;
    prof.geom.block.smemBytes = t.smemBytes();
    prof.geom.block.regsPerThread = t.regsPerThread;

    // --- DRAM traffic (per batch item, then scaled) ---
    const uint64_t a_bytes = uint64_t(desc.m * desc.k) * kFp16Bytes;
    const uint64_t b_bytes = uint64_t(desc.k * desc.n) * kFp16Bytes;
    const uint64_t c_bytes = uint64_t(desc.m * desc.n) * kFp16Bytes;

    // A-operand reuse works at strip granularity: with row-major tile
    // rasterization, one TB row's A strip (tileM x k) is re-read for
    // every tile in that row with nothing but small B strips between
    // accesses, so a strip that fits in L2 makes A effectively
    // single-pass from DRAM.
    const uint64_t a_strip_bytes = uint64_t(t.tileM * desc.k) * kFp16Bytes;
    const int64_t a_passes =
        a_strip_bytes <= uint64_t(0.8 * double(spec.l2Bytes)) ? 1
                                                              : tiles_n;
    // B is swept once per tile row; its reuse distance is the whole
    // operand, so the whole-operand residency rule applies.
    uint64_t reads = operandDramBytes(a_bytes, a_passes, spec.l2Bytes) +
                     operandDramBytes(b_bytes, tiles_m, spec.l2Bytes);
    uint64_t writes = c_bytes;

    if (desc.epilogue.bias)
        reads += uint64_t(desc.n) * kFp32Bytes;
    if (desc.epilogue.localSoftmax) {
        // m' and d' per (row, sub-vector), fp32.
        writes += uint64_t(desc.m * tiles_n) * 2 * kFp32Bytes;
    }
    if (desc.prologue.globalScale) {
        // r' per (row, incoming sub-vector), fp32.
        reads += uint64_t(desc.m *
                          ceilDiv(desc.k, desc.prologue.gsSubVector)) *
                 kFp32Bytes;
    }
    prof.dramReadBytes = uint64_t(desc.batch) * reads;
    prof.dramWriteBytes = uint64_t(desc.batch) * writes;

    // --- Arithmetic ---
    prof.tensorFlops =
        2.0 * double(desc.batch) * double(desc.m) * double(desc.n) *
        double(desc.k);
    prof.gemmEfficiency = gemmEfficiencyOf(desc.shapeClass);

    const double out_elems =
        double(desc.batch) * double(desc.m) * double(desc.n);
    double epilogue_flops = 0.0;
    double sfu_ops = 0.0;
    if (desc.epilogue.scale != 1.0)
        epilogue_flops += out_elems;
    if (desc.epilogue.causalMask)
        epilogue_flops += out_elems;
    if (desc.epilogue.bias)
        epilogue_flops += out_elems;
    if (desc.epilogue.gelu) {
        epilogue_flops += 8.0 * out_elems;
        sfu_ops += out_elems; // tanh
    }
    if (desc.epilogue.localSoftmax) {
        epilogue_flops += 3.0 * out_elems; // max, subtract, accumulate
        sfu_ops += out_elems;              // exp
    }
    if (desc.prologue.globalScale) {
        epilogue_flops +=
            double(desc.batch) * double(desc.m) * double(desc.k);
    }
    prof.cudaFlops = epilogue_flops;
    prof.sfuOps = sfu_ops;
    // Fused softmax work slows the mainloop in proportion to how
    // little GEMM depth each fused element amortizes over: K steps
    // per output element for an LS epilogue, N columns per LHS
    // element for a GS prologue.
    if (desc.epilogue.localSoftmax)
        prof.fusedPenalty +=
            calib::kFusedWorkPerElement / double(desc.k);
    if (desc.prologue.globalScale)
        prof.fusedPenalty +=
            calib::kFusedWorkPerElement / double(desc.n);
    prof.workImbalance = desc.workImbalance;
    return prof;
}

float
geluApprox(float x)
{
    const float c = 0.7978845608028654f; // sqrt(2/pi)
    const float inner = c * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

void
gemmRun(const ExecContext &ctx, const GemmDesc &desc,
        const GemmOperands &ops, Tensor<Half> &c, const LsOutputs *ls)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional GEMM handles one batch item; loop "
                   "outside (%s)", desc.name.c_str());
    SOFTREC_ASSERT(ops.a && ops.b, "GEMM operands missing");
    const int64_t m = desc.m, n = desc.n, k = desc.k;
    SOFTREC_ASSERT(ops.a->shape() == Shape({m, k}),
                   "A shape %s != [m, k]",
                   ops.a->shape().toString().c_str());
    const Shape expect_b =
        ops.transposeB ? Shape({n, k}) : Shape({k, n});
    SOFTREC_ASSERT(ops.b->shape() == expect_b, "B shape %s unexpected",
                   ops.b->shape().toString().c_str());
    SOFTREC_ASSERT(c.shape() == Shape({m, n}), "C shape %s != [m, n]",
                   c.shape().toString().c_str());
    if (desc.epilogue.bias) {
        SOFTREC_ASSERT(ops.bias && ops.bias->shape() == Shape({n}),
                       "bias missing or misshaped");
    }
    const int64_t gs_sub = desc.prologue.gsSubVector;
    if (desc.prologue.globalScale) {
        SOFTREC_ASSERT(ops.gsFactors &&
                       ops.gsFactors->shape() ==
                           Shape({m, ceilDiv(k, gs_sub)}),
                       "GS factors missing or misshaped");
    }
    const GemmTiling &t = desc.tiling;
    const int64_t tiles_n = ceilDiv(n, t.tileN);
    if (desc.epilogue.localSoftmax) {
        SOFTREC_ASSERT(ls && ls->localMax && ls->localSum,
                       "LS outputs missing");
        SOFTREC_ASSERT(ls->localMax->shape() == Shape({m, tiles_n}) &&
                       ls->localSum->shape() == Shape({m, tiles_n}),
                       "LS output shapes must be [m, ceil(n/tileN)]");
    }

    const float neg_inf = -std::numeric_limits<float>::infinity();

    // Unique-operand traffic accounting: B (and bias) are credited
    // once up front on the submitting thread; per-strip A reads and C
    // writes are credited by whichever thread runs the strip. Fused
    // LS/GS extras go to byte-only scopes so softmax-layer traffic
    // can be summed per strategy without double-counting GEMM time.
    prof::Scope scope(ctx, desc.name.c_str());
    std::optional<prof::Scope> ls_scope;
    std::optional<prof::Scope> gs_scope;
    if (scope.active()) {
        uint64_t fixed_reads = uint64_t(k * n) * kFp16Bytes;
        if (desc.epilogue.bias)
            fixed_reads += uint64_t(n) * kFp32Bytes;
        scope.addRead(fixed_reads);
        if (desc.epilogue.localSoftmax)
            ls_scope.emplace(ctx, "softmax.ls.fused",
                             prof::Scope::Kind::BytesOnly);
        if (desc.prologue.globalScale)
            gs_scope.emplace(ctx, "softmax.gs.fused",
                             prof::Scope::Kind::BytesOnly);
    }

    // Pack B once per call into one fp32 panel per n-tile, laid out
    // [k][tileN] so the micro-kernel streams it contiguously. This
    // hoists the transposeB branch and every B-side conversion out of
    // the mainloop (the old code reconverted each B element once per
    // consuming output row). Ragged tail columns are zero-padded so
    // the kernel always accumulates a full tileN-wide panel; padding
    // contributes exact zeros and the epilogue never stores them.
    std::vector<float> bpack(size_t(tiles_n) * size_t(k) *
                             size_t(t.tileN), 0.0f);
    if (!ops.transposeB) {
        // B is [k, n]: each row feeds one contiguous strip per panel.
        for (int64_t kk = 0; kk < k; ++kk) {
            const Half *brow = ops.b->rowPtr(kk);
            for (int64_t tn = 0; tn < tiles_n; ++tn) {
                const int64_t n0 = tn * t.tileN;
                halfToFloat(
                    brow + n0,
                    &bpack[size_t((tn * k + kk) * t.tileN)],
                    std::min(t.tileN, n - n0));
            }
        }
    } else {
        // B is [n, k]: convert each row once, scatter into panels.
        std::vector<float> brow(size_t(k), 0.0f);
        for (int64_t j = 0; j < n; ++j) {
            halfToFloat(ops.b->rowPtr(j), brow.data(), k);
            float *panel =
                &bpack[size_t((j / t.tileN) * k * t.tileN)];
            const int64_t jj = j % t.tileN;
            for (int64_t kk = 0; kk < k; ++kk)
                panel[kk * t.tileN + jj] = brow[kk];
        }
    }

    // Register-blocked fp32 micro-kernel: acc[mh, tileN] += A[mh, k]
    // . panel[k, tileN], four output rows sharing each panel row
    // sweep. Accumulation is unconditional (no zero-operand skip) and
    // k-ascending per output element, the same order as a scalar
    // triple loop, so tiling is invisible in the result bits.
    const auto microKernel = [&t](const float *SOFTREC_RESTRICT a_rows,
                                  const float *SOFTREC_RESTRICT panel,
                                  float *SOFTREC_RESTRICT acc,
                                  int64_t mh, int64_t k_depth) {
        const int64_t ldn = t.tileN;
        int64_t i = 0;
        for (; i + 4 <= mh; i += 4) {
            const float *a0 = a_rows + (i + 0) * k_depth;
            const float *a1 = a_rows + (i + 1) * k_depth;
            const float *a2 = a_rows + (i + 2) * k_depth;
            const float *a3 = a_rows + (i + 3) * k_depth;
            float *c0 = acc + (i + 0) * ldn;
            float *c1 = acc + (i + 1) * ldn;
            float *c2 = acc + (i + 2) * ldn;
            float *c3 = acc + (i + 3) * ldn;
            for (int64_t kk = 0; kk < k_depth; ++kk) {
                const float *b = panel + kk * ldn;
                const float v0 = a0[kk], v1 = a1[kk];
                const float v2 = a2[kk], v3 = a3[kk];
                for (int64_t j = 0; j < ldn; ++j) {
                    c0[j] += v0 * b[j];
                    c1[j] += v1 * b[j];
                    c2[j] += v2 * b[j];
                    c3[j] += v3 * b[j];
                }
            }
        }
        for (; i < mh; ++i) {
            const float *ar = a_rows + i * k_depth;
            float *cr = acc + i * ldn;
            for (int64_t kk = 0; kk < k_depth; ++kk) {
                const float *b = panel + kk * ldn;
                const float v = ar[kk];
                for (int64_t j = 0; j < ldn; ++j)
                    cr[j] += v * b[j];
            }
        }
    };

    // One m-tile strip of output: all n-tiles for rows [m0, m0 + mh).
    // The strip's A rows are converted (and GS-scaled) once into abuf;
    // every n-tile below reuses those fp32 rows.
    auto runStrip = [&](int64_t m0, std::vector<float> &abuf,
                        std::vector<float> &acc) {
        const int64_t mh = std::min(t.tileM, m - m0);
        for (int64_t i = 0; i < mh; ++i) {
            float *arow = &abuf[size_t(i * k)];
            halfToFloat(ops.a->rowPtr(m0 + i), arow, k);
            if (desc.prologue.globalScale) {
                const float *gs = ops.gsFactors->rowPtr(m0 + i);
                for (int64_t k0 = 0; k0 < k; k0 += gs_sub) {
                    const float r = gs[k0 / gs_sub];
                    const int64_t k1 = std::min(k, k0 + gs_sub);
                    for (int64_t kk = k0; kk < k1; ++kk)
                        arow[kk] *= r;
                }
            }
        }
        for (int64_t tn = 0; tn < tiles_n; ++tn) {
            const int64_t n0 = tn * t.tileN;
            const int64_t nw = std::min(t.tileN, n - n0);
            std::fill(acc.begin(), acc.end(), 0.0f);
            microKernel(abuf.data(),
                        &bpack[size_t(tn) * size_t(k) *
                               size_t(t.tileN)],
                        acc.data(), mh, k);

            // Epilogue on the fp32 tile; C stores go through the
            // batch converter per row.
            for (int64_t i = 0; i < mh; ++i) {
                float *row = &acc[size_t(i * t.tileN)];
                for (int64_t j = 0; j < nw; ++j) {
                    float v = row[j];
                    if (desc.epilogue.scale != 1.0)
                        v *= float(desc.epilogue.scale);
                    if (desc.epilogue.causalMask &&
                        (n0 + j) > (m0 + i)) {
                        v = neg_inf;
                    }
                    if (desc.epilogue.bias)
                        v += ops.bias->at(n0 + j);
                    if (desc.epilogue.gelu)
                        v = geluApprox(v);
                    row[j] = v;
                }

                if (desc.epilogue.localSoftmax) {
                    // One sub-vector: this row segment of width nw.
                    float local_max = neg_inf;
                    for (int64_t j = 0; j < nw; ++j)
                        local_max = std::max(local_max, row[j]);
                    float local_sum = 0.0f;
                    for (int64_t j = 0; j < nw; ++j) {
                        const float e = local_max == neg_inf
                            ? 0.0f
                            : std::exp(row[j] - local_max);
                        local_sum += e;
                        row[j] = e;
                    }
                    ls->localMax->at(m0 + i, tn) = local_max;
                    ls->localSum->at(m0 + i, tn) = local_sum;
                    SOFTREC_CHECK(local_sum > 0.0f ||
                                  local_max == neg_inf,
                                  "fused LS epilogue (%lld, %lld): "
                                  "d' = %f must be positive unless "
                                  "fully masked",
                                  (long long)(m0 + i), (long long)tn,
                                  double(local_sum));
                }
                floatToHalf(row, c.rowPtr(m0 + i) + n0, nw);
            }
        }
    };

    // Parallel over m-tile strips: each strip owns its buffers and
    // writes disjoint output rows (and disjoint LS rows), so the
    // result is bit-identical for any thread count.
    const int64_t strips = ceilDiv(m, t.tileM);
    parallelFor(ctx, 0, strips, 1, [&](int64_t strip0, int64_t strip1) {
        std::vector<float> abuf(size_t(t.tileM) * size_t(k));
        std::vector<float> acc(size_t(t.tileM * t.tileN));
        for (int64_t strip = strip0; strip < strip1; ++strip) {
            const int64_t m0 = strip * t.tileM;
            if (scope.active()) {
                const uint64_t mh = uint64_t(std::min(t.tileM, m - m0));
                scope.addRead(mh * uint64_t(k) * kFp16Bytes);
                scope.addWrite(mh * uint64_t(n) * kFp16Bytes);
                if (ls_scope) // m'/d' per (row, sub-vector)
                    ls_scope->addWrite(mh * uint64_t(tiles_n) * 2 *
                                       kFp32Bytes);
                if (gs_scope) // r' per (row, incoming sub-vector)
                    gs_scope->addRead(
                        mh * uint64_t(ceilDiv(k, gs_sub)) * kFp32Bytes);
            }
            runStrip(m0, abuf, acc);
        }
    });
}

} // namespace softrec
