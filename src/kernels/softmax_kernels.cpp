/**
 * @file
 * Dense softmax kernel implementations.
 */

#include "kernels/softmax_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/kernel_common.hpp"
#include "sim/calibration.hpp"
#include "sim/cost_model.hpp"

namespace softrec {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/** Rows per parallelFor chunk (fixed: part of the determinism contract). */
constexpr int64_t kRowGrain = 8;

} // namespace

int64_t
SoftmaxShape::numSubVectors() const
{
    SOFTREC_ASSERT(subVector > 0,
                   "%s: numSubVectors needs subVector > 0 (whole-row "
                   "shape?)", name.c_str());
    return ceilDiv(cols, subVector);
}

KernelProfile
rowSoftmaxProfile(const GpuSpec &spec, const SoftmaxShape &desc)
{
    (void)spec;
    SOFTREC_ASSERT(desc.batch > 0 && desc.rows > 0 && desc.cols > 0,
                   "empty softmax problem %s", desc.name.c_str());
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::Softmax;
    prof.geom.numBlocks = desc.batch * desc.rows;
    prof.geom.block.threads = 128;
    // The whole row is staged in fp32 in shared memory so the three
    // dependent passes avoid re-reading DRAM (Section 3.1).
    prof.geom.block.smemBytes =
        uint64_t(desc.cols) * calib::kRowSoftmaxStagingBytesPerElem;
    prof.geom.block.regsPerThread = 40;

    const uint64_t matrix_bytes =
        uint64_t(desc.batch * desc.rows * desc.cols) * kFp16Bytes;
    prof.dramReadBytes = matrix_bytes;
    prof.dramWriteBytes = matrix_bytes;

    const double elems =
        double(desc.batch) * double(desc.rows) * double(desc.cols);
    prof.cudaFlops = 4.0 * elems; // max, subtract, accumulate, scale
    prof.sfuOps = elems;          // exp
    prof.serializationFactor = rowSoftmaxSerialization(desc.cols);
    return prof;
}

void
rowSoftmaxRun(const ExecContext &ctx, const SoftmaxShape &desc,
              const Tensor<Half> &in, Tensor<Half> &out)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional softmax handles one matrix; loop outside");
    const Shape expect({desc.rows, desc.cols});
    SOFTREC_ASSERT(in.shape() == expect && out.shape() == expect,
                   "softmax shapes must be [rows, cols]");
    if constexpr (kCheckedBuild)
        checkFinite(in, "rowSoftmax input", /*allow_neg_inf=*/true);
    prof::Scope scope(ctx, "softmax.row");
    parallelFor(ctx, 0, desc.rows, kRowGrain,
                [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t matrix =
                uint64_t(row1 - row0) * uint64_t(desc.cols) * kFp16Bytes;
            scope.addRead(matrix);
            scope.addWrite(matrix);
        }
        // Row staged once in fp32; exp(x - m) is stored back into the
        // staging row during the normalizer pass and reused by the
        // scale pass, so each element pays for one exp, not two.
        std::vector<float> row(size_t(desc.cols));
        for (int64_t i = row0; i < row1; ++i) {
            halfToFloat(in.rowPtr(i), row.data(), desc.cols);
            float max_val = kNegInf;
            for (int64_t j = 0; j < desc.cols; ++j)
                max_val = std::max(max_val, row[size_t(j)]);
            float denom = 0.0f;
            for (int64_t j = 0; j < desc.cols; ++j) {
                const float e = max_val == kNegInf
                    ? 0.0f
                    : std::exp(row[size_t(j)] - max_val);
                row[size_t(j)] = e;
                denom += e;
            }
            for (int64_t j = 0; j < desc.cols; ++j) {
                row[size_t(j)] =
                    denom > 0.0f ? row[size_t(j)] / denom : 0.0f;
            }
            floatToHalf(row.data(), out.rowPtr(i), desc.cols);
            SOFTREC_CHECK(denom > 0.0f || max_val == kNegInf,
                          "row %lld normalizer d = %f must be positive "
                          "for an unmasked row",
                          (long long)i, double(denom));
        }
    });
    if constexpr (kCheckedBuild)
        checkRowSumsNearOne(out, "rowSoftmax output");
}

KernelProfile
onlineRowSoftmaxProfile(const GpuSpec &spec, const SoftmaxShape &desc)
{
    KernelProfile prof = rowSoftmaxProfile(spec, desc);
    prof.name = desc.name + ".online";
    // The fused max+normalizer pass removes one of the three
    // dependent sweeps, recovering a third of the serialization loss.
    prof.serializationFactor =
        1.0 - (1.0 - prof.serializationFactor) * 2.0 / 3.0;
    // One extra rescale multiply per element in the online recurrence.
    prof.cudaFlops += double(desc.batch) * double(desc.rows) *
                      double(desc.cols);
    return prof;
}

void
onlineRowSoftmaxRun(const ExecContext &ctx, const SoftmaxShape &desc,
                    const Tensor<Half> &in, Tensor<Half> &out)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional softmax handles one matrix; loop outside");
    const Shape expect({desc.rows, desc.cols});
    SOFTREC_ASSERT(in.shape() == expect && out.shape() == expect,
                   "softmax shapes must be [rows, cols]");
    if constexpr (kCheckedBuild)
        checkFinite(in, "onlineRowSoftmax input", /*allow_neg_inf=*/true);
    prof::Scope scope(ctx, "softmax.online");
    parallelFor(ctx, 0, desc.rows, kRowGrain,
                [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t matrix =
                uint64_t(row1 - row0) * uint64_t(desc.cols) * kFp16Bytes;
            scope.addRead(matrix);
            scope.addWrite(matrix);
        }
        std::vector<float> row(size_t(desc.cols));
        for (int64_t i = row0; i < row1; ++i) {
            halfToFloat(in.rowPtr(i), row.data(), desc.cols);
            // Single online pass: running max and rescaled normalizer.
            float running_max = kNegInf;
            float running_sum = 0.0f;
            for (int64_t j = 0; j < desc.cols; ++j) {
                const float x = row[size_t(j)];
                const float new_max = std::max(running_max, x);
                if (new_max == kNegInf)
                    continue;
                running_sum =
                    running_sum *
                        (running_max == kNegInf
                             ? 0.0f
                             : std::exp(running_max - new_max)) +
                    std::exp(x - new_max);
                running_max = new_max;
            }
            for (int64_t j = 0; j < desc.cols; ++j) {
                const float e = running_max == kNegInf
                    ? 0.0f
                    : std::exp(row[size_t(j)] - running_max);
                row[size_t(j)] =
                    running_sum > 0.0f ? e / running_sum : 0.0f;
            }
            floatToHalf(row.data(), out.rowPtr(i), desc.cols);
        }
    });
    if constexpr (kCheckedBuild)
        checkRowSumsNearOne(out, "onlineRowSoftmax output");
}

KernelProfile
lsProfile(const GpuSpec &spec, const SoftmaxShape &desc)
{
    (void)spec;
    SOFTREC_ASSERT(desc.batch > 0 && desc.rows > 0 && desc.cols > 0 &&
                   desc.subVector > 0,
                   "empty LS problem %s", desc.name.c_str());
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SoftmaxLs;
    // Square tiles: subVector-wide, subVector-tall blocks of the
    // attention matrix per TB (Fig. 4, left).
    const int64_t tile_rows = desc.subVector;
    prof.geom.numBlocks = desc.batch * ceilDiv(desc.rows, tile_rows) *
                          desc.numSubVectors();
    prof.geom.block.threads = 128;
    prof.geom.block.smemBytes =
        uint64_t(tile_rows * desc.subVector) * kFp16Bytes;
    prof.geom.block.regsPerThread = 40;

    const uint64_t matrix_bytes =
        uint64_t(desc.batch * desc.rows * desc.cols) * kFp16Bytes;
    const uint64_t md_bytes =
        uint64_t(desc.batch * desc.rows * desc.numSubVectors()) * 2 *
        kFp32Bytes;
    prof.dramReadBytes = matrix_bytes;
    prof.dramWriteBytes = matrix_bytes + md_bytes;

    const double elems =
        double(desc.batch) * double(desc.rows) * double(desc.cols);
    prof.cudaFlops = 3.0 * elems;
    prof.sfuOps = elems;
    return prof;
}

void
lsRun(const ExecContext &ctx, const SoftmaxShape &desc,
      const Tensor<Half> &in, Tensor<Half> &x_prime,
      Tensor<float> &local_max, Tensor<float> &local_sum)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional LS handles one matrix; loop outside");
    const Shape expect({desc.rows, desc.cols});
    const Shape md_shape({desc.rows, desc.numSubVectors()});
    SOFTREC_ASSERT(in.shape() == expect && x_prime.shape() == expect,
                   "LS matrix shapes must be [rows, cols]");
    SOFTREC_ASSERT(local_max.shape() == md_shape &&
                   local_sum.shape() == md_shape,
                   "LS m'/d' shapes must be [rows, N_sv]");
    if constexpr (kCheckedBuild)
        checkFinite(in, "LS input", /*allow_neg_inf=*/true);
    prof::Scope scope(ctx, "softmax.ls");
    parallelFor(ctx, 0, desc.rows, kRowGrain,
                [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t chunk_rows = uint64_t(row1 - row0);
            const uint64_t matrix =
                chunk_rows * uint64_t(desc.cols) * kFp16Bytes;
            const uint64_t md = chunk_rows *
                uint64_t(desc.numSubVectors()) * 2 * kFp32Bytes;
            scope.addRead(matrix);
            scope.addWrite(matrix + md); // X' plus m'/d'
        }
        // Whole row staged in fp32 once; each sub-vector's exp values
        // overwrite their segment in place, then one batch narrow
        // stores the full X' row.
        std::vector<float> row(size_t(desc.cols));
        for (int64_t i = row0; i < row1; ++i) {
            halfToFloat(in.rowPtr(i), row.data(), desc.cols);
            float *md_max = local_max.rowPtr(i);
            float *md_sum = local_sum.rowPtr(i);
            for (int64_t sv = 0; sv < desc.numSubVectors(); ++sv) {
                const int64_t j0 = sv * desc.subVector;
                const int64_t j1 =
                    std::min(desc.cols, j0 + desc.subVector);
                float m_local = kNegInf;
                for (int64_t j = j0; j < j1; ++j)
                    m_local = std::max(m_local, row[size_t(j)]);
                float d_local = 0.0f;
                for (int64_t j = j0; j < j1; ++j) {
                    const float e = m_local == kNegInf
                        ? 0.0f
                        : std::exp(row[size_t(j)] - m_local);
                    d_local += e;
                    row[size_t(j)] = e;
                }
                md_max[sv] = m_local;
                md_sum[sv] = d_local;
                SOFTREC_CHECK(d_local > 0.0f || m_local == kNegInf,
                              "LS sub-vector (%lld, %lld): d' = %f must "
                              "be positive unless fully masked",
                              (long long)i, (long long)sv,
                              double(d_local));
            }
            floatToHalf(row.data(), x_prime.rowPtr(i), desc.cols);
        }
    });
    if constexpr (kCheckedBuild)
        checkFinite(local_sum, "LS d' output");
}

KernelProfile
irProfile(const GpuSpec &spec, const SoftmaxShape &desc)
{
    (void)spec;
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SoftmaxIr;
    // One row per thread; 256 threads per TB.
    prof.geom.numBlocks =
        std::max<int64_t>(1, ceilDiv(desc.batch * desc.rows, 256));
    prof.geom.block.threads = 256;
    prof.geom.block.smemBytes = 0;
    prof.geom.block.regsPerThread = 32;

    const uint64_t md_count =
        uint64_t(desc.batch * desc.rows * desc.numSubVectors());
    prof.dramReadBytes = md_count * 2 * kFp32Bytes; // m', d'
    prof.dramWriteBytes = md_count * kFp32Bytes;    // r'
    prof.cudaFlops = 4.0 * double(md_count);
    prof.sfuOps = double(md_count);
    return prof;
}

void
irRun(const ExecContext &ctx, const SoftmaxShape &desc,
      const Tensor<float> &local_max, const Tensor<float> &local_sum,
      Tensor<float> &recon)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional IR handles one matrix; loop outside");
    const Shape md_shape({desc.rows, desc.numSubVectors()});
    SOFTREC_ASSERT(local_max.shape() == md_shape &&
                   local_sum.shape() == md_shape &&
                   recon.shape() == md_shape,
                   "IR shapes must be [rows, N_sv]");
    prof::Scope scope(ctx, "softmax.ir");
    parallelFor(ctx, 0, desc.rows, kRowGrain,
                [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t md_count = uint64_t(row1 - row0) *
                                      uint64_t(desc.numSubVectors());
            scope.addRead(md_count * 2 * kFp32Bytes); // m', d'
            scope.addWrite(md_count * kFp32Bytes);    // r'
        }
        for (int64_t i = row0; i < row1; ++i) {
            const float *md_max = local_max.rowPtr(i);
            const float *md_sum = local_sum.rowPtr(i);
            float *r = recon.rowPtr(i);
            float m_global = kNegInf;
            for (int64_t sv = 0; sv < desc.numSubVectors(); ++sv)
                m_global = std::max(m_global, md_max[sv]);
            float d_global = 0.0f;
            for (int64_t sv = 0; sv < desc.numSubVectors(); ++sv) {
                const float m_local = md_max[sv];
                if (m_local == kNegInf)
                    continue; // fully masked: contributes nothing
                d_global +=
                    std::exp(m_local - m_global) * md_sum[sv];
            }
            SOFTREC_CHECK(d_global > 0.0f || m_global == kNegInf,
                          "IR row %lld: global normalizer d = %f must "
                          "be positive for an unmasked row",
                          (long long)i, double(d_global));
            for (int64_t sv = 0; sv < desc.numSubVectors(); ++sv) {
                const float m_local = md_max[sv];
                if (m_local == kNegInf || d_global <= 0.0f) {
                    r[sv] = 0.0f;
                } else {
                    r[sv] = std::exp(m_local - m_global) / d_global;
                }
            }
        }
    });
    if constexpr (kCheckedBuild)
        checkReconFactors(recon, "IR r' output");
}

KernelProfile
gsProfile(const GpuSpec &spec, const SoftmaxShape &desc)
{
    (void)spec;
    KernelProfile prof;
    prof.name = desc.name;
    prof.category = KernelCategory::SoftmaxGs;
    // Element-wise streaming: 256 threads, 4 elements per thread.
    const int64_t elems = desc.batch * desc.rows * desc.cols;
    prof.geom.numBlocks = std::max<int64_t>(1, ceilDiv(elems, 1024));
    prof.geom.block.threads = 256;
    prof.geom.block.smemBytes = 0;
    prof.geom.block.regsPerThread = 32;

    const uint64_t matrix_bytes = uint64_t(elems) * kFp16Bytes;
    const uint64_t r_bytes =
        uint64_t(desc.batch * desc.rows * desc.numSubVectors()) *
        kFp32Bytes;
    prof.dramReadBytes = matrix_bytes + r_bytes;
    prof.dramWriteBytes = matrix_bytes;
    prof.cudaFlops = double(elems);
    return prof;
}

void
gsRun(const ExecContext &ctx, const SoftmaxShape &desc,
      const Tensor<Half> &x_prime, const Tensor<float> &recon,
      Tensor<Half> &y)
{
    SOFTREC_ASSERT(desc.batch == 1,
                   "functional GS handles one matrix; loop outside");
    const Shape expect({desc.rows, desc.cols});
    SOFTREC_ASSERT(x_prime.shape() == expect && y.shape() == expect,
                   "GS matrix shapes must be [rows, cols]");
    SOFTREC_ASSERT(recon.shape() ==
                       Shape({desc.rows, desc.numSubVectors()}),
                   "GS r' shape must be [rows, N_sv]");
    prof::Scope scope(ctx, "softmax.gs");
    parallelFor(ctx, 0, desc.rows, kRowGrain,
                [&](int64_t row0, int64_t row1) {
        if (scope.active()) {
            const uint64_t chunk_rows = uint64_t(row1 - row0);
            const uint64_t matrix =
                chunk_rows * uint64_t(desc.cols) * kFp16Bytes;
            const uint64_t r_bytes = chunk_rows *
                uint64_t(desc.numSubVectors()) * kFp32Bytes;
            scope.addRead(matrix + r_bytes); // X' plus r'
            scope.addWrite(matrix);
        }
        // Widen the row once, apply each sub-vector's r' to its
        // contiguous segment, narrow once.
        std::vector<float> row(size_t(desc.cols));
        for (int64_t i = row0; i < row1; ++i) {
            halfToFloat(x_prime.rowPtr(i), row.data(), desc.cols);
            const float *r = recon.rowPtr(i);
            for (int64_t j0 = 0; j0 < desc.cols; j0 += desc.subVector) {
                const float scale = r[j0 / desc.subVector];
                const int64_t j1 =
                    std::min(desc.cols, j0 + desc.subVector);
                for (int64_t j = j0; j < j1; ++j)
                    row[size_t(j)] *= scale;
            }
            floatToHalf(row.data(), y.rowPtr(i), desc.cols);
        }
    });
    // The recomposition identity (Eq. (2)): after GS the decomposed
    // pipeline must reproduce safe-softmax rows exactly, so each
    // unmasked row sums to ~1.
    if constexpr (kCheckedBuild)
        checkRowSumsNearOne(y, "GS output");
}

} // namespace softrec
