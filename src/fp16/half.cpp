/**
 * @file
 * Bit-exact binary16 <-> binary32 conversions: the scalar reference
 * pair plus batch span conversions with runtime-dispatched SIMD paths
 * (x86-64 F16C, AArch64 NEON). Every SIMD path must produce the same
 * bits as the scalar path for every input — NaN chunks are redone
 * scalar because hardware converters quiet/preserve NaN payloads
 * differently from the software canonicalization below.
 */

#include "fp16/half.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

#if !defined(SOFTREC_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SOFTREC_SIMD_X86 1
#include <immintrin.h>
#endif

#if !defined(SOFTREC_SIMD_DISABLED) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define SOFTREC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace softrec {

namespace {

uint32_t
floatBits(float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bitsToFloat(uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace

uint16_t
Half::fromFloat(float value)
{
    const uint32_t f = floatBits(value);
    const uint32_t sign = (f >> 16) & 0x8000u;
    const uint32_t abs = f & 0x7fffffffu;

    if (abs >= 0x7f800000u) {
        // Inf or NaN; keep a quiet-NaN payload bit for NaNs.
        const uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0;
        return uint16_t(sign | 0x7c00u | mantissa);
    }
    if (abs >= 0x477ff000u) {
        // Rounds to a value >= 2^16: overflow to infinity.
        return uint16_t(sign | 0x7c00u);
    }
    if (abs < 0x33000001u) {
        // Rounds to less than half the smallest subnormal: zero.
        return uint16_t(sign);
    }

    int32_t exp = int32_t(abs >> 23) - 127;
    uint32_t mantissa = (abs & 0x007fffffu) | 0x00800000u;

    uint32_t half_bits;
    if (exp < -14) {
        // Subnormal half: shift the mantissa so the exponent is -14.
        const int shift = 13 + (-14 - exp);
        const uint32_t rounded = mantissa >> shift;
        const uint32_t remainder = mantissa & ((1u << shift) - 1);
        const uint32_t halfway = 1u << (shift - 1);
        half_bits = rounded;
        if (remainder > halfway ||
            (remainder == halfway && (rounded & 1u))) {
            ++half_bits;
        }
    } else {
        // Normal half.
        const uint32_t rounded = mantissa >> 13;
        const uint32_t remainder = mantissa & 0x1fffu;
        uint32_t frac = rounded & 0x3ffu;
        uint32_t bexp = uint32_t(exp + 15);
        if (remainder > 0x1000u ||
            (remainder == 0x1000u && (rounded & 1u))) {
            ++frac;
            if (frac == 0x400u) {
                frac = 0;
                ++bexp;
            }
        }
        if (bexp >= 31)
            return uint16_t(sign | 0x7c00u);
        half_bits = (bexp << 10) | frac;
    }
    return uint16_t(sign | half_bits);
}

float
Half::toFloat(uint16_t bits)
{
    const uint32_t sign = uint32_t(bits & 0x8000u) << 16;
    const uint32_t exp = (bits >> 10) & 0x1fu;
    const uint32_t frac = bits & 0x3ffu;

    if (exp == 0x1fu) {
        // Inf / NaN.
        return bitsToFloat(sign | 0x7f800000u | (frac << 13));
    }
    if (exp == 0) {
        if (frac == 0)
            return bitsToFloat(sign);
        // Subnormal: normalize into float.
        int e = -1;
        uint32_t m = frac;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const uint32_t fexp = uint32_t(127 - 15 - e);
        const uint32_t ffrac = (m & 0x3ffu) << 13;
        return bitsToFloat(sign | (fexp << 23) | ffrac);
    }
    const uint32_t fexp = exp + (127 - 15);
    return bitsToFloat(sign | (fexp << 23) | (frac << 13));
}

bool
Half::isInf() const
{
    return (bits_ & 0x7fffu) == 0x7c00u;
}

bool
Half::isNan() const
{
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x3ffu) != 0;
}

bool
Half::isZero() const
{
    return (bits_ & 0x7fffu) == 0;
}

void
halfToFloatScalar(const Half *src, float *dst, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        dst[i] = src[i].toFloat();
}

void
floatToHalfScalar(const float *src, Half *dst, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        dst[i] = Half(src[i]);
}

namespace {

#if defined(SOFTREC_SIMD_X86)

__attribute__((target("avx2,f16c"))) void
halfToFloatF16c(const Half *src, float *dst, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i h;
        std::memcpy(&h, src + i, sizeof(h));
        // VCVTPH2PS quiets signalling NaNs; the software conversion
        // keeps the payload verbatim (frac << 13). Redo chunks with a
        // NaN lane scalar so SIMD == scalar bit-for-bit.
        const __m128i abs = _mm_and_si128(h, _mm_set1_epi16(0x7fff));
        const int nan_lanes = _mm_movemask_epi8(
            _mm_cmpgt_epi16(abs, _mm_set1_epi16(0x7c00)));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
        if (nan_lanes != 0)
            halfToFloatScalar(src + i, dst + i, 8);
    }
    // GCC does not always insert VZEROUPPER on the tail-call exit of
    // target("avx2") functions; without it the dirty YMM upper state
    // imposes false-dependency stalls on every SSE instruction the
    // caller runs next (e.g. libm expf in the softmax kernels).
    _mm256_zeroupper();
    halfToFloatScalar(src + i, dst + i, n - i);
}

__attribute__((target("avx2,f16c"))) void
floatToHalfF16c(const float *src, Half *dst, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 f = _mm256_loadu_ps(src + i);
        // VCVTPS2PH preserves NaN payload bits; Half::fromFloat
        // canonicalizes every NaN to sign|0x7e00. Redo NaN chunks
        // scalar to keep the two paths bit-identical.
        const int nan_lanes = _mm256_movemask_ps(
            _mm256_cmp_ps(f, f, _CMP_UNORD_Q));
        const __m128i h = _mm256_cvtps_ph(
            f, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        // Half is a trivially-copyable wire format; the void cast
        // mutes -Wclass-memaccess for its user-provided constructor.
        std::memcpy(static_cast<void *>(dst + i), &h, sizeof(h));
        if (nan_lanes != 0)
            floatToHalfScalar(src + i, dst + i, 8);
    }
    _mm256_zeroupper(); // see halfToFloatF16c
    floatToHalfScalar(src + i, dst + i, n - i);
}

#endif // SOFTREC_SIMD_X86

#if defined(SOFTREC_SIMD_NEON)

void
halfToFloatNeon(const Half *src, float *dst, int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        uint16x4_t h;
        std::memcpy(&h, src + i, sizeof(h));
        // FCVTL quiets signalling NaNs; same scalar redo as x86.
        const uint16x4_t abs = vand_u16(h, vdup_n_u16(0x7fff));
        const uint16x4_t nan = vcgt_u16(abs, vdup_n_u16(0x7c00));
        vst1q_f32(dst + i, vcvt_f32_f16(vreinterpret_f16_u16(h)));
        if (vget_lane_u64(vreinterpret_u64_u16(nan), 0) != 0)
            halfToFloatScalar(src + i, dst + i, 4);
    }
    halfToFloatScalar(src + i, dst + i, n - i);
}

void
floatToHalfNeon(const float *src, Half *dst, int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t f = vld1q_f32(src + i);
        // Ordered-with-self is false only for NaN lanes.
        const uint32x4_t ordered = vceqq_f32(f, f);
        const uint16x4_t h =
            vreinterpret_u16_f16(vcvt_f16_f32(f));
        std::memcpy(static_cast<void *>(dst + i), &h, sizeof(h));
        if (vminvq_u32(ordered) == 0)
            floatToHalfScalar(src + i, dst + i, 4);
    }
    floatToHalfScalar(src + i, dst + i, n - i);
}

#endif // SOFTREC_SIMD_NEON

SimdBackend
detectBackend()
{
#if defined(SOFTREC_SIMD_X86)
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("f16c")) {
        return SimdBackend::F16cAvx2;
    }
#elif defined(SOFTREC_SIMD_NEON)
    return SimdBackend::Neon;
#endif
    return SimdBackend::Scalar;
}

SimdBackend
backendFromEnv()
{
    const char *env = std::getenv("SOFTREC_SIMD");
    if (env == nullptr || env[0] == '\0' ||
        std::strcmp(env, "auto") == 0) {
        return detectBackend();
    }
    if (std::strcmp(env, "off") == 0)
        return SimdBackend::Scalar;
    warn("SOFTREC_SIMD='%s' ignored (expected auto or off)", env);
    return detectBackend();
}

std::atomic<SimdBackend> &
backendSlot()
{
    static std::atomic<SimdBackend> slot{backendFromEnv()};
    return slot;
}

} // namespace

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Scalar:
        return "scalar";
      case SimdBackend::F16cAvx2:
        return "f16c-avx2";
      case SimdBackend::Neon:
        return "neon";
    }
    panic("unknown SimdBackend");
}

SimdBackend
detectedSimdBackend()
{
    return detectBackend();
}

SimdBackend
simdBackend()
{
    return backendSlot().load(std::memory_order_relaxed);
}

SimdBackend
setSimdBackend(SimdBackend backend)
{
    SOFTREC_ASSERT(backend == SimdBackend::Scalar ||
                   backend == detectBackend(),
                   "backend '%s' is not available on this machine",
                   simdBackendName(backend));
    return backendSlot().exchange(backend);
}

void
halfToFloat(const Half *src, float *dst, int64_t n)
{
    switch (simdBackend()) {
#if defined(SOFTREC_SIMD_X86)
      case SimdBackend::F16cAvx2:
        halfToFloatF16c(src, dst, n);
        return;
#endif
#if defined(SOFTREC_SIMD_NEON)
      case SimdBackend::Neon:
        halfToFloatNeon(src, dst, n);
        return;
#endif
      default:
        halfToFloatScalar(src, dst, n);
        return;
    }
}

void
floatToHalf(const float *src, Half *dst, int64_t n)
{
    switch (simdBackend()) {
#if defined(SOFTREC_SIMD_X86)
      case SimdBackend::F16cAvx2:
        floatToHalfF16c(src, dst, n);
        return;
#endif
#if defined(SOFTREC_SIMD_NEON)
      case SimdBackend::Neon:
        floatToHalfNeon(src, dst, n);
        return;
#endif
      default:
        floatToHalfScalar(src, dst, n);
        return;
    }
}

} // namespace softrec
