/**
 * @file
 * Bit-exact binary16 <-> binary32 conversions.
 */

#include "fp16/half.hpp"

#include <cstring>

namespace softrec {

namespace {

uint32_t
floatBits(float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bitsToFloat(uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace

uint16_t
Half::fromFloat(float value)
{
    const uint32_t f = floatBits(value);
    const uint32_t sign = (f >> 16) & 0x8000u;
    const uint32_t abs = f & 0x7fffffffu;

    if (abs >= 0x7f800000u) {
        // Inf or NaN; keep a quiet-NaN payload bit for NaNs.
        const uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0;
        return uint16_t(sign | 0x7c00u | mantissa);
    }
    if (abs >= 0x477ff000u) {
        // Rounds to a value >= 2^16: overflow to infinity.
        return uint16_t(sign | 0x7c00u);
    }
    if (abs < 0x33000001u) {
        // Rounds to less than half the smallest subnormal: zero.
        return uint16_t(sign);
    }

    int32_t exp = int32_t(abs >> 23) - 127;
    uint32_t mantissa = (abs & 0x007fffffu) | 0x00800000u;

    uint32_t half_bits;
    if (exp < -14) {
        // Subnormal half: shift the mantissa so the exponent is -14.
        const int shift = 13 + (-14 - exp);
        const uint32_t rounded = mantissa >> shift;
        const uint32_t remainder = mantissa & ((1u << shift) - 1);
        const uint32_t halfway = 1u << (shift - 1);
        half_bits = rounded;
        if (remainder > halfway ||
            (remainder == halfway && (rounded & 1u))) {
            ++half_bits;
        }
    } else {
        // Normal half.
        const uint32_t rounded = mantissa >> 13;
        const uint32_t remainder = mantissa & 0x1fffu;
        uint32_t frac = rounded & 0x3ffu;
        uint32_t bexp = uint32_t(exp + 15);
        if (remainder > 0x1000u ||
            (remainder == 0x1000u && (rounded & 1u))) {
            ++frac;
            if (frac == 0x400u) {
                frac = 0;
                ++bexp;
            }
        }
        if (bexp >= 31)
            return uint16_t(sign | 0x7c00u);
        half_bits = (bexp << 10) | frac;
    }
    return uint16_t(sign | half_bits);
}

float
Half::toFloat(uint16_t bits)
{
    const uint32_t sign = uint32_t(bits & 0x8000u) << 16;
    const uint32_t exp = (bits >> 10) & 0x1fu;
    const uint32_t frac = bits & 0x3ffu;

    if (exp == 0x1fu) {
        // Inf / NaN.
        return bitsToFloat(sign | 0x7f800000u | (frac << 13));
    }
    if (exp == 0) {
        if (frac == 0)
            return bitsToFloat(sign);
        // Subnormal: normalize into float.
        int e = -1;
        uint32_t m = frac;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const uint32_t fexp = uint32_t(127 - 15 - e);
        const uint32_t ffrac = (m & 0x3ffu) << 13;
        return bitsToFloat(sign | (fexp << 23) | ffrac);
    }
    const uint32_t fexp = exp + (127 - 15);
    return bitsToFloat(sign | (fexp << 23) | (frac << 13));
}

bool
Half::isInf() const
{
    return (bits_ & 0x7fffu) == 0x7c00u;
}

bool
Half::isNan() const
{
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x3ffu) != 0;
}

bool
Half::isZero() const
{
    return (bits_ & 0x7fffu) == 0;
}

} // namespace softrec
