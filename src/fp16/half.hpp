/**
 * @file
 * Software IEEE-754 binary16 ("half") type.
 *
 * The paper's evaluation runs entirely in FP16 storage with FP32
 * accumulation inside kernels (cuBLAS/CUTLASS convention). This type
 * reproduces the storage format exactly: float -> half conversion uses
 * round-to-nearest-even, subnormals are preserved, overflow saturates to
 * infinity. Arithmetic is performed by converting through float, which
 * matches GPU behaviour for the element-wise use SoftRec makes of it.
 */

#ifndef SOFTREC_FP16_HALF_HPP
#define SOFTREC_FP16_HALF_HPP

#include <cstdint>
#include <limits>

namespace softrec {

/** IEEE-754 binary16 storage type with float-mediated arithmetic. */
class Half
{
  public:
    /** Zero-initialized half. */
    constexpr Half() : bits_(0) {}

    /** Convert from float with round-to-nearest-even. */
    explicit Half(float value) : bits_(fromFloat(value)) {}

    /** Reinterpret raw storage bits as a half. */
    static constexpr Half
    fromBits(uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Raw storage bits. */
    constexpr uint16_t bits() const { return bits_; }

    /** Widen to float (exact). */
    float toFloat() const { return toFloat(bits_); }

    /** Implicit widening conversion, mirroring __half on CUDA. */
    operator float() const { return toFloat(); }

    /** True for +/- infinity. */
    bool isInf() const;
    /** True for NaN payloads. */
    bool isNan() const;
    /** True for zero of either sign. */
    bool isZero() const;

    /** Largest finite half value (65504). */
    static Half max() { return fromBits(0x7bff); }
    /** Smallest positive normal half (2^-14). */
    static Half minNormal() { return fromBits(0x0400); }
    /** Positive infinity. */
    static Half infinity() { return fromBits(0x7c00); }
    /** Smallest positive subnormal (2^-24). */
    static Half denormMin() { return fromBits(0x0001); }

    /** Core conversion: float bits to half bits, round-to-nearest-even. */
    static uint16_t fromFloat(float value);
    /** Core conversion: half bits to float value (exact). */
    static float toFloat(uint16_t bits);

  private:
    uint16_t bits_;
};

inline Half operator+(Half a, Half b) { return Half(float(a) + float(b)); }
inline Half operator-(Half a, Half b) { return Half(float(a) - float(b)); }
inline Half operator*(Half a, Half b) { return Half(float(a) * float(b)); }
inline Half operator/(Half a, Half b) { return Half(float(a) / float(b)); }
inline Half operator-(Half a) { return Half::fromBits(a.bits() ^ 0x8000); }

inline bool operator==(Half a, Half b) { return float(a) == float(b); }
inline bool operator!=(Half a, Half b) { return float(a) != float(b); }
inline bool operator<(Half a, Half b) { return float(a) < float(b); }
inline bool operator<=(Half a, Half b) { return float(a) <= float(b); }
inline bool operator>(Half a, Half b) { return float(a) > float(b); }
inline bool operator>=(Half a, Half b) { return float(a) >= float(b); }

/**
 * Batch-conversion backend. The SIMD paths are bit-identical to the
 * scalar ones by construction (NaN chunks fall back to the scalar
 * conversion), so the choice only affects throughput, never results.
 */
enum class SimdBackend
{
    Scalar,   ///< Portable software conversion, always available.
    F16cAvx2, ///< x86-64 VCVTPH2PS/VCVTPS2PH, 8 elements per step.
    Neon,     ///< AArch64 vcvt_f32_f16/vcvt_f16_f32, 4 per step.
};

/** Human-readable backend name ("scalar", "f16c-avx2", "neon"). */
const char *simdBackendName(SimdBackend backend);

/**
 * Best backend this binary supports on this machine, ignoring the
 * SOFTREC_SIMD environment override.
 */
SimdBackend detectedSimdBackend();

/**
 * Active batch-conversion backend: detectedSimdBackend() unless the
 * environment says SOFTREC_SIMD=off (force scalar). SOFTREC_SIMD=auto
 * or unset means detect; anything else warns and detects.
 */
SimdBackend simdBackend();

/**
 * Override the active backend in-process (benches/tests A/B the scalar
 * and SIMD paths without re-exec). Only Scalar or the detected backend
 * are accepted. Returns the previous backend so callers can restore it.
 */
SimdBackend setSimdBackend(SimdBackend backend);

/** Widen n contiguous halves to floats (exact, backend-dispatched). */
void halfToFloat(const Half *src, float *dst, int64_t n);

/** Narrow n contiguous floats to halves (RNE, backend-dispatched). */
void floatToHalf(const float *src, Half *dst, int64_t n);

/** Scalar batch widening, regardless of the active backend. */
void halfToFloatScalar(const Half *src, float *dst, int64_t n);

/** Scalar batch narrowing, regardless of the active backend. */
void floatToHalfScalar(const float *src, Half *dst, int64_t n);

} // namespace softrec

#endif // SOFTREC_FP16_HALF_HPP
