/**
 * @file
 * Software IEEE-754 binary16 ("half") type.
 *
 * The paper's evaluation runs entirely in FP16 storage with FP32
 * accumulation inside kernels (cuBLAS/CUTLASS convention). This type
 * reproduces the storage format exactly: float -> half conversion uses
 * round-to-nearest-even, subnormals are preserved, overflow saturates to
 * infinity. Arithmetic is performed by converting through float, which
 * matches GPU behaviour for the element-wise use SoftRec makes of it.
 */

#ifndef SOFTREC_FP16_HALF_HPP
#define SOFTREC_FP16_HALF_HPP

#include <cstdint>
#include <limits>

namespace softrec {

/** IEEE-754 binary16 storage type with float-mediated arithmetic. */
class Half
{
  public:
    /** Zero-initialized half. */
    constexpr Half() : bits_(0) {}

    /** Convert from float with round-to-nearest-even. */
    explicit Half(float value) : bits_(fromFloat(value)) {}

    /** Reinterpret raw storage bits as a half. */
    static constexpr Half
    fromBits(uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Raw storage bits. */
    constexpr uint16_t bits() const { return bits_; }

    /** Widen to float (exact). */
    float toFloat() const { return toFloat(bits_); }

    /** Implicit widening conversion, mirroring __half on CUDA. */
    operator float() const { return toFloat(); }

    /** True for +/- infinity. */
    bool isInf() const;
    /** True for NaN payloads. */
    bool isNan() const;
    /** True for zero of either sign. */
    bool isZero() const;

    /** Largest finite half value (65504). */
    static Half max() { return fromBits(0x7bff); }
    /** Smallest positive normal half (2^-14). */
    static Half minNormal() { return fromBits(0x0400); }
    /** Positive infinity. */
    static Half infinity() { return fromBits(0x7c00); }
    /** Smallest positive subnormal (2^-24). */
    static Half denormMin() { return fromBits(0x0001); }

    /** Core conversion: float bits to half bits, round-to-nearest-even. */
    static uint16_t fromFloat(float value);
    /** Core conversion: half bits to float value (exact). */
    static float toFloat(uint16_t bits);

  private:
    uint16_t bits_;
};

inline Half operator+(Half a, Half b) { return Half(float(a) + float(b)); }
inline Half operator-(Half a, Half b) { return Half(float(a) - float(b)); }
inline Half operator*(Half a, Half b) { return Half(float(a) * float(b)); }
inline Half operator/(Half a, Half b) { return Half(float(a) / float(b)); }
inline Half operator-(Half a) { return Half::fromBits(a.bits() ^ 0x8000); }

inline bool operator==(Half a, Half b) { return float(a) == float(b); }
inline bool operator!=(Half a, Half b) { return float(a) != float(b); }
inline bool operator<(Half a, Half b) { return float(a) < float(b); }
inline bool operator<=(Half a, Half b) { return float(a) <= float(b); }
inline bool operator>(Half a, Half b) { return float(a) > float(b); }
inline bool operator>=(Half a, Half b) { return float(a) >= float(b); }

} // namespace softrec

#endif // SOFTREC_FP16_HALF_HPP
