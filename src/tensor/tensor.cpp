/**
 * @file
 * Shape implementation.
 */

#include "tensor/tensor.hpp"

#include <sstream>

namespace softrec {

void
Shape::validate() const
{
    for (int64_t d : dims_) {
        SOFTREC_ASSERT(d > 0, "non-positive dimension %lld in shape",
                       (long long)d);
    }
}

int64_t
Shape::dim(int i) const
{
    const int r = static_cast<int>(rank());
    if (i < 0)
        i += r;
    SOFTREC_ASSERT(i >= 0 && i < r, "dim %d out of range for rank %d",
                   i, r);
    return dims_[static_cast<size_t>(i)];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

std::vector<int64_t>
Shape::strides() const
{
    std::vector<int64_t> s(rank(), 1);
    for (int i = static_cast<int>(rank()) - 2; i >= 0; --i)
        s[size_t(i)] = s[size_t(i) + 1] * dims_[size_t(i) + 1];
    return s;
}

std::string
Shape::toString() const
{
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            out << ", ";
        out << dims_[i];
    }
    out << "]";
    return out.str();
}

} // namespace softrec
