/**
 * @file
 * Minimal dense tensor library used by the functional kernels.
 *
 * Row-major, owning storage. Kernels use 2-D and 3-D tensors of float
 * (accumulators, reference math) and Half (FP16 storage, matching the
 * paper's evaluation precision).
 */

#ifndef SOFTREC_TENSOR_TENSOR_HPP
#define SOFTREC_TENSOR_TENSOR_HPP

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace softrec {

/** Tensor shape: an ordered list of dimension sizes. */
class Shape
{
  public:
    /** Empty (rank-0) shape with one element. */
    Shape() = default;

    /** Construct from a dimension list, e.g. Shape({4, 4096, 64}). */
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) { validate(); }

    /** Construct from a vector of dimensions. */
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
    {
        validate();
    }

    /** Number of dimensions. */
    size_t rank() const { return dims_.size(); }

    /** Size of dimension i (negative i counts from the back). */
    int64_t dim(int i) const;

    /** All dimensions. */
    const std::vector<int64_t> &dims() const { return dims_; }

    /** Total number of elements. */
    int64_t numel() const;

    /** Row-major strides (in elements). */
    std::vector<int64_t> strides() const;

    /** Human-readable form, e.g. "[4, 4096, 64]". */
    std::string toString() const;

    bool operator==(const Shape &other) const = default;

  private:
    void validate() const;

    std::vector<int64_t> dims_;
};

/**
 * Owning, row-major dense tensor.
 *
 * @tparam T element type (float or Half).
 */
template <typename T>
class Tensor
{
  public:
    /** Empty tensor (rank 0, one element). */
    Tensor() : shape_(), data_(1) {}

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape)
        : shape_(std::move(shape)),
          data_(static_cast<size_t>(shape_.numel()))
    {}

    /** Tensor of the given shape filled with a value. */
    Tensor(Shape shape, T fill_value)
        : shape_(std::move(shape)),
          data_(static_cast<size_t>(shape_.numel()), fill_value)
    {}

    /** The tensor's shape. */
    const Shape &shape() const { return shape_; }

    /** Total elements. */
    int64_t numel() const { return shape_.numel(); }

    /** Raw storage. */
    T *data() { return data_.data(); }
    /** Raw storage (const). */
    const T *data() const { return data_.data(); }

    /** Linear element access. */
    T &at(int64_t i) { return data_[checkIndex(i)]; }
    /** Linear element access (const). */
    const T &at(int64_t i) const { return data_[checkIndex(i)]; }

    /** 2-D element access (requires rank 2). */
    T &
    at(int64_t i, int64_t j)
    {
        return data_[offset2d(i, j)];
    }
    /** 2-D element access (const). */
    const T &
    at(int64_t i, int64_t j) const
    {
        return data_[offset2d(i, j)];
    }

    /** 3-D element access (requires rank 3). */
    T &
    at(int64_t i, int64_t j, int64_t k)
    {
        return data_[offset3d(i, j, k)];
    }
    /** 3-D element access (const). */
    const T &
    at(int64_t i, int64_t j, int64_t k) const
    {
        return data_[offset3d(i, j, k)];
    }

    /**
     * Pointer to the first element of row i (requires rank 2). The
     * row's dim(1) elements are contiguous, so kernels can hand it to
     * the batch converters instead of looping at(i, j).
     */
    T *
    rowPtr(int64_t i)
    {
        return data_.data() + rowOffset(i);
    }
    /** Pointer to the first element of row i (const, rank 2). */
    const T *
    rowPtr(int64_t i) const
    {
        return data_.data() + rowOffset(i);
    }

    /** Fill every element with a value. */
    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

    /**
     * Re-shape in place, reusing the existing storage capacity.
     * Element values are unspecified afterwards (kernels that take a
     * resized tensor as an output write every element); no
     * reallocation happens once capacity has reached the high-water
     * mark, which is what lets step-lifetime workspaces keep the
     * decode loop allocation-free.
     */
    void
    resize(Shape shape)
    {
        shape_ = std::move(shape);
        data_.resize(static_cast<size_t>(shape_.numel()));
    }

  private:
    // Per-element bounds checks are SOFTREC_CHECK, not SOFTREC_ASSERT:
    // these run in the innermost kernel loops, so they compile in only
    // under -DSOFTREC_CHECKED_BUILD=ON (the CI checked build).
    size_t
    checkIndex(int64_t i) const
    {
        SOFTREC_CHECK(i >= 0 && i < shape_.numel(),
                      "index %lld out of range for %s",
                      (long long)i, shape_.toString().c_str());
        return static_cast<size_t>(i);
    }

    size_t
    offset2d(int64_t i, int64_t j) const
    {
        SOFTREC_CHECK(shape_.rank() == 2, "rank-2 access on %s",
                      shape_.toString().c_str());
        SOFTREC_CHECK(i >= 0 && i < shape_.dim(0) &&
                      j >= 0 && j < shape_.dim(1),
                      "(%lld, %lld) out of range for %s",
                      (long long)i, (long long)j,
                      shape_.toString().c_str());
        return static_cast<size_t>(i * shape_.dim(1) + j);
    }

    size_t
    rowOffset(int64_t i) const
    {
        SOFTREC_CHECK(shape_.rank() == 2, "rowPtr on %s",
                      shape_.toString().c_str());
        SOFTREC_CHECK(i >= 0 && i < shape_.dim(0),
                      "row %lld out of range for %s",
                      (long long)i, shape_.toString().c_str());
        return static_cast<size_t>(i * shape_.dim(1));
    }

    size_t
    offset3d(int64_t i, int64_t j, int64_t k) const
    {
        SOFTREC_CHECK(shape_.rank() == 3, "rank-3 access on %s",
                      shape_.toString().c_str());
        SOFTREC_CHECK(i >= 0 && i < shape_.dim(0) &&
                      j >= 0 && j < shape_.dim(1) &&
                      k >= 0 && k < shape_.dim(2),
                      "(%lld, %lld, %lld) out of range for %s",
                      (long long)i, (long long)j, (long long)k,
                      shape_.toString().c_str());
        return static_cast<size_t>(
            (i * shape_.dim(1) + j) * shape_.dim(2) + k);
    }

    Shape shape_;
    std::vector<T> data_;
};

} // namespace softrec

#endif // SOFTREC_TENSOR_TENSOR_HPP
