/**
 * @file
 * Convenience operations on tensors: random fills, precision
 * conversions, and comparisons used by tests and reference math.
 */

#ifndef SOFTREC_TENSOR_TENSOR_OPS_HPP
#define SOFTREC_TENSOR_TENSOR_OPS_HPP

#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** Fill a float tensor with N(mean, stddev) samples. */
void fillNormal(Tensor<float> &t, Rng &rng, double mean = 0.0,
                double stddev = 1.0);

/** Fill a half tensor with N(mean, stddev) samples (rounded to FP16). */
void fillNormal(Tensor<Half> &t, Rng &rng, double mean = 0.0,
                double stddev = 1.0);

/** Fill a float tensor with U[lo, hi) samples. */
void fillUniform(Tensor<float> &t, Rng &rng, double lo, double hi);

/** Round a float tensor into a half tensor of the same shape. */
Tensor<Half> toHalf(const Tensor<float> &t);

/** Widen a half tensor into a float tensor of the same shape. */
Tensor<float> toFloat(const Tensor<Half> &t);

/** Largest absolute element-wise difference between two float tensors. */
double maxAbsDiff(const Tensor<float> &a, const Tensor<float> &b);

/**
 * Largest relative element-wise difference, with an absolute floor to
 * avoid division blowups near zero.
 */
double maxRelDiff(const Tensor<float> &a, const Tensor<float> &b,
                  double abs_floor = 1e-6);

/** True if every |a-b| <= atol + rtol*|b| (numpy allclose semantics). */
bool allClose(const Tensor<float> &a, const Tensor<float> &b,
              double rtol = 1e-5, double atol = 1e-8);

} // namespace softrec

#endif // SOFTREC_TENSOR_TENSOR_OPS_HPP
