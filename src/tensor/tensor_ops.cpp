/**
 * @file
 * Implementation of tensor convenience operations.
 */

#include "tensor/tensor_ops.hpp"

#include <cmath>

namespace softrec {

void
fillNormal(Tensor<float> &t, Rng &rng, double mean, double stddev)
{
    for (int64_t i = 0; i < t.numel(); ++i)
        t.at(i) = float(rng.normal(mean, stddev));
}

void
fillNormal(Tensor<Half> &t, Rng &rng, double mean, double stddev)
{
    for (int64_t i = 0; i < t.numel(); ++i)
        t.at(i) = Half(float(rng.normal(mean, stddev)));
}

void
fillUniform(Tensor<float> &t, Rng &rng, double lo, double hi)
{
    for (int64_t i = 0; i < t.numel(); ++i)
        t.at(i) = float(rng.uniform(lo, hi));
}

Tensor<Half>
toHalf(const Tensor<float> &t)
{
    Tensor<Half> out(t.shape());
    for (int64_t i = 0; i < t.numel(); ++i)
        out.at(i) = Half(t.at(i));
    return out;
}

Tensor<float>
toFloat(const Tensor<Half> &t)
{
    Tensor<float> out(t.shape());
    for (int64_t i = 0; i < t.numel(); ++i)
        out.at(i) = float(t.at(i));
    return out;
}

double
maxAbsDiff(const Tensor<float> &a, const Tensor<float> &b)
{
    SOFTREC_ASSERT(a.shape() == b.shape(), "shape mismatch %s vs %s",
                   a.shape().toString().c_str(),
                   b.shape().toString().c_str());
    double worst = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i)
        worst = std::max(worst, std::abs(double(a.at(i)) - double(b.at(i))));
    return worst;
}

double
maxRelDiff(const Tensor<float> &a, const Tensor<float> &b, double abs_floor)
{
    SOFTREC_ASSERT(a.shape() == b.shape(), "shape mismatch %s vs %s",
                   a.shape().toString().c_str(),
                   b.shape().toString().c_str());
    double worst = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
        const double denom =
            std::max(abs_floor, std::abs(double(b.at(i))));
        worst = std::max(
            worst, std::abs(double(a.at(i)) - double(b.at(i))) / denom);
    }
    return worst;
}

bool
allClose(const Tensor<float> &a, const Tensor<float> &b, double rtol,
         double atol)
{
    if (!(a.shape() == b.shape()))
        return false;
    for (int64_t i = 0; i < a.numel(); ++i) {
        const double da = a.at(i);
        const double db = b.at(i);
        if (std::isnan(da) || std::isnan(db))
            return false;
        if (std::abs(da - db) > atol + rtol * std::abs(db))
            return false;
    }
    return true;
}

} // namespace softrec
