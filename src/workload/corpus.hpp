/**
 * @file
 * Synthetic long-document workload generator.
 *
 * The paper drives its evaluation with TriviaQA long documents; only
 * the sequence shapes (document lengths, truncation to L, batching)
 * matter to the measured quantities. This module generates a
 * deterministic corpus with TriviaQA-like length statistics and
 * Zipfian token frequencies, plus realistic attention-score inputs
 * for the numeric tests.
 */

#ifndef SOFTREC_WORKLOAD_CORPUS_HPP
#define SOFTREC_WORKLOAD_CORPUS_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** Corpus generation parameters. */
struct CorpusConfig
{
    int64_t numDocuments = 64;  //!< documents to generate
    int64_t meanTokens = 6000;  //!< mean document length (long docs)
    int64_t minTokens = 512;    //!< shortest document
    int64_t maxTokens = 20000;  //!< longest document
    double zipfExponent = 1.1;  //!< token frequency skew
    int64_t vocabSize = 30522;  //!< vocabulary size
    uint64_t seed = 0xd0c5ULL;  //!< generation seed
};

/** One tokenized document. */
struct Document
{
    std::vector<int32_t> tokens;
};

/** Deterministic synthetic document collection. */
class SyntheticCorpus
{
  public:
    /** Generate the corpus eagerly. */
    explicit SyntheticCorpus(CorpusConfig config);

    /** The generation parameters. */
    const CorpusConfig &config() const { return config_; }

    /** All documents. */
    const std::vector<Document> &documents() const { return docs_; }

    /** Mean document length in tokens. */
    double averageLength() const;

    /** Fraction of documents longer than len tokens. */
    double fractionLongerThan(int64_t len) const;

    /**
     * Build a batch of fixed-length inputs: each document is
     * truncated to its first seq_len tokens (the paper's policy) or
     * padded with pad_token.
     */
    std::vector<std::vector<int32_t>>
    makeBatch(int64_t batch, int64_t seq_len, int64_t first_doc = 0,
              int32_t pad_token = 0) const;

  private:
    CorpusConfig config_;
    std::vector<Document> docs_;
};

/**
 * Attention-score logits with realistic statistics: N(0, stddev) with
 * a small fraction of high-magnitude outliers (strongly attended
 * positions), rounded to fp16. Exercises the numeric range safe
 * softmax exists for.
 */
Tensor<Half> makeAttentionScores(Rng &rng, int64_t rows, int64_t cols,
                                 double stddev = 2.5,
                                 double outlier_fraction = 0.01,
                                 double outlier_scale = 8.0);

} // namespace softrec

#endif // SOFTREC_WORKLOAD_CORPUS_HPP
