/**
 * @file
 * Synthetic corpus implementation.
 */

#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace softrec {

SyntheticCorpus::SyntheticCorpus(CorpusConfig config)
    : config_(config)
{
    SOFTREC_ASSERT(config_.numDocuments > 0 && config_.minTokens > 0 &&
                   config_.minTokens <= config_.maxTokens,
                   "bad corpus configuration");
    Rng rng(config_.seed);
    docs_.reserve(size_t(config_.numDocuments));
    for (int64_t d = 0; d < config_.numDocuments; ++d) {
        // Log-normal-ish length distribution centred on meanTokens;
        // long-document corpora have a heavy right tail.
        const double mu = std::log(double(config_.meanTokens)) - 0.32;
        // softrec-lint: allow(raw-exp) — lognormal length draw, not
        // attention logits; no max-subtraction needed.
        const double draw = std::exp(rng.normal(mu, 0.8));
        const int64_t len = std::clamp<int64_t>(
            int64_t(draw), config_.minTokens, config_.maxTokens);
        Document doc;
        doc.tokens.reserve(size_t(len));
        for (int64_t t = 0; t < len; ++t) {
            doc.tokens.push_back(int32_t(rng.zipf(
                uint64_t(config_.vocabSize), config_.zipfExponent)));
        }
        docs_.push_back(std::move(doc));
    }
}

double
SyntheticCorpus::averageLength() const
{
    double total = 0.0;
    for (const Document &doc : docs_)
        total += double(doc.tokens.size());
    return total / double(docs_.size());
}

double
SyntheticCorpus::fractionLongerThan(int64_t len) const
{
    int64_t count = 0;
    for (const Document &doc : docs_)
        if (int64_t(doc.tokens.size()) > len)
            ++count;
    return double(count) / double(docs_.size());
}

std::vector<std::vector<int32_t>>
SyntheticCorpus::makeBatch(int64_t batch, int64_t seq_len,
                           int64_t first_doc, int32_t pad_token) const
{
    SOFTREC_ASSERT(batch > 0 && seq_len > 0, "empty batch request");
    std::vector<std::vector<int32_t>> out;
    out.reserve(size_t(batch));
    for (int64_t b = 0; b < batch; ++b) {
        const Document &doc =
            docs_[size_t((first_doc + b) % int64_t(docs_.size()))];
        std::vector<int32_t> row(size_t(seq_len), pad_token);
        const int64_t copy = std::min<int64_t>(
            seq_len, int64_t(doc.tokens.size()));
        std::copy_n(doc.tokens.begin(), copy, row.begin());
        out.push_back(std::move(row));
    }
    return out;
}

Tensor<Half>
makeAttentionScores(Rng &rng, int64_t rows, int64_t cols, double stddev,
                    double outlier_fraction, double outlier_scale)
{
    Tensor<Half> scores(Shape({rows, cols}));
    for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j) {
            double v = rng.normal(0.0, stddev);
            if (rng.uniform() < outlier_fraction)
                v += outlier_scale * (rng.uniform() < 0.5 ? -1.0 : 1.0);
            scores.at(i, j) = Half(float(v));
        }
    }
    return scores;
}

} // namespace softrec
