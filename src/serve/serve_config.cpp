/**
 * @file
 * Serving configuration environment parsing.
 */

#include "serve/serve_config.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/exec_context.hpp"
#include "common/logging.hpp"

namespace softrec {

namespace {

/**
 * Strict positive-integer environment knob: unset returns `fallback`,
 * anything else must parse exactly as an integer in [1, max]. No
 * silent fallback — a typo in a capacity knob must stop the server.
 */
int64_t
serveEnvInt(const char *var, int64_t fallback, int64_t max)
{
    const char *text = std::getenv(var);
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 1 || parsed > max)
        fatal("%s='%s' is invalid: expected an integer in [1, %lld]; "
              "unset it to use the default (%lld)",
              var, text, (long long)max, (long long)fallback);
    return parsed;
}

} // namespace

KvDtype
kvDtypeFromEnv()
{
    const char *text = std::getenv("SOFTREC_SERVE_KV_DTYPE");
    if (text == nullptr || *text == '\0')
        return KvDtype::F16;
    if (std::strcmp(text, "f16") == 0)
        return KvDtype::F16;
    if (std::strcmp(text, "int8") == 0)
        return KvDtype::I8;
    fatal("SOFTREC_SERVE_KV_DTYPE='%s' is invalid: expected 'f16' or "
          "'int8'; unset it to use the default (f16)", text);
}

int64_t
prefillChunkTokensFromEnv()
{
    // serveEnvInt accepts [1, max] or unset: an explicit 0 (or any
    // garbage) is fatal, and only *unset* selects unchunked prefill.
    return serveEnvInt("SOFTREC_SERVE_PREFILL_CHUNK", 0, 1 << 20);
}

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig config;
    config.maxBatchRows = serveEnvInt("SOFTREC_SERVE_BATCH_ROWS",
                                      config.maxBatchRows, 4096);
    config.tokenBudget = serveEnvInt("SOFTREC_SERVE_TOKEN_BUDGET",
                                     config.tokenBudget,
                                     int64_t(1) << 40);
    config.queueCapacity = serveEnvInt("SOFTREC_SERVE_QUEUE_CAP",
                                       config.queueCapacity, 1 << 20);
    config.streamCapacity = serveEnvInt("SOFTREC_SERVE_STREAM_CAP",
                                        config.streamCapacity, 1 << 20);
    config.kvDtype = kvDtypeFromEnv();
    config.prefillChunkTokens = prefillChunkTokensFromEnv();
    config.admission.softEnterPct =
        serveEnvInt("SOFTREC_SERVE_MODE_SOFT_PCT",
                    config.admission.softEnterPct, 100);
    config.admission.hardEnterPct =
        serveEnvInt("SOFTREC_SERVE_MODE_HARD_PCT",
                    config.admission.hardEnterPct, 100);
    config.admission.hysteresisPct =
        serveEnvInt("SOFTREC_SERVE_MODE_HYSTERESIS_PCT",
                    config.admission.hysteresisPct, 100);
    config.admission.tenantTokenBudget =
        serveEnvInt("SOFTREC_SERVE_TENANT_BUDGET",
                    config.admission.tenantTokenBudget,
                    int64_t(1) << 40);
    config.admission.softPromptCapTokens =
        serveEnvInt("SOFTREC_SERVE_SOFT_PROMPT_CAP",
                    config.admission.softPromptCapTokens,
                    int64_t(1) << 40);
    if (config.admission.softEnterPct >= config.admission.hardEnterPct)
        fatal("SOFTREC_SERVE_MODE_SOFT_PCT (%lld) must be strictly "
              "below SOFTREC_SERVE_MODE_HARD_PCT (%lld): the soft "
              "regime must be reachable before the hard one",
              (long long)config.admission.softEnterPct,
              (long long)config.admission.hardEnterPct);
    // Threads are latched by ExecContext::fromEnv; validate the value
    // eagerly so a malformed SOFTREC_THREADS is a startup error here
    // rather than a warning-and-serial-fallback deep in the pool.
    std::string why;
    if (!tryParseThreadCount(std::getenv("SOFTREC_THREADS"), &why)
             .has_value())
        fatal("%s; fix or unset SOFTREC_THREADS before serving "
              "(a silent serial fallback would mask a capacity "
              "regression)", why.c_str());
    return config;
}

void
ServeConfig::validate() const
{
    // The pressure sampler divides by tokenBudget and queueCapacity
    // at every step boundary; proving both >= 1 here is what makes
    // those divisions guard-free.
    SOFTREC_ASSERT(maxBatchRows >= 1,
                   "maxBatchRows must be >= 1 (got %lld)",
                   (long long)maxBatchRows);
    SOFTREC_ASSERT(tokenBudget >= 1,
                   "tokenBudget must be >= 1 (got %lld)",
                   (long long)tokenBudget);
    SOFTREC_ASSERT(queueCapacity >= 1,
                   "queueCapacity must be >= 1 (got %lld)",
                   (long long)queueCapacity);
    SOFTREC_ASSERT(kvBlockTokens >= 1,
                   "kvBlockTokens must be >= 1 (got %lld)",
                   (long long)kvBlockTokens);
    SOFTREC_ASSERT(streamCapacity >= 1,
                   "streamCapacity must be >= 1 (got %lld)",
                   (long long)streamCapacity);
    SOFTREC_ASSERT(prefillChunkTokens >= 0,
                   "prefillChunkTokens must be >= 0, 0 = unchunked "
                   "(got %lld)",
                   (long long)prefillChunkTokens);
}

} // namespace softrec
