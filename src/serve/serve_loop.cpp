/**
 * @file
 * Continuous-batching serve driver implementation.
 */

#include "serve/serve_loop.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/logging.hpp"
#include "common/profiler.hpp"

namespace softrec {

namespace {

/**
 * Strict positive-integer environment knob: unset returns `fallback`,
 * anything else must parse exactly as an integer in [1, max]. No
 * silent fallback — a typo in a capacity knob must stop the server.
 */
int64_t
serveEnvInt(const char *var, int64_t fallback, int64_t max)
{
    const char *text = std::getenv(var);
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 1 || parsed > max)
        fatal("%s='%s' is invalid: expected an integer in [1, %lld]; "
              "unset it to use the default (%lld)",
              var, text, (long long)max, (long long)fallback);
    return parsed;
}

} // namespace

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig config;
    config.maxBatchRows = serveEnvInt("SOFTREC_SERVE_BATCH_ROWS",
                                      config.maxBatchRows, 4096);
    config.tokenBudget = serveEnvInt("SOFTREC_SERVE_TOKEN_BUDGET",
                                     config.tokenBudget,
                                     int64_t(1) << 40);
    config.queueCapacity = serveEnvInt("SOFTREC_SERVE_QUEUE_CAP",
                                       config.queueCapacity, 1 << 20);
    // Threads are latched by ExecContext::fromEnv; validate the value
    // eagerly so a malformed SOFTREC_THREADS is a startup error here
    // rather than a warning-and-serial-fallback deep in the pool.
    std::string why;
    if (!tryParseThreadCount(std::getenv("SOFTREC_THREADS"), &why)
             .has_value())
        fatal("%s; fix or unset SOFTREC_THREADS before serving "
              "(a silent serial fallback would mask a capacity "
              "regression)", why.c_str());
    return config;
}

double
percentileSeconds(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = q * double(samples.size() - 1);
    const size_t lo = size_t(std::floor(rank));
    const size_t hi = size_t(std::ceil(rank));
    const double frac = rank - double(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

ServeLoop::ServeLoop(const ExecContext &ctx, const DecoderStack &stack,
                     const ServeConfig &config)
    : ctx_(ctx), stack_(stack), config_(config),
      queue_(config.queueCapacity),
      scheduler_(SchedulerConfig{config.maxBatchRows,
                                 config.tokenBudget}),
      slab_(config.kvBlockTokens, stack.config.dModel),
      slots_(size_t(config.maxBatchRows)),
      epoch_(std::chrono::steady_clock::now())
{
    SOFTREC_ASSERT(config.kvBlockTokens > 0,
                   "kvBlockTokens must be positive");
}

double
ServeLoop::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

AdmitResult
ServeLoop::submit(ServeRequest request)
{
    if (request.prompt.shape().rank() == 2 &&
        request.prompt.shape().dim(1) != stack_.config.dModel) {
        return AdmitResult::rejected(
            "prompt width " +
            std::to_string(request.prompt.shape().dim(1)) +
            " does not match the model (dModel " +
            std::to_string(stack_.config.dModel) + ")");
    }
    if (request.prompt.shape().rank() == 2 &&
        request.generateTokens >= 1) {
        const int64_t footprint = request.prompt.shape().dim(0) +
                                  request.generateTokens;
        if (footprint > config_.tokenBudget) {
            return AdmitResult::rejected(
                "request needs " + std::to_string(footprint) +
                " KV tokens but the token budget is " +
                std::to_string(config_.tokenBudget) +
                "; it could never be scheduled");
        }
    }
    return queue_.push(std::move(request));
}

void
ServeLoop::prefillSlot(int64_t slot_index)
{
    prof::Scope scope(ctx_, "serve.prefill");
    const BatchSlot &slot = scheduler_.slot(slot_index);
    SlotState &state = slots_[size_t(slot_index)];
    state.cache = std::make_unique<KvCache>(
        slab_, int64_t(stack_.layers.size()));
    const Tensor<Half> out =
        runPrefill(ctx_, stack_, slot.request.prompt, *state.cache);
    state.stats = RequestStats{};
    state.stats.id = slot.request.id;
    state.stats.promptTokens = slot.request.prompt.shape().dim(0);
    state.stats.generatedTokens = slot.request.generateTokens;
    state.stats.arrivalSeconds = slot.request.arrivalSeconds;
    // Pseudo-sampling: the prompt's last output row is the first
    // decode input (no vocabulary head in this model).
    const int64_t dm = stack_.config.dModel;
    state.nextInput = Tensor<Half>(Shape({1, dm}));
    const int64_t last = out.shape().dim(0) - 1;
    for (int64_t j = 0; j < dm; ++j)
        state.nextInput.at(0, j) = out.at(last, j);
}

void
ServeLoop::gatherStepInputs(const std::vector<int64_t> &active)
{
    // One continuous-batching step: concatenate every active slot's
    // pending input row (slot order keeps the composition
    // deterministic). The buffers are members, so the resizes below
    // only touch the allocator while the active-row count is still
    // climbing toward its high-water mark.
    const int64_t dm = stack_.config.dModel;
    stepInputs_.resize(Shape({int64_t(active.size()), dm}));
    stepCaches_.resize(active.size());
    for (size_t r = 0; r < active.size(); ++r) {
        const SlotState &state = slots_[size_t(active[r])];
        std::copy(state.nextInput.rowPtr(0),
                  state.nextInput.rowPtr(0) + dm,
                  stepInputs_.rowPtr(int64_t(r)));
        stepCaches_[r] = state.cache.get();
    }
}

void
ServeLoop::finishSlot(int64_t slot_index, ServeSummary &summary)
{
    SlotState &state = slots_[size_t(slot_index)];
    state.stats.finishSeconds = nowSeconds();
    state.stats.finalRow = state.nextInput;
    state.cache.reset(); // blocks return to the slab now
    state.nextInput = Tensor<Half>();
    summary.requests.push_back(state.stats);
    ++summary.requestsServed;
}

void
ServeLoop::finalizeSummary(ServeSummary &summary, double start) const
{
    summary.seconds = nowSeconds() - start;
    summary.tokensPerSecond =
        summary.seconds > 0.0
            ? double(summary.tokensGenerated) / summary.seconds
            : 0.0;
    std::vector<double> latencies;
    latencies.reserve(summary.requests.size());
    for (const RequestStats &stats : summary.requests)
        latencies.push_back(stats.latencySeconds());
    summary.p50LatencySeconds = percentileSeconds(latencies, 0.50);
    summary.p95LatencySeconds = percentileSeconds(latencies, 0.95);
}

ServeSummary
ServeLoop::run()
{
    prof::Scope scope(ctx_, "serve.run");
    const double start = nowSeconds();
    const int64_t dm = stack_.config.dModel;
    ServeSummary summary;

    while (true) {
        scheduler_.admitFrom(queue_, &admitted_);
        for (int64_t slot_index : admitted_)
            prefillSlot(slot_index);

        scheduler_.activeSlots(&active_);
        if (active_.empty())
            break;

        gatherStepInputs(active_);
        {
            prof::Scope step(ctx_, "serve.step");
            runDecodeStepInto(ctx_, stack_, stepInputs_, stepCaches_,
                              stepWs_, stepOutputs_);
        }
        ++summary.decodeSteps;
        summary.tokensGenerated += int64_t(active_.size());
        for (size_t r = 0; r < active_.size(); ++r) {
            SlotState &state = slots_[size_t(active_[r])];
            std::copy(stepOutputs_.rowPtr(int64_t(r)),
                      stepOutputs_.rowPtr(int64_t(r)) + dm,
                      state.nextInput.rowPtr(0));
        }

        scheduler_.completeStep(&finished_);
        for (int64_t slot_index : finished_)
            finishSlot(slot_index, summary);
    }

    finalizeSummary(summary, start);
    return summary;
}

} // namespace softrec
