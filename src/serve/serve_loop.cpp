/**
 * @file
 * Deprecated synchronous serve adapter implementation.
 */

#include "serve/serve_loop.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.hpp"

namespace softrec {

ServeLoop::ServeLoop(const ExecContext &ctx, const DecoderStack &stack,
                     const ServeConfig &config)
    : engine_(ctx, stack, config)
{
}

AdmissionDecision
ServeLoop::submit(ServeRequest request)
{
    const int64_t prompt_tokens =
        request.prompt.shape().rank() == 2
            ? request.prompt.shape().dim(0)
            : 0;
    const int64_t generate_tokens = request.generateTokens;
    const int64_t id = request.id;
    SubmitResult result = engine_.submit(std::move(request));
    if (!result.decision.accepted)
        return result.decision;
    Pending pending;
    // Report under the caller's id verbatim (0 is a legitimate legacy
    // id even though the engine auto-assigns on 0).
    pending.stats.id = id;
    pending.stats.promptTokens = prompt_tokens;
    pending.stats.generatedTokens = generate_tokens;
    pending.stats.arrivalSeconds = engine_.nowSeconds();
    pending.session = std::move(result.session);
    pending_.push_back(std::move(pending));
    return result.decision;
}

ServeSummary
ServeLoop::run()
{
    const double start = engine_.nowSeconds();
    const ServeStats before = engine_.stats();
    if (!started_) {
        started_ = true;
        engine_.start();
    }

    ServeSummary summary;
    size_t remaining = pending_.size();
    Tensor<Half> row;
    // Round-robin non-blocking drain: with a blocking per-stream
    // drain, a bounded ring shallower than generateTokens would
    // deadlock (engine blocked pushing stream k while we wait on
    // stream j).
    while (remaining > 0) {
        bool progressed = false;
        for (Pending &pending : pending_) {
            if (pending.done)
                continue;
            TokenStream &stream = pending.session.stream();
            TokenStream::TryNext outcome = stream.tryNext(row);
            while (outcome == TokenStream::TryNext::Token) {
                pending.stats.finalRow = row;
                progressed = true;
                outcome = stream.tryNext(row);
            }
            if (outcome == TokenStream::TryNext::End) {
                pending.done = true;
                pending.stats.finishSeconds = stream.finishSeconds();
                summary.requests.push_back(pending.stats);
                --remaining;
                progressed = true;
            }
        }
        // Tokens arrive at decode-step cadence (milliseconds), so an
        // empty sweep sleeps instead of yield-spinning a core.
        if (!progressed)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    pending_.clear();
    engine_.waitIdle(); // let the step counters settle

    const ServeStats after = engine_.stats();
    summary.requestsServed = int64_t(summary.requests.size());
    summary.tokensGenerated =
        after.tokensGenerated - before.tokensGenerated;
    summary.decodeSteps = after.decodeSteps - before.decodeSteps;
    summary.seconds = engine_.nowSeconds() - start;
    summary.tokensPerSecond =
        summary.seconds > 0.0
            ? double(summary.tokensGenerated) / summary.seconds
            : 0.0;
    std::vector<double> latencies;
    latencies.reserve(summary.requests.size());
    for (const RequestStats &stats : summary.requests)
        latencies.push_back(stats.latencySeconds());
    summary.p50LatencySeconds = percentileSeconds(latencies, 0.50);
    summary.p95LatencySeconds = percentileSeconds(latencies, 0.95);
    return summary;
}

} // namespace softrec
