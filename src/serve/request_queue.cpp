/**
 * @file
 * Bounded request queue implementation.
 */

#include "serve/request_queue.hpp"

#include <utility>

#include "common/logging.hpp"

namespace softrec {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity)
{
    SOFTREC_ASSERT(capacity > 0,
                   "queue capacity must be positive, got %lld",
                   (long long)capacity);
}

AdmissionDecision
RequestQueue::push(ServeRequest request)
{
    if (request.prompt.shape().rank() != 2 ||
        request.prompt.shape().dim(0) < 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++rejected_;
        return AdmissionDecision::rejected(
            "prompt must be a [tokens, dModel] tensor with at least "
            "one token");
    }
    if (request.generateTokens < 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++rejected_;
        return AdmissionDecision::rejected(
            "generateTokens must be >= 1");
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (int64_t(items_.size()) >= capacity_) {
        ++rejected_;
        return AdmissionDecision::rejected(
            AdmissionMode::Normal, "queue_depth",
            double(items_.size()), double(capacity_),
            "queue full (capacity " + std::to_string(capacity_) +
                "); retry after the server drains");
    }
    items_.push_back(std::move(request));
    ++accepted_;
    return AdmissionDecision::ok();
}

std::optional<ServeRequest>
RequestQueue::pop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty())
        return std::nullopt;
    ServeRequest front = std::move(items_.front());
    items_.pop_front();
    return front;
}

int64_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return int64_t(items_.size());
}

int64_t
RequestQueue::accepted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepted_;
}

int64_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

} // namespace softrec
