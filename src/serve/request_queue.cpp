/**
 * @file
 * Bounded request queue implementation.
 */

#include "serve/request_queue.hpp"

#include <utility>

#include "common/logging.hpp"

namespace softrec {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity)
{
    SOFTREC_ASSERT(capacity > 0,
                   "queue capacity must be positive, got %lld",
                   (long long)capacity);
}

AdmitResult
RequestQueue::push(ServeRequest request)
{
    std::string reason;
    if (request.prompt.shape().rank() != 2 ||
        request.prompt.shape().dim(0) < 1) {
        reason = "prompt must be a [tokens, dModel] tensor with at "
                 "least one token";
    } else if (request.generateTokens < 1) {
        reason = "generateTokens must be >= 1";
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (reason.empty() && int64_t(items_.size()) >= capacity_)
        reason = "queue full (capacity " + std::to_string(capacity_) +
                 "); retry after the server drains";
    if (!reason.empty()) {
        ++rejected_;
        return AdmitResult::rejected(std::move(reason));
    }
    items_.push_back(std::move(request));
    ++accepted_;
    return AdmitResult::ok();
}

std::optional<ServeRequest>
RequestQueue::pop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty())
        return std::nullopt;
    ServeRequest front = std::move(items_.front());
    items_.pop_front();
    return front;
}

int64_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return int64_t(items_.size());
}

int64_t
RequestQueue::accepted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepted_;
}

int64_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

} // namespace softrec
