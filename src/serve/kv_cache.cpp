/**
 * @file
 * Slab-allocated KV cache implementation.
 */

#include "serve/kv_cache.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace softrec {

KvSlab::KvSlab(int64_t block_tokens, int64_t row_width,
               int64_t blocks_per_chunk)
    : blockTokens_(block_tokens), rowWidth_(row_width),
      blocksPerChunk_(blocks_per_chunk)
{
    SOFTREC_ASSERT(block_tokens > 0 && row_width > 0 &&
                   blocks_per_chunk > 0,
                   "KvSlab shape must be positive (tokens=%lld, "
                   "width=%lld, chunk=%lld)", (long long)block_tokens,
                   (long long)row_width, (long long)blocks_per_chunk);
}

Half *
KvSlab::acquire()
{
    if (freeList_.empty()) {
        const size_t block_elems = size_t(blockTokens_ * rowWidth_);
        auto chunk = std::make_unique<Half[]>(
            block_elems * size_t(blocksPerChunk_));
        for (int64_t b = blocksPerChunk_ - 1; b >= 0; --b)
            freeList_.push_back(chunk.get() + size_t(b) * block_elems);
        chunks_.push_back(std::move(chunk));
        blocksReserved_ += blocksPerChunk_;
    }
    Half *block = freeList_.back();
    freeList_.pop_back();
    ++blocksInUse_;
    return block;
}

void
KvSlab::release(Half *block)
{
    SOFTREC_ASSERT(block != nullptr && blocksInUse_ > 0,
                   "release without a matching acquire");
    freeList_.push_back(block);
    --blocksInUse_;
}

int64_t
KvSlab::bytesReserved() const
{
    return blocksReserved_ * blockTokens_ * rowWidth_ *
           int64_t(sizeof(Half));
}

KvCache::KvCache(KvSlab &slab, int64_t num_layers)
    : slab_(slab), layers_(size_t(num_layers))
{
    SOFTREC_ASSERT(num_layers > 0, "KvCache needs at least one layer");
}

KvCache::~KvCache()
{
    for (LayerRows &layer : layers_) {
        for (Half *block : layer.kBlocks)
            slab_.release(block);
        for (Half *block : layer.vBlocks)
            slab_.release(block);
    }
}

Half *
KvCache::writableRow(std::vector<Half *> &blocks, int64_t pos)
{
    const int64_t block_tokens = slab_.blockTokens();
    const int64_t block_index = pos / block_tokens;
    if (block_index == int64_t(blocks.size()))
        blocks.push_back(slab_.acquire());
    SOFTREC_ASSERT(block_index < int64_t(blocks.size()),
                   "non-monotonic KV append at row %lld",
                   (long long)pos);
    return blocks[size_t(block_index)] +
           (pos % block_tokens) * slab_.rowWidth();
}

void
KvCache::appendRow(int64_t layer, const Half *k_row, const Half *v_row)
{
    SOFTREC_ASSERT(layer >= 0 && layer < int64_t(layers_.size()),
                   "layer %lld out of range", (long long)layer);
    LayerRows &rows = layers_[size_t(layer)];
    const size_t row_bytes = size_t(slab_.rowWidth()) * sizeof(Half);
    std::memcpy(writableRow(rows.kBlocks, rows.rows), k_row, row_bytes);
    std::memcpy(writableRow(rows.vBlocks, rows.rows), v_row, row_bytes);
    ++rows.rows;
}

int64_t
KvCache::context() const
{
    const int64_t rows = layers_.front().rows;
    for (const LayerRows &layer : layers_)
        SOFTREC_ASSERT(layer.rows == rows,
                       "layers have uneven KV contexts (%lld vs %lld); "
                       "append one row per layer per token",
                       (long long)layer.rows, (long long)rows);
    return rows;
}

KvRowsView
KvCache::view(const std::vector<Half *> &blocks, int64_t rows) const
{
    KvRowsView out;
    out.blocks = blocks.data();
    out.blockTokens = slab_.blockTokens();
    out.rowWidth = slab_.rowWidth();
    out.rows = rows;
    return out;
}

KvRowsView
KvCache::kView(int64_t layer) const
{
    SOFTREC_ASSERT(layer >= 0 && layer < int64_t(layers_.size()),
                   "layer %lld out of range", (long long)layer);
    const LayerRows &rows = layers_[size_t(layer)];
    return view(rows.kBlocks, rows.rows);
}

KvRowsView
KvCache::vView(int64_t layer) const
{
    SOFTREC_ASSERT(layer >= 0 && layer < int64_t(layers_.size()),
                   "layer %lld out of range", (long long)layer);
    const LayerRows &rows = layers_[size_t(layer)];
    return view(rows.vBlocks, rows.rows);
}

} // namespace softrec
