/**
 * @file
 * Slab-allocated KV cache implementation.
 */

#include "serve/kv_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace softrec {

namespace {

constexpr int64_t kKvBlockAlign = 16;

/**
 * Symmetric-clamp quantization of one fp32 row with a fixed scale.
 * nearbyint (round-to-nearest-even under the default mode) keeps the
 * result deterministic across backends; the clamp to [-127, 127]
 * keeps the code symmetric so -amax and +amax round-trip with the
 * same error bound. scale == 0 means the block is all zeros so far.
 */
void
quantizeRow(const float *src, int64_t n, float scale, int8_t *dst)
{
    if (scale == 0.0f) {
        std::memset(dst, 0, size_t(n));
        return;
    }
    const float inv = 1.0f / scale;
    for (int64_t j = 0; j < n; ++j) {
        float q = std::nearbyint(src[j] * inv);
        q = std::min(127.0f, std::max(-127.0f, q));
        dst[j] = int8_t(q);
    }
}

} // namespace

int64_t
kvBlockBytes(KvDtype dtype, int64_t block_tokens, int64_t row_width)
{
    const int64_t elems = block_tokens * row_width;
    const int64_t raw = dtype == KvDtype::F16
                            ? elems * int64_t(sizeof(Half))
                            : kKvBlockQuantBytes + elems;
    return (raw + kKvBlockAlign - 1) / kKvBlockAlign * kKvBlockAlign;
}

const char *
kvDtypeName(KvDtype dtype)
{
    return dtype == KvDtype::F16 ? "f16" : "int8";
}

KvSlab::KvSlab(int64_t block_tokens, int64_t row_width,
               int64_t blocks_per_chunk, KvDtype dtype)
    : blockTokens_(block_tokens), rowWidth_(row_width),
      blocksPerChunk_(blocks_per_chunk), dtype_(dtype),
      blockBytes_(kvBlockBytes(dtype, block_tokens, row_width))
{
    SOFTREC_ASSERT(block_tokens > 0 && row_width > 0 &&
                   blocks_per_chunk > 0,
                   "KvSlab shape must be positive (tokens=%lld, "
                   "width=%lld, chunk=%lld)", (long long)block_tokens,
                   (long long)row_width, (long long)blocks_per_chunk);
}

std::byte *
KvSlab::acquire()
{
    if (freeList_.empty()) {
        auto chunk = std::make_unique<std::byte[]>(
            size_t(blockBytes_) * size_t(blocksPerChunk_));
        for (int64_t b = blocksPerChunk_ - 1; b >= 0; --b)
            freeList_.push_back(chunk.get() +
                                size_t(b) * size_t(blockBytes_));
        chunks_.push_back(std::move(chunk));
        blocksReserved_ += blocksPerChunk_;
    }
    std::byte *block = freeList_.back();
    freeList_.pop_back();
    ++blocksInUse_;
    return block;
}

void
KvSlab::release(std::byte *block)
{
    SOFTREC_ASSERT(block != nullptr && blocksInUse_ > 0,
                   "release without a matching acquire");
    if (kCheckedBuild)
        poison(block);
    freeList_.push_back(block);
    --blocksInUse_;
}

void
KvSlab::poison(std::byte *block)
{
    if (dtype_ == KvDtype::F16) {
        // 0x7e7e is an fp16 NaN, so any stale read of a recycled
        // block NaN-floods the attention row and trips the decode
        // kernels' softmax-normalizer SOFTREC_CHECK.
        std::memset(block, 0x7e, size_t(blockBytes_));
        return;
    }
    KvBlockQuant q;
    q.scale = std::numeric_limits<float>::quiet_NaN();
    q.zero = 0.0f;
    std::memcpy(block, &q, sizeof(q));
    std::memset(block + kKvBlockQuantBytes, 0x80,
                size_t(blockBytes_ - kKvBlockQuantBytes));
}

int64_t
KvSlab::bytesReserved() const
{
    return blocksReserved_ * blockBytes_;
}

KvCache::KvCache(KvSlab &slab, int64_t num_layers)
    : slab_(slab), layers_(size_t(num_layers))
{
    SOFTREC_ASSERT(num_layers > 0, "KvCache needs at least one layer");
    if (slab_.dtype() == KvDtype::I8)
        scratch_.resize(size_t(slab_.rowWidth()));
}

KvCache::~KvCache()
{
    for (LayerRows &layer : layers_) {
        for (std::byte *block : layer.k.blocks)
            slab_.release(block);
        for (std::byte *block : layer.v.blocks)
            slab_.release(block);
    }
}

std::byte *
KvCache::blockFor(BlockRun &run, int64_t pos)
{
    const int64_t block_index = pos / slab_.blockTokens();
    if (block_index == int64_t(run.blocks.size())) {
        std::byte *block = slab_.acquire();
        if (slab_.dtype() == KvDtype::I8) {
            // Recycled blocks carry stale (or poisoned) headers;
            // every open block starts as an empty all-zero group.
            const KvBlockQuant fresh;
            std::memcpy(block, &fresh, sizeof(fresh));
            run.openAmax = 0.0f;
        }
        run.blocks.push_back(block);
    }
    SOFTREC_ASSERT(block_index < int64_t(run.blocks.size()),
                   "non-monotonic KV append at row %lld",
                   (long long)pos);
    return run.blocks[size_t(block_index)];
}

void
KvCache::appendF16(BlockRun &run, int64_t pos, const Half *row)
{
    const int64_t in_block = pos % slab_.blockTokens();
    std::byte *block = blockFor(run, pos);
    std::memcpy(block + size_t(in_block * slab_.rowWidth()) *
                            sizeof(Half),
                row, size_t(slab_.rowWidth()) * sizeof(Half));
}

void
KvCache::appendI8(BlockRun &run, int64_t pos, const Half *row)
{
    const int64_t rw = slab_.rowWidth();
    const int64_t in_block = pos % slab_.blockTokens();
    std::byte *block = blockFor(run, pos);
    if (run.open.empty())
        run.open.resize(size_t(slab_.blockTokens() * rw));

    // Stage the exact fp16 row: rescales always requantize from these
    // copies, so a row's error is bounded by the *final* block scale
    // (<= scale / 2 per element) and never compounds through an
    // earlier, narrower scale.
    Half *staged = run.open.data() + size_t(in_block * rw);
    std::memcpy(staged, row, size_t(rw) * sizeof(Half));

    halfToFloat(row, scratch_.data(), rw);
    float amax = 0.0f;
    for (int64_t j = 0; j < rw; ++j)
        amax = std::max(amax, std::fabs(scratch_[j]));

    auto *header = reinterpret_cast<KvBlockQuant *>(block);
    auto *payload =
        reinterpret_cast<int8_t *>(block + kKvBlockQuantBytes);
    if (amax > run.openAmax) {
        run.openAmax = amax;
        header->scale = amax / 127.0f;
        header->zero = 0.0f;
        for (int64_t r = 0; r <= in_block; ++r) {
            halfToFloat(run.open.data() + size_t(r * rw),
                        scratch_.data(), rw);
            quantizeRow(scratch_.data(), rw, header->scale,
                        payload + r * rw);
        }
    } else {
        quantizeRow(scratch_.data(), rw, header->scale,
                    payload + in_block * rw);
    }
}

void
KvCache::appendRow(int64_t layer, const Half *k_row, const Half *v_row)
{
    SOFTREC_ASSERT(layer >= 0 && layer < int64_t(layers_.size()),
                   "layer %lld out of range", (long long)layer);
    LayerRows &rows = layers_[size_t(layer)];
    if (slab_.dtype() == KvDtype::F16) {
        appendF16(rows.k, rows.rows, k_row);
        appendF16(rows.v, rows.rows, v_row);
    } else {
        appendI8(rows.k, rows.rows, k_row);
        appendI8(rows.v, rows.rows, v_row);
    }
    ++rows.rows;
}

int64_t
KvCache::context() const
{
    const int64_t rows = layers_.front().rows;
    for (const LayerRows &layer : layers_)
        SOFTREC_ASSERT(layer.rows == rows,
                       "layers have uneven KV contexts (%lld vs %lld); "
                       "append one row per layer per token",
                       (long long)layer.rows, (long long)rows);
    return rows;
}

KvRowsView
KvCache::view(const std::vector<std::byte *> &blocks,
              int64_t rows) const
{
    KvRowsView out;
    out.blocks = blocks.data();
    out.blockTokens = slab_.blockTokens();
    out.rowWidth = slab_.rowWidth();
    out.rows = rows;
    out.dtype = slab_.dtype();
    return out;
}

KvRowsView
KvCache::kView(int64_t layer) const
{
    SOFTREC_ASSERT(layer >= 0 && layer < int64_t(layers_.size()),
                   "layer %lld out of range", (long long)layer);
    const LayerRows &rows = layers_[size_t(layer)];
    return view(rows.k.blocks, rows.rows);
}

KvRowsView
KvCache::vView(int64_t layer) const
{
    SOFTREC_ASSERT(layer >= 0 && layer < int64_t(layers_.size()),
                   "layer %lld out of range", (long long)layer);
    const LayerRows &rows = layers_[size_t(layer)];
    return view(rows.v.blocks, rows.rows);
}

} // namespace softrec
