/**
 * @file
 * Serving configuration: engine limits plus admission thresholds.
 *
 * This is the single module allowed to read SOFTREC_SERVE_* from the
 * environment (enforced by the analyzer's env-registry rule). Every
 * malformed value is a hard startup error naming the variable, the
 * offending text, and the accepted range — a serving engine that
 * silently fell back to defaults would hide capacity regressions.
 */

#ifndef SOFTREC_SERVE_SERVE_CONFIG_HPP
#define SOFTREC_SERVE_SERVE_CONFIG_HPP

#include <cstdint>

#include "kernels/decode_attention.hpp"
#include "serve/admission.hpp"

namespace softrec {

/**
 * Parse SOFTREC_SERVE_KV_DTYPE: unset/empty means the fp16 reference,
 * "f16"/"int8" select a format, anything else is a hard startup
 * error (like every other serve knob).
 */
KvDtype kvDtypeFromEnv();

/**
 * Parse SOFTREC_SERVE_PREFILL_CHUNK: unset/empty means 0 (prefill
 * runs in one shot at admission), otherwise a strict positive
 * integer — the engine then processes at most that many prompt rows
 * per serve step and interleaves them with decode, so a long
 * arriving prompt cannot stall active streams. Garbage (including
 * an explicit 0) is a hard startup error like every serve knob.
 */
int64_t prefillChunkTokensFromEnv();

/** Serving engine limits (see fromEnv for the environment knobs). */
struct ServeConfig
{
    int64_t maxBatchRows = 16;     //!< concurrent requests per step
    int64_t tokenBudget = 1 << 16; //!< max total KV tokens in flight
    int64_t queueCapacity = 64;    //!< bounded queue depth
    int64_t kvBlockTokens = 64;    //!< cached rows per slab block
    //! KV-cache storage format. tokenBudget is denominated in *fp16*
    //! tokens: a compressed format admits proportionally more tokens
    //! at the same slab byte budget (ServeEngine rebases the
    //! scheduler's effective budget on actual per-format block bytes).
    KvDtype kvDtype = KvDtype::F16;
    //! Per-request TokenStream ring depth (tokens buffered before the
    //! serving thread blocks on a slow consumer).
    int64_t streamCapacity = 64;
    //! Prompt rows processed per serve step during prefill. 0 runs
    //! prefill unchunked at admission (the pre-chunking behaviour);
    //! a positive value bounds how long an arriving prompt can
    //! displace active decode streams to one chunk per step, at
    //! bit-identical outputs (see runPrefill's resumable overload).
    int64_t prefillChunkTokens = 0;
    //! Mode thresholds and per-tenant budgets for the admission
    //! controller (see admission.hpp for the regime semantics).
    AdmissionThresholds admission;

    /**
     * Read overrides from the environment and validate SOFTREC_THREADS
     * eagerly. Knobs (all strict positive integers; fatal() on any
     * malformed value):
     *
     *   SOFTREC_SERVE_BATCH_ROWS          maxBatchRows
     *   SOFTREC_SERVE_TOKEN_BUDGET        tokenBudget
     *   SOFTREC_SERVE_QUEUE_CAP           queueCapacity
     *   SOFTREC_SERVE_STREAM_CAP          streamCapacity
     *   SOFTREC_SERVE_MODE_SOFT_PCT       admission.softEnterPct
     *   SOFTREC_SERVE_MODE_HARD_PCT      admission.hardEnterPct
     *   SOFTREC_SERVE_MODE_HYSTERESIS_PCT admission.hysteresisPct
     *   SOFTREC_SERVE_TENANT_BUDGET       admission.tenantTokenBudget
     *   SOFTREC_SERVE_SOFT_PROMPT_CAP     admission.softPromptCapTokens
     *
     * plus SOFTREC_SERVE_KV_DTYPE (f16|int8) -> kvDtype via
     * kvDtypeFromEnv() and SOFTREC_SERVE_PREFILL_CHUNK ->
     * prefillChunkTokens via prefillChunkTokensFromEnv().
     *
     * Cross-field rule: the soft threshold must stay strictly below
     * the hard threshold (also a hard error, since a crossed pair
     * would make the state machine unreachable-by-construction).
     */
    static ServeConfig fromEnv();

    /**
     * Hard-error (panic) unless every limit is usable: the engine
     * divides by tokenBudget and queueCapacity at every pressure
     * sample and sizes storage from the others, so all of
     * maxBatchRows, tokenBudget, queueCapacity, kvBlockTokens, and
     * streamCapacity must be >= 1, and prefillChunkTokens >= 0
     * (0 = unchunked). ServeEngine validates at construction so a
     * zeroed config is a startup error, not a divide-by-zero at the
     * first step boundary.
     */
    void validate() const;
};

} // namespace softrec

#endif // SOFTREC_SERVE_SERVE_CONFIG_HPP
