/**
 * @file
 * Continuous-batching scheduler: packs variable-length requests into
 * decode-step batches under a token budget.
 *
 * Classic static batching admits a batch, runs it to completion, and
 * strands every finished row until the slowest request drains.
 * Continuous batching instead revisits membership at every decode-step
 * boundary: finished rows are evicted immediately and queued requests
 * are admitted into the freed slots, so the batch stays as full as the
 * token budget allows. The scheduler is deterministic — admission is
 * FIFO into the lowest free slot, and a fixed arrival trace always
 * produces the same step-by-step batch composition.
 */

#ifndef SOFTREC_SERVE_BATCH_SCHEDULER_HPP
#define SOFTREC_SERVE_BATCH_SCHEDULER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request_queue.hpp"

namespace softrec {

/** Capacity limits for one scheduler. */
struct SchedulerConfig
{
    int64_t maxBatchRows = 16; //!< concurrent requests (batch rows)
    /**
     * Upper bound on the total KV context (sum over active requests
     * of prompt + generated tokens) the batch may reach; admission is
     * denied when a candidate could overflow it before finishing.
     */
    int64_t tokenBudget = 1 << 16;
};

/** One occupied batch row. */
struct BatchSlot
{
    bool active = false;
    ServeRequest request;
    //! Cached tokens charged so far: prefill rows that have landed
    //! plus decoded tokens. Starts at 0 on admission and reaches
    //! promptTokens only once prefill completes — the *budget* is
    //! reserved at the finishing footprint up front (see admitFrom),
    //! but KV is charged as chunks land.
    int64_t context = 0;
    int64_t remaining = 0;    //!< decode steps left
    int64_t promptTokens = 0; //!< prompt rows of the request
    int64_t prefillDone = 0;  //!< prompt rows already prefilled

    /** True until every prompt row has been prefilled; a prefilling
     *  slot holds its reservation but takes no decode steps. */
    bool
    prefilling() const
    {
        return active && prefillDone < promptTokens;
    }
};

/** Deterministic continuous-batching slot manager. */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const SchedulerConfig &config);

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /**
     * Admit queued requests (FIFO, lowest free slot first) until the
     * next candidate would exceed maxBatchRows or could overflow the
     * token budget at its finishing length. A budget-blocked head
     * parks inside the scheduler (preserving FIFO order) until
     * evictions free room. Called at decode-step boundaries only.
     *
     * The admitted slot indices (prefill has not run yet) land in the
     * caller-owned vector, cleared first — the serving thread reuses
     * one vector across steps so admission does not allocate on the
     * steady-state decode path.
     */
    void admitFrom(RequestQueue &queue,
                   std::vector<int64_t> *admitted);

    /**
     * Charge `rows` prefilled prompt rows to a slot: its context
     * (current KV footprint) grows by the chunk that just landed.
     * The budget was already reserved at admission, so this never
     * re-checks it. The slot becomes decode-eligible once every
     * prompt row is charged.
     */
    void notePrefillProgress(int64_t index, int64_t rows);

    /**
     * Account one completed decode step: every decode-eligible slot
     * gains one context token and loses one remaining step (slots
     * still prefilling are untouched — they took no step). Slots
     * that reach remaining == 0 are evicted; their indices land in
     * the caller-owned vector (cleared first, ascending slot order)
     * so the caller can release per-request state.
     */
    void completeStep(std::vector<int64_t> *evicted);

    /**
     * Evict one slot before it finishes (consumer abandoned the
     * stream, engine shutdown). The freed rows and budget are
     * admittable on the next admitFrom.
     */
    void releaseSlot(int64_t index);

    /**
     * Decode-eligible slot indices in ascending order (cleared
     * first): active slots whose prefill has fully landed. Slots
     * mid-prefill are excluded — they join the batch at the step
     * boundary after their last chunk.
     */
    void activeSlots(std::vector<int64_t> *active) const;

    const BatchSlot &
    slot(int64_t index) const
    {
        return slots_[size_t(index)];
    }

    int64_t activeRows() const;
    /** Occupied slots still mid-prefill (not yet decode-eligible). */
    int64_t prefillingRows() const;
    /** Σ context over active slots (current KV footprint in tokens). */
    int64_t activeTokens() const;
    /**
     * Σ finishing footprints (context + remaining) over active slots —
     * the tokens the budget has committed to, which is what admission
     * pressure should be measured against (activeTokens understates
     * pressure early in long generations).
     */
    int64_t reservedTokens() const;
    /** True when no slot is active and no head request is parked. */
    bool
    idle() const
    {
        return activeRows() == 0 && !parked_.has_value();
    }

  private:
    SchedulerConfig config_;
    std::vector<BatchSlot> slots_;
    //! FIFO head that did not fit the token budget, awaiting room.
    std::optional<ServeRequest> parked_;
};

} // namespace softrec

#endif // SOFTREC_SERVE_BATCH_SCHEDULER_HPP
