/**
 * @file
 * Continuous-batching scheduler implementation.
 */

#include "serve/batch_scheduler.hpp"

#include <utility>

#include "common/logging.hpp"

namespace softrec {

namespace {

/**
 * KV tokens a slot will hold when its request finishes. A constant
 * per request (prompt + generation), independent of how much of the
 * prompt has landed: admission reserves this much up front, so a
 * slot mid-prefill already holds its full claim on the budget.
 */
int64_t
finishingTokens(const BatchSlot &slot)
{
    return slot.promptTokens + slot.request.generateTokens;
}

} // namespace

BatchScheduler::BatchScheduler(const SchedulerConfig &config)
    : config_(config), slots_(size_t(config.maxBatchRows))
{
    SOFTREC_ASSERT(config.maxBatchRows > 0 && config.tokenBudget > 0,
                   "scheduler limits must be positive (rows=%lld, "
                   "budget=%lld)", (long long)config.maxBatchRows,
                   (long long)config.tokenBudget);
}

void
BatchScheduler::admitFrom(RequestQueue &queue,
                          std::vector<int64_t> *admitted_out)
{
    // Admission reserves each request's *finishing* footprint, not its
    // current one: contexts only grow and there is no preemption, so
    // this is the weakest test that still guarantees the budget holds
    // at every future step.
    int64_t reserved = 0;
    for (const BatchSlot &slot : slots_)
        if (slot.active)
            reserved += finishingTokens(slot);

    std::vector<int64_t> &admitted = *admitted_out;
    admitted.clear();
    while (activeRows() < config_.maxBatchRows) {
        std::optional<ServeRequest> request = std::move(parked_);
        parked_.reset();
        if (!request.has_value())
            request = queue.pop();
        if (!request.has_value())
            break;
        const int64_t footprint = request->prompt.shape().dim(0) +
                                  request->generateTokens;
        SOFTREC_ASSERT(footprint <= config_.tokenBudget,
                       "request %lld alone exceeds the token budget "
                       "(%lld > %lld); validate before enqueueing",
                       (long long)request->id, (long long)footprint,
                       (long long)config_.tokenBudget);
        if (reserved + footprint > config_.tokenBudget) {
            // FIFO order is part of the determinism contract, so a
            // budget-blocked head parks here until evictions free
            // room (no skipping ahead to smaller requests behind it).
            parked_ = std::move(request);
            break;
        }
        reserved += footprint;
        for (int64_t s = 0; s < int64_t(slots_.size()); ++s) {
            BatchSlot &slot = slots_[size_t(s)];
            if (slot.active)
                continue;
            slot.active = true;
            // KV is charged as prefill chunks land, so the slot
            // starts with no context; the caller advances it with
            // notePrefillProgress as rows go through the stack.
            slot.context = 0;
            slot.promptTokens = request->prompt.shape().dim(0);
            slot.prefillDone = 0;
            slot.remaining = request->generateTokens;
            slot.request = std::move(*request);
            admitted.push_back(s);
            break;
        }
    }
}

void
BatchScheduler::notePrefillProgress(int64_t index, int64_t rows)
{
    SOFTREC_ASSERT(index >= 0 && index < int64_t(slots_.size()) &&
                       slots_[size_t(index)].active,
                   "notePrefillProgress(%lld) must name an active "
                   "slot",
                   (long long)index);
    BatchSlot &slot = slots_[size_t(index)];
    SOFTREC_ASSERT(rows >= 1 &&
                       slot.prefillDone + rows <= slot.promptTokens,
                   "prefill progress of %lld rows does not fit: "
                   "%lld of %lld prompt rows done",
                   (long long)rows, (long long)slot.prefillDone,
                   (long long)slot.promptTokens);
    slot.prefillDone += rows;
    slot.context += rows;
}

void
BatchScheduler::completeStep(std::vector<int64_t> *evicted_out)
{
    std::vector<int64_t> &evicted = *evicted_out;
    evicted.clear();
    for (int64_t s = 0; s < int64_t(slots_.size()); ++s) {
        BatchSlot &slot = slots_[size_t(s)];
        if (!slot.active || slot.prefilling())
            continue;
        ++slot.context;
        --slot.remaining;
        if (slot.remaining == 0) {
            slot = BatchSlot{};
            evicted.push_back(s);
        }
    }
}

void
BatchScheduler::releaseSlot(int64_t index)
{
    SOFTREC_ASSERT(index >= 0 && index < int64_t(slots_.size()) &&
                       slots_[size_t(index)].active,
                   "releaseSlot(%lld) must name an active slot",
                   (long long)index);
    slots_[size_t(index)] = BatchSlot{};
}

void
BatchScheduler::activeSlots(std::vector<int64_t> *active_out) const
{
    std::vector<int64_t> &active = *active_out;
    active.clear();
    for (int64_t s = 0; s < int64_t(slots_.size()); ++s)
        if (slots_[size_t(s)].active && !slots_[size_t(s)].prefilling())
            active.push_back(s);
}

int64_t
BatchScheduler::activeRows() const
{
    int64_t rows = 0;
    for (const BatchSlot &slot : slots_)
        rows += slot.active ? 1 : 0;
    return rows;
}

int64_t
BatchScheduler::prefillingRows() const
{
    int64_t rows = 0;
    for (const BatchSlot &slot : slots_)
        rows += slot.prefilling() ? 1 : 0;
    return rows;
}

int64_t
BatchScheduler::activeTokens() const
{
    int64_t tokens = 0;
    for (const BatchSlot &slot : slots_)
        if (slot.active)
            tokens += slot.context;
    return tokens;
}

int64_t
BatchScheduler::reservedTokens() const
{
    int64_t tokens = 0;
    for (const BatchSlot &slot : slots_)
        if (slot.active)
            tokens += finishingTokens(slot);
    return tokens;
}

} // namespace softrec
