/**
 * @file
 * Per-request token channel between the serving thread and one
 * consumer.
 *
 * A TokenStream is a bounded single-producer/single-consumer ring of
 * generated token rows ([1, rowWidth] fp16 embeddings). The serving
 * thread pushes one row per decode step; the consumer pulls with a
 * blocking next() or a non-blocking tryNext(). The ring storage is
 * allocated once at construction, so steady-state streaming moves
 * bytes without touching the allocator on the producer side.
 *
 * Lifecycle: the stream ends in exactly one of two terminal states —
 * Finished (the request generated every requested token) or
 * Cancelled (the engine terminated it, e.g. the consumer abandoned
 * the session or the engine shut down), with a reason string. A
 * consumer that destroys its ServeSession closes the consumer side;
 * the next push() then returns false and the engine reclaims the
 * request's KV and tenant budget instead of stalling behind a client
 * that went away.
 */

#ifndef SOFTREC_SERVE_TOKEN_STREAM_HPP
#define SOFTREC_SERVE_TOKEN_STREAM_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fp16/half.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** Where a stream is in its lifecycle. */
enum class StreamStatus
{
    Streaming, //!< producer may still push tokens
    Finished,  //!< all requested tokens were generated
    Cancelled, //!< terminated early; cancelReason() says why
};

/** Bounded SPSC channel of generated token rows. */
class TokenStream
{
  public:
    /** Ring of `capacity` rows of `row_width` halfs each. */
    TokenStream(int64_t capacity, int64_t row_width);

    TokenStream(const TokenStream &) = delete;
    TokenStream &operator=(const TokenStream &) = delete;

    // -- producer side (serving thread) ----------------------------

    /**
     * Copy one token row into the ring. Blocks while the ring is
     * full; returns false (dropping the row) once the consumer has
     * closed — the producer's signal to cancel the request.
     */
    bool push(const Half *row);

    /** Terminal: every requested token was pushed. `at` stamps
     *  finishSeconds (the engine's nowSeconds clock). */
    void finish(double at);

    /** Terminal: the request will produce no more tokens. */
    void cancel(std::string why, double at);

    /**
     * Engine-shutdown hook: wake a push() blocked on a full ring and
     * make it fail instead of waiting for the consumer. A push that
     * still has ring space keeps succeeding, so consumers that are
     * draining finish their streams during shutdown while stalled
     * ones stop blocking the serving thread. Idempotent; callable
     * from any thread.
     */
    void abortPush();

    // -- consumer side ---------------------------------------------

    /**
     * Pop the next token into `row` (resized to [1, rowWidth],
     * capacity-reusing). Blocks until a token arrives; returns false
     * once the stream is terminal *and* drained — check status() to
     * distinguish Finished from Cancelled.
     */
    bool next(Tensor<Half> &row);

    /** Non-blocking next() outcome. */
    enum class TryNext
    {
        Token,   //!< a token was popped into `row`
        Pending, //!< no token buffered yet, stream still live
        End,     //!< terminal and drained; see status()
    };

    TryNext tryNext(Tensor<Half> &row);

    /**
     * Abandon the stream: buffered and future tokens are discarded
     * and the next producer push() returns false. Idempotent;
     * ServeSession's destructor calls this.
     */
    void close();

    // -- observers (either side) -----------------------------------

    StreamStatus status() const;
    /** Why the stream was cancelled (empty otherwise). */
    std::string cancelReason() const;
    /** Tokens the consumer has popped so far. */
    int64_t tokensDelivered() const;
    /** Engine-clock stamp of finish()/cancel(); 0 while streaming. */
    double finishSeconds() const;
    int64_t rowWidth() const { return rowWidth_; }

  private:
    bool terminalLocked() const
    {
        return status_ != StreamStatus::Streaming;
    }
    void popLocked(Tensor<Half> &row);

    const int64_t capacity_;
    const int64_t rowWidth_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Half> ring_; //!< capacity_ * rowWidth_, fixed size
    int64_t head_ = 0;       //!< ring index of the oldest token
    int64_t count_ = 0;      //!< buffered tokens
    int64_t delivered_ = 0;
    StreamStatus status_ = StreamStatus::Streaming;
    bool consumerClosed_ = false;
    bool pushAborted_ = false;
    std::string cancelReason_;
    double finishSeconds_ = 0.0;
};

/**
 * Producer-facing handle to one in-flight request: the request id,
 * its tenant, and the consumer end of its TokenStream. Move-only;
 * destroying a live session closes the stream, which tells the
 * engine to cancel the request and reclaim its resources.
 */
class ServeSession
{
  public:
    ServeSession() = default;
    ServeSession(int64_t id, int64_t tenant_id,
                 std::shared_ptr<TokenStream> stream)
        : id_(id), tenantId_(tenant_id), stream_(std::move(stream))
    {
    }

    ServeSession(ServeSession &&) = default;
    ServeSession &operator=(ServeSession &&other)
    {
        if (this != &other) {
            if (stream_ != nullptr)
                stream_->close();
            id_ = other.id_;
            tenantId_ = other.tenantId_;
            stream_ = std::move(other.stream_);
        }
        return *this;
    }
    ServeSession(const ServeSession &) = delete;
    ServeSession &operator=(const ServeSession &) = delete;

    ~ServeSession()
    {
        if (stream_ != nullptr)
            stream_->close();
    }

    /** False for default-constructed / rejected-submit sessions. */
    bool valid() const { return stream_ != nullptr; }
    int64_t id() const { return id_; }
    int64_t tenantId() const { return tenantId_; }
    TokenStream &stream() { return *stream_; }
    const TokenStream &stream() const { return *stream_; }

  private:
    int64_t id_ = 0;
    int64_t tenantId_ = 0;
    std::shared_ptr<TokenStream> stream_;
};

} // namespace softrec

#endif // SOFTREC_SERVE_TOKEN_STREAM_HPP
