/**
 * @file
 * Admission-control state machine implementation.
 */

#include "serve/admission.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"

namespace softrec {

const char *
admissionModeName(AdmissionMode mode)
{
    switch (mode) {
    case AdmissionMode::Normal:
        return "normal";
    case AdmissionMode::SoftThrottled:
        return "soft";
    case AdmissionMode::HardFailFast:
        return "hard";
    }
    return "unknown";
}

AdmissionDecision
AdmissionDecision::rejected(AdmissionMode mode, std::string metric,
                            double value, double threshold,
                            std::string why)
{
    AdmissionDecision decision;
    decision.accepted = false;
    decision.mode = mode;
    decision.metric = std::move(metric);
    decision.value = value;
    decision.threshold = threshold;
    decision.reason = std::move(why);
    return decision;
}

AdmissionDecision
AdmissionDecision::rejected(std::string why)
{
    AdmissionDecision decision;
    decision.accepted = false;
    decision.metric = "request_validity";
    decision.reason = std::move(why);
    return decision;
}

AdmissionController::AdmissionController(
    const AdmissionThresholds &thresholds)
    : thresholds_(thresholds)
{
    SOFTREC_ASSERT(thresholds.softEnterPct >= 1 &&
                       thresholds.softEnterPct <= 100 &&
                       thresholds.hardEnterPct >= 1 &&
                       thresholds.hardEnterPct <= 100,
                   "mode thresholds must be percentages in [1, 100] "
                   "(soft=%lld, hard=%lld)",
                   (long long)thresholds.softEnterPct,
                   (long long)thresholds.hardEnterPct);
    SOFTREC_ASSERT(thresholds.softEnterPct < thresholds.hardEnterPct,
                   "soft threshold (%lld) must be below the hard "
                   "threshold (%lld)",
                   (long long)thresholds.softEnterPct,
                   (long long)thresholds.hardEnterPct);
    SOFTREC_ASSERT(thresholds.hysteresisPct >= 1 &&
                       thresholds.hysteresisPct <= 100,
                   "hysteresis must be a percentage in [1, 100], got "
                   "%lld", (long long)thresholds.hysteresisPct);
    SOFTREC_ASSERT(thresholds.tenantTokenBudget > 0,
                   "tenant token budget must be positive, got %lld",
                   (long long)thresholds.tenantTokenBudget);
    SOFTREC_ASSERT(thresholds.softPromptCapTokens > 0,
                   "soft prompt cap must be positive, got %lld",
                   (long long)thresholds.softPromptCapTokens);
}

bool
AdmissionController::updatePressure(const PressureSample &sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // The triggering metric is whichever dimension is hotter; ties go
    // to KV occupancy (the budget that actually bounds decode).
    if (sample.queueDepthPct > sample.kvOccupancyPct) {
        pressure_ = sample.queueDepthPct;
        pressureMetric_ = "queue_depth_pct";
    } else {
        pressure_ = sample.kvOccupancyPct;
        pressureMetric_ = "kv_occupancy_pct";
    }

    const double soft_enter = double(thresholds_.softEnterPct);
    const double hard_enter = double(thresholds_.hardEnterPct);
    const double soft_exit =
        double(thresholds_.softEnterPct - thresholds_.hysteresisPct);
    const double hard_exit =
        double(thresholds_.hardEnterPct - thresholds_.hysteresisPct);

    const AdmissionMode before = mode_;
    switch (mode_) {
    case AdmissionMode::Normal:
        if (pressure_ >= soft_enter)
            mode_ = AdmissionMode::SoftThrottled;
        break;
    case AdmissionMode::SoftThrottled:
        // Escalation wins over relaxation when both could apply
        // (impossible with validated thresholds, but explicit).
        if (pressure_ >= hard_enter)
            mode_ = AdmissionMode::HardFailFast;
        else if (pressure_ <= soft_exit)
            mode_ = AdmissionMode::Normal;
        break;
    case AdmissionMode::HardFailFast:
        if (pressure_ <= hard_exit)
            mode_ = AdmissionMode::SoftThrottled;
        break;
    }

    ++residency_.updatesInMode[size_t(mode_)];
    if (mode_ != before)
        ++residency_.transitions;
    return mode_ != before;
}

AdmissionMode
AdmissionController::mode() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mode_;
}

AdmissionDecision
AdmissionController::admitReserve(const AdmissionCandidate &candidate)
{
    std::lock_guard<std::mutex> lock(mutex_);

    if (mode_ == AdmissionMode::HardFailFast) {
        return AdmissionDecision::rejected(
            mode_, pressureMetric_, pressure_,
            double(thresholds_.hardEnterPct),
            std::string("hard-fail-fast: ") + pressureMetric_ + " " +
                std::to_string(int64_t(pressure_)) +
                " crossed the hard threshold " +
                std::to_string(thresholds_.hardEnterPct) +
                "; retry after the backlog drains");
    }

    int64_t tenant_budget = thresholds_.tenantTokenBudget;
    if (mode_ == AdmissionMode::SoftThrottled) {
        if (candidate.promptTokens >
            thresholds_.softPromptCapTokens) {
            return AdmissionDecision::rejected(
                mode_, "prompt_tokens",
                double(candidate.promptTokens),
                double(thresholds_.softPromptCapTokens),
                "soft-throttled: prompt of " +
                    std::to_string(candidate.promptTokens) +
                    " tokens exceeds the throttled cap of " +
                    std::to_string(thresholds_.softPromptCapTokens));
        }
        // Only clearly-under-budget tenants get in while throttled.
        tenant_budget = std::max<int64_t>(1, tenant_budget / 2);
    }

    int64_t &reserved = tenantTokens_[candidate.tenantId];
    if (reserved + candidate.footprintTokens > tenant_budget) {
        const AdmissionDecision decision = AdmissionDecision::rejected(
            mode_, "tenant_inflight_tokens",
            double(reserved + candidate.footprintTokens),
            double(tenant_budget),
            std::string(mode_ == AdmissionMode::SoftThrottled
                            ? "soft-throttled: "
                            : "") +
                "tenant " + std::to_string(candidate.tenantId) +
                " would hold " +
                std::to_string(reserved + candidate.footprintTokens) +
                " in-flight KV tokens, over its budget of " +
                std::to_string(tenant_budget));
        if (reserved == 0)
            tenantTokens_.erase(candidate.tenantId);
        return decision;
    }

    reserved += candidate.footprintTokens;
    return AdmissionDecision::ok(mode_);
}

void
AdmissionController::release(int64_t tenant_id, int64_t tokens)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenantTokens_.find(tenant_id);
    SOFTREC_ASSERT(it != tenantTokens_.end() && it->second >= tokens,
                   "release of %lld tokens for tenant %lld exceeds "
                   "its reservation", (long long)tokens,
                   (long long)tenant_id);
    it->second -= tokens;
    if (it->second == 0)
        tenantTokens_.erase(it);
}

int64_t
AdmissionController::tenantTokens(int64_t tenant_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenantTokens_.find(tenant_id);
    return it == tenantTokens_.end() ? 0 : it->second;
}

AdmissionController::Residency
AdmissionController::residency() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return residency_;
}

} // namespace softrec
