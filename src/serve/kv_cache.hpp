/**
 * @file
 * Slab-allocated per-request KV cache for the serving engine.
 *
 * Decode-step latency must not depend on malloc: a KvSlab reserves
 * fixed-size K/V blocks in bulk and recycles them through a freelist,
 * so steady-state serving performs zero per-step heap allocation once
 * the working set is warm. A KvCache borrows blocks from the slab for
 * one request's lifetime (all layers, K and V) and returns every
 * block on destruction, so evicting a finished request immediately
 * funds the next admission.
 *
 * Both classes are driver-thread-only by design: the serve loop owns
 * admission, decode, and eviction on one thread, and the decode
 * kernels only ever *read* cached rows (through KvRowsView), so there
 * is nothing to lock.
 */

#ifndef SOFTREC_SERVE_KV_CACHE_HPP
#define SOFTREC_SERVE_KV_CACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "fp16/half.hpp"
#include "kernels/decode_attention.hpp"

namespace softrec {

/**
 * Bulk reservation of fixed-size KV blocks with a freelist.
 *
 * One block stores `blockTokens` cached rows of `rowWidth` halfs
 * (the model width — all heads concatenated). Blocks are reserved in
 * chunks of `blocksPerChunk` so reservation cost amortizes; released
 * blocks are recycled LIFO, and chunk memory is only returned to the
 * OS when the slab itself is destroyed.
 */
class KvSlab
{
  public:
    KvSlab(int64_t block_tokens, int64_t row_width,
           int64_t blocks_per_chunk = 64);

    KvSlab(const KvSlab &) = delete;
    KvSlab &operator=(const KvSlab &) = delete;

    /** Borrow one block (reserving a new chunk if the freelist is empty). */
    Half *acquire();

    /** Return a block obtained from acquire(). */
    void release(Half *block);

    int64_t blockTokens() const { return blockTokens_; }
    int64_t rowWidth() const { return rowWidth_; }

    /** Blocks currently lent out to caches. */
    int64_t blocksInUse() const { return blocksInUse_; }
    /** Blocks ever reserved (in use + freelist). */
    int64_t blocksReserved() const { return blocksReserved_; }
    /** Bytes of KV storage reserved so far. */
    int64_t bytesReserved() const;

  private:
    int64_t blockTokens_;
    int64_t rowWidth_;
    int64_t blocksPerChunk_;
    int64_t blocksInUse_ = 0;
    int64_t blocksReserved_ = 0;
    std::vector<std::unique_ptr<Half[]>> chunks_;
    std::vector<Half *> freeList_;
};

/**
 * One request's cached K/V rows across every decoder layer, backed by
 * slab blocks. Rows append monotonically (one per prompt token at
 * prefill, one per decode step); all blocks return to the slab on
 * destruction.
 */
class KvCache
{
  public:
    KvCache(KvSlab &slab, int64_t num_layers);
    ~KvCache();

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;

    /**
     * Append one cached row (rowWidth halfs each of K and V) for one
     * layer. Every layer must receive the same number of appends; the
     * per-token pattern is one appendRow per layer.
     */
    void appendRow(int64_t layer, const Half *k_row, const Half *v_row);

    /** Cached tokens (asserts every layer has the same count). */
    int64_t context() const;

    /** Read-only view of one layer's cached K rows. */
    KvRowsView kView(int64_t layer) const;
    /** Read-only view of one layer's cached V rows. */
    KvRowsView vView(int64_t layer) const;

    int64_t numLayers() const { return int64_t(layers_.size()); }

  private:
    struct LayerRows
    {
        std::vector<Half *> kBlocks, vBlocks;
        int64_t rows = 0;
    };

    Half *writableRow(std::vector<Half *> &blocks, int64_t pos);
    KvRowsView view(const std::vector<Half *> &blocks,
                    int64_t rows) const;

    KvSlab &slab_;
    std::vector<LayerRows> layers_;
};

} // namespace softrec

#endif // SOFTREC_SERVE_KV_CACHE_HPP
