/**
 * @file
 * Slab-allocated per-request KV cache for the serving engine.
 *
 * Decode-step latency must not depend on malloc: a KvSlab reserves
 * fixed-size K/V blocks in bulk and recycles them through a freelist,
 * so steady-state serving performs zero per-step heap allocation once
 * the working set is warm. A KvCache borrows blocks from the slab for
 * one request's lifetime (all layers, K and V) and returns every
 * block on destruction, so evicting a finished request immediately
 * funds the next admission.
 *
 * Blocks come in two storage formats (KvDtype):
 *
 *   F16  rows stored exactly as appended — the bit-exact reference
 *        the decode equivalence tests pin down;
 *   I8   per-block symmetric quantization: a 16-byte fp32 scale/zero
 *        header followed by the int8 payload. appendRow quantizes on
 *        write; when a new row widens the open block's range the
 *        whole block is requantized from fp16 staging copies, so the
 *        per-element round-trip error is always <= scale / 2 with
 *        scale = blockAmax / 127 (no compounding through the stale
 *        scale). KV bytes drop ~2x, which the serve engine turns
 *        directly into ~2x token capacity at a fixed slab budget.
 *
 * Both classes are driver-thread-only by design: the serve loop owns
 * admission, decode, and eviction on one thread, and the decode
 * kernels only ever *read* cached rows (through KvRowsView), so there
 * is nothing to lock.
 */

#ifndef SOFTREC_SERVE_KV_CACHE_HPP
#define SOFTREC_SERVE_KV_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fp16/half.hpp"
#include "kernels/decode_attention.hpp"

namespace softrec {

/**
 * Bytes of one slab block in `dtype` format: the payload
 * (`block_tokens x row_width` elements) plus, for I8, the per-block
 * quantization header — rounded up to 16 so headers and rows stay
 * aligned at any block index within a chunk.
 */
int64_t kvBlockBytes(KvDtype dtype, int64_t block_tokens,
                     int64_t row_width);

/** Operator-facing name of a storage format ("f16" / "int8"). */
const char *kvDtypeName(KvDtype dtype);

/**
 * Bulk reservation of fixed-size KV blocks with a freelist.
 *
 * One block stores `blockTokens` cached rows of `rowWidth` elements
 * (the model width — all heads concatenated) in `dtype` format.
 * Blocks are reserved in chunks of `blocksPerChunk` so reservation
 * cost amortizes; released blocks are recycled LIFO, and chunk memory
 * is only returned to the OS when the slab itself is destroyed.
 *
 * Checked builds poison every released block (NaN halfs for F16, a
 * NaN-scale header over a -128 sentinel payload for I8) so a stale
 * KvRowsView read of a recycled block floods the decode kernels with
 * NaN and trips their softmax-normalizer SOFTREC_CHECK instead of
 * silently serving another request's KV.
 */
class KvSlab
{
  public:
    KvSlab(int64_t block_tokens, int64_t row_width,
           int64_t blocks_per_chunk = 64,
           KvDtype dtype = KvDtype::F16);

    KvSlab(const KvSlab &) = delete;
    KvSlab &operator=(const KvSlab &) = delete;

    /** Borrow one block (reserving a new chunk if the freelist is empty). */
    std::byte *acquire();

    /** Return a block obtained from acquire(). */
    void release(std::byte *block);

    int64_t blockTokens() const { return blockTokens_; }
    int64_t rowWidth() const { return rowWidth_; }
    KvDtype dtype() const { return dtype_; }
    /** Bytes of one block in this slab's format (header included). */
    int64_t blockBytes() const { return blockBytes_; }

    /** Blocks currently lent out to caches. */
    int64_t blocksInUse() const { return blocksInUse_; }
    /** Blocks ever reserved (in use + freelist). */
    int64_t blocksReserved() const { return blocksReserved_; }
    /** Bytes of KV storage reserved so far (actual format bytes). */
    int64_t bytesReserved() const;

  private:
    void poison(std::byte *block);

    int64_t blockTokens_;
    int64_t rowWidth_;
    int64_t blocksPerChunk_;
    KvDtype dtype_;
    int64_t blockBytes_;
    int64_t blocksInUse_ = 0;
    int64_t blocksReserved_ = 0;
    std::vector<std::unique_ptr<std::byte[]>> chunks_;
    std::vector<std::byte *> freeList_;
};

/**
 * One request's cached K/V rows across every decoder layer, backed by
 * slab blocks. Rows append monotonically (one per prompt token at
 * prefill, one per decode step); all blocks return to the slab on
 * destruction. The storage format is the slab's: F16 appends are a
 * straight memcpy, I8 appends quantize (and, when the new row widens
 * the open block's range, requantize the block from its fp16 staging
 * copies). Neither path allocates per append once the staging
 * buffers exist, so the decode hot path stays malloc-free.
 */
class KvCache
{
  public:
    KvCache(KvSlab &slab, int64_t num_layers);
    ~KvCache();

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;

    /**
     * Append one cached row (rowWidth halfs each of K and V) for one
     * layer. Every layer must receive the same number of appends; the
     * per-token pattern is one appendRow per layer.
     */
    void appendRow(int64_t layer, const Half *k_row, const Half *v_row);

    /** Cached tokens (asserts every layer has the same count). */
    int64_t context() const;

    /** Read-only view of one layer's cached K rows. */
    KvRowsView kView(int64_t layer) const;
    /** Read-only view of one layer's cached V rows. */
    KvRowsView vView(int64_t layer) const;

    int64_t numLayers() const { return int64_t(layers_.size()); }

  private:
    /**
     * One append-ordered run of blocks (one layer's K or V stream),
     * plus the I8 rescale state: fp16 staging copies of the open
     * (last) block's rows and that block's running amax. The staging
     * vector is sized once and reused for every subsequent block.
     */
    struct BlockRun
    {
        std::vector<std::byte *> blocks;
        std::vector<Half> open; //!< I8 only: open block's fp16 rows
        float openAmax = 0.0f;  //!< I8 only: open block's range
    };

    struct LayerRows
    {
        BlockRun k, v;
        int64_t rows = 0;
    };

    std::byte *blockFor(BlockRun &run, int64_t pos);
    void appendF16(BlockRun &run, int64_t pos, const Half *row);
    void appendI8(BlockRun &run, int64_t pos, const Half *row);
    KvRowsView view(const std::vector<std::byte *> &blocks,
                    int64_t rows) const;

    KvSlab &slab_;
    std::vector<LayerRows> layers_;
    std::vector<float> scratch_; //!< I8 only: one row's fp32 values
};

} // namespace softrec

#endif // SOFTREC_SERVE_KV_CACHE_HPP
