/**
 * @file
 * Multi-tenant admission control for the serving engine.
 *
 * Under bursty load the engine must degrade *predictably*: instead of
 * one implicit policy (reject when the queue is full), admission runs
 * as an explicit three-regime state machine driven by KV-budget
 * occupancy and queue depth —
 *
 *   normal         admit any request whose tenant is within its
 *                  in-flight token budget;
 *   soft-throttled admit only clearly-under-budget tenants (half the
 *                  normal per-tenant budget) and only short prompts,
 *                  so decode capacity drains the backlog;
 *   hard-fail-fast reject everything immediately, so producers learn
 *                  about overload in microseconds instead of queueing
 *                  into a stall.
 *
 * Transitions move one regime per evaluation and carry hysteresis:
 * the pressure that *exits* a regime is `hysteresisPct` below the
 * pressure that entered it, so an occupancy ripple around a threshold
 * cannot flap the mode (tests/test_admission.cpp asserts a synthetic
 * ramp produces exactly one normal→soft→hard→soft→normal sequence).
 *
 * Every decision is structured and explainable: it names the mode it
 * was taken under, the triggering metric, the observed value, and the
 * threshold it crossed — never a bare boolean.
 */

#ifndef SOFTREC_SERVE_ADMISSION_HPP
#define SOFTREC_SERVE_ADMISSION_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace softrec {

/** Backpressure regime the admission controller is operating in. */
enum class AdmissionMode
{
    Normal = 0,        //!< admit within per-tenant budgets
    SoftThrottled = 1, //!< admit only under-budget tenants, short prompts
    HardFailFast = 2,  //!< reject everything immediately
};

/** Stable lowercase name ("normal" / "soft" / "hard"). */
const char *admissionModeName(AdmissionMode mode);

/**
 * Outcome of any admission point (queue push, engine submit): the
 * one decision type shared by RequestQueue, BatchScheduler callers,
 * and ServeEngine. When rejected, `metric`/`value`/`threshold` name
 * the exact comparison that failed and `reason` renders it for
 * humans; accepted decisions carry the mode they were taken under.
 */
struct AdmissionDecision
{
    bool accepted = false;
    AdmissionMode mode = AdmissionMode::Normal;
    std::string metric; //!< triggering metric, empty when accepted
    double value = 0.0;     //!< observed metric value
    double threshold = 0.0; //!< threshold the value was compared to
    std::string reason;     //!< empty when accepted, diagnostic otherwise

    static AdmissionDecision
    ok(AdmissionMode mode = AdmissionMode::Normal)
    {
        AdmissionDecision decision;
        decision.accepted = true;
        decision.mode = mode;
        return decision;
    }

    /** Structured rejection naming the failed comparison. */
    static AdmissionDecision rejected(AdmissionMode mode,
                                      std::string metric, double value,
                                      double threshold,
                                      std::string why);

    /**
     * Validity-style rejection (malformed request, no metric to
     * name). Kept for the queue's shape checks.
     */
    static AdmissionDecision rejected(std::string why);
};

/** Thresholds and budgets the controller enforces (all validated). */
struct AdmissionThresholds
{
    int64_t softEnterPct = 70;  //!< pressure entering soft-throttled
    int64_t hardEnterPct = 90;  //!< pressure entering hard-fail-fast
    int64_t hysteresisPct = 10; //!< exit = enter - hysteresis
    int64_t tenantTokenBudget = 1 << 16; //!< per-tenant in-flight cap
    //! Longest prompt admitted in soft-throttled mode.
    int64_t softPromptCapTokens = 1 << 13;
};

/** One pressure observation, taken at a decode-step boundary. */
struct PressureSample
{
    double kvOccupancyPct = 0.0; //!< reserved KV tokens / budget
    double queueDepthPct = 0.0;  //!< queued requests / capacity
};

/** One candidate request, reduced to what admission needs. */
struct AdmissionCandidate
{
    int64_t tenantId = 0;
    int64_t promptTokens = 0;
    int64_t footprintTokens = 0; //!< prompt + generate (finishing KV)
};

/**
 * The admission state machine plus the per-tenant in-flight ledger.
 * Thread-safe: producers call admitReserve()/release() concurrently
 * while the serving thread calls updatePressure() at decode-step
 * boundaries; one internal mutex guards mode, ledger, and residency
 * counters. Mode transitions happen *only* in updatePressure, so a
 * burst of submits between two step boundaries sees one consistent
 * regime.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionThresholds &thresholds);

    AdmissionController(const AdmissionController &) = delete;
    AdmissionController &operator=(const AdmissionController &) = delete;

    /**
     * Step-boundary evaluation: fold in one pressure sample and move
     * the mode at most one regime toward the pressure's band (the
     * one-step rule plus hysteresis is what makes transition
     * sequences deterministic and flap-free). Returns true when the
     * mode changed.
     */
    bool updatePressure(const PressureSample &sample);

    /** Regime the next decision will be taken under. */
    AdmissionMode mode() const;

    /**
     * Decide one candidate under the current regime and, on accept,
     * reserve its finishing footprint against the tenant ledger in
     * the same critical section (so concurrent producers cannot
     * jointly overshoot a tenant budget). Rejections name the failed
     * metric and threshold. Call release() with the same tokens when
     * the request finishes, is cancelled, or fails to enqueue.
     */
    AdmissionDecision admitReserve(const AdmissionCandidate &candidate);

    /** Return a reservation made by admitReserve. */
    void release(int64_t tenant_id, int64_t tokens);

    /** Tokens currently reserved for one tenant. */
    int64_t tenantTokens(int64_t tenant_id) const;

    /** Mode-residency accounting (updates = step boundaries seen). */
    struct Residency
    {
        int64_t updatesInMode[3] = {0, 0, 0}; //!< indexed by mode
        int64_t transitions = 0;
    };

    Residency residency() const;

  private:
    const AdmissionThresholds thresholds_;
    mutable std::mutex mutex_;
    AdmissionMode mode_ = AdmissionMode::Normal;
    //! Last sample, kept so hard-mode rejections can name the metric
    //! that tripped the regime, not just "mode is hard".
    const char *pressureMetric_ = "kv_occupancy_pct";
    double pressure_ = 0.0;
    Residency residency_;
    std::unordered_map<int64_t, int64_t> tenantTokens_;
};

} // namespace softrec

#endif // SOFTREC_SERVE_ADMISSION_HPP
