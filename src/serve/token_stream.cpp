/**
 * @file
 * Bounded SPSC token channel implementation.
 */

#include "serve/token_stream.hpp"

#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace softrec {

TokenStream::TokenStream(int64_t capacity, int64_t row_width)
    : capacity_(capacity), rowWidth_(row_width)
{
    SOFTREC_ASSERT(capacity > 0, "stream capacity must be positive, got %lld",
                   (long long)capacity);
    SOFTREC_ASSERT(row_width > 0, "stream row width must be positive, got %lld",
                   (long long)row_width);
    ring_.resize(size_t(capacity_ * rowWidth_));
}

bool
TokenStream::push(const Half *row)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
        return count_ < capacity_ || consumerClosed_ || pushAborted_;
    });
    // An aborted push only fails when it cannot make progress: a
    // consumer still draining during engine shutdown keeps receiving
    // tokens, while one stalled on a full ring stops blocking join().
    if (consumerClosed_ || count_ >= capacity_)
        return false;
    SOFTREC_ASSERT(!terminalLocked(), "push after finish/cancel");
    const int64_t slot = (head_ + count_) % capacity_;
    std::memcpy(ring_.data() + slot * rowWidth_, row,
                size_t(rowWidth_) * sizeof(Half));
    ++count_;
    cv_.notify_all();
    return true;
}

void
TokenStream::finish(double at)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (terminalLocked())
        return;
    status_ = StreamStatus::Finished;
    finishSeconds_ = at;
    cv_.notify_all();
}

void
TokenStream::cancel(std::string why, double at)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (terminalLocked())
        return;
    status_ = StreamStatus::Cancelled;
    cancelReason_ = std::move(why);
    finishSeconds_ = at;
    cv_.notify_all();
}

void
TokenStream::popLocked(Tensor<Half> &row)
{
    row.resize({1, rowWidth_});
    std::memcpy(row.data(), ring_.data() + head_ * rowWidth_,
                size_t(rowWidth_) * sizeof(Half));
    head_ = (head_ + 1) % capacity_;
    --count_;
    ++delivered_;
}

bool
TokenStream::next(Tensor<Half> &row)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0 || terminalLocked(); });
    if (count_ == 0)
        return false;
    popLocked(row);
    cv_.notify_all();
    return true;
}

TokenStream::TryNext
TokenStream::tryNext(Tensor<Half> &row)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ > 0) {
        popLocked(row);
        cv_.notify_all();
        return TryNext::Token;
    }
    return terminalLocked() ? TryNext::End : TryNext::Pending;
}

void
TokenStream::abortPush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (pushAborted_)
        return;
    pushAborted_ = true;
    cv_.notify_all();
}

void
TokenStream::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (consumerClosed_)
        return;
    consumerClosed_ = true;
    // Buffered tokens will never be read; drop them so the producer
    // observing push() == false sees a consistent "nothing pending".
    count_ = 0;
    head_ = 0;
    cv_.notify_all();
}

StreamStatus
TokenStream::status() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return status_;
}

std::string
TokenStream::cancelReason() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelReason_;
}

int64_t
TokenStream::tokensDelivered() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return delivered_;
}

double
TokenStream::finishSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return finishSeconds_;
}

} // namespace softrec
