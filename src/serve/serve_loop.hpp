/**
 * @file
 * Synchronous continuous-batching serve driver.
 *
 * ServeLoop ties the serving pieces together: producers submit()
 * requests into the bounded queue (rejected-with-reason under
 * backpressure), and run() drains it — admitting at decode-step
 * boundaries through the BatchScheduler, prefilling each admission
 * into a slab-backed KvCache, and stepping every active request
 * through runDecodeStep with the previous step's output row as the
 * next input (a fixed pseudo-sampling rule, so results are
 * deterministic and bit-identical for any thread count). Invalid
 * configuration is a hard startup error, never a silent fallback.
 */

#ifndef SOFTREC_SERVE_SERVE_LOOP_HPP
#define SOFTREC_SERVE_SERVE_LOOP_HPP

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.hpp"
#include "model/decode.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/kv_cache.hpp"
#include "serve/request_queue.hpp"

namespace softrec {

/** Serving engine limits (see fromEnv for the environment knobs). */
struct ServeConfig
{
    int64_t maxBatchRows = 16;    //!< concurrent requests per step
    int64_t tokenBudget = 1 << 16; //!< max total KV tokens in flight
    int64_t queueCapacity = 64;   //!< bounded queue depth
    int64_t kvBlockTokens = 64;   //!< cached rows per slab block

    /**
     * Read overrides from SOFTREC_SERVE_BATCH_ROWS,
     * SOFTREC_SERVE_TOKEN_BUDGET and SOFTREC_SERVE_QUEUE_CAP, and
     * validate SOFTREC_THREADS eagerly. Every malformed value is a
     * hard startup error (fatal(), which throws std::runtime_error)
     * naming the variable, the offending text, and the accepted
     * range — a serving engine that silently fell back to defaults
     * or serial execution would hide capacity regressions.
     */
    static ServeConfig fromEnv();
};

/** Per-request serving record. */
struct RequestStats
{
    int64_t id = 0;
    int64_t promptTokens = 0;
    int64_t generatedTokens = 0;
    double arrivalSeconds = 0.0; //!< producer stamp (nowSeconds clock)
    double finishSeconds = 0.0;  //!< eviction time
    //! Last generated token embedding, [1, dModel]; tests use it to
    //! prove batched serving is bit-identical to serial serving.
    Tensor<Half> finalRow;
    double latencySeconds() const { return finishSeconds - arrivalSeconds; }
};

/** Aggregate results of one ServeLoop::run drain. */
struct ServeSummary
{
    int64_t requestsServed = 0;
    int64_t tokensGenerated = 0;
    int64_t decodeSteps = 0;
    double seconds = 0.0;         //!< wall time inside run()
    double tokensPerSecond = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    std::vector<RequestStats> requests; //!< finish order
};

/** Synchronous serving driver (one driver thread owns run()). */
class ServeLoop
{
  public:
    ServeLoop(const ExecContext &ctx, const DecoderStack &stack,
              const ServeConfig &config);

    ServeLoop(const ServeLoop &) = delete;
    ServeLoop &operator=(const ServeLoop &) = delete;

    /**
     * Validate and enqueue one request. On top of the queue's own
     * checks this rejects prompts whose width does not match the
     * stack and requests whose finishing KV footprint exceeds the
     * token budget (they could never be admitted). Thread-safe.
     */
    AdmitResult submit(ServeRequest request);

    /** Seconds since construction (the arrival/finish clock). */
    double nowSeconds() const;

    /**
     * Drain the queue: admit, prefill, and batch-decode until no
     * request is queued or in flight. Returns the aggregate summary;
     * per-request latency is measured on the nowSeconds clock.
     */
    ServeSummary run();

    const RequestQueue &queue() const { return queue_; }
    const KvSlab &slab() const { return slab_; }

  private:
    struct SlotState
    {
        std::unique_ptr<KvCache> cache;
        Tensor<Half> nextInput; //!< [1, dModel] pending step input
        //! Request identity snapshot (the scheduler slot resets on
        //! eviction before stats are emitted).
        RequestStats stats;
    };

    void prefillSlot(int64_t slot_index);
    //! Compose the active rows' pending inputs into stepInputs_ and
    //! their caches into stepCaches_ (capacity-reusing resizes; off
    //! run()'s steady-state alloc-free path by design).
    void gatherStepInputs(const std::vector<int64_t> &active);
    //! Emit a finished slot's stats and release its per-request
    //! state (the per-request RequestStats append amortizes to one
    //! per request, not one per step).
    void finishSlot(int64_t slot_index, ServeSummary &summary);
    //! Wall-time totals and latency percentiles, computed once after
    //! the drain loop exits.
    void finalizeSummary(ServeSummary &summary, double start) const;

    //! Copied, not referenced: callers may pass a temporary context,
    //! and run() must outlive the constructor expression.
    ExecContext ctx_;
    const DecoderStack &stack_;
    ServeConfig config_;
    RequestQueue queue_;
    BatchScheduler scheduler_;
    KvSlab slab_;
    std::vector<SlotState> slots_;
    std::chrono::steady_clock::time_point epoch_;
    //! Step-lifetime buffers reused across every decode step of a
    //! drain: scheduler index scratch, the composed input/output
    //! batches, and the decode workspace. After the first steps at
    //! the high-water batch shape, run()'s loop allocates nothing.
    std::vector<int64_t> admitted_;
    std::vector<int64_t> active_;
    std::vector<int64_t> finished_;
    std::vector<KvCache *> stepCaches_;
    Tensor<Half> stepInputs_;
    Tensor<Half> stepOutputs_;
    DecodeStepWorkspace stepWs_;
};

/**
 * Sorted-sample percentile (nearest-rank on a copy; q in [0, 1]).
 * Exposed for the serve bench and tests.
 */
double percentileSeconds(std::vector<double> samples, double q);

} // namespace softrec

#endif // SOFTREC_SERVE_SERVE_LOOP_HPP
