/**
 * @file
 * DEPRECATED synchronous serve driver — thin adapter over ServeEngine.
 *
 * ServeLoop predates the async engine: producers submit() and a
 * single caller drives run() to completion. It is kept for one
 * release as a migration shim (the PR-2 runAttention pattern) and
 * will be removed; new code should use ServeEngine and consume
 * ServeSession streams directly.
 *
 * The adapter preserves the old contract — submit() queues without
 * serving, run() drains everything and returns an aggregate summary
 * with per-request records — by holding the sessions the engine
 * hands back and round-robin draining their token streams. The
 * internals-leaking accessors (`queue()`, `slab()`) are gone;
 * stats() returns the engine's read-only ServeStats snapshot.
 */

#ifndef SOFTREC_SERVE_SERVE_LOOP_HPP
#define SOFTREC_SERVE_SERVE_LOOP_HPP

#include <cstdint>
#include <vector>

#include "common/exec_context.hpp"
#include "serve/serve_engine.hpp"

namespace softrec {

/** Per-request serving record. */
struct RequestStats
{
    int64_t id = 0;
    int64_t promptTokens = 0;
    int64_t generatedTokens = 0;
    double arrivalSeconds = 0.0; //!< submit stamp (nowSeconds clock)
    double finishSeconds = 0.0;  //!< stream-terminal time
    //! Last generated token embedding, [1, dModel]; tests use it to
    //! prove batched serving is bit-identical to serial serving.
    Tensor<Half> finalRow;
    double latencySeconds() const { return finishSeconds - arrivalSeconds; }
};

/** Aggregate results of one ServeLoop::run drain. */
struct ServeSummary
{
    int64_t requestsServed = 0;
    int64_t tokensGenerated = 0;
    int64_t decodeSteps = 0;
    double seconds = 0.0;         //!< wall time inside run()
    double tokensPerSecond = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    std::vector<RequestStats> requests; //!< finish order
};

/**
 * Deprecated synchronous driver (single owner thread calls submit()
 * and run(); the engine's serving thread does the decoding).
 */
class ServeLoop
{
  public:
    ServeLoop(const ExecContext &ctx, const DecoderStack &stack,
              const ServeConfig &config);

    ServeLoop(const ServeLoop &) = delete;
    ServeLoop &operator=(const ServeLoop &) = delete;

    /**
     * Validate and enqueue one request through the engine. The
     * engine's serving thread does not start until the first run()
     * call, so everything submitted before run() is admitted as one
     * deterministic FIFO trace.
     */
    AdmissionDecision submit(ServeRequest request);

    /** Seconds since construction (the arrival/finish clock). */
    double nowSeconds() const { return engine_.nowSeconds(); }

    /**
     * Drain every pending session: starts the engine on first call,
     * consumes all streams, and returns the aggregate summary;
     * per-request latency is measured on the nowSeconds clock.
     */
    ServeSummary run();

    /** Read-only snapshot (replaces the old queue()/slab() leaks). */
    ServeStats stats() const { return engine_.stats(); }

  private:
    struct Pending
    {
        ServeSession session;
        RequestStats stats;
        bool done = false;
    };

    ServeEngine engine_;
    std::vector<Pending> pending_;
    bool started_ = false;
};

} // namespace softrec

#endif // SOFTREC_SERVE_SERVE_LOOP_HPP
