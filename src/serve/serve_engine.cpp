/**
 * @file
 * Async serve engine implementation.
 */

#include "serve/serve_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/logging.hpp"
#include "common/profiler.hpp"

namespace softrec {

namespace {

/**
 * Rebase the configured (fp16-denominated) token budget on actual
 * per-format block bytes: the same slab byte budget holds
 * proportionally more tokens in a compressed format. Exactly
 * config.tokenBudget for F16 (identical numerator and denominator).
 */
int64_t
effectiveKvTokenBudget(const ServeConfig &config, int64_t row_width)
{
    const int64_t f16_bytes =
        kvBlockBytes(KvDtype::F16, config.kvBlockTokens, row_width);
    const int64_t fmt_bytes =
        kvBlockBytes(config.kvDtype, config.kvBlockTokens, row_width);
    return config.tokenBudget * f16_bytes / fmt_bytes;
}

} // namespace

double
percentileSeconds(std::vector<double> samples, double q)
{
    SOFTREC_ASSERT(!samples.empty(),
                   "percentile of an empty sample set (guard the "
                   "call and emit a sentinel instead)");
    SOFTREC_ASSERT(q >= 0.0 && q <= 1.0,
                   "percentile q=%g outside [0, 1]", q);
    std::sort(samples.begin(), samples.end());
    const double rank = q * double(samples.size() - 1);
    const size_t lo = size_t(std::floor(rank));
    const size_t hi = size_t(std::ceil(rank));
    const double frac = rank - double(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

ServeEngine::ServeEngine(const ExecContext &ctx,
                         const DecoderStack &stack,
                         const ServeConfig &config)
    : ctx_(ctx), stack_(stack), config_(config),
      kvTokenBudget_(
          effectiveKvTokenBudget(config, stack.config.dModel)),
      controller_(config.admission), queue_(config.queueCapacity),
      scheduler_(SchedulerConfig{config.maxBatchRows,
                                 kvTokenBudget_}),
      slab_(config.kvBlockTokens, stack.config.dModel, 64,
            config.kvDtype),
      slots_(size_t(config.maxBatchRows)),
      epoch_(std::chrono::steady_clock::now())
{
    // Startup-time proof that every limit the engine divides by or
    // sizes storage with is usable — samplePressure's divisions by
    // kvTokenBudget_ and queueCapacity rely on it.
    config.validate();
    mirror_.queueCapacity = config.queueCapacity;
    mirror_.tokenBudget = kvTokenBudget_;
    mirror_.kvDtype = config.kvDtype;
}

ServeEngine::~ServeEngine()
{
    shutdown();
}

double
ServeEngine::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
ServeEngine::start()
{
    SOFTREC_ASSERT(!started_, "ServeEngine::start may be called once");
    started_ = true;
    thread_ = std::thread([this] { threadMain(); });
}

SubmitResult
ServeEngine::submit(ServeRequest request)
{
    SubmitResult result;
    if (shuttingDown_.load(std::memory_order_acquire)) {
        result.decision = AdmissionDecision::rejected(
            "engine is shutting down; no new requests accepted");
        return result;
    }
    if (request.prompt.shape().rank() != 2 ||
        request.prompt.shape().dim(0) < 1) {
        result.decision = AdmissionDecision::rejected(
            "prompt must be a [tokens, dModel] tensor with at least "
            "one token");
        return result;
    }
    if (request.prompt.shape().dim(1) != stack_.config.dModel) {
        result.decision = AdmissionDecision::rejected(
            "prompt width " +
            std::to_string(request.prompt.shape().dim(1)) +
            " does not match the model (dModel " +
            std::to_string(stack_.config.dModel) + ")");
        return result;
    }
    if (request.generateTokens < 1) {
        result.decision =
            AdmissionDecision::rejected("generateTokens must be >= 1");
        return result;
    }

    const int64_t prompt_tokens = request.prompt.shape().dim(0);
    const int64_t footprint = prompt_tokens + request.generateTokens;
    if (footprint > kvTokenBudget_) {
        result.decision = AdmissionDecision::rejected(
            controller_.mode(), "request_kv_tokens", double(footprint),
            double(kvTokenBudget_),
            "request needs " + std::to_string(footprint) +
                " KV tokens but the token budget is " +
                std::to_string(kvTokenBudget_) +
                "; it could never be scheduled");
        return result;
    }

    AdmissionCandidate candidate;
    candidate.tenantId = request.tenantId;
    candidate.promptTokens = prompt_tokens;
    candidate.footprintTokens = footprint;
    const AdmissionDecision reserve =
        controller_.admitReserve(candidate);
    if (!reserve.accepted) {
        result.decision = reserve;
        return result;
    }

    if (request.id == 0)
        request.id = nextId_.fetch_add(1);
    request.arrivalSeconds = nowSeconds();
    auto stream = std::make_shared<TokenStream>(config_.streamCapacity,
                                                stack_.config.dModel);
    request.stream = stream;
    registerStream(stream);
    const int64_t id = request.id;
    const int64_t tenant = request.tenantId;

    // Count the submit before the push: once the request is in the
    // queue the serving thread may finish it at any moment, and a
    // completion must never observe completed_ > submitted_ (waitIdle
    // would wake early or, worse, miss its notify and hang).
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++submitted_;
    }
    AdmissionDecision pushed = queue_.push(std::move(request));
    if (!pushed.accepted) {
        controller_.release(tenant, footprint);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            --submitted_;
            if (completed_ == submitted_)
                idleCv_.notify_all();
        }
        // The queue is regime-agnostic; stamp the regime the decision
        // was actually taken under.
        pushed.mode = reserve.mode;
        result.decision = std::move(pushed);
        return result;
    }

    // The pending-work flag is written under wakeMutex_, so the
    // serving thread either sees it in its wait predicate or is
    // already blocked when the notify fires — the wakeup cannot fall
    // between predicate evaluation and the block and get lost.
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        workPending_ = true;
    }
    wakeCv_.notify_one();
    result.decision = AdmissionDecision::ok(reserve.mode);
    result.session = ServeSession(id, tenant, std::move(stream));
    return result;
}

void
ServeEngine::waitIdle()
{
    std::unique_lock<std::mutex> lock(statsMutex_);
    idleCv_.wait(lock, [this] { return completed_ == submitted_; });
}

void
ServeEngine::shutdown()
{
    shuttingDown_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stopRequested_ = true;
    }
    wakeCv_.notify_all();
    // Wake any push() blocked on a full ring before joining: a
    // consumer that stopped draining without dropping its session
    // must not pin the serving thread (and this join) forever.
    // Consumers still draining keep receiving tokens and finish.
    {
        std::lock_guard<std::mutex> lock(streamsMutex_);
        abortingPushes_ = true;
        for (const std::weak_ptr<TokenStream> &weak : liveStreams_) {
            if (std::shared_ptr<TokenStream> stream = weak.lock())
                stream->abortPush();
        }
        liveStreams_.clear();
    }
    if (thread_.joinable())
        thread_.join();
    // Only reachable with queued items when the engine never started.
    drainQueueCancelling("engine shut down before the request was "
                         "admitted");
}

ServeStats
ServeEngine::stats() const
{
    ServeStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = mirror_;
    }
    out.queueDepth = queue_.size();
    out.queueCapacity = queue_.capacity();
    out.queueAccepted = queue_.accepted();
    out.queueRejected = queue_.rejected();
    out.tokenBudget = kvTokenBudget_;
    out.mode = controller_.mode();
    out.residency = controller_.residency();
    return out;
}

void
ServeEngine::threadMain()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            // workPending_ (under wakeMutex_) is the lost-wakeup-free
            // submit signal; the queue/scheduler reads are extra
            // triggers so a step that left work behind re-runs
            // without waiting for another submit.
            wakeCv_.wait(lock, [this] {
                return stopRequested_ || workPending_ ||
                       queue_.size() > 0 || !scheduler_.idle();
            });
            workPending_ = false;
        }
        serveStep();
        {
            std::lock_guard<std::mutex> lock(wakeMutex_);
            if (stopRequested_ && queue_.size() == 0 &&
                scheduler_.idle())
                break;
        }
    }
}

void
ServeEngine::serveStep()
{
    prof::Scope scope(ctx_, "serve.step");
    samplePressure();
    admitAndPrefill(); // fills active_ and composes the step inputs
    if (!active_.empty()) {
        runDecodeStepInto(ctx_, stack_, stepInputs_, stepCaches_,
                          stepWs_, stepOutputs_);
        ++decodeSteps_;
        tokensGenerated_ += int64_t(active_.size());
        streamStepOutputs();
        completeAndFinish();
    }
    publishStats();
}

void
ServeEngine::samplePressure()
{
    // Divisions are guard-free by construction: ServeConfig::validate
    // proved tokenBudget and queueCapacity >= 1 at startup (and the
    // effective budget only rebases tokenBudget upward).
    lastSample_.kvOccupancyPct = 100.0 *
                                 double(scheduler_.reservedTokens()) /
                                 double(kvTokenBudget_);
    lastSample_.queueDepthPct = 100.0 * double(queue_.size()) /
                                double(config_.queueCapacity);
    if (controller_.updatePressure(lastSample_))
        prof::event(ctx_, "serve.mode_transition");
}

void
ServeEngine::admitAndPrefill()
{
    scheduler_.admitFrom(queue_, &admitted_);
    for (int64_t slot_index : admitted_)
        prefillSlot(slot_index);
    advancePrefills();
    // Slot membership settles before the inputs are composed, so the
    // batch a step runs is exactly the batch the scheduler reports.
    scheduler_.activeSlots(&active_);
    if (!active_.empty())
        gatherStepInputs();
}

void
ServeEngine::prefillSlot(int64_t slot_index)
{
    prof::Scope scope(ctx_, "serve.prefill");
    const BatchSlot &slot = scheduler_.slot(slot_index);
    SlotState &state = slots_[size_t(slot_index)];
    state.cache = std::make_unique<KvCache>(
        slab_, int64_t(stack_.layers.size()));
    state.stream = slot.request.stream;
    state.tenantId = slot.request.tenantId;
    const int64_t prompt_tokens = slot.request.prompt.shape().dim(0);
    state.footprintTokens = prompt_tokens +
                            slot.request.generateTokens;
    state.nextInput = Tensor<Half>(Shape({1, stack_.config.dModel}));
    if (config_.prefillChunkTokens == 0) {
        // Unchunked: the whole prompt runs here, at admission, on
        // the one-shot batch path.
        const Tensor<Half> out = runPrefill(
            ctx_, stack_, slot.request.prompt, *state.cache);
        scheduler_.notePrefillProgress(slot_index, prompt_tokens);
        seedNextInput(state, out);
        return;
    }
    // Chunked: register for advancePrefills, which feeds the prompt
    // in at most prefillChunkTokens rows per serve step.
    state.prefill = std::make_unique<PrefillState>();
    state.prefill->prepare(stack_, prompt_tokens);
    prefilling_.push_back(slot_index);
}

void
ServeEngine::advancePrefills()
{
    if (prefilling_.empty())
        return;
    prof::Scope scope(ctx_, "serve.prefill");
    size_t keep = 0;
    for (size_t i = 0; i < prefilling_.size(); ++i) {
        const int64_t slot_index = prefilling_[i];
        SlotState &state = slots_[size_t(slot_index)];
        PrefillState &prefill = *state.prefill;
        const int64_t rows =
            std::min(config_.prefillChunkTokens,
                     prefill.promptTokens - prefill.rowsDone);
        runPrefill(ctx_, stack_,
                   scheduler_.slot(slot_index).request.prompt, rows,
                   *state.cache, prefill, stepWs_, prefillOut_);
        // The budget was reserved at admission; this charges the KV
        // rows that just landed.
        scheduler_.notePrefillProgress(slot_index, rows);
        if (!prefill.done()) {
            prefilling_[keep++] = slot_index;
            continue;
        }
        seedNextInput(state, prefillOut_);
        state.prefill.reset(); // staging frees once the prompt landed
    }
    prefilling_.resize(keep);
}

void
ServeEngine::seedNextInput(SlotState &state, const Tensor<Half> &out)
{
    // Pseudo-sampling: the prompt's last output row is the first
    // decode input (no vocabulary head in this model).
    const int64_t dm = stack_.config.dModel;
    const int64_t last = out.shape().dim(0) - 1;
    std::copy(out.rowPtr(last), out.rowPtr(last) + dm,
              state.nextInput.rowPtr(0));
}

void
ServeEngine::gatherStepInputs()
{
    // One continuous-batching step: concatenate every active slot's
    // pending input row (slot order keeps the composition
    // deterministic). The buffers are members, so the resizes below
    // only touch the allocator while the active-row count is still
    // climbing toward its high-water mark.
    const int64_t dm = stack_.config.dModel;
    stepInputs_.resize(Shape({int64_t(active_.size()), dm}));
    stepCaches_.resize(active_.size());
    for (size_t r = 0; r < active_.size(); ++r) {
        const SlotState &state = slots_[size_t(active_[r])];
        std::copy(state.nextInput.rowPtr(0),
                  state.nextInput.rowPtr(0) + dm,
                  stepInputs_.rowPtr(int64_t(r)));
        stepCaches_[r] = state.cache.get();
    }
}

void
ServeEngine::streamStepOutputs()
{
    const int64_t dm = stack_.config.dModel;
    cancelled_.clear();
    for (size_t r = 0; r < active_.size(); ++r) {
        SlotState &state = slots_[size_t(active_[r])];
        std::copy(stepOutputs_.rowPtr(int64_t(r)),
                  stepOutputs_.rowPtr(int64_t(r)) + dm,
                  state.nextInput.rowPtr(0));
        // push blocks while the consumer's ring is full (bounded
        // channel = decode paced by the slowest consumer in the
        // batch) and fails once the consumer closed.
        if (!state.stream->push(stepOutputs_.rowPtr(int64_t(r))))
            cancelled_.push_back(active_[r]);
    }
}

void
ServeEngine::completeAndFinish()
{
    scheduler_.completeStep(&finished_);
    // A slot whose consumer closed on its final token still finished
    // its generation; the close only means nobody reads the result.
    for (int64_t slot_index : finished_)
        finishSlot(slot_index);
    const char *why = shuttingDown_.load(std::memory_order_acquire)
                          ? "engine shut down while the stream was "
                            "stalled"
                          : "consumer closed the stream";
    for (int64_t slot_index : cancelled_) {
        if (std::find(finished_.begin(), finished_.end(),
                      slot_index) != finished_.end())
            continue;
        scheduler_.releaseSlot(slot_index);
        cancelSlot(slot_index, why);
    }
}

void
ServeEngine::finishSlot(int64_t slot_index)
{
    SlotState &state = slots_[size_t(slot_index)];
    state.stream->finish(nowSeconds());
    controller_.release(state.tenantId, state.footprintTokens);
    state.cache.reset(); // blocks return to the slab now
    state.stream.reset();
    state.nextInput = Tensor<Half>();
    ++requestsServed_;
    bumpCompleted();
}

void
ServeEngine::cancelSlot(int64_t slot_index, const char *why)
{
    SlotState &state = slots_[size_t(slot_index)];
    state.stream->cancel(why, nowSeconds());
    controller_.release(state.tenantId, state.footprintTokens);
    state.cache.reset();
    state.stream.reset();
    state.nextInput = Tensor<Half>();
    ++requestsCancelled_;
    prof::event(ctx_, "serve.cancel");
    bumpCompleted();
}

void
ServeEngine::publishStats()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    mirror_.activeRows = scheduler_.activeRows();
    mirror_.prefillingRows = scheduler_.prefillingRows();
    mirror_.reservedKvTokens = scheduler_.reservedTokens();
    mirror_.kvBlocksInUse = slab_.blocksInUse();
    mirror_.kvBlocksReserved = slab_.blocksReserved();
    mirror_.kvBytesReserved = slab_.bytesReserved();
    mirror_.kvOccupancyPct = lastSample_.kvOccupancyPct;
    mirror_.queueDepthPct = lastSample_.queueDepthPct;
    mirror_.requestsServed = requestsServed_;
    mirror_.requestsCancelled = requestsCancelled_;
    mirror_.tokensGenerated = tokensGenerated_;
    mirror_.decodeSteps = decodeSteps_;
    // Idle is announced here, not in bumpCompleted, so a waiter that
    // wakes always sees the settled mirror of the finishing step.
    if (completed_ == submitted_)
        idleCv_.notify_all();
}

void
ServeEngine::bumpCompleted()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++completed_;
}

void
ServeEngine::registerStream(const std::shared_ptr<TokenStream> &stream)
{
    std::lock_guard<std::mutex> lock(streamsMutex_);
    if (abortingPushes_) {
        // Raced past the shuttingDown_ gate in submit(): make sure
        // this stream can never block the serving thread either.
        stream->abortPush();
        return;
    }
    // Entries expire once both the batch slot and the consumer drop
    // the stream; pruning here keeps the registry sized to in-flight
    // requests rather than everything ever submitted.
    liveStreams_.erase(
        std::remove_if(liveStreams_.begin(), liveStreams_.end(),
                       [](const std::weak_ptr<TokenStream> &weak) {
                           return weak.expired();
                       }),
        liveStreams_.end());
    liveStreams_.push_back(stream);
}

void
ServeEngine::drainQueueCancelling(const char *why)
{
    while (std::optional<ServeRequest> request = queue_.pop()) {
        if (request->stream != nullptr)
            request->stream->cancel(why, nowSeconds());
        controller_.release(request->tenantId,
                            request->prompt.shape().dim(0) +
                                request->generateTokens);
        ++requestsCancelled_;
        bumpCompleted();
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        mirror_.requestsCancelled = requestsCancelled_;
        if (completed_ == submitted_)
            idleCv_.notify_all();
    }
}

} // namespace softrec
