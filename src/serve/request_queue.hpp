/**
 * @file
 * Thread-safe bounded request queue for the serving engine.
 *
 * Producers (client threads) push generation requests; the serve
 * loop's driver thread pops them at decode-step boundaries. The queue
 * is explicitly bounded and rejects instead of blocking: a full (or
 * malformed) request comes back immediately with a machine-readable
 * reason, so producers always learn about overload instead of
 * deadlocking against a stalled consumer.
 */

#ifndef SOFTREC_SERVE_REQUEST_QUEUE_HPP
#define SOFTREC_SERVE_REQUEST_QUEUE_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "fp16/half.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** One generation request entering the serving engine. */
struct ServeRequest
{
    int64_t id = 0;
    Tensor<Half> prompt;        //!< [promptTokens, dModel] fp16
    int64_t generateTokens = 0; //!< decode steps to run after prefill
    double arrivalSeconds = 0.0; //!< producer timestamp (latency base)
};

/** Outcome of RequestQueue::push. */
struct AdmitResult
{
    bool accepted = false;
    std::string reason; //!< empty when accepted, diagnostic otherwise

    static AdmitResult
    ok()
    {
        return AdmitResult{true, std::string()};
    }
    static AdmitResult
    rejected(std::string why)
    {
        return AdmitResult{false, std::move(why)};
    }
};

/** Bounded MPSC FIFO with reject-with-reason backpressure. */
class RequestQueue
{
  public:
    explicit RequestQueue(int64_t capacity);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Enqueue a request. Never blocks: a full queue or an invalid
     * request (empty prompt, non-positive generateTokens) is rejected
     * with a reason string the producer can surface.
     */
    AdmitResult push(ServeRequest request);

    /** Dequeue the oldest request, or nullopt when empty. */
    std::optional<ServeRequest> pop();

    int64_t size() const;
    int64_t capacity() const { return capacity_; }

    /** Requests accepted by push so far. */
    int64_t accepted() const;
    /** Requests rejected by push so far. */
    int64_t rejected() const;

  private:
    const int64_t capacity_;
    mutable std::mutex mutex_;
    std::deque<ServeRequest> items_;
    int64_t accepted_ = 0;
    int64_t rejected_ = 0;
};

} // namespace softrec

#endif // SOFTREC_SERVE_REQUEST_QUEUE_HPP
