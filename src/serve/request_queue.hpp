/**
 * @file
 * Thread-safe bounded request queue for the serving engine.
 *
 * Producers (client threads) push generation requests; the serving
 * thread pops them at decode-step boundaries. The queue is explicitly
 * bounded and rejects instead of blocking: a full (or malformed)
 * request comes back immediately with a structured AdmissionDecision,
 * so producers always learn about overload instead of deadlocking
 * against a stalled consumer. The queue itself is regime-agnostic —
 * ServeEngine::submit composes the admission-mode policy on top.
 */

#ifndef SOFTREC_SERVE_REQUEST_QUEUE_HPP
#define SOFTREC_SERVE_REQUEST_QUEUE_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "fp16/half.hpp"
#include "serve/admission.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

class TokenStream;

/** One generation request entering the serving engine. */
struct ServeRequest
{
    int64_t id = 0;
    int64_t tenantId = 0;        //!< accounting bucket for budgets
    Tensor<Half> prompt;         //!< [promptTokens, dModel] fp16
    int64_t generateTokens = 0;  //!< decode steps to run after prefill
    double arrivalSeconds = 0.0; //!< producer timestamp (latency base)
    //! Consumer channel the serving thread streams tokens into;
    //! ServeEngine::submit attaches it before enqueueing.
    std::shared_ptr<TokenStream> stream;
};

/** Bounded MPSC FIFO with reject-with-reason backpressure. */
class RequestQueue
{
  public:
    explicit RequestQueue(int64_t capacity);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Enqueue a request. Never blocks: a full queue rejects with the
     * queue_depth metric and an invalid request (empty prompt,
     * non-positive generateTokens) rejects with a validity reason.
     */
    AdmissionDecision push(ServeRequest request);

    /** Dequeue the oldest request, or nullopt when empty. */
    std::optional<ServeRequest> pop();

    int64_t size() const;
    int64_t capacity() const { return capacity_; }

    /** Requests accepted by push so far. */
    int64_t accepted() const;
    /** Requests rejected by push so far. */
    int64_t rejected() const;

  private:
    const int64_t capacity_;
    mutable std::mutex mutex_;
    std::deque<ServeRequest> items_;
    int64_t accepted_ = 0;
    int64_t rejected_ = 0;
};

} // namespace softrec

#endif // SOFTREC_SERVE_REQUEST_QUEUE_HPP
