/**
 * @file
 * Async streaming serve engine.
 *
 * ServeEngine is a front-end that owns a background serving thread:
 * producers submit()
 * from any thread and immediately get back a structured
 * AdmissionDecision plus (on accept) a ServeSession whose TokenStream
 * delivers generated tokens as decode steps complete — admission
 * overlaps decode instead of alternating with it.
 *
 * Concurrency contract:
 *  - submit() / stats() / mode() are thread-safe (any producer).
 *  - Lifecycle calls — start(), shutdown(), waitIdle(), destruction —
 *    belong to the single owner thread, and producers must be quiesced
 *    before shutdown().
 *  - All decode work runs on the serving thread, which is the only
 *    external submitter into the ExecContext's ThreadPool (the pool
 *    forbids concurrent top-level submission) and the only toucher of
 *    the scheduler, the KV slab, and the step buffers.
 *
 * Backpressure: every decode-step boundary samples KV-budget
 * occupancy and queue depth into the AdmissionController, whose
 * three-regime state machine (normal / soft-throttled /
 * hard-fail-fast, with hysteresis — see admission.hpp) decides what
 * submit() may accept. A consumer that abandons its session is
 * detected at the next token push; the engine cancels the request and
 * reclaims its KV blocks and tenant budget.
 *
 * Determinism: decode math is row-local, so the tokens a request
 * streams are bit-identical regardless of batch composition, thread
 * count, or SIMD backend — only timing and admission outcomes depend
 * on load.
 */

#ifndef SOFTREC_SERVE_SERVE_ENGINE_HPP
#define SOFTREC_SERVE_SERVE_ENGINE_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/exec_context.hpp"
#include "model/decode.hpp"
#include "serve/admission.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/kv_cache.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_config.hpp"
#include "serve/token_stream.hpp"

namespace softrec {

/**
 * Read-only snapshot of the engine's state. Scheduler-derived fields
 * are mirrored by the serving thread at step boundaries (so reading
 * them never touches serving-thread-owned structures); queue counters
 * and admission mode/residency are read live from their own locks.
 */
struct ServeStats
{
    int64_t queueDepth = 0;
    int64_t queueCapacity = 0;
    int64_t queueAccepted = 0;
    int64_t queueRejected = 0;
    int64_t activeRows = 0;        //!< batch rows in flight
    int64_t prefillingRows = 0;    //!< rows still streaming prefill in
    int64_t reservedKvTokens = 0;  //!< committed finishing footprints
    int64_t tokenBudget = 0;
    int64_t kvBlocksInUse = 0;     //!< slab blocks held by live caches
    int64_t kvBlocksReserved = 0;  //!< slab high-water reservation
    int64_t kvBytesReserved = 0;   //!< actual per-format slab bytes
    KvDtype kvDtype = KvDtype::F16; //!< KV storage format
    double kvOccupancyPct = 0.0;   //!< last step-boundary pressure
    double queueDepthPct = 0.0;    //!< last step-boundary pressure
    AdmissionMode mode = AdmissionMode::Normal;
    AdmissionController::Residency residency;
    int64_t requestsServed = 0;    //!< streamed to completion
    int64_t requestsCancelled = 0; //!< abandoned / shut down
    int64_t tokensGenerated = 0;
    int64_t decodeSteps = 0;
};

/** What submit() hands back. */
struct SubmitResult
{
    AdmissionDecision decision;
    //! Valid only when decision.accepted; dropping it cancels the
    //! request.
    ServeSession session;
};

/** Background-thread continuous-batching serve engine. */
class ServeEngine
{
  public:
    ServeEngine(const ExecContext &ctx, const DecoderStack &stack,
                const ServeConfig &config);
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /** Spawn the serving thread. Call exactly once. */
    void start();

    /**
     * Decide and (on accept) enqueue one request. Fills in
     * request.arrivalSeconds and, when request.id == 0, a fresh id.
     * The decision is structured: a rejection names the regime,
     * metric, value, and threshold that failed. Thread-safe; never
     * blocks on decode.
     *
     * The tenant's finishing footprint (prompt + generate tokens) is
     * reserved atomically with the decision and released when the
     * request finishes, is cancelled, or fails to enqueue.
     */
    SubmitResult submit(ServeRequest request);

    /**
     * Block until every accepted request has finished or been
     * cancelled. Consumers must be draining their streams (or the
     * per-request channels must be deep enough) or the serving thread
     * blocks on a full ring and idle never arrives.
     */
    void waitIdle();

    /**
     * Stop accepting, drain every already-accepted request, join the
     * serving thread, and cancel anything left queued (only possible
     * when start() was never called). A request whose consumer is
     * draining still streams to completion; one stalled on a full
     * ring is cancelled rather than allowed to block the join
     * forever. Idempotent; the destructor calls it.
     */
    void shutdown();

    /** Snapshot of queue / batch / admission state. */
    ServeStats stats() const;

    /** Current admission regime. */
    AdmissionMode mode() const { return controller_.mode(); }

    /** Seconds since construction (the arrival/finish clock). */
    double nowSeconds() const;

    const ServeConfig &config() const { return config_; }

  private:
    struct SlotState
    {
        std::unique_ptr<KvCache> cache;
        Tensor<Half> nextInput; //!< [1, dModel] pending step input
        std::shared_ptr<TokenStream> stream;
        int64_t tenantId = 0;
        int64_t footprintTokens = 0; //!< tenant-ledger reservation
        //! Resumable-prefill progress; non-null only while the slot
        //! is streaming its prompt in chunk by chunk.
        std::unique_ptr<PrefillState> prefill;
    };

    void threadMain();
    //! One decode-step boundary: pressure sample, admission, batch
    //! decode, token streaming, eviction, stats publication. Hot:
    //! steady-state allocation lives in the helpers, not here.
    void serveStep();
    void samplePressure();
    //! Admission plus prefill progress for the step: newly admitted
    //! slots begin prefill (one-shot when chunking is off), every
    //! slot mid-prefill advances by one chunk, then the
    //! decode-eligible batch is composed.
    void admitAndPrefill();
    //! Set up a freshly admitted slot and start its prefill: with
    //! chunking off the whole prompt runs here; otherwise the slot
    //! joins prefilling_ and advancePrefills feeds it chunk by chunk.
    void prefillSlot(int64_t slot_index);
    //! One chunk for every slot mid-prefill (admission order), so an
    //! arriving long prompt displaces active decode streams by at
    //! most one chunk per step and per prefilling request.
    void advancePrefills();
    //! Seed the first decode input from the prompt's last output row.
    void seedNextInput(SlotState &state, const Tensor<Half> &out);
    void gatherStepInputs();
    //! Copy each active row's output into its slot and stream it;
    //! rows whose consumer closed land in cancelled_.
    void streamStepOutputs();
    void completeAndFinish();
    void finishSlot(int64_t slot_index);
    void cancelSlot(int64_t slot_index, const char *why);
    void publishStats();
    void bumpCompleted();
    void registerStream(const std::shared_ptr<TokenStream> &stream);
    void drainQueueCancelling(const char *why);

    //! Copied, not referenced: callers may pass a temporary context.
    ExecContext ctx_;
    const DecoderStack &stack_;
    const ServeConfig config_;
    //! Scheduler/admission budget in *stored* tokens: the configured
    //! fp16-denominated tokenBudget rebased on actual per-format block
    //! bytes, so a compressed KV format admits proportionally more
    //! tokens at the same slab byte budget (exactly tokenBudget for
    //! F16).
    const int64_t kvTokenBudget_;
    AdmissionController controller_;
    RequestQueue queue_;
    BatchScheduler scheduler_;
    KvSlab slab_;
    std::vector<SlotState> slots_;
    std::chrono::steady_clock::time_point epoch_;

    std::atomic<int64_t> nextId_{1};
    std::atomic<bool> shuttingDown_{false};

    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    bool stopRequested_ = false; //!< under wakeMutex_
    bool workPending_ = false;   //!< under wakeMutex_; submit signal
    bool started_ = false;       //!< owner thread only
    std::thread thread_;

    //! Streams the engine may be pushing into; shutdown() aborts any
    //! push blocked on a full ring before joining the serving thread.
    std::mutex streamsMutex_;
    std::vector<std::weak_ptr<TokenStream>> liveStreams_;
    bool abortingPushes_ = false; //!< under streamsMutex_

    //! Mirror + idle accounting; see ServeStats docs.
    mutable std::mutex statsMutex_;
    std::condition_variable idleCv_;
    ServeStats mirror_;      //!< under statsMutex_
    int64_t submitted_ = 0;  //!< accepted submits, under statsMutex_
    int64_t completed_ = 0;  //!< finished + cancelled, under statsMutex_

    //! Serving-thread-only step state (reused across steps; after the
    //! high-water batch shape the steady-state step allocates nothing
    //! beyond stream cancel bookkeeping).
    PressureSample lastSample_;
    int64_t requestsServed_ = 0;
    int64_t requestsCancelled_ = 0;
    int64_t tokensGenerated_ = 0;
    int64_t decodeSteps_ = 0;
    std::vector<int64_t> admitted_;
    //! Slots mid-prefill, in admission order (served one chunk per
    //! step each until their prompt has fully landed).
    std::vector<int64_t> prefilling_;
    std::vector<int64_t> active_;
    std::vector<int64_t> finished_;
    std::vector<int64_t> cancelled_;
    std::vector<KvCache *> stepCaches_;
    Tensor<Half> stepInputs_;
    Tensor<Half> stepOutputs_;
    //! Chunk output scratch for advancePrefills (swap-consumed and
    //! reused across chunks; only the final chunk's last row is
    //! read, as the first decode input).
    Tensor<Half> prefillOut_;
    DecodeStepWorkspace stepWs_;
};

/**
 * Sorted-sample percentile (linear interpolation on a copy).
 * Hard-errors (panic) on an empty sample set or q outside [0, 1]:
 * a percentile of nothing is not 0, and silently returning one made
 * an all-rejected bench arm look infinitely fast. Callers whose
 * sample sets can legitimately be empty must guard and emit an
 * explicit sentinel instead. Exposed for the serve benches and
 * tests.
 */
double percentileSeconds(std::vector<double> samples, double q);

} // namespace softrec

#endif // SOFTREC_SERVE_SERVE_ENGINE_HPP
