/**
 * @file
 * Autoregressive generation (prefill + KV-cache decode) for
 * decoder-only models.
 *
 * The paper evaluates full-sequence inference, which is exactly the
 * *prefill* phase of autoregressive serving. This module adds the
 * decode phase — one query token per step attending over a growing
 * key/value cache — so the library can quantify where softmax
 * recomposition matters in a generation workload: the attention
 * "matrix" of a decode step is a single 1 x C row per head, so there
 * is nothing for recomposition to save there; the benefit lives
 * entirely in the prefill.
 *
 * Two decode paths live here: the GPU cost-model simulation
 * (buildDecodeStep/runGeneration) and the *functional* KV-cached path
 * (DecoderStack/runPrefill/runDecodeStepInto) that actually computes
 * tokens on the CPU for the serving engine, bit-identical to
 * recomputing the full prefix through runEncoderLayer at every step.
 */

#ifndef SOFTREC_MODEL_DECODE_HPP
#define SOFTREC_MODEL_DECODE_HPP

#include <vector>

#include "kernels/decode_attention.hpp"
#include "model/engine.hpp"
#include "model/functional_layer.hpp"
#include "serve/kv_cache.hpp"

namespace softrec {

/** One generation request. */
struct DecodeRun
{
    int64_t promptLen = 4096;    //!< prefill (context) length
    int64_t generateTokens = 64; //!< tokens produced step by step
    int64_t batch = 1;
    /** Softmax strategy for the prefill phase. */
    Strategy prefillStrategy = Strategy::Baseline;
};

/** Measurements of one generation request. */
struct DecodeResult
{
    double prefillSeconds = 0.0;  //!< full-context forward pass
    double decodeSeconds = 0.0;   //!< all generation steps
    uint64_t prefillBytes = 0;    //!< prefill off-chip traffic
    uint64_t decodeBytes = 0;     //!< decode off-chip traffic
    int64_t kernelLaunches = 0;

    /** Total request latency. */
    double totalSeconds() const
    {
        return prefillSeconds + decodeSeconds;
    }
    /** Mean decode latency per generated token. */
    double secondsPerToken(int64_t tokens) const
    {
        return tokens > 0 ? decodeSeconds / double(tokens) : 0.0;
    }
};

/**
 * Kernels of one decode step at context length `context`: QKV/output
 * projections and FF GEMVs (weight-bound), the KV-cache attention
 * read, and the per-row softmax.
 */
std::vector<KernelProfile> buildDecodeStep(const GpuSpec &spec,
                                           const ModelConfig &model,
                                           int64_t batch,
                                           int64_t context);

/**
 * Run prefill + decode for a causal (decoder-only) model.
 */
DecodeResult runGeneration(const GpuSpec &spec,
                           const ModelConfig &model,
                           const DecodeRun &run);

/**
 * A functional decoder-only model: a causal FunctionalLayerConfig
 * plus one EncoderLayerWeights per layer, executed for real on the
 * CPU. The serving engine runs these; the bit-identity contract
 * (incremental decode == full-prefix recompute at every step) holds
 * per attention backend and requires dense Baseline-strategy
 * attention, which runPrefill/runDecodeStepInto assert.
 */
struct DecoderStack
{
    FunctionalLayerConfig config;
    std::vector<EncoderLayerWeights> layers;

    /**
     * Randomly initialized stack with a causal dense config. The
     * attention backend is seeded from SOFTREC_ATTENTION
     * (hard-erroring on invalid values), so serving stacks follow the
     * environment knob without per-call-site plumbing.
     */
    static DecoderStack random(int64_t d_model, int64_t num_heads,
                               int64_t d_ff, int64_t num_layers,
                               Rng &rng);
};

/**
 * Full-context forward pass over the prompt, seeding `cache` with
 * every layer's K/V rows for all prompt tokens. The cache must be
 * empty and sized for the stack's layer count.
 *
 * @param prompt [promptTokens, dModel] fp16
 * @return the stack's output, [promptTokens, dModel]; its last row is
 *         the input of the first decode step
 */
Tensor<Half> runPrefill(const ExecContext &ctx,
                        const DecoderStack &stack,
                        const Tensor<Half> &prompt, KvCache &cache);

/**
 * Resumable-prefill progress for one request: how many prompt rows
 * have been processed, plus per-layer staging of the *exact* fp16
 * K/V rows produced so far.
 *
 * The staging exists for bit-identity: unchunked prefill attends
 * over the projection outputs directly, before the KV cache stores
 * them — so on a quantized cache a chunk must not read earlier rows
 * back through the cache (that would fold the quantization error of
 * its own prompt into the prefill math). Chunked prefill therefore
 * attends over this exact staging and *also* appends every row to
 * the cache in the same per-layer order as the unchunked path,
 * which keeps the cache contents (including per-block quantization
 * decisions) identical too.
 */
struct PrefillState
{
    int64_t promptTokens = 0; //!< total prompt rows
    int64_t rowsDone = 0;     //!< rows already processed
    //! Exact fp16 K/V rows per layer, [promptTokens, dModel].
    std::vector<Tensor<Half>> k, v;
    //! Stable single-pseudo-block base pointers into k/v for the
    //! contiguousKvView reads (one cell per layer).
    std::vector<const std::byte *> kBlock, vBlock;

    /** Size the staging for a prompt and reset progress to row 0. */
    void prepare(const DecoderStack &stack, int64_t prompt_tokens);
    /** True once every prompt row has been processed. */
    bool
    done() const
    {
        return rowsDone == promptTokens;
    }
};

/**
 * Step-lifetime buffers for runDecodeStepInto: every intermediate a
 * decode step produces (projections, attention output, residual and
 * LayerNorm results) plus one DecodeAttendWorkspace per worker slot.
 * A serving loop keeps one of these across its whole drain; after the
 * buffers reach their high-water shape (max batch rows, max context),
 * stepping allocates nothing.
 */
struct DecodeStepWorkspace
{
    Tensor<Half> x;         //!< layer input/output, [R, dModel]
    Tensor<Half> q, k, v;   //!< projections, [R, dModel]
    Tensor<Half> attention; //!< concatenated head outputs
    Tensor<Half> projected; //!< fc.out result
    Tensor<Half> postAttn;  //!< x + attention
    Tensor<Half> hidden;    //!< post-attention LayerNorm
    Tensor<Half> ff1;       //!< [R, dFf]
    Tensor<Half> ff2;       //!< [R, dModel]
    Tensor<Half> out;       //!< post-FF LayerNorm
    //! One attention staging workspace per worker slot, indexed by
    //! ExecContext::currentThreadSlot() inside the head loop.
    std::vector<DecodeAttendWorkspace> attend;

    /** Size every buffer for an R-row step of `stack`. */
    void prepare(const DecoderStack &stack, int64_t rows);
};

/**
 * Process the next `rows` prompt rows of a resumable prefill:
 * rows [state.rowsDone, state.rowsDone + rows) run through the
 * stack, their K/V land in `state`'s exact staging and in `cache`,
 * and `outputs` receives the stack output for exactly those rows
 * ([rows, dModel], via buffer swap). After the final chunk the last
 * output row is the first decode input, exactly as with the
 * one-shot overload.
 *
 * Bit-identity with the one-shot runPrefill, for every chunk split:
 * the projections are row-independent batched GEMMs; each row's
 * attention runs the decode kernel of the configured backend over
 * the exact staged prefix, which PR 8 pinned bit-identical to the
 * batch prefill row at the same position; and the post-attention
 * stages are row-local. Cache appends happen row-ascending per
 * layer, the same order as the one-shot path, so the stored blocks
 * (and their quantization headers) match bit for bit as well.
 *
 * @param rows chunk size; 1 <= rows <= promptTokens - rowsDone
 * @param ws   step buffers reused across chunks and decode steps
 */
void runPrefill(const ExecContext &ctx, const DecoderStack &stack,
                const Tensor<Half> &prompt, int64_t rows,
                KvCache &cache, PrefillState &state,
                DecodeStepWorkspace &ws, Tensor<Half> &outputs);

/**
 * One decode step for a batch of R independent requests: row r of
 * `inputs` is request r's current token embedding and `caches[r]` its
 * KV cache. Appends each request's new K/V rows, attends over the
 * cached prefix in place (no recompute), and leaves the next token
 * embedding per request, [R, dModel], in `outputs`.
 *
 * Bit-identity: the projections run as one batched GEMM over all R
 * rows, which the packed GEMM computes row-independently, and every
 * per-request stage (cached attention, residual, LayerNorm, FF) is
 * row-local — so each row equals the last row of a full-prefix
 * recompute of that request alone, bit for bit, for any batch
 * composition, thread count, and SIMD backend. The workspace only
 * carries scratch buffers, never values across steps, so reusing it
 * cannot change results.
 *
 * @param ws      step buffers, resized (capacity-reusing) here
 * @param outputs receives the step result via buffer swap; any prior
 *                shape/contents are consumed as scratch
 */
void runDecodeStepInto(const ExecContext &ctx,
                       const DecoderStack &stack,
                       const Tensor<Half> &inputs,
                       const std::vector<KvCache *> &caches,
                       DecodeStepWorkspace &ws, Tensor<Half> &outputs);

} // namespace softrec

#endif // SOFTREC_MODEL_DECODE_HPP
