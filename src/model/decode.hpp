/**
 * @file
 * Autoregressive generation (prefill + KV-cache decode) for
 * decoder-only models.
 *
 * The paper evaluates full-sequence inference, which is exactly the
 * *prefill* phase of autoregressive serving. This module adds the
 * decode phase — one query token per step attending over a growing
 * key/value cache — so the library can quantify where softmax
 * recomposition matters in a generation workload: the attention
 * "matrix" of a decode step is a single 1 x C row per head, so there
 * is nothing for recomposition to save there; the benefit lives
 * entirely in the prefill.
 */

#ifndef SOFTREC_MODEL_DECODE_HPP
#define SOFTREC_MODEL_DECODE_HPP

#include "model/engine.hpp"

namespace softrec {

/** One generation request. */
struct DecodeRun
{
    int64_t promptLen = 4096;    //!< prefill (context) length
    int64_t generateTokens = 64; //!< tokens produced step by step
    int64_t batch = 1;
    /** Softmax strategy for the prefill phase. */
    Strategy prefillStrategy = Strategy::Baseline;
};

/** Measurements of one generation request. */
struct DecodeResult
{
    double prefillSeconds = 0.0;  //!< full-context forward pass
    double decodeSeconds = 0.0;   //!< all generation steps
    uint64_t prefillBytes = 0;    //!< prefill off-chip traffic
    uint64_t decodeBytes = 0;     //!< decode off-chip traffic
    int64_t kernelLaunches = 0;

    /** Total request latency. */
    double totalSeconds() const
    {
        return prefillSeconds + decodeSeconds;
    }
    /** Mean decode latency per generated token. */
    double secondsPerToken(int64_t tokens) const
    {
        return tokens > 0 ? decodeSeconds / double(tokens) : 0.0;
    }
};

/**
 * Kernels of one decode step at context length `context`: QKV/output
 * projections and FF GEMVs (weight-bound), the KV-cache attention
 * read, and the per-row softmax.
 */
std::vector<KernelProfile> buildDecodeStep(const GpuSpec &spec,
                                           const ModelConfig &model,
                                           int64_t batch,
                                           int64_t context);

/**
 * Run prefill + decode for a causal (decoder-only) model.
 */
DecodeResult runGeneration(const GpuSpec &spec,
                           const ModelConfig &model,
                           const DecodeRun &run);

} // namespace softrec

#endif // SOFTREC_MODEL_DECODE_HPP
