/**
 * @file
 * Seq2seq scheduler implementation.
 */

#include "model/seq2seq.hpp"

#include "common/logging.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"

namespace softrec {

Seq2SeqConfig
Seq2SeqConfig::vanillaBase()
{
    Seq2SeqConfig config;
    config.name = "Transformer-base";
    config.encoderLayers = 6;
    config.decoderLayers = 6;
    config.dModel = 512;
    config.numHeads = 8;
    config.dFf = 2048;
    return config;
}

Seq2SeqConfig
Seq2SeqConfig::vanillaBig()
{
    Seq2SeqConfig config;
    config.name = "Transformer-big";
    config.encoderLayers = 6;
    config.decoderLayers = 6;
    config.dModel = 1024;
    config.numHeads = 16;
    config.dFf = 4096;
    return config;
}

Seq2SeqScheduler::Seq2SeqScheduler(const GpuSpec &spec,
                                   Seq2SeqConfig config, Seq2SeqRun run)
    : config_(std::move(config)), run_(run)
{
    SOFTREC_ASSERT(run_.srcLen > 0 && run_.tgtLen > 0 && run_.batch > 0,
                   "empty seq2seq run");
    build(spec);
}

void
Seq2SeqScheduler::build(const GpuSpec &spec)
{
    const int64_t dm = config_.dModel;
    const int64_t src_rows = run_.batch * run_.srcLen;
    const int64_t tgt_rows = run_.batch * run_.tgtLen;

    prologue_.push_back(
        embeddingProfile(spec, "enc.embed", src_rows, dm));
    prologue_.push_back(layerNormProfile(spec, "enc.ln0", src_rows, dm));
    prologue_.push_back(
        embeddingProfile(spec, "dec.embed", tgt_rows, dm));
    prologue_.push_back(layerNormProfile(spec, "dec.ln0", tgt_rows, dm));

    auto add_gemm = [&](std::vector<KernelProfile> &layer,
                        const std::string &name, KernelCategory cat,
                        int64_t m, int64_t n, int64_t k, bool gelu) {
        GemmDesc desc;
        desc.name = name;
        desc.category = cat;
        desc.m = m;
        desc.n = n;
        desc.k = k;
        desc.shapeClass = GemmShapeClass::LargeFc;
        desc.epilogue.bias = true;
        desc.epilogue.gelu = gelu;
        layer.push_back(gemmProfile(spec, desc));
    };

    auto add_attention = [&](std::vector<KernelProfile> &layer,
                             const std::string &prefix, int64_t q_len,
                             int64_t kv_len, bool causal) {
        // Projections: queries from this stream, keys/values from the
        // attended stream.
        add_gemm(layer, prefix + ".fc.q", KernelCategory::Fc,
                 run_.batch * q_len, dm, dm, false);
        add_gemm(layer, prefix + ".fc.k", KernelCategory::Fc,
                 run_.batch * kv_len, dm, dm, false);
        add_gemm(layer, prefix + ".fc.v", KernelCategory::Fc,
                 run_.batch * kv_len, dm, dm, false);
        layer.push_back(reshapeProfile(
            spec, prefix + ".split",
            run_.batch * (q_len + 2 * kv_len) * dm));

        SdaConfig sda;
        sda.batch = run_.batch;
        sda.heads = config_.numHeads;
        sda.seqLen = q_len;
        sda.kvLen = kv_len;
        sda.dHead = config_.dHead();
        sda.causalMask = causal;
        sda.subVector = chooseSubVector(kv_len, run_.subVector);
        const SdaSchedule sda_plan =
            buildSdaSchedule(spec, sda, run_.strategy);
        for (KernelProfile prof : sda_plan.kernels) {
            prof.name = prefix + "." + prof.name;
            layer.push_back(std::move(prof));
        }

        layer.push_back(reshapeProfile(spec, prefix + ".merge",
                                       run_.batch * q_len * dm));
        add_gemm(layer, prefix + ".fc.out", KernelCategory::Fc,
                 run_.batch * q_len, dm, dm, false);
        layer.push_back(residualAddProfile(
            spec, prefix + ".residual", run_.batch * q_len * dm));
        layer.push_back(layerNormProfile(spec, prefix + ".ln",
                                         run_.batch * q_len, dm));
    };

    auto add_feedforward = [&](std::vector<KernelProfile> &layer,
                               const std::string &prefix,
                               int64_t rows) {
        add_gemm(layer, prefix + ".ff.1", KernelCategory::FeedForward,
                 rows, config_.dFf, dm, true);
        add_gemm(layer, prefix + ".ff.2", KernelCategory::FeedForward,
                 rows, dm, config_.dFf, false);
        layer.push_back(residualAddProfile(
            spec, prefix + ".ff.residual", rows * dm));
        layer.push_back(
            layerNormProfile(spec, prefix + ".ff.ln", rows, dm));
    };

    // Encoder layer: bidirectional self-attention + FF.
    add_attention(encoderLayer_, "enc.self", run_.srcLen, run_.srcLen,
                  false);
    add_feedforward(encoderLayer_, "enc", src_rows);

    // Decoder layer: causal self-attention, cross-attention over the
    // encoder output, then FF.
    add_attention(decoderLayer_, "dec.self", run_.tgtLen, run_.tgtLen,
                  true);
    add_attention(decoderLayer_, "dec.cross", run_.tgtLen, run_.srcLen,
                  false);
    add_feedforward(decoderLayer_, "dec", tgt_rows);
}

void
Seq2SeqScheduler::run(Gpu &gpu) const
{
    for (const KernelProfile &prof : prologue_)
        gpu.launch(prof);
    for (int64_t l = 0; l < config_.encoderLayers; ++l)
        for (const KernelProfile &prof : encoderLayer_)
            gpu.launch(prof);
    for (int64_t l = 0; l < config_.decoderLayers; ++l)
        for (const KernelProfile &prof : decoderLayer_)
            gpu.launch(prof);
}

Seq2SeqResult
runSeq2SeqInference(const GpuSpec &spec, const Seq2SeqConfig &config,
                    const Seq2SeqRun &run)
{
    Seq2SeqScheduler scheduler(spec, config, run);
    Gpu gpu(spec);
    scheduler.run(gpu);
    Seq2SeqResult result;
    result.seconds = gpu.totalSeconds();
    result.dramBytes = gpu.totalDramBytes();
    result.softmaxSeconds = gpu.secondsIn(KernelCategory::Softmax) +
                            gpu.secondsIn(KernelCategory::SoftmaxLs) +
                            gpu.secondsIn(KernelCategory::SoftmaxIr) +
                            gpu.secondsIn(KernelCategory::SoftmaxGs);
    result.sdaMatmulSeconds = gpu.secondsIn(KernelCategory::SdaMatMul);
    result.kernelLaunches = int64_t(gpu.timeline().size());
    return result;
}

} // namespace softrec
