/**
 * @file
 * Library baseline configurations.
 */

#include "model/library_profiles.hpp"

#include "common/logging.hpp"

namespace softrec {

const char *
libraryShortName(Library library)
{
    switch (library) {
      case Library::HuggingFace: return "HG";
      case Library::FasterTransformer: return "FT";
      case Library::TensorRT: return "TRT";
      case Library::DeepSpeed: return "DS";
      case Library::Ours: return "Ours";
    }
    return "?";
}

std::vector<Library>
allLibraries()
{
    return {Library::HuggingFace, Library::FasterTransformer,
            Library::TensorRT, Library::DeepSpeed, Library::Ours};
}

bool
librarySupports(Library library, const ModelConfig &model)
{
    if (!model.sparse())
        return true;
    // Only DeepSpeed (Triton block-sparse), HuggingFace (gather-based
    // fallback) and our baseline run sparse attention models.
    return library == Library::DeepSpeed ||
           library == Library::HuggingFace || library == Library::Ours;
}

FusionPolicy
libraryFusionPolicy(Library library, const ModelConfig &model)
{
    FusionPolicy policy;
    switch (library) {
      case Library::HuggingFace:
        // Eager mode: every elementwise op is its own kernel, the
        // softmax is the generic PyTorch kernel, and sparse attention
        // is a gather/scatter implementation.
        policy.biasFused = false;
        policy.scaleMaskFused = false;
        policy.geluFused = false;
        policy.extraReshapes = 2;
        if (model.sparse()) {
            // Gather/scatter sparse attention: both the softmax and
            // the "GEMM" run as generic indexed kernels.
            policy.softmaxQuality = 0.50;
            policy.sparseMatmulQuality = 0.35;
        } else {
            policy.softmaxQuality = 0.85;
        }
        break;
      case Library::FasterTransformer:
        // Fused elementwise; a fully fused MHA kernel covers short
        // sequences (L <= 384), and the fallback softmax is slightly
        // behind TensorRT at long sequence lengths.
        policy.softmaxQuality = 0.96;
        policy.extraReshapes = 1;
        policy.fusedMhaShortSeq = true;
        break;
      case Library::TensorRT:
        break; // reference dense behaviour
      case Library::DeepSpeed:
        if (model.sparse()) {
            // DeepSpeed's Triton kernels are the best sparse GEMMs;
            // our custom kernel is within ~2% of them (Section 4).
            policy.sparseMatmulQuality = 1.08;
        } else {
            policy.softmaxQuality = 0.90;
        }
        break;
      case Library::Ours:
        break; // CUTLASS GEMM + TensorRT softmax (Section 4)
    }
    return policy;
}

InferenceResult
runLibraryInference(const GpuSpec &spec, const ModelConfig &model,
                    RunConfig run, Library library)
{
    SOFTREC_ASSERT(librarySupports(library, model),
                   "%s does not support %s",
                   libraryShortName(library), model.name.c_str());
    run.strategy = Strategy::Baseline;
    run.fusion = libraryFusionPolicy(library, model);
    return runInference(spec, model, run);
}

} // namespace softrec
