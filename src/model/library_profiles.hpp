/**
 * @file
 * Baseline GPU libraries as fusion/kernel-quality configurations —
 * the comparison set of the paper's Fig. 7 (HuggingFace,
 * FasterTransformer, TensorRT, DeepSpeed, and the paper's own
 * baseline).
 *
 * Each library is modeled as the same model schedule with different
 * conventional fusions applied and different softmax / sparse-GEMM
 * kernel quality, reflecting how the paper characterizes them:
 * TensorRT has the best dense softmax, DeepSpeed the best block-sparse
 * kernels, HuggingFace eager mode fuses almost nothing, and the
 * paper's baseline matches the best library within a few percent.
 */

#ifndef SOFTREC_MODEL_LIBRARY_PROFILES_HPP
#define SOFTREC_MODEL_LIBRARY_PROFILES_HPP

#include "model/engine.hpp"

namespace softrec {

/** The compared implementations of Fig. 7. */
enum class Library {
    HuggingFace,       //!< eager PyTorch, no kernel fusion
    FasterTransformer, //!< fused elementwise, own softmax
    TensorRT,          //!< best dense library
    DeepSpeed,         //!< best block-sparse library
    Ours,              //!< the paper's baseline implementation
};

/** Display name ("HG", "FT", "TRT", "DS", "Ours"). */
const char *libraryShortName(Library library);

/** All libraries in Fig. 7 order. */
std::vector<Library> allLibraries();

/**
 * Whether the library can execute the model at long sequence lengths
 * (TensorRT and FasterTransformer have no block-sparse attention
 * path).
 */
bool librarySupports(Library library, const ModelConfig &model);

/** The fusion policy that models a library's kernel behaviour. */
FusionPolicy libraryFusionPolicy(Library library,
                                 const ModelConfig &model);

/**
 * Run baseline (no recomposition) inference the way a library would.
 */
InferenceResult runLibraryInference(const GpuSpec &spec,
                                    const ModelConfig &model,
                                    RunConfig run, Library library);

} // namespace softrec

#endif // SOFTREC_MODEL_LIBRARY_PROFILES_HPP
