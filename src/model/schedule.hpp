/**
 * @file
 * Full-model kernel scheduler: expands a transformer configuration
 * into the complete launch sequence of one inference forward pass
 * (embedding, then per layer: QKV projections, SDA block, output
 * projection, residual/LayerNorm, FeedForward), under a softmax
 * strategy and a kernel-fusion policy.
 */

#ifndef SOFTREC_MODEL_SCHEDULE_HPP
#define SOFTREC_MODEL_SCHEDULE_HPP

#include <optional>
#include <vector>

#include "core/recomposition.hpp"
#include "model/model_config.hpp"
#include "sim/gpu.hpp"

namespace softrec {

/**
 * Which conventional fusions the executing library applies. The
 * defaults model an optimized library (TensorRT / DeepSpeed grade);
 * Fig. 7's weaker baselines relax them.
 */
struct FusionPolicy
{
    bool biasFused = true;      //!< bias in the GEMM epilogues
    bool scaleMaskFused = true; //!< scale/mask in the QK^T epilogue
    bool geluFused = true;      //!< GeLU in the FF1 epilogue
    int extraReshapes = 0;      //!< additional layout shuffles per layer
    /** Multiplier on the softmax kernel's serialization factor. */
    double softmaxQuality = 1.0;
    /** Multiplier on the block-sparse GEMM efficiency. */
    double sparseMatmulQuality = 1.0;
    /**
     * Use the online-normalizer softmax kernel (related work [21])
     * instead of the three-pass baseline kernel.
     */
    bool onlineSoftmax = false;
    /**
     * Replace the whole SDA block with a single fused-MHA kernel when
     * the sequence is short enough for it (FasterTransformer path;
     * dense attention + baseline strategy only).
     */
    bool fusedMhaShortSeq = false;
};

/** One inference invocation's parameters. */
struct RunConfig
{
    int64_t seqLen = 4096;  //!< sequence length L
    int64_t batch = 1;      //!< batch size
    Strategy strategy = Strategy::Baseline;
    int64_t subVector = 64; //!< sub-vector width T
    FusionPolicy fusion;    //!< library fusion behaviour
};

/**
 * Expands (model, run) into kernel launch sequences for a GPU and
 * executes them on a simulated device.
 */
class TransformerScheduler
{
  public:
    /** Plan the schedule; builds the sparse layout if needed. */
    TransformerScheduler(const GpuSpec &spec, ModelConfig model,
                         RunConfig run);

    /** The model being scheduled. */
    const ModelConfig &model() const { return model_; }
    /** The run parameters. */
    const RunConfig &runConfig() const { return run_; }
    /** The sparse attention layout (nullptr for dense models). */
    const BsrLayout *layout() const
    {
        return layout_ ? &*layout_ : nullptr;
    }
    /** The planned SDA block of one layer. */
    const SdaSchedule &sdaSchedule() const { return sda_; }

    /** Kernels launched once before the layer stack. */
    const std::vector<KernelProfile> &prologue() const
    {
        return prologue_;
    }
    /** Kernels of one transformer layer, in order. */
    const std::vector<KernelProfile> &layerKernels() const
    {
        return layer_;
    }
    /**
     * Kernels of an alternating local-attention layer (GPT-Neo real
     * configuration); empty when the model has no local layers.
     */
    const std::vector<KernelProfile> &localLayerKernels() const
    {
        return layerLocal_;
    }
    /** True if layer index l (0-based) runs local window attention. */
    bool layerIsLocal(int64_t l) const
    {
        return !layerLocal_.empty() && (l % 2 == 1);
    }

    /** Full launch sequence of one forward pass. */
    std::vector<KernelProfile> fullSequence() const;

    /** Execute the full sequence on a simulated GPU. */
    void run(Gpu &gpu) const;

  private:
    void build(const GpuSpec &spec);
    void buildLayer(const GpuSpec &spec,
                    const std::vector<KernelProfile> &sda_kernels,
                    std::vector<KernelProfile> &layer);

    ModelConfig model_;
    RunConfig run_;
    std::optional<BsrLayout> layout_;
    std::optional<BsrLayout> localLayout_;
    SdaSchedule sda_;
    std::vector<KernelProfile> prologue_;
    std::vector<KernelProfile> layer_;
    std::vector<KernelProfile> layerLocal_;
};

} // namespace softrec

#endif // SOFTREC_MODEL_SCHEDULE_HPP
