/**
 * @file
 * Inference engine implementation.
 */

#include "model/engine.hpp"

namespace softrec {

double
InferenceResult::secondsIn(KernelCategory category) const
{
    auto it = categories.find(category);
    return it == categories.end() ? 0.0 : it->second.seconds;
}

uint64_t
InferenceResult::dramBytesIn(KernelCategory category) const
{
    auto it = categories.find(category);
    return it == categories.end() ? 0 : it->second.dramBytes();
}

double
InferenceResult::softmaxSeconds() const
{
    return secondsIn(KernelCategory::Softmax) +
           secondsIn(KernelCategory::SoftmaxLs) +
           secondsIn(KernelCategory::SoftmaxIr) +
           secondsIn(KernelCategory::SoftmaxGs);
}

uint64_t
InferenceResult::softmaxDramBytes() const
{
    return dramBytesIn(KernelCategory::Softmax) +
           dramBytesIn(KernelCategory::SoftmaxLs) +
           dramBytesIn(KernelCategory::SoftmaxIr) +
           dramBytesIn(KernelCategory::SoftmaxGs);
}

double
InferenceResult::sdaSeconds() const
{
    return secondsIn(KernelCategory::SdaMatMul) + softmaxSeconds();
}

InferenceResult
runInference(const GpuSpec &spec, const ModelConfig &model,
             const RunConfig &run)
{
    TransformerScheduler scheduler(spec, model, run);
    Gpu gpu(spec);
    scheduler.run(gpu);

    InferenceResult result;
    result.modelName = model.name;
    result.gpuName = spec.name;
    result.strategy = run.strategy;
    result.seqLen = run.seqLen;
    result.batch = run.batch;
    result.seconds = gpu.totalSeconds();
    result.dramReadBytes = gpu.totalDramReadBytes();
    result.dramWriteBytes = gpu.totalDramWriteBytes();
    result.offChipEnergyJoules =
        double(result.dramBytes()) * spec.dramEnergyPerByte;
    result.kernelLaunches = int64_t(gpu.timeline().size());
    result.categories = gpu.byCategory();
    result.attentionSweeps = scheduler.sdaSchedule().attentionSweeps;
    return result;
}

} // namespace softrec
