/**
 * @file
 * Inference engine implementation.
 */

#include "model/engine.hpp"

#include "common/profiler.hpp"

namespace softrec {

double
InferenceResult::secondsIn(KernelCategory category) const
{
    auto it = categories.find(category);
    return it == categories.end() ? 0.0 : it->second.seconds;
}

uint64_t
InferenceResult::dramBytesIn(KernelCategory category) const
{
    auto it = categories.find(category);
    return it == categories.end() ? 0 : it->second.dramBytes();
}

double
InferenceResult::softmaxSeconds() const
{
    return secondsIn(KernelCategory::Softmax) +
           secondsIn(KernelCategory::SoftmaxLs) +
           secondsIn(KernelCategory::SoftmaxIr) +
           secondsIn(KernelCategory::SoftmaxGs);
}

uint64_t
InferenceResult::softmaxDramBytes() const
{
    return dramBytesIn(KernelCategory::Softmax) +
           dramBytesIn(KernelCategory::SoftmaxLs) +
           dramBytesIn(KernelCategory::SoftmaxIr) +
           dramBytesIn(KernelCategory::SoftmaxGs);
}

double
InferenceResult::sdaSeconds() const
{
    return secondsIn(KernelCategory::SdaMatMul) + softmaxSeconds();
}

InferenceResult
runInference(const GpuSpec &spec, const ModelConfig &model,
             const RunConfig &run)
{
    TransformerScheduler scheduler(spec, model, run);
    Gpu gpu(spec);
    scheduler.run(gpu);

    InferenceResult result;
    result.modelName = model.name;
    result.gpuName = spec.name;
    result.strategy = run.strategy;
    result.seqLen = run.seqLen;
    result.batch = run.batch;
    result.seconds = gpu.totalSeconds();
    result.dramReadBytes = gpu.totalDramReadBytes();
    result.dramWriteBytes = gpu.totalDramWriteBytes();
    result.offChipEnergyJoules =
        double(result.dramBytes()) * spec.dramEnergyPerByte;
    result.kernelLaunches = int64_t(gpu.timeline().size());
    result.categories = gpu.byCategory();
    result.attentionSweeps = scheduler.sdaSchedule().attentionSweeps;
    return result;
}

std::vector<InferenceResult>
runInferenceSweep(const ExecContext &ctx, const GpuSpec &spec,
                  const ModelConfig &model,
                  const std::vector<RunConfig> &runs)
{
    // Time-only summary scope (the sweep is analytical — no tensor
    // traffic to count).
    prof::Scope scope(ctx, "sweep.inference");
    // Each run simulates independently and writes only its own slot;
    // ordering of the result vector never depends on thread count.
    std::vector<InferenceResult> results(runs.size());
    parallelFor(ctx, 0, int64_t(runs.size()), 1,
                [&](int64_t run0, int64_t run1) {
        for (int64_t r = run0; r < run1; ++r)
            results[size_t(r)] = runInference(spec, model,
                                              runs[size_t(r)]);
    });
    return results;
}

} // namespace softrec
