/**
 * @file
 * Encoder-decoder (sequence-to-sequence) transformer support.
 *
 * The paper's background (Section 2.1) describes the vanilla
 * transformer: an encoder stack feeding a decoder stack whose layers
 * carry both causal self-attention and cross-attention over the
 * encoder's hidden states. Softmax recomposition applies to every one
 * of those attention blocks — the cross-attention case exercises the
 * rectangular (L_tgt x L_src) planner path.
 */

#ifndef SOFTREC_MODEL_SEQ2SEQ_HPP
#define SOFTREC_MODEL_SEQ2SEQ_HPP

#include <string>
#include <vector>

#include "core/recomposition.hpp"
#include "sim/gpu.hpp"

namespace softrec {

/** Architecture of an encoder-decoder transformer. */
struct Seq2SeqConfig
{
    std::string name = "Transformer";
    int64_t encoderLayers = 6;
    int64_t decoderLayers = 6;
    int64_t dModel = 512;
    int64_t numHeads = 8;
    int64_t dFf = 2048;
    int64_t vocabSize = 37000;

    /** Per-head width. */
    int64_t dHead() const { return dModel / numHeads; }

    /** "Transformer (base)" of Vaswani et al. (2017). */
    static Seq2SeqConfig vanillaBase();
    /** "Transformer (big)" of Vaswani et al. (2017). */
    static Seq2SeqConfig vanillaBig();
};

/** One seq2seq inference invocation. */
struct Seq2SeqRun
{
    int64_t srcLen = 4096;  //!< encoder sequence length
    int64_t tgtLen = 4096;  //!< decoder sequence length
    int64_t batch = 1;
    Strategy strategy = Strategy::Baseline;
    int64_t subVector = 64;
};

/** Expanded kernel plan of one seq2seq forward pass. */
class Seq2SeqScheduler
{
  public:
    /** Plan the schedule. */
    Seq2SeqScheduler(const GpuSpec &spec, Seq2SeqConfig config,
                     Seq2SeqRun run);

    /** Kernels launched once (both embeddings). */
    const std::vector<KernelProfile> &prologue() const
    {
        return prologue_;
    }
    /** One encoder layer's kernels. */
    const std::vector<KernelProfile> &encoderLayer() const
    {
        return encoderLayer_;
    }
    /** One decoder layer's kernels (self + cross attention + FF). */
    const std::vector<KernelProfile> &decoderLayer() const
    {
        return decoderLayer_;
    }

    /** Execute everything on a simulated GPU. */
    void run(Gpu &gpu) const;

  private:
    void build(const GpuSpec &spec);

    Seq2SeqConfig config_;
    Seq2SeqRun run_;
    std::vector<KernelProfile> prologue_;
    std::vector<KernelProfile> encoderLayer_;
    std::vector<KernelProfile> decoderLayer_;
};

/** Seq2seq latency/traffic summary. */
struct Seq2SeqResult
{
    double seconds = 0.0;
    uint64_t dramBytes = 0;
    double softmaxSeconds = 0.0;  //!< all softmax-category work
    double sdaMatmulSeconds = 0.0;
    int64_t kernelLaunches = 0;
};

/** Run one seq2seq forward pass on a GPU spec. */
Seq2SeqResult runSeq2SeqInference(const GpuSpec &spec,
                                  const Seq2SeqConfig &config,
                                  const Seq2SeqRun &run);

} // namespace softrec

#endif // SOFTREC_MODEL_SEQ2SEQ_HPP
