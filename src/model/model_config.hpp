/**
 * @file
 * Architecture hyper-parameters of the four evaluated transformer
 * models, matching the HuggingFace pre-trained configurations the
 * paper uses (Section 4): BERT-large, GPT-Neo-1.3B, BigBird-large and
 * Longformer-large.
 */

#ifndef SOFTREC_MODEL_MODEL_CONFIG_HPP
#define SOFTREC_MODEL_MODEL_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/patterns.hpp"

namespace softrec {

/** Which attention structure a model uses. */
enum class AttentionKind {
    Dense,      //!< full L x L attention (BERT, GPT-Neo)
    BigBird,    //!< window + global + random blocks
    Longformer, //!< sliding window + global tokens
};

/** Display name of an attention kind. */
const char *attentionKindName(AttentionKind kind);

/** Static architecture description of one transformer model. */
struct ModelConfig
{
    std::string name;       //!< e.g. "BERT-large"
    int64_t numLayers = 0;  //!< encoder/decoder blocks
    int64_t dModel = 0;     //!< hidden size D_m
    int64_t numHeads = 0;   //!< attention heads H_num
    int64_t dFf = 0;        //!< FeedForward inner size D_ff
    bool causalMask = false; //!< autoregressive masking (GPT-Neo)
    AttentionKind attention = AttentionKind::Dense;
    BigBirdParams bigBird;          //!< used when attention == BigBird
    LongformerParams longformer;    //!< used when attention == Longformer
    int64_t vocabSize = 50000;      //!< embedding table rows
    /**
     * GPT-Neo's real configuration alternates dense ("global") and
     * sliding-window ("local") attention every other layer. 0 turns
     * the local layers off (the paper's treatment).
     */
    int64_t localAttentionWindow = 0;

    /** Per-head hidden size D_head = D_m / H_num. */
    int64_t dHead() const { return dModel / numHeads; }
    /** True for the block-sparse attention models. */
    bool sparse() const { return attention != AttentionKind::Dense; }
    /** True when every other layer uses local window attention. */
    bool hasLocalLayers() const { return localAttentionWindow > 0; }

    /**
     * Build this model's attention layout for a sequence length;
     * only valid for sparse models.
     */
    BsrLayout buildLayout(int64_t seq_len) const;

    /** BERT-large: 24 layers, D_m 1024, 16 heads, D_ff 4096. */
    static ModelConfig bertLarge();
    /** GPT-Neo-1.3B: 24 layers, D_m 2048, 16 heads, D_ff 8192, causal. */
    static ModelConfig gptNeo13B();
    /**
     * GPT-Neo-1.3B with its published alternating global/local
     * attention (window 256). The paper models GPT-Neo as dense;
     * this variant exists for the fidelity ablation.
     */
    static ModelConfig gptNeo13BLocal();
    /** BigBird-large: BERT-large dims with BigBird sparse attention. */
    static ModelConfig bigBirdLarge();
    /** Longformer-large: BERT-large dims with Longformer attention. */
    static ModelConfig longformerLarge();

    /** The paper's four evaluation models, in Fig. 2 order. */
    static std::vector<ModelConfig> allEvaluated();
};

} // namespace softrec

#endif // SOFTREC_MODEL_MODEL_CONFIG_HPP
