/**
 * @file
 * Functional encoder layer implementation.
 */

#include "model/functional_layer.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "core/attention_exec.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {

EncoderLayerWeights
EncoderLayerWeights::random(int64_t d_model, int64_t d_ff, Rng &rng)
{
    const double proj_std = 1.0 / std::sqrt(double(d_model));
    const double ff_std = 1.0 / std::sqrt(double(d_ff));
    EncoderLayerWeights w{
        Tensor<Half>(Shape({d_model, d_model})),
        Tensor<Half>(Shape({d_model, d_model})),
        Tensor<Half>(Shape({d_model, d_model})),
        Tensor<Half>(Shape({d_model, d_model})),
        Tensor<float>(Shape({d_model})),
        Tensor<float>(Shape({d_model})),
        Tensor<float>(Shape({d_model})),
        Tensor<float>(Shape({d_model})),
        Tensor<float>(Shape({d_model}), 1.0f),
        Tensor<float>(Shape({d_model})),
        Tensor<Half>(Shape({d_model, d_ff})),
        Tensor<Half>(Shape({d_ff, d_model})),
        Tensor<float>(Shape({d_ff})),
        Tensor<float>(Shape({d_model})),
        Tensor<float>(Shape({d_model}), 1.0f),
        Tensor<float>(Shape({d_model})),
    };
    fillNormal(w.wq, rng, 0.0, proj_std);
    fillNormal(w.wk, rng, 0.0, proj_std);
    fillNormal(w.wv, rng, 0.0, proj_std);
    fillNormal(w.wo, rng, 0.0, proj_std);
    fillNormal(w.w1, rng, 0.0, proj_std);
    fillNormal(w.w2, rng, 0.0, ff_std);
    for (int64_t i = 0; i < d_model; ++i) {
        w.bq.at(i) = float(rng.normal(0.0, 0.02));
        w.bk.at(i) = float(rng.normal(0.0, 0.02));
        w.bv.at(i) = float(rng.normal(0.0, 0.02));
        w.bo.at(i) = float(rng.normal(0.0, 0.02));
        w.b2.at(i) = float(rng.normal(0.0, 0.02));
    }
    for (int64_t i = 0; i < d_ff; ++i)
        w.b1.at(i) = float(rng.normal(0.0, 0.02));
    return w;
}

void
projectRowsInto(const ExecContext &ctx, const char *name,
                const Tensor<Half> &x, const Tensor<Half> &w,
                const Tensor<float> &bias, bool gelu,
                Tensor<Half> &out)
{
    GemmDesc desc;
    desc.name = name;
    desc.m = x.shape().dim(0);
    desc.k = x.shape().dim(1);
    desc.n = w.shape().dim(1);
    desc.epilogue.bias = true;
    desc.epilogue.gelu = gelu;
    desc.tiling.tileM = 16;
    desc.tiling.tileN = 16;
    desc.tiling.tileK = 16;
    GemmOperands ops;
    ops.a = &x;
    ops.b = &w;
    ops.bias = &bias;
    SOFTREC_ASSERT(out.shape().rank() == 2 &&
                   out.shape().dim(0) == desc.m &&
                   out.shape().dim(1) == desc.n,
                   "projectRowsInto %s: out must be [%lld, %lld], "
                   "got %s", name, (long long)desc.m,
                   (long long)desc.n, out.shape().toString().c_str());
    gemmRun(ctx, desc, ops, out);
}

Tensor<Half>
projectRows(const ExecContext &ctx, const char *name,
            const Tensor<Half> &x, const Tensor<Half> &w,
            const Tensor<float> &bias, bool gelu)
{
    Tensor<Half> out(Shape({x.shape().dim(0), w.shape().dim(1)}));
    projectRowsInto(ctx, name, x, w, bias, gelu, out);
    return out;
}

namespace {

/** Copy head columns [h*dh, (h+1)*dh) into an [L, dh] tensor. */
Tensor<Half>
sliceHead(const Tensor<Half> &x, int64_t head, int64_t d_head)
{
    const int64_t rows = x.shape().dim(0);
    Tensor<Half> out(Shape({rows, d_head}));
    for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < d_head; ++j)
            out.at(i, j) = x.at(i, head * d_head + j);
    return out;
}

} // namespace

Tensor<Half>
runEncoderLayer(const ExecContext &ctx,
                const FunctionalLayerConfig &config,
                const EncoderLayerWeights &weights,
                const Tensor<Half> &input, KvProjections *kv_capture)
{
    SOFTREC_ASSERT(input.shape().rank() == 2 &&
                   input.shape().dim(1) == config.dModel,
                   "input must be [L, dModel]");
    SOFTREC_ASSERT(config.dModel % config.numHeads == 0,
                   "heads must divide dModel");
    const int64_t rows = input.shape().dim(0);
    const int64_t dh = config.dHead();

    // Time-only summary scope around the whole layer.
    prof::Scope scope(ctx, "layer.encoder");

    // QKV projections.
    const Tensor<Half> q =
        projectRows(ctx, "fc.q", input, weights.wq, weights.bq);
    const Tensor<Half> k =
        projectRows(ctx, "fc.k", input, weights.wk, weights.bk);
    const Tensor<Half> v =
        projectRows(ctx, "fc.v", input, weights.wv, weights.bv);
    if (kv_capture != nullptr) {
        kv_capture->k = k;
        kv_capture->v = v;
    }

    // Multi-head attention under the configured strategy.
    SdaConfig sda;
    sda.seqLen = rows;
    sda.dHead = dh;
    sda.causalMask = config.causalMask;
    sda.layout = config.layout;
    sda.subVector = config.subVector;
    sda.attnTiling = config.attnTiling;
    sda.backend = config.attention;

    // Heads are independent problems writing disjoint column bands of
    // the concatenated output, so they parallelize at grain 1; the
    // kernels inside each head then run inline (nested regions
    // degrade to serial), keeping the math order head-local and the
    // result bit-identical for any thread count.
    Tensor<Half> attention(Shape({rows, config.dModel}));
    parallelFor(ctx, 0, config.numHeads, 1,
                [&](int64_t head0, int64_t head1) {
        for (int64_t head = head0; head < head1; ++head) {
            AttentionInputs head_inputs{sliceHead(q, head, dh),
                                        sliceHead(k, head, dh),
                                        sliceHead(v, head, dh)};
            const Tensor<Half> head_out =
                runAttention(ctx, sda, head_inputs, config.strategy);
            for (int64_t i = 0; i < rows; ++i)
                for (int64_t j = 0; j < dh; ++j)
                    attention.at(i, head * dh + j) = head_out.at(i, j);
        }
    });

    // Output projection, residual, LayerNorm.
    const Tensor<Half> projected =
        projectRows(ctx, "fc.out", attention, weights.wo, weights.bo);
    Tensor<Half> post_attn(input.shape());
    residualAddRun(ctx, input, projected, post_attn);
    Tensor<Half> hidden(input.shape());
    layerNormRun(ctx, post_attn, weights.gamma1, weights.beta1,
                 hidden);

    // FeedForward, residual, LayerNorm.
    const Tensor<Half> ff1 = projectRows(ctx, "ff.1", hidden,
                                         weights.w1, weights.b1,
                                         /*gelu=*/true);
    const Tensor<Half> ff2 =
        projectRows(ctx, "ff.2", ff1, weights.w2, weights.b2);
    Tensor<Half> post_ff(input.shape());
    residualAddRun(ctx, hidden, ff2, post_ff);
    Tensor<Half> out(input.shape());
    layerNormRun(ctx, post_ff, weights.gamma2, weights.beta2, out);
    return out;
}

} // namespace softrec
