/**
 * @file
 * Inference engine: run one forward pass of a transformer model on a
 * simulated GPU and aggregate the measurements the paper reports
 * (latency, category breakdown, off-chip traffic and access energy).
 */

#ifndef SOFTREC_MODEL_ENGINE_HPP
#define SOFTREC_MODEL_ENGINE_HPP

#include <map>
#include <string>
#include <vector>

#include "common/exec_context.hpp"
#include "model/schedule.hpp"

namespace softrec {

/** Aggregated measurements of one inference forward pass. */
struct InferenceResult
{
    std::string modelName;  //!< model that ran
    std::string gpuName;    //!< device it ran on
    Strategy strategy = Strategy::Baseline;
    int64_t seqLen = 0;
    int64_t batch = 0;

    double seconds = 0.0;           //!< end-to-end latency
    uint64_t dramReadBytes = 0;     //!< off-chip reads
    uint64_t dramWriteBytes = 0;    //!< off-chip writes
    double offChipEnergyJoules = 0; //!< traffic x J/byte
    int64_t kernelLaunches = 0;     //!< kernels executed

    /** Time and traffic grouped by kernel category. */
    std::map<KernelCategory, CategoryTotals> categories;

    /** Attention-matrix sweep count inside each SDA block. */
    int attentionSweeps = 0;

    /** Total off-chip traffic. */
    uint64_t dramBytes() const { return dramReadBytes + dramWriteBytes; }

    /** Seconds in a category (0 if absent). */
    double secondsIn(KernelCategory category) const;

    /** Off-chip bytes in a category (0 if absent). */
    uint64_t dramBytesIn(KernelCategory category) const;

    /** Seconds in all softmax work (baseline or decomposed). */
    double softmaxSeconds() const;

    /** Off-chip bytes of all softmax work. */
    uint64_t softmaxDramBytes() const;

    /** Seconds in the SDA block (attention GEMMs + softmax work). */
    double sdaSeconds() const;
};

/**
 * Run one inference forward pass of a model on a GPU spec and return
 * the aggregated measurements.
 */
InferenceResult runInference(const GpuSpec &spec,
                             const ModelConfig &model,
                             const RunConfig &run);

/**
 * Run many inference configurations (a sweep) under the context,
 * parallel across runs. Results are index-aligned with @p runs, and
 * each is identical to a serial runInference of the same entry.
 */
std::vector<InferenceResult>
runInferenceSweep(const ExecContext &ctx, const GpuSpec &spec,
                  const ModelConfig &model,
                  const std::vector<RunConfig> &runs);

} // namespace softrec

#endif // SOFTREC_MODEL_ENGINE_HPP
