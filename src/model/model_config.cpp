/**
 * @file
 * Model configuration factories.
 */

#include "model/model_config.hpp"

#include "common/logging.hpp"

namespace softrec {

const char *
attentionKindName(AttentionKind kind)
{
    switch (kind) {
      case AttentionKind::Dense: return "dense";
      case AttentionKind::BigBird: return "bigbird";
      case AttentionKind::Longformer: return "longformer";
    }
    return "?";
}

BsrLayout
ModelConfig::buildLayout(int64_t seq_len) const
{
    switch (attention) {
      case AttentionKind::BigBird:
        return bigBirdPattern(seq_len, bigBird);
      case AttentionKind::Longformer:
        return longformerPattern(seq_len, longformer);
      case AttentionKind::Dense:
        break;
    }
    fatal("%s is a dense-attention model; it has no sparse layout",
          name.c_str());
}

ModelConfig
ModelConfig::bertLarge()
{
    ModelConfig config;
    config.name = "BERT-large";
    config.numLayers = 24;
    config.dModel = 1024;
    config.numHeads = 16;
    config.dFf = 4096;
    config.vocabSize = 30522;
    return config;
}

ModelConfig
ModelConfig::gptNeo13B()
{
    ModelConfig config;
    config.name = "GPT-Neo-1.3B";
    config.numLayers = 24;
    config.dModel = 2048;
    config.numHeads = 16;
    config.dFf = 8192;
    config.causalMask = true;
    config.vocabSize = 50257;
    return config;
}

ModelConfig
ModelConfig::gptNeo13BLocal()
{
    ModelConfig config = gptNeo13B();
    config.name = "GPT-Neo-1.3B(local)";
    config.localAttentionWindow = 256;
    return config;
}

ModelConfig
ModelConfig::bigBirdLarge()
{
    ModelConfig config = bertLarge();
    config.name = "BigBird-large";
    config.attention = AttentionKind::BigBird;
    config.bigBird = BigBirdParams{};
    config.vocabSize = 50358;
    return config;
}

ModelConfig
ModelConfig::longformerLarge()
{
    ModelConfig config = bertLarge();
    config.name = "Longformer-large";
    config.attention = AttentionKind::Longformer;
    config.longformer = LongformerParams{};
    config.vocabSize = 50265;
    return config;
}

std::vector<ModelConfig>
ModelConfig::allEvaluated()
{
    return {bertLarge(), gptNeo13B(), bigBirdLarge(), longformerLarge()};
}

} // namespace softrec
