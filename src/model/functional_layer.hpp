/**
 * @file
 * Functional (CPU-executed) transformer encoder layer.
 *
 * Everything else in src/model plans kernels for the performance
 * model; this module actually *computes* one full encoder layer —
 * QKV projections, multi-head attention under any softmax strategy,
 * output projection, residual/LayerNorm, and the FeedForward block —
 * through the functional kernel implementations, with fp16 storage
 * throughout. It exists to demonstrate end to end that softmax
 * recomposition leaves a real transformer layer's numerics intact,
 * not just an isolated attention head's.
 */

#ifndef SOFTREC_MODEL_FUNCTIONAL_LAYER_HPP
#define SOFTREC_MODEL_FUNCTIONAL_LAYER_HPP

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "core/recomposition.hpp"
#include "fp16/half.hpp"
#include "sparse/bsr.hpp"
#include "tensor/tensor.hpp"

namespace softrec {

/** All parameters of one encoder layer. */
struct EncoderLayerWeights
{
    Tensor<Half> wq, wk, wv, wo;  //!< projections, [dModel, dModel]
    Tensor<float> bq, bk, bv, bo; //!< projection biases, [dModel]
    Tensor<float> gamma1, beta1;  //!< post-attention LayerNorm
    Tensor<Half> w1, w2;          //!< FF weights, [dm, dFf], [dFf, dm]
    Tensor<float> b1, b2;         //!< FF biases
    Tensor<float> gamma2, beta2;  //!< post-FF LayerNorm

    /** Random initialization (transformer-standard scales). */
    static EncoderLayerWeights random(int64_t d_model, int64_t d_ff,
                                      Rng &rng);
};

/** Shape and execution options of the functional layer. */
struct FunctionalLayerConfig
{
    int64_t dModel = 64;
    int64_t numHeads = 4;
    int64_t dFf = 128;
    bool causalMask = false;
    /**
     * Block-sparse attention structure shared by all heads; nullptr
     * runs dense attention. The block size must equal subVector.
     */
    const BsrLayout *layout = nullptr;
    Strategy strategy = Strategy::Baseline;
    /**
     * Attention backend: Recomposed runs `strategy`; Streaming runs
     * the single-pass online-softmax kernel (dense only). The serving
     * stack (DecoderStack::random) seeds this from SOFTREC_ATTENTION.
     */
    AttentionBackend attention = AttentionBackend::Recomposed;
    int64_t subVector = 16;
    GemmTiling attnTiling{16, 16, 16, 256, 128};

    int64_t dHead() const { return dModel / numHeads; }
};

/**
 * Optional capture of a layer's K/V projections, filled by
 * runEncoderLayer when passed. Serving prefill uses this to seed a
 * per-request KV cache without recomputing the projections.
 */
struct KvProjections
{
    Tensor<Half> k; //!< [L, dModel] after the fc.k projection
    Tensor<Half> v; //!< [L, dModel] after the fc.v projection
};

/**
 * Run one encoder layer: LayerNorm(x + MHA(x)), then
 * LayerNorm(h + FF(h)). Attention heads run in parallel under the
 * context; every kernel inside is chunk-deterministic, so the output
 * is bit-identical for any thread count.
 *
 * @param ctx execution context (serial when default-constructed)
 * @param input [L, dModel] fp16
 * @param kv_capture when non-null, receives copies of the layer's
 *        K/V projections (for KV-cached decode prefill)
 * @return [L, dModel] fp16
 */
Tensor<Half> runEncoderLayer(const ExecContext &ctx,
                             const FunctionalLayerConfig &config,
                             const EncoderLayerWeights &weights,
                             const Tensor<Half> &input,
                             KvProjections *kv_capture = nullptr);

/**
 * y = x W + b through the functional GEMM with the layer-standard
 * 16x16x16 tiling, fp16 storage. Shared by the encoder layer and the
 * KV-cached decode step so both produce bit-identical projections.
 *
 * @param x [rows, k] fp16
 * @param w [k, n] fp16
 * @param bias [n] fp32
 */
Tensor<Half> projectRows(const ExecContext &ctx, const char *name,
                         const Tensor<Half> &x, const Tensor<Half> &w,
                         const Tensor<float> &bias, bool gelu = false);

/**
 * projectRows into a caller-owned output tensor (pre-sized to
 * [rows, n]), so callers on the per-token decode path can reuse a
 * step-lifetime buffer instead of allocating a fresh tensor per
 * projection. Bit-identical to projectRows.
 */
void projectRowsInto(const ExecContext &ctx, const char *name,
                     const Tensor<Half> &x, const Tensor<Half> &w,
                     const Tensor<float> &bias, bool gelu,
                     Tensor<Half> &out);

} // namespace softrec

#endif // SOFTREC_MODEL_FUNCTIONAL_LAYER_HPP
