/**
 * @file
 * Generation (prefill + decode) implementation.
 */

#include "model/decode.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/softmax_kernels.hpp"

namespace softrec {

std::vector<KernelProfile>
buildDecodeStep(const GpuSpec &spec, const ModelConfig &model,
                int64_t batch, int64_t context)
{
    SOFTREC_ASSERT(context > 0 && batch > 0, "empty decode step");
    const int64_t dm = model.dModel;
    std::vector<KernelProfile> step;

    auto add_gemv = [&](const std::string &name, KernelCategory cat,
                        int64_t n, int64_t k) {
        // One token per sequence: a GEMV, not a GEMM. Real libraries
        // launch one thread block per slice of output rows so the
        // N x K weight matrix streams from DRAM at full rate; tensor
        // cores are useless at M = 1.
        KernelProfile prof;
        prof.name = name;
        prof.category = cat;
        const uint64_t weight_bytes = uint64_t(n * k) * kFp16Bytes;
        prof.geom.numBlocks =
            std::max<int64_t>(1, int64_t(weight_bytes) / 4096);
        prof.geom.block.threads = 256;
        prof.geom.block.regsPerThread = 32;
        prof.dramReadBytes =
            weight_bytes + uint64_t(batch * k) * kFp16Bytes +
            uint64_t(n) * kFp32Bytes; // weights + x + bias
        prof.dramWriteBytes = uint64_t(batch * n) * kFp16Bytes;
        prof.cudaFlops = 2.0 * double(batch) * double(n) * double(k);
        step.push_back(prof);
    };

    add_gemv("dec.fc.q", KernelCategory::Fc, dm, dm);
    add_gemv("dec.fc.k", KernelCategory::Fc, dm, dm);
    add_gemv("dec.fc.v", KernelCategory::Fc, dm, dm);

    // Attention over the KV cache: per head, a 1 x C score row, its
    // softmax, and the 1 x C times C x dHead reduction. All three are
    // bound by streaming the K and V cache (C x D_m fp16 each).
    {
        // Flash-decoding style: each head's 1 x C reduction is split
        // across context chunks so the cache streams at full rate.
        KernelProfile attn;
        attn.name = "dec.attn";
        attn.category = KernelCategory::SdaMatMul;
        attn.geom.numBlocks =
            batch * model.numHeads * ceilDiv(context, 256);
        attn.geom.block.threads = 256;
        attn.geom.block.smemBytes =
            uint64_t(context) * kFp32Bytes; // score row staging
        attn.geom.block.regsPerThread = 64;
        const uint64_t cache_bytes =
            uint64_t(2 * batch * context * dm) * kFp16Bytes;
        attn.dramReadBytes =
            cache_bytes + uint64_t(batch * dm) * kFp16Bytes;
        attn.dramWriteBytes = uint64_t(batch * dm) * kFp16Bytes;
        attn.cudaFlops = 4.0 * double(batch) * double(context) *
                         double(dm);
        attn.sfuOps =
            double(batch * model.numHeads) * double(context);
        step.push_back(attn);
    }

    add_gemv("dec.fc.out", KernelCategory::Fc, dm, dm);
    step.push_back(
        residualAddProfile(spec, "dec.mha.residual", batch * dm));
    step.push_back(layerNormProfile(spec, "dec.mha.ln", batch, dm));
    add_gemv("dec.ff.1", KernelCategory::FeedForward, model.dFf, dm);
    add_gemv("dec.ff.2", KernelCategory::FeedForward, dm, model.dFf);
    step.push_back(
        residualAddProfile(spec, "dec.ff.residual", batch * dm));
    step.push_back(layerNormProfile(spec, "dec.ff.ln", batch, dm));
    return step;
}

DecodeResult
runGeneration(const GpuSpec &spec, const ModelConfig &model,
              const DecodeRun &run)
{
    SOFTREC_ASSERT(model.causalMask,
                   "generation needs a causal (decoder-only) model");
    SOFTREC_ASSERT(run.promptLen > 0 && run.generateTokens >= 0,
                   "empty generation request");

    DecodeResult result;

    // Prefill: the full-context forward pass the paper evaluates.
    RunConfig prefill;
    prefill.seqLen = run.promptLen;
    prefill.batch = run.batch;
    prefill.strategy = run.prefillStrategy;
    const InferenceResult prefill_result =
        runInference(spec, model, prefill);
    result.prefillSeconds = prefill_result.seconds;
    result.prefillBytes = prefill_result.dramBytes();
    result.kernelLaunches = prefill_result.kernelLaunches;

    // Decode: one token at a time over the growing cache.
    Gpu gpu(spec);
    for (int64_t t = 0; t < run.generateTokens; ++t) {
        const int64_t context = run.promptLen + t + 1;
        const auto step =
            buildDecodeStep(spec, model, run.batch, context);
        for (int64_t layer = 0; layer < model.numLayers; ++layer)
            for (const KernelProfile &prof : step)
                gpu.launch(prof);
    }
    result.decodeSeconds = gpu.totalSeconds();
    result.decodeBytes = gpu.totalDramBytes();
    result.kernelLaunches += int64_t(gpu.timeline().size());
    return result;
}

} // namespace softrec
