/**
 * @file
 * Generation (prefill + decode) implementation.
 */

#include "model/decode.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "kernels/decode_attention.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/softmax_kernels.hpp"
#include "kernels/streaming_attention.hpp"

namespace softrec {

std::vector<KernelProfile>
buildDecodeStep(const GpuSpec &spec, const ModelConfig &model,
                int64_t batch, int64_t context)
{
    SOFTREC_ASSERT(context > 0 && batch > 0, "empty decode step");
    const int64_t dm = model.dModel;
    std::vector<KernelProfile> step;

    auto add_gemv = [&](const std::string &name, KernelCategory cat,
                        int64_t n, int64_t k) {
        // One token per sequence: a GEMV, not a GEMM. Real libraries
        // launch one thread block per slice of output rows so the
        // N x K weight matrix streams from DRAM at full rate; tensor
        // cores are useless at M = 1.
        KernelProfile prof;
        prof.name = name;
        prof.category = cat;
        const uint64_t weight_bytes = uint64_t(n * k) * kFp16Bytes;
        prof.geom.numBlocks =
            std::max<int64_t>(1, int64_t(weight_bytes) / 4096);
        prof.geom.block.threads = 256;
        prof.geom.block.regsPerThread = 32;
        prof.dramReadBytes =
            weight_bytes + uint64_t(batch * k) * kFp16Bytes +
            uint64_t(n) * kFp32Bytes; // weights + x + bias
        prof.dramWriteBytes = uint64_t(batch * n) * kFp16Bytes;
        prof.cudaFlops = 2.0 * double(batch) * double(n) * double(k);
        step.push_back(prof);
    };

    add_gemv("dec.fc.q", KernelCategory::Fc, dm, dm);
    add_gemv("dec.fc.k", KernelCategory::Fc, dm, dm);
    add_gemv("dec.fc.v", KernelCategory::Fc, dm, dm);

    // Attention over the KV cache: per head, a 1 x C score row, its
    // softmax, and the 1 x C times C x dHead reduction. All three are
    // bound by streaming the K and V cache (C x D_m fp16 each).
    {
        // Flash-decoding style: each head's 1 x C reduction is split
        // across context chunks so the cache streams at full rate.
        KernelProfile attn;
        attn.name = "dec.attn";
        attn.category = KernelCategory::SdaMatMul;
        attn.geom.numBlocks =
            batch * model.numHeads * ceilDiv(context, 256);
        attn.geom.block.threads = 256;
        attn.geom.block.smemBytes =
            uint64_t(context) * kFp32Bytes; // score row staging
        attn.geom.block.regsPerThread = 64;
        const uint64_t cache_bytes =
            uint64_t(2 * batch * context * dm) * kFp16Bytes;
        attn.dramReadBytes =
            cache_bytes + uint64_t(batch * dm) * kFp16Bytes;
        attn.dramWriteBytes = uint64_t(batch * dm) * kFp16Bytes;
        attn.cudaFlops = 4.0 * double(batch) * double(context) *
                         double(dm);
        attn.sfuOps =
            double(batch * model.numHeads) * double(context);
        step.push_back(attn);
    }

    add_gemv("dec.fc.out", KernelCategory::Fc, dm, dm);
    step.push_back(
        residualAddProfile(spec, "dec.mha.residual", batch * dm));
    step.push_back(layerNormProfile(spec, "dec.mha.ln", batch, dm));
    add_gemv("dec.ff.1", KernelCategory::FeedForward, model.dFf, dm);
    add_gemv("dec.ff.2", KernelCategory::FeedForward, dm, model.dFf);
    step.push_back(
        residualAddProfile(spec, "dec.ff.residual", batch * dm));
    step.push_back(layerNormProfile(spec, "dec.ff.ln", batch, dm));
    return step;
}

DecodeResult
runGeneration(const GpuSpec &spec, const ModelConfig &model,
              const DecodeRun &run)
{
    SOFTREC_ASSERT(model.causalMask,
                   "generation needs a causal (decoder-only) model");
    SOFTREC_ASSERT(run.promptLen > 0 && run.generateTokens >= 0,
                   "empty generation request");

    DecodeResult result;

    // Prefill: the full-context forward pass the paper evaluates.
    RunConfig prefill;
    prefill.seqLen = run.promptLen;
    prefill.batch = run.batch;
    prefill.strategy = run.prefillStrategy;
    const InferenceResult prefill_result =
        runInference(spec, model, prefill);
    result.prefillSeconds = prefill_result.seconds;
    result.prefillBytes = prefill_result.dramBytes();
    result.kernelLaunches = prefill_result.kernelLaunches;

    // Decode: one token at a time over the growing cache.
    Gpu gpu(spec);
    for (int64_t t = 0; t < run.generateTokens; ++t) {
        const int64_t context = run.promptLen + t + 1;
        const auto step =
            buildDecodeStep(spec, model, run.batch, context);
        for (int64_t layer = 0; layer < model.numLayers; ++layer)
            for (const KernelProfile &prof : step)
                gpu.launch(prof);
    }
    result.decodeSeconds = gpu.totalSeconds();
    result.decodeBytes = gpu.totalDramBytes();
    result.kernelLaunches += int64_t(gpu.timeline().size());
    return result;
}

namespace {

/** The functional KV path supports exactly this attention shape. */
void
checkFunctionalStack(const DecoderStack &stack)
{
    SOFTREC_ASSERT(stack.config.causalMask,
                   "KV-cached decode needs a causal stack");
    SOFTREC_ASSERT(stack.config.layout == nullptr &&
                   stack.config.strategy == Strategy::Baseline,
                   "the decode bit-identity contract covers dense "
                   "Baseline-strategy attention only (recomposed or "
                   "streaming backend)");
    SOFTREC_ASSERT(!stack.layers.empty(),
                   "decoder stack has no layers");
    SOFTREC_ASSERT(stack.config.dModel % stack.config.numHeads == 0,
                   "heads must divide dModel");
}

} // namespace

DecoderStack
DecoderStack::random(int64_t d_model, int64_t num_heads, int64_t d_ff,
                     int64_t num_layers, Rng &rng)
{
    SOFTREC_ASSERT(num_layers > 0, "stack needs at least one layer");
    DecoderStack stack;
    stack.config.dModel = d_model;
    stack.config.numHeads = num_heads;
    stack.config.dFf = d_ff;
    stack.config.causalMask = true;
    stack.config.attention = attentionBackendFromEnv();
    stack.layers.reserve(size_t(num_layers));
    for (int64_t l = 0; l < num_layers; ++l)
        stack.layers.push_back(
            EncoderLayerWeights::random(d_model, d_ff, rng));
    return stack;
}

Tensor<Half>
runPrefill(const ExecContext &ctx, const DecoderStack &stack,
           const Tensor<Half> &prompt, KvCache &cache)
{
    checkFunctionalStack(stack);
    SOFTREC_ASSERT(prompt.shape().rank() == 2 &&
                   prompt.shape().dim(0) >= 1 &&
                   prompt.shape().dim(1) == stack.config.dModel,
                   "prompt must be [tokens, dModel]");
    SOFTREC_ASSERT(cache.numLayers() == int64_t(stack.layers.size()) &&
                   cache.context() == 0,
                   "prefill needs an empty cache sized for the stack");
    const int64_t tokens = prompt.shape().dim(0);

    prof::Scope scope(ctx, "decode.prefill");
    Tensor<Half> x = prompt;
    for (size_t l = 0; l < stack.layers.size(); ++l) {
        KvProjections kv;
        x = runEncoderLayer(ctx, stack.config, stack.layers[l], x,
                            &kv);
        for (int64_t i = 0; i < tokens; ++i)
            cache.appendRow(int64_t(l), kv.k.rowPtr(i),
                            kv.v.rowPtr(i));
    }
    return x;
}

void
PrefillState::prepare(const DecoderStack &stack,
                      int64_t prompt_tokens)
{
    SOFTREC_ASSERT(prompt_tokens >= 1,
                   "prefill needs at least one prompt row");
    const size_t num_layers = stack.layers.size();
    const Shape staged({prompt_tokens, stack.config.dModel});
    promptTokens = prompt_tokens;
    rowsDone = 0;
    k.resize(num_layers);
    v.resize(num_layers);
    kBlock.resize(num_layers);
    vBlock.resize(num_layers);
    for (size_t l = 0; l < num_layers; ++l) {
        k[l].resize(staged);
        v[l].resize(staged);
        kBlock[l] = reinterpret_cast<const std::byte *>(k[l].data());
        vBlock[l] = reinterpret_cast<const std::byte *>(v[l].data());
    }
}

void
runPrefill(const ExecContext &ctx, const DecoderStack &stack,
           const Tensor<Half> &prompt, int64_t rows, KvCache &cache,
           PrefillState &state, DecodeStepWorkspace &ws,
           Tensor<Half> &outputs)
{
    checkFunctionalStack(stack);
    const int64_t dm = stack.config.dModel;
    const int64_t heads = stack.config.numHeads;
    const int64_t dh = stack.config.dHead();
    SOFTREC_ASSERT(prompt.shape().rank() == 2 &&
                       prompt.shape().dim(0) == state.promptTokens &&
                       prompt.shape().dim(1) == dm,
                   "prompt must be [promptTokens, dModel] and match "
                   "the prepared state");
    SOFTREC_ASSERT(rows >= 1 &&
                       state.rowsDone + rows <= state.promptTokens,
                   "chunk of %lld rows does not fit: %lld of %lld "
                   "prompt rows done",
                   (long long)rows, (long long)state.rowsDone,
                   (long long)state.promptTokens);
    SOFTREC_ASSERT(cache.numLayers() == int64_t(stack.layers.size()) &&
                       cache.context() == state.rowsDone,
                   "cache context (%lld) must equal the rows already "
                   "prefilled (%lld)",
                   (long long)cache.context(),
                   (long long)state.rowsDone);

    prof::Scope scope(ctx, "decode.prefill");
    DecodeAttendDesc attend;
    attend.dHead = dh;
    attend.scale = 1.0 / std::sqrt(double(dh));
    const bool streaming =
        stack.config.attention == AttentionBackend::Streaming;
    const int64_t c0 = state.rowsDone;

    ws.prepare(stack, rows);
    std::copy(prompt.rowPtr(c0), prompt.rowPtr(c0) + rows * dm,
              ws.x.data());
    Tensor<Half> &x = ws.x;
    for (size_t l = 0; l < stack.layers.size(); ++l) {
        const EncoderLayerWeights &w = stack.layers[l];

        projectRowsInto(ctx, "fc.q", x, w.wq, w.bq, false, ws.q);
        projectRowsInto(ctx, "fc.k", x, w.wk, w.bk, false, ws.k);
        projectRowsInto(ctx, "fc.v", x, w.wv, w.bv, false, ws.v);
        // Stage the exact fp16 rows for this chunk's attention reads
        // and append the same rows to the cache, row-ascending — the
        // order the one-shot prefill appends in, so a quantized
        // cache makes identical per-block decisions.
        std::copy(ws.k.data(), ws.k.data() + rows * dm,
                  state.k[l].rowPtr(c0));
        std::copy(ws.v.data(), ws.v.data() + rows * dm,
                  state.v[l].rowPtr(c0));
        for (int64_t r = 0; r < rows; ++r)
            cache.appendRow(int64_t(l), ws.k.rowPtr(r),
                            ws.v.rowPtr(r));

        // (row, head) attention problems are independent, exactly as
        // in runDecodeStepInto; each row attends causally over the
        // exact staged prefix [0, c0 + r].
        parallelFor(ctx, 0, rows * heads, 1,
                    [&](int64_t i0, int64_t i1) {
            DecodeAttendWorkspace &attend_ws =
                ws.attend[size_t(currentThreadSlot())];
            for (int64_t i = i0; i < i1; ++i) {
                const int64_t r = i / heads;
                const int64_t h = i % heads;
                DecodeAttendDesc head = attend;
                head.headOffset = h * dh;
                const int64_t context = c0 + r + 1;
                const KvRowsView k_view = contiguousKvView(
                    &state.kBlock[l], state.promptTokens, dm,
                    context);
                const KvRowsView v_view = contiguousKvView(
                    &state.vBlock[l], state.promptTokens, dm,
                    context);
                if (streaming) {
                    decodeAttendStreamRun(ctx, head,
                                          ws.q.rowPtr(r) + h * dh,
                                          k_view, v_view,
                                          ws.attention.rowPtr(r) +
                                              h * dh,
                                          &attend_ws);
                } else {
                    decodeAttendRun(ctx, head,
                                    ws.q.rowPtr(r) + h * dh, k_view,
                                    v_view,
                                    ws.attention.rowPtr(r) + h * dh,
                                    &attend_ws);
                }
            }
        });

        projectRowsInto(ctx, "fc.out", ws.attention, w.wo, w.bo,
                        false, ws.projected);
        residualAddRun(ctx, x, ws.projected, ws.postAttn);
        layerNormRun(ctx, ws.postAttn, w.gamma1, w.beta1, ws.hidden);

        projectRowsInto(ctx, "ff.1", ws.hidden, w.w1, w.b1,
                        /*gelu=*/true, ws.ff1);
        projectRowsInto(ctx, "ff.2", ws.ff1, w.w2, w.b2, false,
                        ws.ff2);
        residualAddRun(ctx, ws.hidden, ws.ff2, ws.postAttn);
        layerNormRun(ctx, ws.postAttn, w.gamma2, w.beta2, ws.out);
        std::swap(ws.x, ws.out);
    }
    state.rowsDone += rows;
    std::swap(outputs, ws.x);
}

void
DecodeStepWorkspace::prepare(const DecoderStack &stack, int64_t rows)
{
    const int64_t dm = stack.config.dModel;
    const Shape rd({rows, dm});
    x.resize(rd);
    q.resize(rd);
    k.resize(rd);
    v.resize(rd);
    attention.resize(rd);
    projected.resize(rd);
    postAttn.resize(rd);
    hidden.resize(rd);
    ff1.resize(Shape({rows, stack.config.dFf}));
    ff2.resize(rd);
    out.resize(rd);
    if (int64_t(attend.size()) < int64_t(maxThreadSlots()))
        attend.resize(size_t(maxThreadSlots()));
}

void
runDecodeStepInto(const ExecContext &ctx, const DecoderStack &stack,
                  const Tensor<Half> &inputs,
                  const std::vector<KvCache *> &caches,
                  DecodeStepWorkspace &ws, Tensor<Half> &outputs)
{
    checkFunctionalStack(stack);
    const int64_t rows = inputs.shape().dim(0);
    const int64_t dm = stack.config.dModel;
    const int64_t heads = stack.config.numHeads;
    const int64_t dh = stack.config.dHead();
    SOFTREC_ASSERT(inputs.shape().rank() == 2 &&
                   inputs.shape().dim(1) == dm && rows >= 1,
                   "decode inputs must be [R, dModel]");
    SOFTREC_ASSERT(int64_t(caches.size()) == rows,
                   "one KvCache per batch row (%lld != %lld)",
                   (long long)caches.size(), (long long)rows);
    for (const KvCache *cache : caches)
        SOFTREC_ASSERT(cache != nullptr &&
                       cache->numLayers() ==
                           int64_t(stack.layers.size()) &&
                       cache->context() >= 1,
                       "decode needs prefilled caches");

    prof::Scope scope(ctx, "decode.step");
    DecodeAttendDesc attend;
    attend.dHead = dh;
    attend.scale = 1.0 / std::sqrt(double(dh));
    const bool streaming =
        stack.config.attention == AttentionBackend::Streaming;

    ws.prepare(stack, rows);
    std::copy(inputs.data(), inputs.data() + inputs.numel(),
              ws.x.data());
    Tensor<Half> &x = ws.x;
    for (size_t l = 0; l < stack.layers.size(); ++l) {
        const EncoderLayerWeights &w = stack.layers[l];

        // Batched projections: the packed GEMM computes each output
        // row independently, so these match single-request runs bit
        // for bit (and the prefill's projections of the same rows).
        projectRowsInto(ctx, "fc.q", x, w.wq, w.bq, false, ws.q);
        projectRowsInto(ctx, "fc.k", x, w.wk, w.bk, false, ws.k);
        projectRowsInto(ctx, "fc.v", x, w.wv, w.bv, false, ws.v);
        for (int64_t r = 0; r < rows; ++r)
            caches[size_t(r)]->appendRow(int64_t(l), ws.k.rowPtr(r),
                                         ws.v.rowPtr(r));

        // (request, head) attention rows are independent problems
        // writing disjoint output slices; grain 1 mirrors the
        // encoder layer's per-head parallelism. Staging buffers come
        // from the per-worker-slot pool: chunks on the same worker
        // run sequentially, so the slot's workspace is never shared,
        // and its contents are dead between calls.
        parallelFor(ctx, 0, rows * heads, 1,
                    [&](int64_t i0, int64_t i1) {
            DecodeAttendWorkspace &attend_ws =
                ws.attend[size_t(currentThreadSlot())];
            for (int64_t i = i0; i < i1; ++i) {
                const int64_t r = i / heads;
                const int64_t h = i % heads;
                DecodeAttendDesc head = attend;
                head.headOffset = h * dh;
                const KvCache &cache = *caches[size_t(r)];
                // Backend dispatch: the streaming variant is
                // bit-identical to streaming-prefill rows, so the
                // KV-equivalence contract holds per backend.
                if (streaming) {
                    decodeAttendStreamRun(ctx, head,
                                          ws.q.rowPtr(r) + h * dh,
                                          cache.kView(int64_t(l)),
                                          cache.vView(int64_t(l)),
                                          ws.attention.rowPtr(r) +
                                              h * dh,
                                          &attend_ws);
                } else {
                    decodeAttendRun(ctx, head,
                                    ws.q.rowPtr(r) + h * dh,
                                    cache.kView(int64_t(l)),
                                    cache.vView(int64_t(l)),
                                    ws.attention.rowPtr(r) + h * dh,
                                    &attend_ws);
                }
            }
        });

        projectRowsInto(ctx, "fc.out", ws.attention, w.wo, w.bo,
                        false, ws.projected);
        residualAddRun(ctx, x, ws.projected, ws.postAttn);
        layerNormRun(ctx, ws.postAttn, w.gamma1, w.beta1, ws.hidden);

        projectRowsInto(ctx, "ff.1", ws.hidden, w.w1, w.b1,
                        /*gelu=*/true, ws.ff1);
        projectRowsInto(ctx, "ff.2", ws.ff1, w.w2, w.b2, false,
                        ws.ff2);
        residualAddRun(ctx, ws.hidden, ws.ff2, ws.postAttn);
        layerNormRun(ctx, ws.postAttn, w.gamma2, w.beta2, ws.out);
        std::swap(ws.x, ws.out);
    }
    // Hand the result storage to the caller and keep its old buffer
    // as next step's scratch — no copy, no allocation.
    std::swap(outputs, ws.x);
}

} // namespace softrec
