/**
 * @file
 * Transformer scheduler implementation.
 */

#include "model/schedule.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/fused_mha.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/softmax_kernels.hpp"
#include "sparse/patterns.hpp"

namespace softrec {

TransformerScheduler::TransformerScheduler(const GpuSpec &spec,
                                           ModelConfig model,
                                           RunConfig run)
    : model_(std::move(model)), run_(run)
{
    SOFTREC_ASSERT(run_.seqLen > 0 && run_.batch > 0,
                   "empty run configuration");
    if (model_.sparse())
        layout_.emplace(model_.buildLayout(run_.seqLen));
    build(spec);
}

void
TransformerScheduler::build(const GpuSpec &spec)
{
    const int64_t L = run_.seqLen;
    const int64_t B = run_.batch;
    const int64_t dm = model_.dModel;
    const int64_t rows = B * L;
    const FusionPolicy &fusion = run_.fusion;

    // --- Prologue: embedding lookup + embedding LayerNorm ---
    prologue_.push_back(
        embeddingProfile(spec, "embed.lookup", rows, dm));
    prologue_.push_back(layerNormProfile(spec, "embed.ln", rows, dm));

    // --- SDA block of one layer ---
    SdaConfig sda_config;
    sda_config.batch = B;
    sda_config.heads = model_.numHeads;
    sda_config.seqLen = L;
    sda_config.dHead = model_.dHead();
    sda_config.causalMask = model_.causalMask && fusion.scaleMaskFused;
    sda_config.layout = layout_ ? &*layout_ : nullptr;
    if (layout_) {
        sda_config.subVector = layout_->blockSize();
    } else {
        // Arbitrary sequence lengths: pick the widest T that divides
        // L so decomposition/fusion stays legal.
        sda_config.subVector = chooseSubVector(L, run_.subVector);
        if (sda_config.subVector != run_.subVector) {
            warn("sub-vector width adjusted from %lld to %lld to "
                 "divide L = %lld",
                 (long long)run_.subVector,
                 (long long)sda_config.subVector, (long long)L);
        }
    }
    sda_ = buildSdaSchedule(spec, sda_config, run_.strategy);

    // FasterTransformer-style fully fused MHA: one kernel for the
    // whole SDA block, but only when K/V fit in shared memory and
    // only on the dense baseline path.
    if (fusion.fusedMhaShortSeq && !model_.sparse() &&
        run_.strategy == Strategy::Baseline) {
        FusedMhaDesc mha;
        mha.batch = B * model_.numHeads;
        mha.seqLen = L;
        mha.dHead = model_.dHead();
        mha.scale = sda_config.scale();
        mha.causalMask = model_.causalMask;
        if (fusedMhaSupported(spec, mha)) {
            sda_.kernels = {fusedMhaProfile(spec, mha)};
            sda_.attentionSweeps = 0; // never leaves the SM
            sda_.intermediateBytes = 0;
        }
    }

    // Online-normalizer softmax replaces the three-pass baseline
    // kernel where one is present.
    if (fusion.onlineSoftmax) {
        for (KernelProfile &prof : sda_.kernels) {
            if (prof.category == KernelCategory::Softmax &&
                !model_.sparse()) {
                SoftmaxShape desc;
                desc.name = "sda.softmax";
                desc.batch = B * model_.numHeads;
                desc.rows = L;
                desc.cols = L;
                prof = onlineRowSoftmaxProfile(spec, desc);
            }
        }
    }

    // Apply the library's softmax/sparse-GEMM quality to the SDA
    // kernels (Fig. 7 baselines differ only in these).
    for (KernelProfile &prof : sda_.kernels) {
        if (prof.category == KernelCategory::Softmax) {
            prof.serializationFactor =
                std::min(1.0, prof.serializationFactor *
                                  fusion.softmaxQuality);
        }
        if (prof.category == KernelCategory::SdaMatMul &&
            model_.sparse()) {
            prof.gemmEfficiency =
                std::min(1.0, prof.gemmEfficiency *
                                  fusion.sparseMatmulQuality);
        }
    }

    buildLayer(spec, sda_.kernels, layer_);

    // GPT-Neo's real configuration: every odd layer replaces dense
    // attention with a causal sliding window. Modeled with the
    // block-sparse substrate (window baked into the layout).
    if (model_.hasLocalLayers() && !model_.sparse()) {
        const int64_t block = 64;
        localLayout_.emplace(causalWindowPattern(
            L, block, ceilDiv(model_.localAttentionWindow, block)));
        SdaConfig local = sda_config;
        local.layout = &*localLayout_;
        local.subVector = block;
        local.causalMask = false; // the layout encodes the window
        SdaSchedule local_sda =
            buildSdaSchedule(spec, local, run_.strategy);
        for (KernelProfile &prof : local_sda.kernels) {
            if (prof.category == KernelCategory::Softmax) {
                prof.serializationFactor =
                    std::min(1.0, prof.serializationFactor *
                                      fusion.softmaxQuality);
            }
        }
        buildLayer(spec, local_sda.kernels, layerLocal_);
    }
}

void
TransformerScheduler::buildLayer(
    const GpuSpec &spec, const std::vector<KernelProfile> &sda_kernels_in,
    std::vector<KernelProfile> &layer)
{
    const int64_t L = run_.seqLen;
    const int64_t B = run_.batch;
    const int64_t dm = model_.dModel;
    const int64_t rows = B * L;
    const FusionPolicy &fusion = run_.fusion;

    auto add_gemm = [&](const std::string &name, KernelCategory cat,
                        int64_t m, int64_t n, int64_t k, bool bias,
                        bool gelu) {
        GemmDesc desc;
        desc.name = name;
        desc.category = cat;
        desc.m = m;
        desc.n = n;
        desc.k = k;
        desc.shapeClass = GemmShapeClass::LargeFc;
        desc.epilogue.bias = bias && fusion.biasFused;
        desc.epilogue.gelu = gelu && fusion.geluFused;
        layer.push_back(gemmProfile(spec, desc));
        if (bias && !fusion.biasFused) {
            layer.push_back(biasActProfile(
                spec, name + ".bias", m, n,
                gelu && !fusion.geluFused));
        } else if (gelu && !fusion.geluFused) {
            layer.push_back(
                biasActProfile(spec, name + ".gelu", m, n, true));
        }
    };

    // QKV projections.
    add_gemm("fc.q", KernelCategory::Fc, rows, dm, dm, true, false);
    add_gemm("fc.k", KernelCategory::Fc, rows, dm, dm, true, false);
    add_gemm("fc.v", KernelCategory::Fc, rows, dm, dm, true, false);

    // Head split/merge layout shuffles around the SDA block.
    layer.push_back(reshapeProfile(spec, "mha.split", 3 * rows * dm));

    // Unfused libraries launch a standalone scale/mask pass over the
    // attention matrix between QK^T and the softmax (dense SDA only:
    // block-sparse kernels carry their masks structurally).
    std::vector<KernelProfile> sda_kernels = sda_kernels_in;
    const bool dense_sda = &sda_kernels_in == &sda_.kernels &&
                           !model_.sparse();
    if (!fusion.scaleMaskFused && dense_sda) {
        // Strip the fused epilogue work from QK^T and insert the
        // standalone pass right after it.
        std::vector<KernelProfile> with_mask;
        for (const KernelProfile &prof : sda_kernels) {
            with_mask.push_back(prof);
            if (prof.name == "sda.qk") {
                with_mask.push_back(scaleMaskProfile(
                    spec, "sda.scale_mask", B * model_.numHeads, L,
                    L));
            }
        }
        sda_kernels = std::move(with_mask);
    }
    for (const KernelProfile &prof : sda_kernels)
        layer.push_back(prof);

    layer.push_back(reshapeProfile(spec, "mha.merge", rows * dm));
    for (int i = 0; i < fusion.extraReshapes; ++i) {
        layer.push_back(reshapeProfile(
            spec, strprintf("mha.extra_reshape%d", i), rows * dm));
    }

    // Output projection + residual + LayerNorm.
    add_gemm("fc.out", KernelCategory::Fc, rows, dm, dm, true, false);
    layer.push_back(
        residualAddProfile(spec, "mha.residual", rows * dm));
    layer.push_back(layerNormProfile(spec, "mha.ln", rows, dm));

    // FeedForward block.
    add_gemm("ff.1", KernelCategory::FeedForward, rows, model_.dFf, dm,
             true, true);
    add_gemm("ff.2", KernelCategory::FeedForward, rows, dm, model_.dFf,
             true, false);
    layer.push_back(
        residualAddProfile(spec, "ff.residual", rows * dm));
    layer.push_back(layerNormProfile(spec, "ff.ln", rows, dm));
}

std::vector<KernelProfile>
TransformerScheduler::fullSequence() const
{
    std::vector<KernelProfile> sequence = prologue_;
    for (int64_t l = 0; l < model_.numLayers; ++l) {
        const auto &layer = layerIsLocal(l) ? layerLocal_ : layer_;
        sequence.insert(sequence.end(), layer.begin(), layer.end());
    }
    return sequence;
}

void
TransformerScheduler::run(Gpu &gpu) const
{
    for (const KernelProfile &prof : prologue_)
        gpu.launch(prof);
    for (int64_t l = 0; l < model_.numLayers; ++l) {
        for (const KernelProfile &prof :
             layerIsLocal(l) ? layerLocal_ : layer_)
            gpu.launch(prof);
    }
}

} // namespace softrec
