"""Serve-API boundary rule.

The async serve engine's guarantees — per-tenant budget accounting,
regime-gated admission, slab-bounded KV occupancy, tsan-clean
single-submitter decode — all hang on src/serve/ being the only owner
of the serving internals. A RequestQueue, KvSlab, or KvCache
constructed anywhere else is a second admission/occupancy authority
the engine cannot see: its tokens never hit the pressure sample, its
requests bypass the admission regimes, and its slab competes with the
engine's for memory the budget arithmetic assumes it owns.
"""

import re

from registry import register

SERVE_DIR = "src/serve/"

# Construction/ownership forms: a named declaration of one of the
# serving internals (value, brace- or paren-initialized, or assigned)
# and the factory spellings. Reference and pointer *uses* — taking a
# `const KvCache &` parameter, holding a `KvCache *` the engine handed
# out — deliberately stay silent: observing the internals is fine,
# owning them is not.
CONSTRUCT_RE = re.compile(
    r"\b(?:RequestQueue|KvSlab|KvCache)\s+[A-Za-z_]\w*\s*[;({=]"
    r"|\bstd::make_(?:unique|shared)\s*<\s*"
    r"(?:RequestQueue|KvSlab|KvCache)\b"
    r"|\bnew\s+(?:RequestQueue|KvSlab|KvCache)\b")


@register(
    "serve-api", "error",
    "serving internal (RequestQueue/KvSlab/KvCache) owned outside "
    "src/serve/",
    "constructing a RequestQueue, KvSlab, or KvCache outside "
    "src/serve/ creates serving state the engine cannot account for: "
    "its KV tokens are invisible to the pressure sample that drives "
    "the admission regimes, and its requests bypass the per-tenant "
    "budget ledger. Go through ServeEngine::submit / ServeSession; "
    "reference/pointer uses of the types remain fine.")
def check_serve_api(src, ctx):
    if src.rel_path.startswith(SERVE_DIR):
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if CONSTRUCT_RE.search(code):
            yield lineno, None
