"""Profiler-scope rule.

The bench reports are only comparable across PRs if every functional
kernel entry point publishes its time under a stable, documented
name. A kernel that forgets its prof::Scope silently disappears from
the per-phase breakdown and the JSON report schema check cannot see
it.
"""

import re

from registry import register

KERNEL_DIRS = ("src/kernels/",)

RUN_FUNC_RE = re.compile(r"(?:^|::)[a-zA-Z_]\w*Run$")
PROF_SCOPE_RE = re.compile(
    r"\bprof::Scope\s+\w+\s*\(|\bscope\s*\.\s*emplace\s*\(")
# Accepted scope names: the descriptor's own name (desc.name, with or
# without .c_str()), or a dotted lowercase literal like
# "softmax.row" / "decode.attend".
SCOPE_NAME_RE = re.compile(
    r"\bprof::Scope\s+\w+\s*\(\s*[\w.]*\bctx\b[^,]*,\s*"
    r'(?:[\w.]*desc\.name(?:\.c_str\(\))?|"[a-z0-9_]+(?:\.[a-z0-9_]+)+")')
EMPLACE_NAME_RE = re.compile(
    r"\bscope\s*\.\s*emplace\s*\(\s*[\w.]*\bctx\b[^,]*,\s*"
    r'(?:[\w.]*desc\.name(?:\.c_str\(\))?|"[a-z0-9_]+(?:\.[a-z0-9_]+)+")')


@register(
    "profiler-scope", "error",
    "kernel *Run entry without a documented prof::Scope",
    "every functional kernel entry point (xxxRun) in src/kernels/ "
    "must open a prof::Scope on ctx as its first act, named either "
    "desc.name or a dotted lowercase literal (\"softmax.row\" "
    "style), so the phase breakdown in bench reports stays complete "
    "and names stay greppable. A missing scope makes the kernel "
    "invisible to the profiler; an ad-hoc name breaks report "
    "comparisons across PRs.")
def check_profiler_scope(src, ctx):
    if not (src.rel_path.startswith(KERNEL_DIRS) and
            src.rel_path.endswith(".cpp")):
        return
    for name, def_line, first, last in src.functions:
        if not RUN_FUNC_RE.search(name):
            continue
        scope_line = None
        for lineno in range(first, last + 1):
            raw = src.raw_lines[lineno - 1]
            if PROF_SCOPE_RE.search(raw):
                scope_line = lineno
                break
        if scope_line is None:
            yield def_line, (
                "%s opens no prof::Scope; the kernel is invisible in "
                "bench reports" % name)
            continue
        raw = src.raw_lines[scope_line - 1]
        if not (SCOPE_NAME_RE.search(raw) or
                EMPLACE_NAME_RE.search(raw)):
            yield scope_line, (
                "%s: prof::Scope name must be desc.name or a dotted "
                "lowercase literal (e.g. \"softmax.row\")" % name)
