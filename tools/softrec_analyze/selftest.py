"""Self-test: tokenizer unit checks, the fixture corpus, rule
coverage, SARIF round-trip validation, and baseline round-trip.

Each directory under fixtures/ is a miniature repo root (its own
src/ tree, plus README.md where a rule needs one) with an
expected.txt listing every finding as ``path:line:rule``. The corpus
is the proof that every registered rule fires on its positive case
and stays silent on the negative one.
"""

import copy
import json
import os
import tempfile

import baseline as baseline_mod
import engine
import registry
import sarif
from cpptok import strip_comments_and_strings

PKG_DIR = os.path.dirname(os.path.abspath(__file__))
FIXTURES_DIR = os.path.join(PKG_DIR, "fixtures")


def _tokenizer_checks(fails):
    cases = [
        # (label, input, must_be_blanked, must_survive)
        ("raw string body is blanked",
         'const char *k = R"(std::exp(1.0f))";\n',
         ["std::exp"], ["const char *k"]),
        ("delimited raw string spans lines",
         'const char *k = R"ab(\nstd::exp(2.0f);\n)ab";\n'
         "float y = f(x);\n",
         ["std::exp"], ["float y = f(x)"]),
        ("backslash-continued line comment",
         "// spliced comment \\\nstd::exp(1.0f);\nfloat z;\n",
         ["std::exp"], ["float z"]),
        ("ordinary string is blanked",
         'const char *k = "std::exp(";\nfloat w;\n',
         ["std::exp"], ["float w"]),
        ("block comment is blanked",
         "/* std::exp(1.0f) */ float v;\n",
         ["std::exp"], ["float v"]),
    ]
    for label, text, gone, kept in cases:
        stripped = strip_comments_and_strings(text)
        if stripped.count("\n") != text.count("\n"):
            fails.append("tokenizer: %s: line count changed" % label)
        for frag in gone:
            if frag in stripped:
                fails.append("tokenizer: %s: %r leaked into code"
                             % (label, frag))
        for frag in kept:
            if frag not in stripped:
                fails.append("tokenizer: %s: %r lost from code"
                             % (label, frag))


def _read_expected(path):
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                out.append(line)
    return sorted(out)


def _run_fixtures(fails):
    rules = registry.all_rules()
    all_findings = []
    covered = set()
    if not os.path.isdir(FIXTURES_DIR):
        fails.append("fixtures directory missing: %s" % FIXTURES_DIR)
        return all_findings
    for family in sorted(os.listdir(FIXTURES_DIR)):
        root = os.path.join(FIXTURES_DIR, family)
        if not os.path.isdir(root):
            continue
        expected_path = os.path.join(root, "expected.txt")
        if not os.path.exists(expected_path):
            fails.append("fixture %s: no expected.txt" % family)
            continue
        expected = _read_expected(expected_path)
        rel_paths = list(engine.iter_source_files(root))
        findings = engine.analyze(root, rel_paths, rules)
        got = sorted("%s:%d:%s" % (f.path, f.line, f.rule)
                     for f in findings)
        if got != expected:
            for line in sorted(set(expected) - set(got)):
                fails.append("fixture %s: expected but missing: %s"
                             % (family, line))
            for line in sorted(set(got) - set(expected)):
                fails.append("fixture %s: unexpected finding: %s"
                             % (family, line))
        all_findings.extend((root, f) for f in findings)
        covered.update(line.rsplit(":", 1)[1] for line in expected)
    missing = {r.name for r in rules} - covered
    for name in sorted(missing):
        fails.append("rule %s has no positive fixture" % name)
    return all_findings


def _sarif_checks(fails, findings):
    rules = registry.all_rules()
    doc = sarif.emit(findings, rules, "selftest")
    errs = sarif.validate(doc)
    for e in errs:
        fails.append("sarif: valid document rejected: %s" % e)
    # json round-trip must preserve validity
    doc2 = json.loads(json.dumps(doc))
    if sarif.validate(doc2):
        fails.append("sarif: document invalid after json round-trip")
    broken = [
        ("missing version", lambda d: d.pop("version")),
        ("runs not a list", lambda d: d.__setitem__("runs", {})),
        ("driver missing name",
         lambda d: d["runs"][0]["tool"]["driver"].pop("name")),
        ("bad result level",
         lambda d: d["runs"][0]["results"][0]
         .__setitem__("level", "fatal")),
        ("unknown ruleId",
         lambda d: d["runs"][0]["results"][0]
         .__setitem__("ruleId", "no-such-rule")),
        ("bad startLine",
         lambda d: d["runs"][0]["results"][0]["locations"][0]
         ["physicalLocation"]["region"]
         .__setitem__("startLine", 0)),
    ]
    for label, mutate in broken:
        d = copy.deepcopy(doc)
        if not d["runs"][0]["results"]:
            continue
        mutate(d)
        if not sarif.validate(d):
            fails.append("sarif: broken document (%s) passed "
                         "validation" % label)


def _baseline_checks(fails, fixture_findings):
    findings = [f for _, f in fixture_findings]
    if not findings:
        fails.append("baseline: no fixture findings to round-trip")
        return
    raw_cache = {}

    def fingerprint(root, f):
        key = (root, f.path)
        if key not in raw_cache:
            with open(os.path.join(root, f.path),
                      encoding="utf-8") as fh:
                raw_cache[key] = fh.read().splitlines()
        return f.fingerprint(raw_cache[key])

    fingerprints = [fingerprint(root, f)
                    for root, f in fixture_findings]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "baseline.txt")
        baseline_mod.write(path, fingerprints)
        entries = baseline_mod.load(path)
        fresh, suppressed, stale = baseline_mod.apply(
            findings, fingerprints, entries)
        if fresh or stale or suppressed != len(findings):
            fails.append("baseline: full round-trip did not "
                         "suppress everything (fresh=%d stale=%d)"
                         % (len(fresh), sum(stale.values())))
        # Drop one entry: exactly one finding must resurface.
        entries2 = baseline_mod.load(path)
        entries2[fingerprints[0]] -= 1
        fresh2, _, _ = baseline_mod.apply(
            findings, fingerprints, entries2)
        if len(fresh2) != 1:
            fails.append("baseline: dropping one entry resurfaced "
                         "%d findings (want 1)" % len(fresh2))
        # Add a bogus entry: it must be reported stale.
        entries3 = baseline_mod.load(path)
        entries3["bogus-rule|no/file.cpp|int x;"] += 1
        _, _, stale3 = baseline_mod.apply(
            findings, fingerprints, entries3)
        if sum(stale3.values()) != 1:
            fails.append("baseline: bogus entry not reported stale")


def run():
    fails = []
    _tokenizer_checks(fails)
    fixture_findings = _run_fixtures(fails)
    _sarif_checks(fails, [f for _, f in fixture_findings])
    _baseline_checks(fails, fixture_findings)
    if fails:
        for msg in fails:
            print("SELF-TEST FAIL: %s" % msg)
        return 1
    print("softrec_analyze self-test: OK (%d rules, %d fixture "
          "findings)" % (len(registry.all_rules()),
                         len(fixture_findings)))
    return 0
