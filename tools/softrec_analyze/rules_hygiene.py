"""Hygiene rules migrated from the original softrec_lint: include
discipline, guard naming, and C++ constructs the repo bans."""

import os
import re

from registry import register

CONST_CAST_RE = re.compile(r"\bconst_cast\s*<")
BARE_ASSERT_RE = re.compile(
    r"(?<![\w.])assert\s*\(|#\s*include\s*<(?:cassert|assert\.h)>")
RELATIVE_INCLUDE_RE = re.compile(r'#\s*include\s*"\.\.?/')
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
INCLUDE_DIRECTIVE_RE = re.compile(r"\s*#\s*include\b")


def expected_guard(rel_path):
    stem = rel_path[len("src/"):] if rel_path.startswith("src/") \
        else rel_path
    stem = re.sub(r"\.hpp$", "", stem)
    return "SOFTREC_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + \
        "_HPP"


def _includes(src):
    """(lineno, raw_line) of include directives that survive comment
    stripping (i.e. are real code). The stripper blanks the quoted
    path, so rules re-read the raw line."""
    out = []
    for lineno, code in enumerate(src.code_lines, start=1):
        if INCLUDE_DIRECTIVE_RE.match(code):
            out.append((lineno, src.raw_lines[lineno - 1]))
    return out


@register(
    "const-cast", "error",
    "const_cast is UB-adjacent",
    "the const_cast-through-this accessor idiom invites undefined "
    "behaviour on genuinely-const objects; share a template helper "
    "between the const and non-const overloads instead.")
def check_const_cast(src, ctx):
    for lineno, code in enumerate(src.code_lines, start=1):
        if CONST_CAST_RE.search(code):
            yield lineno, None


@register(
    "bare-assert", "error",
    "assert() vanishes under NDEBUG",
    "release builds compile assert() away; use SOFTREC_ASSERT (always "
    "on) or SOFTREC_CHECK (checked builds) so invariants keep firing "
    "in the configurations CI actually ships.")
def check_bare_assert(src, ctx):
    for lineno, code in enumerate(src.code_lines, start=1):
        if BARE_ASSERT_RE.search(code):
            yield lineno, None


@register(
    "include-guard", "error",
    "include guard must be SOFTREC_<DIR>_<FILE>_HPP",
    "predictable guard names prevent silent double-definition when "
    "files move; the guard must mirror the path under src/.")
def check_include_guard(src, ctx):
    if not src.rel_path.endswith(".hpp"):
        return
    guard = expected_guard(src.rel_path)
    joined = "\n".join(src.code_lines)
    if not re.search(r"#\s*ifndef\s+%s\b" % re.escape(guard), joined):
        yield 1, "expected include guard %s" % guard


@register(
    "own-header-first", "error",
    "a .cpp must include its own header first",
    "including the matching header before anything else proves every "
    "header is self-contained (compiles without hidden include-order "
    "dependencies).")
def check_own_header_first(src, ctx):
    if not src.rel_path.endswith(".cpp"):
        return
    own_header = re.sub(r"\.cpp$", ".hpp", src.rel_path)
    if not os.path.exists(os.path.join(src.root, own_header)):
        return
    want = own_header[len("src/"):] \
        if own_header.startswith("src/") else own_header
    first = None
    for lineno, raw in _includes(src):
        m = INCLUDE_RE.match(raw)
        if m:
            first = (lineno, m.group(1))
            break
    if first is None or first[1] != want:
        yield (first[0] if first else 1,
               'first include must be "%s"' % want)


@register(
    "relative-include", "error",
    'no "../" or "./" includes',
    "relative include paths break when files move and defeat the "
    "single -Isrc include root; write paths rooted at src/.")
def check_relative_include(src, ctx):
    for lineno, raw in _includes(src):
        if RELATIVE_INCLUDE_RE.search(raw):
            yield lineno, None


@register(
    "using-namespace", "error",
    "`using namespace` is banned in src/",
    "in headers it poisons every includer; anywhere it pulls std into "
    "overload resolution and invites silent behaviour changes.")
def check_using_namespace(src, ctx):
    for lineno, code in enumerate(src.code_lines, start=1):
        if USING_NAMESPACE_RE.search(code):
            yield lineno, None
