#include <cstdlib>

const char *
readKnobs()
{
  const char *good = std::getenv("SOFTREC_GOOD");
  const char *bad = std::getenv("SOFTREC_BAD");
  const char *dtype = std::getenv("SOFTREC_SERVE_KV_DTYPE");
  if (bad != nullptr)
    return bad;
  return dtype != nullptr ? dtype : good;
}
