#include <cstdlib>

const char *
readKnobs()
{
  const char *good = std::getenv("SOFTREC_GOOD");
  const char *bad = std::getenv("SOFTREC_BAD");
  return bad != nullptr ? bad : good;
}
