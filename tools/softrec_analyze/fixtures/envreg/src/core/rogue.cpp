#include <cstdlib>

const char *
rogueKnob()
{
  return std::getenv("SOFTREC_ROGUE");
}
