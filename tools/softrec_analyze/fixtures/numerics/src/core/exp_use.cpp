#include <cmath>

float
unsafeExp(float x)
{
  return std::exp(x);
}

float
guardedExp(float x, float m)
{
  // softrec-lint: allow(raw-exp)
  return std::exp(x - m);
}
