float
roundTrip(float f)
{
  Half h = static_cast<Half>(f);
  return h.toFloat();
}
