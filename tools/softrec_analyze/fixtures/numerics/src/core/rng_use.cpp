#include <cstdint>

uint32_t
badSeed()
{
  std::mt19937 gen;
  return gen();
}
