Half
narrow(float f)
{
  return static_cast<Half>(f);
}
