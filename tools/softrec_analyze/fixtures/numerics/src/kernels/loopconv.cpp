#include <cstdint>

float
sumLoop(const Half *h, int64_t n)
{
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    acc += h[i].toFloat();
  }
  return acc;
}

float
headOnly(const Half *h)
{
  return h->toFloat();
}
