#include <cstdint>

std::mt19937
makeEngine(uint32_t seed)
{
  return std::mt19937(seed);
}
