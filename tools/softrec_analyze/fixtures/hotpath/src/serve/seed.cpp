#include <algorithm>
#include <cstdint>

void
seedNextInput(const Tensor &out, int64_t last, int64_t dm, Tensor &in)
{
  for (int64_t j = 0; j < dm; ++j)
    in.at(0, j) = out.at(last, j);
  // Bulk form: the whole row in one checked move stays silent.
  std::copy(out.rowPtr(last), out.rowPtr(last) + dm, in.rowPtr(0));
}

void
scanSlots(Ctx &ctx, int64_t slots, Tensor &in)
{
  parallelFor(ctx, 0, slots, 1, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s)
      in.at(s, 0) = Half(0.0f);
  });
  // Outside any loop: a one-off checked access is fine.
  in.at(0, 0) = Half(1.0f);
  for (int64_t s = 0; s < slots; ++s) {
    // softrec-lint: allow(serve-elementwise-at)
    in.at(s, 0) = Half(2.0f);
  }
}
