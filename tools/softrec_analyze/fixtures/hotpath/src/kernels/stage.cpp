#include <cstdint>
#include <vector>

void
stageRows(int64_t rows, int64_t cols, float *out)
{
  std::vector<float> top(size_t(cols));
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<float> scratch(size_t(cols));
    scratch.push_back(0.0f);
    out[r] = scratch[0] + top[0];
  }
}
