#include <cstdint>
#include <vector>

void
stageRows(int64_t rows, int64_t cols, float *out)
{
  std::vector<float> top(size_t(cols));
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<float> scratch(size_t(cols));
    scratch.push_back(0.0f);
    out[r] = scratch[0] + top[0];
  }
}

void
streamStrips(Ctx &ctx, int64_t strips, int64_t dh, float *out)
{
  parallelFor(ctx, 0, strips, 1, [&](int64_t s0, int64_t s1) {
    std::vector<float> acc(size_t(dh), 0.0f);
    for (int64_t s = s0; s < s1; ++s)
      out[s] = acc[0];
  });
}
