#include <memory>

void
runDecodeStepInto(Ctx &ctx)
{
  auto ws = std::make_unique<Workspace>();
  // softrec-lint: allow(hot-path-alloc)
  auto once = std::make_unique<Workspace>();
  ctx.use(ws.get(), once.get());
}

void
setupOnce(Ctx &ctx)
{
  auto ws = std::make_unique<Workspace>();
  ctx.use(ws.get());
}
