#include <memory>

void
runDecodeStepInto(Ctx &ctx)
{
  auto kv = std::make_unique<KvCache>();
  // softrec-lint: allow(hot-path-alloc)
  auto once = std::make_unique<KvCache>();
  ctx.use(kv.get(), once.get());
}

void
setupOnce(Ctx &ctx)
{
  auto kv = std::make_unique<KvCache>();
  ctx.use(kv.get());
}
