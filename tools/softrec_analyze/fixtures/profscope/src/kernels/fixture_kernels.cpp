#include <cstdint>

void
goodLiteralRun(ExecContext &ctx, int64_t n)
{
  prof::Scope scope(ctx, "fixture.good", n);
  compute(n);
}

void
goodDescRun(ExecContext &ctx, const KernelDesc &desc)
{
  prof::Scope scope(ctx, desc.name.c_str(), desc.rows);
  compute(desc.rows);
}

void
missingScopeRun(ExecContext &ctx, int64_t n)
{
  compute(n);
}

void
badNameRun(ExecContext &ctx, int64_t n)
{
  prof::Scope scope(ctx, "BadName", n);
  compute(n);
}

void
notAKernelHelper(int64_t n)
{
  compute(n);
}

void
streamingStyleRun(ExecContext &ctx, int64_t n)
{
  prof::Scope scope(ctx, "decode.attend.stream", n);
  compute(n);
}
