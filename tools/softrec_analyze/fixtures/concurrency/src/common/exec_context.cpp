#include <thread>

void
poolSpawn()
{
  std::thread worker([] { run(); });
  worker.join();
}
