#include <cstdint>

void
racyAccumulate(ExecContext &ctx, const float *x, int64_t n,
               float *out)
{
  float sum = 0.0f;
  parallelFor(ctx, n, 8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      sum += x[i];
    }
  });
  *out = sum;
}

void
chunkLocal(ExecContext &ctx, float *y, int64_t n)
{
  parallelFor(ctx, n, 8, [&](int64_t begin, int64_t end) {
    float local = 0.0f;
    for (int64_t i = begin; i < end; ++i) {
      local += y[i];
    }
    y[begin] = local;
  });
}
