#include <mutex>

int
manualLock(std::mutex &mu, int *v)
{
  mu.lock();
  int out = *v;
  mu.unlock();
  return out;
}

int
guardedLock(std::mutex &mu, int *v)
{
  std::lock_guard<std::mutex> guard(mu);
  return *v;
}

#include <memory>

int
weakPromotion(std::weak_ptr<int> &weak)
{
  // weak_ptr::lock() is a promotion, not a mutex acquisition: the
  // result is consumed, which a void mutex lock() never is.
  if (std::shared_ptr<int> strong = weak.lock())
    return *strong;
  auto held = weak.lock();
  return held ? *held : 0;
}
