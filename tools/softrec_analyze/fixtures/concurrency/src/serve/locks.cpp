#include <mutex>

int
manualLock(std::mutex &mu, int *v)
{
  mu.lock();
  int out = *v;
  mu.unlock();
  return out;
}

int
guardedLock(std::mutex &mu, int *v)
{
  std::lock_guard<std::mutex> guard(mu);
  return *v;
}
