#include <thread>

void
spawnWorker()
{
  std::thread t([] { work(); });
  t.detach();
}
