#include <memory>

void
buildShadowServingPath()
{
  RequestQueue queue(8);
  auto slab = std::make_unique<KvSlab>(64, 64);
  auto cache = new KvCache(*slab);
  (void)queue;
  (void)cache;
}
