void
noteOccupancy(const KvCache &cache, KvSlab *slab)
{
  (void)cache;
  (void)slab;
}
