void
ownTheInternals()
{
  RequestQueue queue(4);
  KvSlab slab(16, 8);
  (void)queue;
  (void)slab;
}
