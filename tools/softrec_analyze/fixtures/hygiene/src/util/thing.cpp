#include "util/other.hpp"

#include "util/thing.hpp"

int
thing()
{
  return 1;
}
