#ifndef SOFTREC_UTIL_OKAY_HPP
#define SOFTREC_UTIL_OKAY_HPP

int
okay();

#endif
