#ifndef SOFTREC_UTIL_THING_HPP
#define SOFTREC_UTIL_THING_HPP

int
thing();

#endif
