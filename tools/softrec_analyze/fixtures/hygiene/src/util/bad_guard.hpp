#ifndef WRONG_NAME_HPP
#define WRONG_NAME_HPP

int
answer();

#endif
