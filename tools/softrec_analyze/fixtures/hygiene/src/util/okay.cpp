#include "util/okay.hpp"

int
okay()
{
  return 2;
}
