#include "../util/thing.hpp"

int
relThing()
{
  return thing();
}
