#include <cstdlib>

using namespace std;

int
clamp17(int *p)
{
  const int *cp = p;
  int *wp = const_cast<int *>(cp);
  assert(wp != nullptr);
  return *wp;
}
