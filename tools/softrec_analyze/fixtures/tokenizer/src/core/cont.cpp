// the next line is spliced into this comment \
std::exp(1.0f);

float
liveCode(float x)
{
  return std::exp(x);
}
