float
stableExp(float x, float m)
{
  // softrec-lint: allow(raw-exp)
  return std::exp(x - m);
}
