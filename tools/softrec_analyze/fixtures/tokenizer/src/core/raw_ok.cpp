const char *kDoc = R"(use std::exp(1.0f) with care)";
const char *kSql = R"ab(
std::exp(2.0f);
)ab";

int
docLen()
{
  return 3;
}
