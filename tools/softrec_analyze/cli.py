"""Command-line driver for the softrec static analyzer.

Usage (from the repo root):

    python3 tools/softrec_analyze                      # whole tree
    python3 tools/softrec_analyze src/kernels/gemm.cpp # specific files
    python3 tools/softrec_analyze --changed-only       # pre-commit
    python3 tools/softrec_analyze --list-rules
    python3 tools/softrec_analyze --self-test
    python3 tools/softrec_analyze --sarif out.sarif
    python3 tools/softrec_analyze --write-baseline

Exit codes: 0 clean, 1 unbaselined findings, 2 internal error.
"""

import argparse
import os
import subprocess
import sys

import baseline as baseline_mod
import engine
import registry
import sarif

TOOL_VERSION = "1.0"

DEFAULT_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def build_parser():
    p = argparse.ArgumentParser(
        prog="softrec_analyze",
        description="Static analyzer for the softrec C++ tree: "
                    "numerics, hygiene, concurrency, hot-path, "
                    "env-registry, and profiler-scope rules.")
    p.add_argument("paths", nargs="*",
                   help="files to analyze (relative to --root); "
                        "default: every .cpp/.hpp under src/")
    p.add_argument("--root", default=DEFAULT_ROOT,
                   help="repository root (default: auto-detected)")
    p.add_argument("--list-rules", action="store_true",
                   help="print every rule with severity and "
                        "rationale, then exit")
    p.add_argument("--self-test", action="store_true",
                   help="run the fixture corpus and internal "
                        "checks, then exit")
    p.add_argument("--sarif", metavar="FILE",
                   help="also write findings as SARIF 2.1.0 to FILE")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="baseline file (default: "
                        "tools/softrec_analyze/baseline.txt "
                        "under --root)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline; report every finding")
    p.add_argument("--write-baseline", action="store_true",
                   help="regenerate the baseline from current "
                        "findings and exit")
    p.add_argument("--changed-only", action="store_true",
                   help="analyze only files changed vs --diff-base "
                        "(plus untracked files); the pre-commit path")
    p.add_argument("--diff-base", default="HEAD",
                   help="git rev to diff against for --changed-only "
                        "(default: HEAD)")
    return p


def list_rules():
    for rule in registry.all_rules():
        print("%-18s %-8s %s" % (rule.name, rule.severity,
                                 rule.summary))
        print("%-18s %-8s rationale: %s" % ("", "", rule.rationale))
    return 0


def changed_files(root, diff_base):
    """Tracked files changed vs diff_base plus untracked files,
    filtered to analyzer inputs."""
    def git(*argv):
        res = subprocess.run(
            ("git", "-C", root) + argv,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            check=True)
        return res.stdout.decode("utf-8", "replace").splitlines()

    names = git("diff", "--name-only", diff_base, "--", "src")
    names += git("ls-files", "--others", "--exclude-standard",
                 "--", "src")
    out = []
    for rel in sorted(set(names)):
        if rel.endswith((".cpp", ".hpp")) and \
                os.path.exists(os.path.join(root, rel)):
            out.append(rel)
    return out


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return list_rules()
    if args.self_test:
        import selftest
        return selftest.run()

    root = os.path.abspath(args.root)
    if args.paths:
        rel_paths = [os.path.relpath(os.path.abspath(p), root)
                     .replace(os.sep, "/") if os.path.isabs(p) or
                     os.path.exists(p) else p for p in args.paths]
    elif args.changed_only:
        try:
            rel_paths = changed_files(root, args.diff_base)
        except (subprocess.CalledProcessError, OSError) as exc:
            print("softrec_analyze: git diff failed: %s" % exc,
                  file=sys.stderr)
            return 2
        if not rel_paths:
            print("softrec_analyze: no changed source files")
            return 0
    else:
        rel_paths = list(engine.iter_source_files(root))

    rules = registry.all_rules()
    findings = engine.analyze(root, rel_paths, rules)

    raw_cache = {}

    def fingerprint(f):
        if f.path not in raw_cache:
            try:
                with open(os.path.join(root, f.path),
                          encoding="utf-8") as fh:
                    raw_cache[f.path] = fh.read().splitlines()
            except OSError:
                raw_cache[f.path] = []
        return f.fingerprint(raw_cache[f.path])

    fingerprints = [fingerprint(f) for f in findings]

    baseline_path = args.baseline or os.path.join(
        root, "tools", "softrec_analyze", "baseline.txt")

    if args.write_baseline:
        baseline_mod.write(baseline_path, fingerprints)
        print("softrec_analyze: wrote %d baseline entr%s to %s"
              % (len(fingerprints),
                 "y" if len(fingerprints) == 1 else "ies",
                 os.path.relpath(baseline_path, root)))
        return 0

    entries = {} if args.no_baseline \
        else baseline_mod.load(baseline_path)
    fresh, suppressed, stale = baseline_mod.apply(
        findings, fingerprints, entries)

    for f in fresh:
        print(f)
    if args.sarif:
        doc = sarif.emit(fresh, rules, TOOL_VERSION)
        errs = sarif.validate(doc)
        if errs:
            for e in errs:
                print("softrec_analyze: internal SARIF error: %s"
                      % e, file=sys.stderr)
            return 2
        sarif.dump(doc, args.sarif)

    notes = []
    if suppressed:
        notes.append("%d baselined" % suppressed)
    if stale and not args.changed_only:
        # Partial runs legitimately leave entries unconsumed; only a
        # full-tree run can prove staleness, and even then it is a
        # cleanup prompt, not a failure.
        notes.append("%d stale baseline entr%s (re-run "
                     "--write-baseline to prune)"
                     % (sum(stale.values()),
                        "y" if sum(stale.values()) == 1 else "ies"))
    tail = " (%s)" % ", ".join(notes) if notes else ""
    if fresh:
        print("softrec_analyze: %d finding%s in %d file%s%s"
              % (len(fresh), "s" if len(fresh) != 1 else "",
                 len(rel_paths), "s" if len(rel_paths) != 1 else "",
                 tail), file=sys.stderr)
        return 1
    print("softrec_analyze: OK (%d file%s, %d rule%s)%s"
          % (len(rel_paths), "s" if len(rel_paths) != 1 else "",
             len(rules), "s" if len(rules) != 1 else "", tail))
    return 0
