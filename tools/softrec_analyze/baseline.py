"""Baseline (grandfathered findings) support.

A baseline entry is a finding fingerprint: `rule|path|text` where
text is the finding's source line with whitespace collapsed. Keying
on line text instead of line numbers keeps the baseline stable under
unrelated edits; matching is multiset-style, so two identical lines
in one file need two entries.
"""

import collections
import os

HEADER = """\
# softrec_analyze baseline — grandfathered findings.
#
# Each non-comment line is a finding fingerprint:
#     rule|path|whitespace-normalized source line
# Findings matching an entry are suppressed (multiset semantics: one
# entry absorbs one finding). Regenerate with:
#     python3 tools/softrec_analyze --write-baseline
# Entries must carry a justification comment; prefer fixing the code
# or an inline allow() over growing this file.
"""


def load(path):
    """Return Counter(fingerprint -> count); empty if missing."""
    entries = collections.Counter()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                entries[line] += 1
    except OSError:
        pass
    return entries


def apply(findings, fingerprints, entries):
    """Split findings into (unbaselined, suppressed_count, stale).

    `fingerprints` is a parallel list: fingerprints[i] corresponds to
    findings[i]. `stale` is the multiset of entries no finding
    consumed.
    """
    remaining = collections.Counter(entries)
    fresh = []
    suppressed = 0
    for finding, fp in zip(findings, fingerprints):
        if remaining[fp] > 0:
            remaining[fp] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    stale = +remaining
    return fresh, suppressed, stale


def write(path, fingerprints):
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(HEADER)
        fh.write("\n")
        for fp in sorted(fingerprints):
            fh.write(fp + "\n")
