"""Hot-path allocation rule.

The paper's recomposition argument (and the operation-fusion traffic
argument it rests on) only holds if the measured hot path is doing
arithmetic, not hitting the allocator: a malloc inside a kernel loop
or a decode step shows up as noise in the traffic counters and as a
lock in the allocator under threads. PR 5 made the KV path
slab-allocated; this rule keeps the whole steady-state decode path
that way as the serving engine grows.
"""

import re

from registry import register

KERNEL_DIRS = ("src/kernels/",)

# Functions on the per-token decode path: their whole bodies must be
# allocation-free (setup that genuinely runs once per step is
# annotated allow() at the site, with the reason). The prefill and
# finish helpers around
# ServeEngine::serveStep are deliberately NOT here: they are the
# documented amortized-allocation boundary (workspace construction,
# batch recomposition) that keeps these bodies clean.
HOT_FUNCTIONS = {
    "decodeAttendRun",          # src/kernels/decode_attention.cpp
    "runDecodeStepInto",        # src/model/decode.cpp
    "ServeEngine::serveStep",   # src/serve/serve_engine.cpp
}

# Allocation constructs: operator new, C allocators, smart-pointer
# factories, container growth, and sized container/tensor
# construction. (`std::vector<T> v;` and `Tensor<T> t;` are fine —
# default construction does not allocate.)
ALLOC_RE = re.compile(
    r"\bnew\b"
    r"|\b(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("
    r"|\bstd::make_(?:unique|shared)\b"
    r"|\.(?:resize|reserve|push_back|emplace_back|insert|emplace)"
    r"\s*\("
    r"|\b(?:std::vector|std::string|std::deque|std::map|"
    r"std::unordered_map|Tensor|BsrMatrix)\s*<[^;=()]*>\s+"
    r"[A-Za-z_]\w*\s*[({]"
    r"|=\s*(?:std::vector|Tensor)\s*<[^;>]*>\s*\(\s*[^)\s]")


def _hot_function_lines(src):
    lines = set()
    for name, _def_line, first, last in src.functions:
        if name in HOT_FUNCTIONS:
            lines.update(range(first, last + 1))
    return lines


@register(
    "hot-path-alloc", "error",
    "allocation on the kernel/decode hot path",
    "no new/malloc/container growth (a) inside loop bodies or "
    "parallelFor lambdas in src/kernels/, or (b) anywhere in the "
    "per-token decode functions (decodeAttendRun, runDecodeStepInto, "
    "ServeEngine::serveStep). Stage into pre-sized buffers, reuse a "
    "workspace (DecodeAttendWorkspace / DecodeStepWorkspace), or "
    "hoist the allocation out of the steady state; per-chunk staging "
    "that is deliberately amortized lives in the baseline with its "
    "justification.")
def check_hot_path_alloc(src, ctx):
    in_kernels = src.rel_path.startswith(KERNEL_DIRS)
    hot_lines = _hot_function_lines(src) \
        if src.rel_path.endswith(".cpp") else set()
    if not in_kernels and not hot_lines:
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        hot = lineno in hot_lines or \
            (in_kernels and (src.in_loop[lineno] or
                             src.in_pfor[lineno]))
        if hot and ALLOC_RE.search(code):
            yield lineno, None


SERVE_DIRS = ("src/serve/",)

# A checked element accessor inside a loop body: each call re-derives
# the row pointer and re-checks bounds, turning what should be one
# std::copy/rowPtr into width * (bounds check + index arithmetic).
# ServeEngine::prefillSlot shipped exactly this copy loop once.
AT_IN_LOOP_RE = re.compile(r"\.at\s*\(")


@register(
    "serve-elementwise-at", "error",
    "per-element .at() loop on the serving path",
    "calling .at() inside a loop or parallelFor body in src/serve/ "
    "re-checks bounds and re-derives the row pointer once per "
    "element; bulk moves belong on rowPtr()/data() with std::copy "
    "(or loadRow for KV views), which check once per row. Hoist the "
    "accessor out of the loop or switch to the bulk form.")
def check_serve_elementwise_at(src, ctx):
    if not src.rel_path.startswith(SERVE_DIRS):
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if (src.in_loop[lineno] or src.in_pfor[lineno]) and \
                AT_IN_LOOP_RE.search(code):
            yield lineno, None
