"""Concurrency-discipline rules.

The serving engine's headline guarantee — bit-identical decode across
thread counts, proven tsan-clean — rests on two structural facts:
every thread in the process is owned by the ExecContext pool, and
every parallelFor chunk writes only chunk-private or per-thread-slot
state. These rules keep both facts true by construction.
"""

import re

from registry import register

# The pool implementation owns raw threads; the serve engine owns the
# one background serving thread (the sole external submitter into the
# pool); everything else goes through ExecContext/parallelFor.
THREAD_ALLOWED_FILES = {
    "src/common/exec_context.cpp",
    "src/common/exec_context.hpp",
    "src/serve/serve_engine.cpp",
    "src/serve/serve_engine.hpp",
}

THREAD_RE = re.compile(
    r"\bstd::(?:thread|jthread|async)\b|\bpthread_create\s*\(")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
MANUAL_LOCK_RE = re.compile(
    r"(?:\.|->)\s*(?:try_)?lock\s*\(\s*\)|(?:\.|->)\s*unlock\s*\(\s*\)")

# Declarations inside a lambda body: a type-ish token (builtin,
# std::..., or CamelCase), optional template args and ref/pointer
# markers, then the declared name.
DECL_RE = re.compile(
    r"\b(?:auto|bool|char|short|long|float|double|int|unsigned|"
    r"size_t|ssize_t|ptrdiff_t|u?int(?:8|16|32|64)_t|"
    r"std::[A-Za-z_]\w*|[A-Z][A-Za-z0-9_]*)"
    r"(?:<[^<>;{}]*(?:<[^<>]*>)?[^<>;{}]*>)?"
    r"(?:(?:\s*[&*])+\s*|\s+)([A-Za-z_]\w*)\s*(?=[=;,)({\[:])")
# Range-for introduces a name before the colon.
RANGE_FOR_RE = re.compile(
    r"for\s*\([^;:)]*[&*\s]([A-Za-z_]\w*)\s*:")
# Mutating writes whose target is a plain captured identifier (not a
# member access, array element, or method call).
WRITE_RE = re.compile(
    r"(?<![\w.\]>])([A-Za-z_]\w*)\s*"
    r"(?:\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|\+\+|--)"
    r"|(?:\+\+|--)\s*([A-Za-z_]\w*)")


@register(
    "exec-discipline", "error",
    "raw thread primitive outside the ExecContext pool",
    "std::thread/std::async/pthread_create outside "
    "src/common/exec_context.* creates threads the pool cannot "
    "account for: SOFTREC_THREADS no longer bounds concurrency, the "
    "determinism contract (fixed chunking over a fixed worker set) "
    "breaks, and .detach() leaks work past shutdown. Route all "
    "parallelism through ExecContext::parallelFor.")
def check_exec_discipline(src, ctx):
    if src.rel_path in THREAD_ALLOWED_FILES:
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if THREAD_RE.search(code) or DETACH_RE.search(code):
            yield lineno, None


@register(
    "lock-discipline", "error",
    "manual mutex lock()/unlock(); use a RAII guard",
    "a manual unlock is skipped by every early return and exception "
    "path between lock and unlock — the classic deadlock-under-error "
    "bug tsan only catches if the error path actually runs. Acquire "
    "every std::mutex via std::lock_guard / std::scoped_lock / "
    "std::unique_lock.")
def check_lock_discipline(src, ctx):
    for lineno, code in enumerate(src.code_lines, start=1):
        for m in MANUAL_LOCK_RE.finditer(code):
            # std::mutex lock()/unlock() return void, so a consumed
            # result means this is some other lock() — most commonly
            # weak_ptr::lock() promotion (`if (auto p = w.lock())`).
            prefix = code[: m.start()]
            suffix = code[m.end() :].lstrip()
            assigned = re.search(r"(?<![=!<>])=(?!=)", prefix)
            consumed = (assigned or "return" in prefix or
                        suffix.startswith((")", ".", "->", "?", "&&",
                                           "||")))
            if not consumed:
                yield lineno, None
                break


def _region_locals(src, first, last):
    """Names declared inside a lambda region (including its parameter
    list on the opening line)."""
    names = set()
    for lineno in range(first, last + 1):
        code = src.code_lines[lineno - 1]
        for m in DECL_RE.finditer(code):
            names.add(m.group(1))
        for m in RANGE_FOR_RE.finditer(code):
            names.add(m.group(1))
    return names


@register(
    "exec-shared-write", "warning",
    "parallelFor lambda mutates captured non-local state",
    "a parallelFor chunk may run on any worker concurrently with "
    "every other chunk; accumulating into a captured variable "
    "(sum += ..., ++count) is a data race unless it is atomic or a "
    "per-thread slot. Accumulate into chunk-local state, a "
    "currentThreadSlot() slot, or a prof::Scope counter. (Heuristic: "
    "suppress with allow(exec-shared-write) when the target is "
    "provably chunk-exclusive.)")
def check_exec_shared_write(src, ctx):
    for first, last in src.pfor_regions:
        local = _region_locals(src, first, last)
        for lineno in range(first, last + 1):
            code = src.code_lines[lineno - 1]
            for m in WRITE_RE.finditer(code):
                name = m.group(1) or m.group(2)
                if name in local:
                    continue
                yield lineno, (
                    "parallelFor lambda mutates captured '%s'; "
                    "chunks run concurrently — use chunk-local "
                    "state or a per-thread slot" % name)
