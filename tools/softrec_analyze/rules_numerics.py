"""Numerics rules migrated from the original softrec_lint: the
softmax-recomposition pipeline is only useful if every rewrite of it
stays numerically safe and deterministic."""

import re

from registry import register

# Files implementing safe softmax itself: exp() here is always of the
# form exp(x - m) with m the running/local/global max.
RAW_EXP_ALLOWED_FILES = {
    "src/kernels/softmax_kernels.cpp",
    "src/kernels/decode_attention.cpp",
    "src/kernels/bsr_softmax.cpp",
    "src/kernels/bsr_gemm.cpp",
    "src/kernels/gemm.cpp",
    "src/kernels/fused_mha.cpp",
    "src/core/softmax_math.cpp",
    "src/core/attention_exec.cpp",
}

# The seeded deterministic generator lives here.
RNG_ALLOWED_FILES = {
    "src/common/rng.cpp",
    "src/common/rng.hpp",
}

# The storage type itself may convert however it needs to.
HALF_NARROW_ALLOWED_DIRS = ("src/fp16/",)
HALF_LOOP_CONV_DIRS = ("src/kernels/",)

RAW_EXP_RE = re.compile(r"(?<![\w.:])(?:std::)?expf?\s*\(")
HALF_NARROW_RE = re.compile(
    r"static_cast<\s*Half\s*>|\(\s*Half\s*\)\s*[\w(]")
# Per-element conversions the batch span routines replace: widening an
# element access to float, calling toFloat() on one element, or
# narrowing one element through the Half(...) constructor.
HALF_LOOP_CONV_RE = re.compile(
    r"\bfloat\s*\(\s*[^()]*(?:\.|->)\s*at\s*\("
    r"|(?:\.|->)\s*toFloat\s*\(\s*\)"
    r"|=\s*Half\s*\(\s*[^)]")
RNG_RE = re.compile(
    r"(?<![\w:])s?rand\s*\(|std::random_device|std::mt19937"
    r"|std::default_random_engine|#\s*include\s*<random>")


@register(
    "raw-exp", "error",
    "bare exp() outside the safe-softmax/LS helpers",
    "exp() on attention logits overflows for logits > ~88 (fp32) or "
    "~11 (fp16); it is only safe inside the safe-softmax / LS helpers "
    "that subtract a running max first. Subtract the row max or move "
    "the code into a safe-softmax helper.")
def check_raw_exp(src, ctx):
    if src.rel_path in RAW_EXP_ALLOWED_FILES:
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if RAW_EXP_RE.search(code):
            yield lineno, None


@register(
    "half-narrow", "error",
    "hidden float->Half narrowing cast",
    "float -> Half narrowing must be spelled with the explicit "
    "Half(...) constructor so the rounding step is visible; casts "
    "that hide it are confined to src/fp16/.")
def check_half_narrow(src, ctx):
    if src.rel_path.startswith(HALF_NARROW_ALLOWED_DIRS):
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if HALF_NARROW_RE.search(code):
            yield lineno, None


@register(
    "half-loop-conv", "error",
    "per-element Half conversion inside a loop in src/kernels/",
    "kernels must not convert Half elements one at a time inside a "
    "loop; stage the row once with the batch halfToFloat/floatToHalf "
    "span conversions, which dispatch to the SIMD backends.")
def check_half_loop_conv(src, ctx):
    if not src.rel_path.startswith(HALF_LOOP_CONV_DIRS):
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if src.in_loop[lineno] and HALF_LOOP_CONV_RE.search(code):
            yield lineno, None


@register(
    "unseeded-rng", "error",
    "non-deterministic or unseeded RNG",
    "all randomness flows through softrec::Rng (common/rng), which is "
    "seeded and cross-platform deterministic; rand()/<random> would "
    "silently break run-to-run reproducibility.")
def check_unseeded_rng(src, ctx):
    if src.rel_path in RNG_ALLOWED_FILES:
        return
    for lineno, code in enumerate(src.code_lines, start=1):
        if RNG_RE.search(code):
            yield lineno, None
