"""Rule registry: every rule registers here with its severity and
rationale; the CLI, SARIF emitter, and selftest all read this table.

Severities:

* ``error``   — an invariant the repo depends on for correctness or
                reproducibility; the CI gate fails on it.
* ``warning`` — a heuristic rule that can rarely misfire; still gates
                CI (suppress with allow() or the baseline when wrong).
"""


class Rule:
    def __init__(self, name, severity, summary, rationale, check):
        self.name = name
        self.severity = severity
        self.summary = summary
        self.rationale = rationale
        self.check = check  # callable(SourceFile, AnalysisContext)


_RULES = {}


def register(name, severity, summary, rationale):
    """Decorator: register ``check(src, ctx)`` under ``name``."""
    if severity not in ("error", "warning"):
        raise ValueError("bad severity for rule %s" % name)

    def wrap(fn):
        if name in _RULES:
            raise ValueError("duplicate rule %s" % name)
        _RULES[name] = Rule(name, severity, summary, rationale, fn)
        return fn
    return wrap


def all_rules():
    """Every registered rule, name-sorted (imports rule modules on
    first use)."""
    _load()
    return [_RULES[name] for name in sorted(_RULES)]


_LOADED = False


def _load():
    global _LOADED
    if _LOADED:
        return
    # Importing a rules module runs its register() decorators.
    import rules_numerics    # noqa: F401
    import rules_hygiene     # noqa: F401
    import rules_concurrency  # noqa: F401
    import rules_hotpath     # noqa: F401
    import rules_envreg      # noqa: F401
    import rules_profscope   # noqa: F401
    import rules_serveapi    # noqa: F401
    _LOADED = True
