"""Environment-knob registry rule.

Every SOFTREC_* environment knob is part of the serving engine's
operator interface: it must be parsed by a config module that
hard-errors on malformed values (never a silent fallback), and it
must be documented in the README knob table so operators can find
it. A getenv() scattered anywhere else is how a knob silently forks
behaviour between binaries.
"""

import re

from registry import register

# The config modules: the only files allowed to call getenv().
ENV_ALLOWED_FILES = {
    "src/serve/serve_config.cpp",  # ServeConfig::fromEnv
    "src/common/exec_context.cpp",  # SOFTREC_THREADS latch
    "src/common/bench_report.cpp",  # SOFTREC_BENCH_DIR routing
    "src/fp16/half.cpp",           # SOFTREC_SIMD backend select
    "src/kernels/streaming_attention.cpp",  # SOFTREC_ATTENTION select
}

GETENV_RE = re.compile(r"\b(?:std::)?getenv\s*\(")
GETENV_NAME_RE = re.compile(r'\bgetenv\s*\(\s*"([^"]+)"')


@register(
    "env-registry", "error",
    "getenv() outside the config modules, or an undocumented knob",
    "environment knobs must route through the config modules "
    "(ServeConfig::fromEnv, ExecContext, bench_report, half) that "
    "validate hard — a malformed value is a startup error, never a "
    "silent fallback — and every SOFTREC_* name must appear in the "
    "README knob table. Direct getenv() elsewhere creates knobs with "
    "neither property.")
def check_env_registry(src, ctx):
    for lineno, code in enumerate(src.code_lines, start=1):
        if not GETENV_RE.search(code):
            continue
        raw = src.raw_lines[lineno - 1]
        if src.rel_path not in ENV_ALLOWED_FILES:
            yield lineno, (
                "getenv() outside the config modules; route the knob "
                "through ServeConfig::fromEnv / the owning config "
                "module")
            continue
        for name in GETENV_NAME_RE.findall(raw):
            if name.startswith("SOFTREC_") and \
                    name not in ctx.readme_text:
                yield lineno, (
                    "env knob %s is read here but not documented in "
                    "the README knob table" % name)
