"""Analysis engine: per-file lexical model and the finding type.

The engine builds one :class:`SourceFile` per input, exposing the
derived views every rule consumes:

* ``code_lines``    — comment/string-stripped source (cpptok)
* ``allows``        — per-line suppression sets from
                      ``// softrec-lint: allow(<rule>)`` annotations
* ``in_loop``       — lines lexically inside a ``for``/``while`` body
* ``in_pfor``       — lines inside a ``parallelFor`` lambda body
* ``pfor_regions``  — (first, last) line pairs of those lambda bodies
* ``functions``     — (name, def_line, first, last) body regions for
                      repo-style definitions (name at column 0, brace
                      on its own line)

All line numbers are 1-based. The lexical model is deliberately
heuristic — it understands the repo's clang-format layout, not
arbitrary C++ — which keeps the analyzer dependency-free; rules that
need more context state their assumptions in docs/STATIC_ANALYSIS.md.
"""

import os
import re

from cpptok import strip_comments_and_strings

ALLOW_RE = re.compile(r"softrec-lint:\s*allow\(([a-z-]+)\)")
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
# Repo style: return type on its own line, so a definition's name (and
# optional Class:: qualifier) starts at column 0 with the open paren
# directly attached.
FUNC_DEF_RE = re.compile(r"^([A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)?)\s*\(")


class Finding:
    """One rule violation at a source location."""

    def __init__(self, path, line, rule, message, severity):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.severity = severity

    def fingerprint(self, raw_lines):
        """Line-number-independent identity used by the baseline:
        (rule, path, whitespace-normalized source line)."""
        text = ""
        if 1 <= self.line <= len(raw_lines):
            text = re.sub(r"\s+", " ", raw_lines[self.line - 1].strip())
        return "%s|%s|%s" % (self.rule, self.path, text)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


class SourceFile:
    def __init__(self, root, rel_path):
        self.root = root
        self.rel_path = rel_path
        self.read_error = None
        try:
            with open(os.path.join(root, rel_path),
                      encoding="utf-8") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError) as exc:
            self.read_error = str(exc)
            text = ""
        self.text = text
        self.raw_lines = text.splitlines()
        self.code_lines = \
            strip_comments_and_strings(text).splitlines()
        self.allows = self._collect_allows()
        self.in_loop = [False] * (len(self.code_lines) + 1)
        self.in_pfor = [False] * (len(self.code_lines) + 1)
        self.pfor_regions = []
        self.functions = []
        self._scan_regions()

    # -- suppression annotations ------------------------------------

    def _collect_allows(self):
        """Map line number -> set of allowed rules, honouring
        annotations on the same line or on directly preceding
        comment/blank lines."""
        allows = {}
        pending = set()
        for idx, raw in enumerate(self.raw_lines, start=1):
            code = self.code_lines[idx - 1] \
                if idx <= len(self.code_lines) else ""
            is_comment = code.strip() == ""
            here = set(ALLOW_RE.findall(raw))
            if is_comment:
                pending |= here
                continue
            allows[idx] = here | pending
            pending = set()
        return allows

    def allowed(self, lineno, rule):
        return rule in self.allows.get(lineno, set())

    # -- lexical regions --------------------------------------------

    def _scan_regions(self):
        loop_stack = []     # brace depths at which loop bodies opened
        pending_loop = 0    # grace window for braceless loop bodies
        depth = 0
        pfor_armed = False  # saw `parallelFor`, waiting for lambda
        pfor_bracket = False  # saw the `[` capture intro since arming
        pfor_stack = []     # depths at which parallelFor lambdas opened
        pfor_open_line = 0
        pending_func = None  # (name, def_line) awaiting `{` at col 0
        open_func = None    # (name, def_line, body_first, open_depth)

        for lineno, code in enumerate(self.code_lines, start=1):
            if LOOP_HEADER_RE.search(code):
                pending_loop = 2
            self.in_loop[lineno] = bool(loop_stack) or pending_loop > 0

            if "parallelFor" in code:
                pfor_armed = True
                pfor_bracket = False
            if pfor_armed and "[" in code:
                pfor_bracket = True
            self.in_pfor[lineno] = bool(pfor_stack)

            m = FUNC_DEF_RE.match(code)
            if m and open_func is None:
                pending_func = (m.group(1), lineno)
            elif pending_func and ";" in code:
                pending_func = None  # it was only a declaration
            if pending_func and code.startswith("{"):
                open_func = (pending_func[0], pending_func[1],
                             lineno, depth)
                pending_func = None

            for ch in code:
                if ch == "{":
                    depth += 1
                    if pending_loop > 0:
                        loop_stack.append(depth)
                        pending_loop = 0
                    if pfor_armed and pfor_bracket:
                        pfor_stack.append(depth)
                        pfor_open_line = lineno
                        pfor_armed = False
                        pfor_bracket = False
                        self.in_pfor[lineno] = True
                    elif pfor_armed:
                        # A `{` before any `[`: this was parallelFor's
                        # own definition body, not a call site.
                        pfor_armed = False
                elif ch == "}":
                    if loop_stack and loop_stack[-1] == depth:
                        loop_stack.pop()
                    if pfor_stack and pfor_stack[-1] == depth:
                        pfor_stack.pop()
                        if not pfor_stack:
                            self.pfor_regions.append(
                                (pfor_open_line, lineno))
                    depth -= 1
                    if open_func is not None and \
                            depth == open_func[3]:
                        self.functions.append(
                            (open_func[0], open_func[1],
                             open_func[2], lineno))
                        open_func = None
            if pfor_armed and not pfor_bracket and ";" in code:
                pfor_armed = False  # a declaration, not a call
            if pending_loop > 0:
                pending_loop -= 1

    def function_named(self, name):
        """(def_line, body_first, body_last) or None."""
        for fname, def_line, first, last in self.functions:
            if fname == name:
                return (def_line, first, last)
        return None


def iter_source_files(root, subdir="src"):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp")):
                yield os.path.relpath(os.path.join(dirpath, name),
                                      root).replace(os.sep, "/")


class AnalysisContext:
    """Cross-file state shared by every rule during one run."""

    def __init__(self, root):
        self.root = root
        readme = os.path.join(root, "README.md")
        try:
            with open(readme, encoding="utf-8") as f:
                self.readme_text = f.read()
        except OSError:
            self.readme_text = ""


def analyze(root, rel_paths, rules):
    """Run every rule over every file; returns findings honouring the
    per-line allow() suppressions (but not the baseline — the caller
    layers that on)."""
    ctx = AnalysisContext(root)
    findings = []
    for rel in rel_paths:
        src = SourceFile(root, rel)
        if src.read_error is not None:
            findings.append(Finding(rel, 0, "internal",
                                    "unreadable file: %s"
                                    % src.read_error, "error"))
            continue
        for rule in rules:
            for lineno, message in rule.check(src, ctx):
                if not src.allowed(lineno, rule.name):
                    findings.append(Finding(rel, lineno, rule.name,
                                            message or rule.summary,
                                            rule.severity))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
