"""SARIF 2.1.0 emission plus a structural validator.

The container has no jsonschema package, so validate() hand-checks
the subset of the SARIF 2.1.0 schema this tool emits: required
top-level keys, runs/tool/driver/rules shape, and result locations.
The selftest feeds it both a good document and deliberately broken
ones.
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVEL = {"error": "error", "warning": "warning"}


def emit(findings, rules, tool_version):
    """Build a SARIF log dict from findings and the rule registry."""
    rules_meta = []
    rule_index = {}
    for i, rule in enumerate(sorted(rules, key=lambda r: r.name)):
        rule_index[rule.name] = i
        rules_meta.append({
            "id": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": _LEVEL[rule.severity],
            },
        })
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": _LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": f.line},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "softrec_analyze",
                    "version": tool_version,
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "rules": rules_meta,
                },
            },
            "results": results,
        }],
    }


def validate(doc):
    """Return a list of structural problems (empty == valid).

    Checks the SARIF 2.1.0 constraints relevant to what emit()
    produces; stands in for jsonschema, which the container lacks.
    """
    errs = []

    def need(obj, key, typ, where):
        if not isinstance(obj, dict) or key not in obj:
            errs.append("%s: missing required '%s'" % (where, key))
            return None
        val = obj[key]
        if not isinstance(val, typ):
            errs.append("%s.%s: expected %s, got %s" % (
                where, key, typ.__name__, type(val).__name__))
            return None
        return val

    if not isinstance(doc, dict):
        return ["top level: expected object"]
    version = need(doc, "version", str, "log")
    if version is not None and version != SARIF_VERSION:
        errs.append("log.version: expected %r" % SARIF_VERSION)
    runs = need(doc, "runs", list, "log")
    if runs is None:
        return errs
    for ri, run in enumerate(runs):
        where = "runs[%d]" % ri
        tool = need(run, "tool", dict, where)
        if tool is None:
            continue
        driver = need(tool, "driver", dict, where + ".tool")
        if driver is None:
            continue
        need(driver, "name", str, where + ".tool.driver")
        rules = driver.get("rules", [])
        rule_ids = set()
        if not isinstance(rules, list):
            errs.append(where + ".tool.driver.rules: expected array")
            rules = []
        for ki, rule in enumerate(rules):
            rwhere = where + ".tool.driver.rules[%d]" % ki
            rid = need(rule, "id", str, rwhere)
            if rid is not None:
                rule_ids.add(rid)
            cfg = rule.get("defaultConfiguration")
            if cfg is not None:
                level = cfg.get("level")
                if level not in ("none", "note", "warning", "error"):
                    errs.append(rwhere +
                                ".defaultConfiguration.level: "
                                "invalid value %r" % (level,))
        results = run.get("results", [])
        if not isinstance(results, list):
            errs.append(where + ".results: expected array")
            results = []
        for xi, res in enumerate(results):
            xwhere = where + ".results[%d]" % xi
            rid = need(res, "ruleId", str, xwhere)
            if rid is not None and rule_ids and rid not in rule_ids:
                errs.append(xwhere +
                            ".ruleId: %r not in driver.rules" % rid)
            msg = need(res, "message", dict, xwhere)
            if msg is not None:
                need(msg, "text", str, xwhere + ".message")
            level = res.get("level")
            if level is not None and \
                    level not in ("none", "note", "warning", "error"):
                errs.append(xwhere + ".level: invalid value %r"
                            % (level,))
            locs = res.get("locations", [])
            if not isinstance(locs, list):
                errs.append(xwhere + ".locations: expected array")
                locs = []
            for li, loc in enumerate(locs):
                lwhere = xwhere + ".locations[%d]" % li
                phys = need(loc, "physicalLocation", dict, lwhere)
                if phys is None:
                    continue
                art = need(phys, "artifactLocation", dict,
                           lwhere + ".physicalLocation")
                if art is not None:
                    need(art, "uri", str,
                         lwhere + ".physicalLocation.artifactLocation")
                region = phys.get("region")
                if region is not None:
                    start = region.get("startLine")
                    if not isinstance(start, int) or start < 1:
                        errs.append(
                            lwhere + ".physicalLocation.region."
                            "startLine: expected integer >= 1")
    return errs


def dump(doc, path):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
