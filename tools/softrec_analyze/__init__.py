"""softrec_analyze: multi-pass static analysis for the softrec tree.

A Python-only (no LLVM) framework that encodes the repo's hard-won
invariants as machine-checked rules: numerics discipline, include
hygiene, concurrency discipline, hot-path allocation freedom, the
environment-knob registry, and profiler-scope coverage.

Run as ``python3 tools/softrec_analyze`` from the repo root, or see
docs/STATIC_ANALYSIS.md for the full rule catalogue, suppression
syntax, baseline workflow, and SARIF output.
"""
