"""Entry point: ``python3 tools/softrec_analyze [args]``.

Executing the package directory puts it on sys.path[0], so the flat
module imports below resolve; running via ``-m`` works too.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main())
