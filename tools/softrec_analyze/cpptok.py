"""Shared C++ tokenizer: comment and string-literal stripping.

Every rule regex in the analyzer runs over code that has been passed
through :func:`strip_comments_and_strings`, so a pattern inside a
comment, a string literal, or a raw string literal can never produce
a finding. Line structure is preserved exactly (one output line per
input line) so findings keep their original line numbers.

Handles the two constructs the original softrec_lint stripper got
wrong:

* C++ raw string literals, ``R"( ... )"`` and the delimited form
  ``R"delim( ... )delim"`` (with optional ``u8``/``u``/``U``/``L``
  encoding prefixes). The old stripper treated the body like an
  ordinary quoted string and "recovered" at the first newline,
  leaking the rest of a multi-line raw string into the code channel.
* Backslash-continued ``//`` comments: a line comment whose final
  character is a backslash continues onto the next physical line
  (C++ phase-2 line splicing), so that next line is still comment,
  not code.
"""

import re

# Longest-match raw-string prefixes ending at the opening quote; the
# prefix must be its own token (not the tail of an identifier).
_RAW_PREFIX_RE = re.compile(r"(?:^|[^0-9A-Za-z_])(?:u8|[uUL])?R$")
# d-char-seq: anything but parens, backslash, and spaces; max 16.
_RAW_DELIM_RE = re.compile(r'([^()\\\s]{0,16})\(')


def _blank(segment):
    """Replace every non-newline character with a space."""
    return re.sub(r"[^\n]", " ", segment)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes only see real code."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? The prefix (R, u8R, ...) was
                # already emitted as code; that is harmless — what
                # matters is that the body is blanked verbatim with
                # no escape processing until the matching )delim".
                if _RAW_PREFIX_RE.search("".join(out[-4:])):
                    m = _RAW_DELIM_RE.match(text, i + 1)
                    if m:
                        delim = m.group(1)
                        body_start = m.end()
                        terminator = ")" + delim + '"'
                        end = text.find(terminator, body_start)
                        if end < 0:
                            end = n
                            term_len = 0
                        else:
                            term_len = len(terminator)
                        out.append(_blank(text[i:end + term_len]))
                        i = end + term_len
                        continue
                state = "dq"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                # A comment line ending in a backslash splices the
                # next physical line into the comment.
                spliced = text[i - 1] == "\\" or \
                    (text[i - 1] == "\r" and i >= 2 and
                     text[i - 2] == "\\")
                if not spliced:
                    state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # dq / sq string literal
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":
                # Unterminated ordinary literal; recover per line.
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)
