#!/usr/bin/env python3
"""Compatibility shim for the legacy lint entry point.

The single-file linter grew into the multi-pass analyzer package at
tools/softrec_analyze/ (rule registry, per-line suppressions, checked
baseline, SARIF output — see docs/STATIC_ANALYSIS.md). This shim keeps
the old command line working for one release so CI configs and editor
hooks migrate gracefully:

    python3 tools/softrec_lint.py [--root R] [--list-rules]
                                  [--self-test] [paths...]

Every argument is forwarded to the package verbatim; the new flags
(--sarif, --baseline, --changed-only, ...) are available only on the
new entry point:

    python3 tools/softrec_analyze [args]
"""

import os
import sys

_PKG = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "softrec_analyze")
sys.path.insert(0, _PKG)

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main())
