#!/usr/bin/env python3
"""SoftRec domain lint: numerics and hygiene invariants for src/.

The softmax-recomposition pipeline is only useful if every rewrite of
it stays numerically safe, so this lint enforces repo-specific rules
that generic tools cannot know about:

  raw-exp           exp() on attention logits is only safe inside the
                    safe-softmax / LS helpers that subtract a running
                    max first; anywhere else it risks overflow for
                    logits > ~88 (fp32) or ~11 (fp16).
  half-narrow       float -> Half narrowing must be spelled with the
                    explicit Half(...) constructor; casts that hide
                    the rounding step are confined to src/fp16/.
  half-loop-conv    kernels (src/kernels/) must not convert Half
                    elements one at a time inside a loop; use the
                    batch halfToFloat/floatToHalf span conversions,
                    which dispatch to the SIMD backends.
  unseeded-rng      all randomness flows through common/rng (seeded,
                    cross-platform deterministic); rand()/<random>
                    would silently break reproducibility.
  const-cast        the const_cast-through-this accessor idiom is
                    UB-adjacent; share a template helper instead.
  bare-assert       assert(3) vanishes under NDEBUG; use
                    SOFTREC_ASSERT (always on) or SOFTREC_CHECK
                    (checked builds).
  include-guard     .hpp guards must match SOFTREC_<DIR>_<FILE>_HPP.
  own-header-first  each .cpp includes its own header first, so every
                    header proves it is self-contained.
  relative-include  no "../" includes; all paths are rooted at src/.
  using-namespace   no `using namespace` in src/ (headers poison every
                    includer; std pollutes overload resolution).

A finding can be suppressed for one code line with a comment, on the
same line or any directly preceding comment line:

    // softrec-lint: allow(raw-exp) -- reason

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys
import tempfile

# Files implementing safe softmax itself: exp() here is always of the
# form exp(x - m) with m the running/local/global max.
RAW_EXP_ALLOWED_FILES = {
    "src/kernels/softmax_kernels.cpp",
    "src/kernels/decode_attention.cpp",
    "src/kernels/bsr_softmax.cpp",
    "src/kernels/bsr_gemm.cpp",
    "src/kernels/gemm.cpp",
    "src/kernels/fused_mha.cpp",
    "src/core/softmax_math.cpp",
    "src/core/attention_exec.cpp",
}

# The seeded deterministic generator lives here.
RNG_ALLOWED_FILES = {
    "src/common/rng.cpp",
    "src/common/rng.hpp",
}

# The storage type itself may convert however it needs to.
HALF_NARROW_ALLOWED_DIRS = ("src/fp16/",)

ALLOW_RE = re.compile(r"softrec-lint:\s*allow\(([a-z-]+)\)")

RULES = {
    "raw-exp": (
        "bare exp() outside the safe-softmax/LS helpers; subtract the "
        "row max first or move the code into a safe-softmax helper"
    ),
    "half-narrow": (
        "hidden float->Half narrowing cast; spell the rounding step "
        "with the explicit Half(...) constructor"
    ),
    "half-loop-conv": (
        "per-element Half conversion inside a loop in src/kernels/; "
        "stage the row once with halfToFloat/floatToHalf so the "
        "conversion vectorizes"
    ),
    "unseeded-rng": (
        "non-deterministic or unseeded RNG; use softrec::Rng "
        "(common/rng) so runs reproduce across platforms"
    ),
    "const-cast": (
        "const_cast is UB-adjacent; share a template helper between "
        "the const and non-const overloads"
    ),
    "bare-assert": (
        "assert(3) vanishes under NDEBUG; use SOFTREC_ASSERT or "
        "SOFTREC_CHECK"
    ),
    "include-guard": "include guard must be SOFTREC_<DIR>_<FILE>_HPP",
    "own-header-first": (
        "a .cpp must include its own header first to prove the header "
        "is self-contained"
    ),
    "relative-include": (
        'no "../" or "./" includes; write paths rooted at src/'
    ),
    "using-namespace": "`using namespace` is banned in src/",
}

RAW_EXP_RE = re.compile(r"(?<![\w.:])(?:std::)?expf?\s*\(")
HALF_NARROW_RE = re.compile(
    r"static_cast<\s*Half\s*>|\(\s*Half\s*\)\s*[\w(]")
# Per-element conversions the batch span routines replace: widening an
# element access to float, calling toFloat() on one element, or
# narrowing one element through the Half(...) constructor.
HALF_LOOP_CONV_RE = re.compile(
    r"\bfloat\s*\(\s*[^()]*(?:\.|->)\s*at\s*\("
    r"|(?:\.|->)\s*toFloat\s*\(\s*\)"
    r"|=\s*Half\s*\(\s*[^)]")
HALF_LOOP_CONV_DIRS = ("src/kernels/",)
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
RNG_RE = re.compile(
    r"(?<![\w:])s?rand\s*\(|std::random_device|std::mt19937"
    r"|std::default_random_engine|#\s*include\s*<random>")
CONST_CAST_RE = re.compile(r"\bconst_cast\s*<")
BARE_ASSERT_RE = re.compile(
    r"(?<![\w.])assert\s*\(|#\s*include\s*<(?:cassert|assert\.h)>")
RELATIVE_INCLUDE_RE = re.compile(r'#\s*include\s*"\.\.?/')
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


class Finding:
    def __init__(self, path, line, rule, detail=None):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail or RULES[rule]

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.detail)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes only see real code."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # dq / sq string literal
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":
                # Unterminated (raw strings etc.); recover per line.
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    stem = rel_path[len("src/"):] if rel_path.startswith("src/") \
        else rel_path
    stem = re.sub(r"\.hpp$", "", stem)
    return "SOFTREC_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + \
        "_HPP"


def collect_allows(raw_lines):
    """Map line number (1-based) -> set of allowed rules, honouring
    annotations on the same line or directly preceding comment lines."""
    allows = {}
    pending = set()
    for idx, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        is_comment = stripped.startswith(("//", "*", "/*")) or \
            stripped == ""
        here = set(ALLOW_RE.findall(raw))
        if is_comment:
            pending |= here
            continue
        allows[idx] = here | pending
        pending = set()
    return allows


def lint_file(root, rel_path):
    findings = []
    path = os.path.join(root, rel_path)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(rel_path, 0, "include-guard",
                        "unreadable file: %s" % exc)]
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    allows = collect_allows(raw_lines)
    is_header = rel_path.endswith(".hpp")

    def emit(lineno, rule, detail=None):
        if rule not in allows.get(lineno, set()):
            findings.append(Finding(rel_path, lineno, rule, detail))

    first_include = None
    # Loop tracking for half-loop-conv: a stack of the brace depths at
    # which loop bodies opened, plus a two-line grace window so
    # braceless bodies (`for (...) stmt;`) are still inside the loop.
    lint_loop_conv = rel_path.startswith(HALF_LOOP_CONV_DIRS)
    loop_stack = []
    brace_depth = 0
    pending_loop = 0
    for lineno, code in enumerate(code_lines, start=1):
        if lint_loop_conv:
            if LOOP_HEADER_RE.search(code):
                pending_loop = 2
            if (loop_stack or pending_loop > 0) and \
                    HALF_LOOP_CONV_RE.search(code):
                emit(lineno, "half-loop-conv")
            for ch in code:
                if ch == "{":
                    brace_depth += 1
                    if pending_loop > 0:
                        loop_stack.append(brace_depth)
                        pending_loop = 0
                elif ch == "}":
                    if loop_stack and loop_stack[-1] == brace_depth:
                        loop_stack.pop()
                    brace_depth -= 1
            if pending_loop > 0:
                pending_loop -= 1
        # The stripper blanks string literals, including the quoted
        # path of an include directive; re-read the raw line for the
        # include-specific rules once we know the directive is real
        # code (i.e. survives stripping) and not inside a comment.
        include_src = ""
        if re.match(r"\s*#\s*include\b", code):
            include_src = raw_lines[lineno - 1]
        if first_include is None and include_src:
            m = INCLUDE_RE.match(include_src)
            if m:
                first_include = (lineno, m.group(1))

        if RAW_EXP_RE.search(code) and \
                rel_path not in RAW_EXP_ALLOWED_FILES:
            emit(lineno, "raw-exp")
        if HALF_NARROW_RE.search(code) and \
                not rel_path.startswith(HALF_NARROW_ALLOWED_DIRS):
            emit(lineno, "half-narrow")
        if RNG_RE.search(code) and rel_path not in RNG_ALLOWED_FILES:
            emit(lineno, "unseeded-rng")
        if CONST_CAST_RE.search(code):
            emit(lineno, "const-cast")
        if BARE_ASSERT_RE.search(code):
            emit(lineno, "bare-assert")
        if include_src and RELATIVE_INCLUDE_RE.search(include_src):
            emit(lineno, "relative-include")
        if USING_NAMESPACE_RE.search(code):
            emit(lineno, "using-namespace")

    if is_header:
        guard = expected_guard(rel_path)
        joined = "\n".join(code_lines)
        if not re.search(r"#\s*ifndef\s+%s\b" % re.escape(guard),
                         joined):
            emit(1, "include-guard",
                 "expected include guard %s" % guard)

    if rel_path.endswith(".cpp"):
        own_header = re.sub(r"\.cpp$", ".hpp", rel_path)
        if os.path.exists(os.path.join(root, own_header)):
            want = own_header[len("src/"):] \
                if own_header.startswith("src/") else own_header
            if first_include is None or first_include[1] != want:
                emit(first_include[0] if first_include else 1,
                     "own-header-first",
                     'first include must be "%s"' % want)

    return findings


def iter_source_files(root, subdir="src"):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp")):
                yield os.path.relpath(os.path.join(dirpath, name),
                                      root).replace(os.sep, "/")


# --------------------------------------------------------------------
# Self-test fixtures: (relative path, content, set of expected rules).

SELF_TEST_FIXTURES = [
    ("src/kernels/bad_exp.cpp",
     '#include "kernels/bad_exp.hpp"\n'
     "float f(float x) { return std::exp(x); }\n",
     {"raw-exp"}),
    ("src/kernels/allowed_exp.cpp",
     '#include "kernels/allowed_exp.hpp"\n'
     "// softrec-lint: allow(raw-exp) -- unit-test fixture\n"
     "float f(float x) { return std::exp(x); }\n",
     set()),
    ("src/kernels/comment_exp.cpp",
     '#include "kernels/comment_exp.hpp"\n'
     "// stores X' = exp(s - m') per tile\n"
     'const char *s = "exp(x)";\n',
     set()),
    ("src/kernels/bad_loop_conv.cpp",
     '#include "kernels/bad_loop_conv.hpp"\n'
     "void f(const Tensor<Half> &in, Tensor<Half> &out, int64_t n) {\n"
     "    for (int64_t j = 0; j < n; ++j) {\n"
     "        const float v = float(in.at(0, j));\n"
     "        out.at(0, j) = Half(v + 1.0f);\n"
     "    }\n"
     "    for (int64_t j = 0; j < n; ++j)\n"
     "        out.at(1, j) = Half(in.at(0, j).toFloat());\n"
     "}\n",
     {"half-loop-conv"}),
    ("src/kernels/ok_batch_conv.cpp",
     '#include "kernels/ok_batch_conv.hpp"\n'
     "void f(const Tensor<Half> &in, Tensor<Half> &out, int64_t n) {\n"
     "    std::vector<float> row(size_t(n), 0.0f);\n"
     "    halfToFloat(in.rowPtr(0), row.data(), n);\n"
     "    for (int64_t j = 0; j < n; ++j)\n"
     "        row[size_t(j)] += 1.0f;\n"
     "    floatToHalf(row.data(), out.rowPtr(0), n);\n"
     "}\n",
     set()),
    ("src/model/ok_loop_conv.cpp",
     '#include "model/ok_loop_conv.hpp"\n'
     "void f(const Tensor<Half> &in, Tensor<Half> &out, int64_t n) {\n"
     "    for (int64_t j = 0; j < n; ++j)\n"
     "        out.at(0, j) = Half(float(in.at(0, j)) + 1.0f);\n"
     "}\n",
     set()),
    ("src/model/bad_half.cpp",
     '#include "model/bad_half.hpp"\n'
     "Half g(float x) { return static_cast<Half>(x); }\n",
     {"half-narrow"}),
    ("src/fp16/ok_half.cpp",
     '#include "fp16/ok_half.hpp"\n'
     "Half g(float x) { return static_cast<Half>(x); }\n",
     set()),
    ("src/model/bad_rng.cpp",
     '#include "model/bad_rng.hpp"\n'
     "#include <random>\n"
     "int r() { return rand(); }\n",
     {"unseeded-rng"}),
    ("src/sparse/bad_cast.cpp",
     '#include "sparse/bad_cast.hpp"\n'
     "int &f(const int *p) { return *const_cast<int *>(p); }\n",
     {"const-cast"}),
    ("src/common/bad_assert.cpp",
     '#include "common/bad_assert.hpp"\n'
     "#include <cassert>\n"
     "void f(int x) { assert(x > 0); }\n",
     {"bare-assert"}),
    ("src/common/ok_assert.cpp",
     '#include "common/ok_assert.hpp"\n'
     'void f(int x) { SOFTREC_ASSERT(x > 0, "x"); '
     'static_assert(1 + 1 == 2); }\n',
     set()),
    ("src/sim/bad_guard.hpp",
     "#ifndef WRONG_GUARD_HPP\n#define WRONG_GUARD_HPP\n#endif\n",
     {"include-guard"}),
    ("src/sim/good_guard.hpp",
     "#ifndef SOFTREC_SIM_GOOD_GUARD_HPP\n"
     "#define SOFTREC_SIM_GOOD_GUARD_HPP\n#endif\n",
     set()),
    ("src/core/bad_order.cpp",
     '#include "common/logging.hpp"\n'
     '#include "core/bad_order.hpp"\n',
     {"own-header-first"}),
    ("src/core/bad_relative.cpp",
     '#include "core/bad_relative.hpp"\n'
     '#include "../common/logging.hpp"\n',
     {"relative-include"}),
    ("src/model/bad_using.cpp",
     '#include "model/bad_using.hpp"\n'
     "using namespace std;\n",
     {"using-namespace"}),
]


def run_self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="softrec_lint_") as tmp:
        for rel, content, _ in SELF_TEST_FIXTURES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            header = re.sub(r"\.cpp$", ".hpp", path)
            if path.endswith(".cpp") and not os.path.exists(header):
                rel_header = re.sub(r"\.cpp$", ".hpp", rel)
                with open(header, "w", encoding="utf-8") as f:
                    f.write("#ifndef %s\n#define %s\n#endif\n"
                            % (expected_guard(rel_header),
                               expected_guard(rel_header)))
        for rel, _, expected in SELF_TEST_FIXTURES:
            got = {f.rule for f in lint_file(tmp, rel)}
            if got != expected:
                failures.append("%s: expected %s, got %s"
                                % (rel, sorted(expected) or "clean",
                                   sorted(got) or "clean"))
    if failures:
        for f in failures:
            print("self-test FAIL: %s" % f, file=sys.stderr)
        return 1
    print("softrec_lint: self-test OK (%d fixtures, %d rules)"
          % (len(SELF_TEST_FIXTURES), len(RULES)))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: the parent of "
                             "this script's directory)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint, relative to the root "
                             "(default: all of src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture suite and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-18s %s" % (rule, RULES[rule]))
        return 0
    if args.self_test:
        return run_self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("softrec_lint: no src/ under root %r" % root,
              file=sys.stderr)
        return 2

    rel_paths = [p.replace(os.sep, "/") for p in args.paths] or \
        list(iter_source_files(root))
    findings = []
    for rel in rel_paths:
        findings.extend(lint_file(root, rel))

    for finding in findings:
        print(finding)
    if findings:
        print("softrec_lint: %d finding(s) in %d file(s)"
              % (len(findings), len({f.path for f in findings})),
              file=sys.stderr)
        return 1
    print("softrec_lint: OK (%d files, %d rules)"
          % (len(rel_paths), len(RULES)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
