#!/usr/bin/env python3
"""Validate BENCH_*.json files against the softrec-bench-v1 schema.

Every bench in this repo emits a machine-readable report (see
src/common/bench_report.hpp). CI runs the benches in smoke mode and
feeds their output through this checker so a refactor that silently
breaks the report format — or starts emitting locale-dependent or
non-finite numbers — fails the build instead of corrupting downstream
tooling that parses the files.

Checked invariants:

  top-level       object with exactly the keys
                  {schema, name, config, kernels, derived};
                  schema == "softrec-bench-v1"; name is a non-empty
                  string.
  config          object; values are strings, booleans, integers, or
                  finite floats.
  kernels         array of rows, each with exactly the keys
                  {name, ms, bytes_read, bytes_written, calls,
                  threads}; name non-empty and unique; ms a finite
                  float >= 0; bytes/calls non-negative integers;
                  threads an integer >= 1.
  derived         object; values are finite floats.
  JSON text       must not contain NaN/Infinity tokens (the emitter
                  writes null for non-finite values; Python's json
                  module would otherwise accept them silently).

Usage:
  check_bench_json.py FILE [FILE...]   validate report files
  check_bench_json.py --self-test      run the embedded fixtures

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import math
import sys

SCHEMA = "softrec-bench-v1"
TOP_KEYS = {"schema", "name", "config", "kernels", "derived"}
ROW_KEYS = {"name", "ms", "bytes_read", "bytes_written", "calls",
            "threads"}


def is_int(value):
    """True for JSON integers (bool is a subclass of int: exclude)."""
    return isinstance(value, int) and not isinstance(value, bool)


def is_finite_number(value):
    if is_int(value):
        return True
    return isinstance(value, float) and math.isfinite(value)


def validate_text(path, text):
    """Return a list of 'path: message' findings (empty = clean)."""
    findings = []

    def bad(message):
        findings.append("%s: %s" % (path, message))

    try:
        doc = json.loads(text, parse_constant=lambda token: bad(
            "non-finite JSON token %r" % token))
    except json.JSONDecodeError as err:
        bad("not valid JSON: %s" % err)
        return findings

    if not isinstance(doc, dict):
        bad("top level must be an object")
        return findings
    missing = TOP_KEYS - doc.keys()
    extra = doc.keys() - TOP_KEYS
    if missing:
        bad("missing top-level keys: %s" % ", ".join(sorted(missing)))
    if extra:
        bad("unexpected top-level keys: %s" % ", ".join(sorted(extra)))
    if doc.get("schema") != SCHEMA:
        bad("schema must be %r, got %r" % (SCHEMA, doc.get("schema")))
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        bad("name must be a non-empty string")

    config = doc.get("config", {})
    if not isinstance(config, dict):
        bad("config must be an object")
    else:
        for key, value in config.items():
            if isinstance(value, (str, bool)):
                continue
            if not is_finite_number(value):
                bad("config[%r] must be a string, bool, or finite "
                    "number" % key)

    kernels = doc.get("kernels", [])
    if not isinstance(kernels, list):
        bad("kernels must be an array")
        kernels = []
    seen_names = set()
    for index, row in enumerate(kernels):
        where = "kernels[%d]" % index
        if not isinstance(row, dict):
            bad("%s must be an object" % where)
            continue
        missing = ROW_KEYS - row.keys()
        extra = row.keys() - ROW_KEYS
        if missing:
            bad("%s missing keys: %s" %
                (where, ", ".join(sorted(missing))))
        if extra:
            bad("%s unexpected keys: %s" %
                (where, ", ".join(sorted(extra))))
        row_name = row.get("name")
        if not isinstance(row_name, str) or not row_name:
            bad("%s name must be a non-empty string" % where)
        elif row_name in seen_names:
            bad("%s duplicate kernel name %r" % (where, row_name))
        else:
            seen_names.add(row_name)
        ms = row.get("ms")
        if not is_finite_number(ms) or ms < 0:
            bad("%s ms must be a finite number >= 0" % where)
        for key in ("bytes_read", "bytes_written", "calls"):
            if key in row and (not is_int(row[key]) or row[key] < 0):
                bad("%s %s must be a non-negative integer" %
                    (where, key))
        if "threads" in row and (not is_int(row["threads"]) or
                                 row["threads"] < 1):
            bad("%s threads must be an integer >= 1" % where)

    derived = doc.get("derived", {})
    if not isinstance(derived, dict):
        bad("derived must be an object")
    else:
        for key, value in derived.items():
            if not is_finite_number(value):
                bad("derived[%r] must be a finite number" % key)

    return findings


def validate_file(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as err:
        return ["%s: cannot read: %s" % (path, err)]
    return validate_text(path, text)


GOOD_FIXTURE = """{
  "schema": "softrec-bench-v1",
  "name": "fixture",
  "config": {"seq_len": 512, "gpu": "A100", "checked": false,
             "scale": 0.125},
  "kernels": [
    {"name": "softmax.row", "ms": 1.5, "bytes_read": 1024,
     "bytes_written": 1024, "calls": 2, "threads": 4},
    {"name": "sda.qk", "ms": 0, "bytes_read": 0,
     "bytes_written": 0, "calls": 1, "threads": 1}
  ],
  "derived": {"speedup": 1.25}
}"""

# Each bad fixture must produce at least one finding mentioning the
# named substring.
BAD_FIXTURES = [
    ("not json at all {", "not valid JSON"),
    ('{"schema": "softrec-bench-v2", "name": "x", "config": {}, '
     '"kernels": [], "derived": {}}', "schema must be"),
    ('{"schema": "softrec-bench-v1", "name": "", "config": {}, '
     '"kernels": [], "derived": {}}', "non-empty string"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"derived": {}}', "missing top-level keys"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [], "derived": {}, "extra": 1}',
     "unexpected top-level keys"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [{"name": "k", "ms": -1, "bytes_read": 0, '
     '"bytes_written": 0, "calls": 1, "threads": 1}], "derived": {}}',
     "ms must be"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [{"name": "k", "ms": 1, "bytes_read": -4, '
     '"bytes_written": 0, "calls": 1, "threads": 1}], "derived": {}}',
     "non-negative integer"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [{"name": "k", "ms": 1, "bytes_read": 0, '
     '"bytes_written": 0, "calls": 1, "threads": 0}], "derived": {}}',
     "threads must be"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [{"name": "k", "ms": 1, "bytes_read": 0, '
     '"bytes_written": 0, "calls": 1, "threads": 1}, {"name": "k", '
     '"ms": 1, "bytes_read": 0, "bytes_written": 0, "calls": 1, '
     '"threads": 1}], "derived": {}}', "duplicate kernel name"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [], "derived": {"r": NaN}}', "non-finite"),
    ('{"schema": "softrec-bench-v1", "name": "x", "config": {}, '
     '"kernels": [], "derived": {"r": null}}', "finite number"),
    ('{"schema": "softrec-bench-v1", "name": "x", '
     '"config": {"bad": [1]}, "kernels": [], "derived": {}}',
     "config"),
]


def self_test():
    failures = 0
    findings = validate_text("good", GOOD_FIXTURE)
    if findings:
        failures += 1
        print("self-test: good fixture flagged:", file=sys.stderr)
        for finding in findings:
            print("  " + finding, file=sys.stderr)
    for index, (text, expect) in enumerate(BAD_FIXTURES):
        findings = validate_text("bad%d" % index, text)
        if not any(expect in finding for finding in findings):
            failures += 1
            print("self-test: bad fixture %d: expected a finding "
                  "containing %r, got %r" % (index, expect, findings),
                  file=sys.stderr)
    if failures:
        return 1
    print("check_bench_json self-test: %d fixtures OK" %
          (1 + len(BAD_FIXTURES)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate softrec-bench-v1 JSON reports.")
    parser.add_argument("files", nargs="*",
                        help="report files to validate")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixtures")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.files:
        parser.print_usage(sys.stderr)
        return 2

    findings = []
    for path in args.files:
        findings.extend(validate_file(path))
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        return 1
    print("check_bench_json: %d file(s) OK" % len(args.files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
