/**
 * @file
 * softrec — the command-line driver for the simulation testbed.
 *
 * Subcommands:
 *   specs                         print the modeled GPUs (Table 1)
 *   run      [flags]              one inference; per-category report,
 *                                 optional --timeline / --roofline
 *   compare  [flags]              all strategies for one model
 *   sweep    [flags]              SDF speedup across sequence lengths
 *
 * Common flags: --model bert|gptneo|gptneo-local|bigbird|longformer,
 * --gpu a100|3090|t4, --seq-len N, --batch N, --strategy
 * baseline|sd|sdf.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/logging.hpp"
#include "common/units.hpp"
#include "model/engine.hpp"
#include "sim/report.hpp"

using namespace softrec;

namespace {

ModelConfig
modelByName(const std::string &name)
{
    if (name == "bert")
        return ModelConfig::bertLarge();
    if (name == "gptneo")
        return ModelConfig::gptNeo13B();
    if (name == "gptneo-local")
        return ModelConfig::gptNeo13BLocal();
    if (name == "bigbird")
        return ModelConfig::bigBirdLarge();
    if (name == "longformer")
        return ModelConfig::longformerLarge();
    fatal("unknown model '%s' (want bert|gptneo|gptneo-local|bigbird|"
          "longformer)", name.c_str());
}

GpuSpec
gpuByName(const std::string &name)
{
    if (name == "a100")
        return GpuSpec::a100();
    if (name == "3090")
        return GpuSpec::rtx3090();
    if (name == "t4")
        return GpuSpec::t4();
    fatal("unknown GPU '%s' (want a100|3090|t4)", name.c_str());
}

Strategy
strategyByName(const std::string &name)
{
    if (name == "baseline")
        return Strategy::Baseline;
    if (name == "sd")
        return Strategy::Decomposed;
    if (name == "sdf")
        return Strategy::Fused;
    fatal("unknown strategy '%s' (want baseline|sd|sdf)", name.c_str());
}

void
addCommonFlags(FlagParser &flags)
{
    flags.addString("model", "bert",
                    "bert | gptneo | gptneo-local | bigbird | "
                    "longformer");
    flags.addString("gpu", "a100", "a100 | 3090 | t4");
    flags.addInt("seq-len", 4096, "sequence length L");
    flags.addInt("batch", 1, "batch size");
    flags.addString("strategy", "sdf", "baseline | sd | sdf");
}

int
cmdSpecs()
{
    TextTable table("Modeled GPUs");
    table.setHeader({"GPU", "BW (GB/s)", "FP16 CUDA", "FP16 Tensor",
                     "L2", "SMs"});
    for (const GpuSpec &spec : GpuSpec::all()) {
        table.addRow({
            spec.name,
            strprintf("%.1f", spec.dramBandwidth / Giga),
            formatFlops(spec.fp16CudaFlops),
            formatFlops(spec.fp16TensorFlops),
            formatBytes(spec.l2Bytes),
            strprintf("%d", spec.numSms),
        });
    }
    table.print();
    return 0;
}

int
cmdRun(FlagParser &flags)
{
    const ModelConfig model = modelByName(flags.getString("model"));
    const GpuSpec spec = gpuByName(flags.getString("gpu"));
    RunConfig run;
    run.seqLen = flags.getInt("seq-len");
    run.batch = flags.getInt("batch");
    run.strategy = strategyByName(flags.getString("strategy"));

    TransformerScheduler scheduler(spec, model, run);
    Gpu gpu(spec);
    scheduler.run(gpu);

    std::printf("%s on %s, L = %lld, batch = %lld, strategy %s\n%s\n\n",
                model.name.c_str(), spec.name.c_str(),
                (long long)run.seqLen, (long long)run.batch,
                strategyName(run.strategy),
                summarizeRun(gpu).c_str());
    renderCategories(gpu).print();
    if (flags.getBool("timeline")) {
        std::printf("\n");
        renderTimeline(gpu).print();
    }
    if (flags.getBool("roofline")) {
        std::printf("\n");
        renderRoofline(gpu).print();
    }
    return 0;
}

int
cmdCompare(FlagParser &flags)
{
    const ModelConfig model = modelByName(flags.getString("model"));
    const GpuSpec spec = gpuByName(flags.getString("gpu"));
    RunConfig run;
    run.seqLen = flags.getInt("seq-len");
    run.batch = flags.getInt("batch");

    TextTable table(strprintf("%s on %s (L = %lld, batch %lld)",
                              model.name.c_str(), spec.name.c_str(),
                              (long long)run.seqLen,
                              (long long)run.batch));
    table.setHeader({"strategy", "latency", "speedup", "traffic",
                     "softmax share"});
    double baseline_seconds = 0.0;
    for (Strategy strategy : allStrategies()) {
        run.strategy = strategy;
        const InferenceResult result = runInference(spec, model, run);
        if (strategy == Strategy::Baseline)
            baseline_seconds = result.seconds;
        table.addRow({
            strategyName(strategy),
            formatSeconds(result.seconds),
            strprintf("%.2fx", baseline_seconds / result.seconds),
            formatBytes(result.dramBytes()),
            strprintf("%.1f%%", 100.0 * result.softmaxSeconds() /
                                    result.seconds),
        });
    }
    table.print();
    return 0;
}

int
cmdSweep(FlagParser &flags)
{
    const ModelConfig model = modelByName(flags.getString("model"));
    const GpuSpec spec = gpuByName(flags.getString("gpu"));
    TextTable table(strprintf("SDF speedup sweep: %s on %s",
                              model.name.c_str(), spec.name.c_str()));
    table.setHeader({"L", "baseline", "SDF", "speedup"});
    for (int64_t seq_len = flags.getInt("min-len");
         seq_len <= flags.getInt("max-len"); seq_len *= 2) {
        RunConfig run;
        run.seqLen = seq_len;
        run.batch = flags.getInt("batch");
        run.strategy = Strategy::Baseline;
        const InferenceResult base = runInference(spec, model, run);
        run.strategy = Strategy::Fused;
        const InferenceResult sdf = runInference(spec, model, run);
        table.addRow({
            strprintf("%lld", (long long)seq_len),
            formatSeconds(base.seconds),
            formatSeconds(sdf.seconds),
            strprintf("%.2fx", base.seconds / sdf.seconds),
        });
    }
    table.print();
    return 0;
}

int
usage()
{
    std::printf(
        "softrec — transformer softmax-recomposition simulator\n\n"
        "usage: softrec <specs|run|compare|sweep> [flags]\n\n"
        "  specs    print the modeled GPUs (paper Table 1)\n"
        "  run      one inference with per-category report\n"
        "           (--timeline, --roofline for detail)\n"
        "  compare  baseline vs SD vs SDF for one model\n"
        "  sweep    SDF speedup across sequence lengths\n"
        "           (--min-len, --max-len)\n\n"
        "common flags: --model bert|gptneo|gptneo-local|bigbird|"
        "longformer\n"
        "              --gpu a100|3090|t4  --seq-len N  --batch N\n"
        "              --strategy baseline|sd|sdf\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "specs")
            return cmdSpecs();
        FlagParser flags;
        addCommonFlags(flags);
        if (command == "run") {
            flags.addBool("timeline", "print the per-kernel timeline");
            flags.addBool("roofline", "print the roofline table");
            if (!flags.parse(args))
                return usage();
            return cmdRun(flags);
        }
        if (command == "compare") {
            if (!flags.parse(args))
                return usage();
            return cmdCompare(flags);
        }
        if (command == "sweep") {
            flags.addInt("min-len", 512, "first sequence length");
            flags.addInt("max-len", 8192, "last sequence length");
            if (!flags.parse(args))
                return usage();
            return cmdSweep(flags);
        }
        warn("unknown command '%s'", command.c_str());
        return usage();
    } catch (const std::exception &error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
