# Empty dependencies file for fig7_library_baselines.
# This may be replaced when dependencies are built.
