file(REMOVE_RECURSE
  "CMakeFiles/fig7_library_baselines.dir/fig7_library_baselines.cpp.o"
  "CMakeFiles/fig7_library_baselines.dir/fig7_library_baselines.cpp.o.d"
  "fig7_library_baselines"
  "fig7_library_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_library_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
