file(REMOVE_RECURSE
  "CMakeFiles/ablation_gptneo_local.dir/ablation_gptneo_local.cpp.o"
  "CMakeFiles/ablation_gptneo_local.dir/ablation_gptneo_local.cpp.o.d"
  "ablation_gptneo_local"
  "ablation_gptneo_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gptneo_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
