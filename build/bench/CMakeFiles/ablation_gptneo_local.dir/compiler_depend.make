# Empty compiler generated dependencies file for ablation_gptneo_local.
# This may be replaced when dependencies are built.
