file(REMOVE_RECURSE
  "CMakeFiles/gpu_comparison.dir/gpu_comparison.cpp.o"
  "CMakeFiles/gpu_comparison.dir/gpu_comparison.cpp.o.d"
  "gpu_comparison"
  "gpu_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
