# Empty dependencies file for gpu_comparison.
# This may be replaced when dependencies are built.
