# Empty compiler generated dependencies file for ablation_generation.
# This may be replaced when dependencies are built.
