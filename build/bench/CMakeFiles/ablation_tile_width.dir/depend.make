# Empty dependencies file for ablation_tile_width.
# This may be replaced when dependencies are built.
