file(REMOVE_RECURSE
  "CMakeFiles/ablation_tile_width.dir/ablation_tile_width.cpp.o"
  "CMakeFiles/ablation_tile_width.dir/ablation_tile_width.cpp.o.d"
  "ablation_tile_width"
  "ablation_tile_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tile_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
