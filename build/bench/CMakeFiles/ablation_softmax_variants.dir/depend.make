# Empty dependencies file for ablation_softmax_variants.
# This may be replaced when dependencies are built.
