file(REMOVE_RECURSE
  "CMakeFiles/ablation_softmax_variants.dir/ablation_softmax_variants.cpp.o"
  "CMakeFiles/ablation_softmax_variants.dir/ablation_softmax_variants.cpp.o.d"
  "ablation_softmax_variants"
  "ablation_softmax_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_softmax_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
