# Empty compiler generated dependencies file for fig8_recomposition.
# This may be replaced when dependencies are built.
