file(REMOVE_RECURSE
  "CMakeFiles/fig8_recomposition.dir/fig8_recomposition.cpp.o"
  "CMakeFiles/fig8_recomposition.dir/fig8_recomposition.cpp.o.d"
  "fig8_recomposition"
  "fig8_recomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_recomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
