# Empty dependencies file for fig5_softmax_sublayers.
# This may be replaced when dependencies are built.
