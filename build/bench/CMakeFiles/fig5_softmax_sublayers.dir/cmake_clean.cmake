file(REMOVE_RECURSE
  "CMakeFiles/fig5_softmax_sublayers.dir/fig5_softmax_sublayers.cpp.o"
  "CMakeFiles/fig5_softmax_sublayers.dir/fig5_softmax_sublayers.cpp.o.d"
  "fig5_softmax_sublayers"
  "fig5_softmax_sublayers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_softmax_sublayers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
