file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_step.dir/ablation_training_step.cpp.o"
  "CMakeFiles/ablation_training_step.dir/ablation_training_step.cpp.o.d"
  "ablation_training_step"
  "ablation_training_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
