# Empty dependencies file for ablation_training_step.
# This may be replaced when dependencies are built.
