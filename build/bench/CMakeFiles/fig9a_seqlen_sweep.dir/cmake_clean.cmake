file(REMOVE_RECURSE
  "CMakeFiles/fig9a_seqlen_sweep.dir/fig9a_seqlen_sweep.cpp.o"
  "CMakeFiles/fig9a_seqlen_sweep.dir/fig9a_seqlen_sweep.cpp.o.d"
  "fig9a_seqlen_sweep"
  "fig9a_seqlen_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_seqlen_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
