# Empty dependencies file for fig9a_seqlen_sweep.
# This may be replaced when dependencies are built.
