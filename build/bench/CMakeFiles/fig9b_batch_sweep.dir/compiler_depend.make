# Empty compiler generated dependencies file for fig9b_batch_sweep.
# This may be replaced when dependencies are built.
