file(REMOVE_RECURSE
  "CMakeFiles/fig9b_batch_sweep.dir/fig9b_batch_sweep.cpp.o"
  "CMakeFiles/fig9b_batch_sweep.dir/fig9b_batch_sweep.cpp.o.d"
  "fig9b_batch_sweep"
  "fig9b_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
