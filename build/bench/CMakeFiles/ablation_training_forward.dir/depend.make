# Empty dependencies file for ablation_training_forward.
# This may be replaced when dependencies are built.
