file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_forward.dir/ablation_training_forward.cpp.o"
  "CMakeFiles/ablation_training_forward.dir/ablation_training_forward.cpp.o.d"
  "ablation_training_forward"
  "ablation_training_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
