# Empty dependencies file for table1_gpu_specs.
# This may be replaced when dependencies are built.
