# Empty compiler generated dependencies file for bert_inference.
# This may be replaced when dependencies are built.
