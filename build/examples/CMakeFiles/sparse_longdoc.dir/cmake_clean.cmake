file(REMOVE_RECURSE
  "CMakeFiles/sparse_longdoc.dir/sparse_longdoc.cpp.o"
  "CMakeFiles/sparse_longdoc.dir/sparse_longdoc.cpp.o.d"
  "sparse_longdoc"
  "sparse_longdoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_longdoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
