# Empty compiler generated dependencies file for sparse_longdoc.
# This may be replaced when dependencies are built.
