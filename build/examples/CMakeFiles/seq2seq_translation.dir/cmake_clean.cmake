file(REMOVE_RECURSE
  "CMakeFiles/seq2seq_translation.dir/seq2seq_translation.cpp.o"
  "CMakeFiles/seq2seq_translation.dir/seq2seq_translation.cpp.o.d"
  "seq2seq_translation"
  "seq2seq_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq2seq_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
