file(REMOVE_RECURSE
  "CMakeFiles/whatif_gpu.dir/whatif_gpu.cpp.o"
  "CMakeFiles/whatif_gpu.dir/whatif_gpu.cpp.o.d"
  "whatif_gpu"
  "whatif_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
