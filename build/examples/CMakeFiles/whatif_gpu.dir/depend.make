# Empty dependencies file for whatif_gpu.
# This may be replaced when dependencies are built.
