file(REMOVE_RECURSE
  "CMakeFiles/softrec.dir/softrec_cli.cpp.o"
  "CMakeFiles/softrec.dir/softrec_cli.cpp.o.d"
  "softrec"
  "softrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
