# Empty dependencies file for softrec.
# This may be replaced when dependencies are built.
