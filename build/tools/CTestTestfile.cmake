# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(softrec_cli_specs "/root/repo/build/tools/softrec" "specs")
set_tests_properties(softrec_cli_specs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(softrec_cli_run "/root/repo/build/tools/softrec" "run" "--model" "bigbird" "--seq-len" "1024" "--timeline" "--roofline")
set_tests_properties(softrec_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(softrec_cli_compare "/root/repo/build/tools/softrec" "compare" "--model" "gptneo-local" "--seq-len" "1024")
set_tests_properties(softrec_cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(softrec_cli_sweep "/root/repo/build/tools/softrec" "sweep" "--model" "bert" "--min-len" "512" "--max-len" "2048")
set_tests_properties(softrec_cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(softrec_cli_usage "/root/repo/build/tools/softrec")
set_tests_properties(softrec_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(softrec_cli_bad_flag "/root/repo/build/tools/softrec" "run" "--bogus" "1")
set_tests_properties(softrec_cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
