file(REMOVE_RECURSE
  "CMakeFiles/softrec_workload.dir/corpus.cpp.o"
  "CMakeFiles/softrec_workload.dir/corpus.cpp.o.d"
  "libsoftrec_workload.a"
  "libsoftrec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
