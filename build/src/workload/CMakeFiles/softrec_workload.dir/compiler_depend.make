# Empty compiler generated dependencies file for softrec_workload.
# This may be replaced when dependencies are built.
