file(REMOVE_RECURSE
  "libsoftrec_workload.a"
)
