# Empty compiler generated dependencies file for softrec_tensor.
# This may be replaced when dependencies are built.
