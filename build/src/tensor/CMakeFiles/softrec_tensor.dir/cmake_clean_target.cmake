file(REMOVE_RECURSE
  "libsoftrec_tensor.a"
)
