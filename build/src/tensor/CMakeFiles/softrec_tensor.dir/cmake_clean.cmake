file(REMOVE_RECURSE
  "CMakeFiles/softrec_tensor.dir/tensor.cpp.o"
  "CMakeFiles/softrec_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/softrec_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/softrec_tensor.dir/tensor_ops.cpp.o.d"
  "libsoftrec_tensor.a"
  "libsoftrec_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
