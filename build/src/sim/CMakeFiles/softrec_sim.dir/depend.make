# Empty dependencies file for softrec_sim.
# This may be replaced when dependencies are built.
