file(REMOVE_RECURSE
  "libsoftrec_sim.a"
)
