
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cpp" "src/sim/CMakeFiles/softrec_sim.dir/cache_model.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/cache_model.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/softrec_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/softrec_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/gpu_spec.cpp" "src/sim/CMakeFiles/softrec_sim.dir/gpu_spec.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/sim/kernel_profile.cpp" "src/sim/CMakeFiles/softrec_sim.dir/kernel_profile.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/kernel_profile.cpp.o.d"
  "/root/repo/src/sim/occupancy.cpp" "src/sim/CMakeFiles/softrec_sim.dir/occupancy.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/occupancy.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/softrec_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/softrec_sim.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
