file(REMOVE_RECURSE
  "CMakeFiles/softrec_sim.dir/cache_model.cpp.o"
  "CMakeFiles/softrec_sim.dir/cache_model.cpp.o.d"
  "CMakeFiles/softrec_sim.dir/cost_model.cpp.o"
  "CMakeFiles/softrec_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/softrec_sim.dir/gpu.cpp.o"
  "CMakeFiles/softrec_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/softrec_sim.dir/gpu_spec.cpp.o"
  "CMakeFiles/softrec_sim.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/softrec_sim.dir/kernel_profile.cpp.o"
  "CMakeFiles/softrec_sim.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/softrec_sim.dir/occupancy.cpp.o"
  "CMakeFiles/softrec_sim.dir/occupancy.cpp.o.d"
  "CMakeFiles/softrec_sim.dir/report.cpp.o"
  "CMakeFiles/softrec_sim.dir/report.cpp.o.d"
  "libsoftrec_sim.a"
  "libsoftrec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
