file(REMOVE_RECURSE
  "CMakeFiles/softrec_common.dir/csv.cpp.o"
  "CMakeFiles/softrec_common.dir/csv.cpp.o.d"
  "CMakeFiles/softrec_common.dir/flags.cpp.o"
  "CMakeFiles/softrec_common.dir/flags.cpp.o.d"
  "CMakeFiles/softrec_common.dir/logging.cpp.o"
  "CMakeFiles/softrec_common.dir/logging.cpp.o.d"
  "CMakeFiles/softrec_common.dir/rng.cpp.o"
  "CMakeFiles/softrec_common.dir/rng.cpp.o.d"
  "CMakeFiles/softrec_common.dir/stats.cpp.o"
  "CMakeFiles/softrec_common.dir/stats.cpp.o.d"
  "CMakeFiles/softrec_common.dir/table.cpp.o"
  "CMakeFiles/softrec_common.dir/table.cpp.o.d"
  "CMakeFiles/softrec_common.dir/units.cpp.o"
  "CMakeFiles/softrec_common.dir/units.cpp.o.d"
  "libsoftrec_common.a"
  "libsoftrec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
