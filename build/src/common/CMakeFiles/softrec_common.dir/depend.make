# Empty dependencies file for softrec_common.
# This may be replaced when dependencies are built.
