file(REMOVE_RECURSE
  "libsoftrec_common.a"
)
