# Empty dependencies file for softrec_core.
# This may be replaced when dependencies are built.
