file(REMOVE_RECURSE
  "CMakeFiles/softrec_core.dir/attention_exec.cpp.o"
  "CMakeFiles/softrec_core.dir/attention_exec.cpp.o.d"
  "CMakeFiles/softrec_core.dir/recomposition.cpp.o"
  "CMakeFiles/softrec_core.dir/recomposition.cpp.o.d"
  "CMakeFiles/softrec_core.dir/softmax_math.cpp.o"
  "CMakeFiles/softrec_core.dir/softmax_math.cpp.o.d"
  "CMakeFiles/softrec_core.dir/training.cpp.o"
  "CMakeFiles/softrec_core.dir/training.cpp.o.d"
  "libsoftrec_core.a"
  "libsoftrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
