file(REMOVE_RECURSE
  "libsoftrec_core.a"
)
