# Empty dependencies file for softrec_model.
# This may be replaced when dependencies are built.
