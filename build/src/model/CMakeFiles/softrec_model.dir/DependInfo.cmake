
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/decode.cpp" "src/model/CMakeFiles/softrec_model.dir/decode.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/decode.cpp.o.d"
  "/root/repo/src/model/engine.cpp" "src/model/CMakeFiles/softrec_model.dir/engine.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/engine.cpp.o.d"
  "/root/repo/src/model/functional_layer.cpp" "src/model/CMakeFiles/softrec_model.dir/functional_layer.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/functional_layer.cpp.o.d"
  "/root/repo/src/model/library_profiles.cpp" "src/model/CMakeFiles/softrec_model.dir/library_profiles.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/library_profiles.cpp.o.d"
  "/root/repo/src/model/model_config.cpp" "src/model/CMakeFiles/softrec_model.dir/model_config.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/model_config.cpp.o.d"
  "/root/repo/src/model/schedule.cpp" "src/model/CMakeFiles/softrec_model.dir/schedule.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/schedule.cpp.o.d"
  "/root/repo/src/model/seq2seq.cpp" "src/model/CMakeFiles/softrec_model.dir/seq2seq.cpp.o" "gcc" "src/model/CMakeFiles/softrec_model.dir/seq2seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/softrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/softrec_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/softrec_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/softrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fp16/CMakeFiles/softrec_fp16.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softrec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/softrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
