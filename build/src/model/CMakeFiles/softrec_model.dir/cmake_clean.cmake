file(REMOVE_RECURSE
  "CMakeFiles/softrec_model.dir/decode.cpp.o"
  "CMakeFiles/softrec_model.dir/decode.cpp.o.d"
  "CMakeFiles/softrec_model.dir/engine.cpp.o"
  "CMakeFiles/softrec_model.dir/engine.cpp.o.d"
  "CMakeFiles/softrec_model.dir/functional_layer.cpp.o"
  "CMakeFiles/softrec_model.dir/functional_layer.cpp.o.d"
  "CMakeFiles/softrec_model.dir/library_profiles.cpp.o"
  "CMakeFiles/softrec_model.dir/library_profiles.cpp.o.d"
  "CMakeFiles/softrec_model.dir/model_config.cpp.o"
  "CMakeFiles/softrec_model.dir/model_config.cpp.o.d"
  "CMakeFiles/softrec_model.dir/schedule.cpp.o"
  "CMakeFiles/softrec_model.dir/schedule.cpp.o.d"
  "CMakeFiles/softrec_model.dir/seq2seq.cpp.o"
  "CMakeFiles/softrec_model.dir/seq2seq.cpp.o.d"
  "libsoftrec_model.a"
  "libsoftrec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
