file(REMOVE_RECURSE
  "libsoftrec_model.a"
)
