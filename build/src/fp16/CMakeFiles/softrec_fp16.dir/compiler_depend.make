# Empty compiler generated dependencies file for softrec_fp16.
# This may be replaced when dependencies are built.
