file(REMOVE_RECURSE
  "libsoftrec_fp16.a"
)
