file(REMOVE_RECURSE
  "CMakeFiles/softrec_fp16.dir/half.cpp.o"
  "CMakeFiles/softrec_fp16.dir/half.cpp.o.d"
  "libsoftrec_fp16.a"
  "libsoftrec_fp16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_fp16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
