
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/bsr.cpp" "src/sparse/CMakeFiles/softrec_sparse.dir/bsr.cpp.o" "gcc" "src/sparse/CMakeFiles/softrec_sparse.dir/bsr.cpp.o.d"
  "/root/repo/src/sparse/bsr_matrix.cpp" "src/sparse/CMakeFiles/softrec_sparse.dir/bsr_matrix.cpp.o" "gcc" "src/sparse/CMakeFiles/softrec_sparse.dir/bsr_matrix.cpp.o.d"
  "/root/repo/src/sparse/patterns.cpp" "src/sparse/CMakeFiles/softrec_sparse.dir/patterns.cpp.o" "gcc" "src/sparse/CMakeFiles/softrec_sparse.dir/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fp16/CMakeFiles/softrec_fp16.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/softrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
