file(REMOVE_RECURSE
  "libsoftrec_sparse.a"
)
