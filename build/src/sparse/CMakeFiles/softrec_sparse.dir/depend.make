# Empty dependencies file for softrec_sparse.
# This may be replaced when dependencies are built.
