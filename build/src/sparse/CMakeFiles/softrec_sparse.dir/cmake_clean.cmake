file(REMOVE_RECURSE
  "CMakeFiles/softrec_sparse.dir/bsr.cpp.o"
  "CMakeFiles/softrec_sparse.dir/bsr.cpp.o.d"
  "CMakeFiles/softrec_sparse.dir/bsr_matrix.cpp.o"
  "CMakeFiles/softrec_sparse.dir/bsr_matrix.cpp.o.d"
  "CMakeFiles/softrec_sparse.dir/patterns.cpp.o"
  "CMakeFiles/softrec_sparse.dir/patterns.cpp.o.d"
  "libsoftrec_sparse.a"
  "libsoftrec_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
