# Empty compiler generated dependencies file for softrec_kernels.
# This may be replaced when dependencies are built.
