file(REMOVE_RECURSE
  "CMakeFiles/softrec_kernels.dir/bsr_gemm.cpp.o"
  "CMakeFiles/softrec_kernels.dir/bsr_gemm.cpp.o.d"
  "CMakeFiles/softrec_kernels.dir/bsr_softmax.cpp.o"
  "CMakeFiles/softrec_kernels.dir/bsr_softmax.cpp.o.d"
  "CMakeFiles/softrec_kernels.dir/elementwise.cpp.o"
  "CMakeFiles/softrec_kernels.dir/elementwise.cpp.o.d"
  "CMakeFiles/softrec_kernels.dir/fused_mha.cpp.o"
  "CMakeFiles/softrec_kernels.dir/fused_mha.cpp.o.d"
  "CMakeFiles/softrec_kernels.dir/gemm.cpp.o"
  "CMakeFiles/softrec_kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/softrec_kernels.dir/kernel_common.cpp.o"
  "CMakeFiles/softrec_kernels.dir/kernel_common.cpp.o.d"
  "CMakeFiles/softrec_kernels.dir/softmax_kernels.cpp.o"
  "CMakeFiles/softrec_kernels.dir/softmax_kernels.cpp.o.d"
  "libsoftrec_kernels.a"
  "libsoftrec_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softrec_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
