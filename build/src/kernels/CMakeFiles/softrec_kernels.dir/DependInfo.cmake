
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bsr_gemm.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/bsr_gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/bsr_gemm.cpp.o.d"
  "/root/repo/src/kernels/bsr_softmax.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/bsr_softmax.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/bsr_softmax.cpp.o.d"
  "/root/repo/src/kernels/elementwise.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/elementwise.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/elementwise.cpp.o.d"
  "/root/repo/src/kernels/fused_mha.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/fused_mha.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/fused_mha.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/kernels/kernel_common.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/kernel_common.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/kernel_common.cpp.o.d"
  "/root/repo/src/kernels/softmax_kernels.cpp" "src/kernels/CMakeFiles/softrec_kernels.dir/softmax_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/softrec_kernels.dir/softmax_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/softrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fp16/CMakeFiles/softrec_fp16.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/softrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/softrec_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softrec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
