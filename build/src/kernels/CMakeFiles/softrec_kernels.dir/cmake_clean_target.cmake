file(REMOVE_RECURSE
  "libsoftrec_kernels.a"
)
