file(REMOVE_RECURSE
  "CMakeFiles/test_library_profiles.dir/test_library_profiles.cpp.o"
  "CMakeFiles/test_library_profiles.dir/test_library_profiles.cpp.o.d"
  "test_library_profiles"
  "test_library_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_library_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
