# Empty compiler generated dependencies file for test_library_profiles.
# This may be replaced when dependencies are built.
