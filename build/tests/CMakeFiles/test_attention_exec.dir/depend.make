# Empty dependencies file for test_attention_exec.
# This may be replaced when dependencies are built.
