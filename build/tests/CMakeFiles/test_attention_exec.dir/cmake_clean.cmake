file(REMOVE_RECURSE
  "CMakeFiles/test_attention_exec.dir/test_attention_exec.cpp.o"
  "CMakeFiles/test_attention_exec.dir/test_attention_exec.cpp.o.d"
  "test_attention_exec"
  "test_attention_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
