# Empty dependencies file for test_fused_mha.
# This may be replaced when dependencies are built.
