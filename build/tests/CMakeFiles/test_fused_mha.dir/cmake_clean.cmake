file(REMOVE_RECURSE
  "CMakeFiles/test_fused_mha.dir/test_fused_mha.cpp.o"
  "CMakeFiles/test_fused_mha.dir/test_fused_mha.cpp.o.d"
  "test_fused_mha"
  "test_fused_mha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fused_mha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
