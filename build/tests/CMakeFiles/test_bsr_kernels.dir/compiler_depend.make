# Empty compiler generated dependencies file for test_bsr_kernels.
# This may be replaced when dependencies are built.
