file(REMOVE_RECURSE
  "CMakeFiles/test_bsr_kernels.dir/test_bsr_kernels.cpp.o"
  "CMakeFiles/test_bsr_kernels.dir/test_bsr_kernels.cpp.o.d"
  "test_bsr_kernels"
  "test_bsr_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsr_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
