file(REMOVE_RECURSE
  "CMakeFiles/test_decode.dir/test_decode.cpp.o"
  "CMakeFiles/test_decode.dir/test_decode.cpp.o.d"
  "test_decode"
  "test_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
