file(REMOVE_RECURSE
  "CMakeFiles/test_seq2seq.dir/test_seq2seq.cpp.o"
  "CMakeFiles/test_seq2seq.dir/test_seq2seq.cpp.o.d"
  "test_seq2seq"
  "test_seq2seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq2seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
