file(REMOVE_RECURSE
  "CMakeFiles/test_softmax_math.dir/test_softmax_math.cpp.o"
  "CMakeFiles/test_softmax_math.dir/test_softmax_math.cpp.o.d"
  "test_softmax_math"
  "test_softmax_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
