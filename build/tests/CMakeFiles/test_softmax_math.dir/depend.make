# Empty dependencies file for test_softmax_math.
# This may be replaced when dependencies are built.
