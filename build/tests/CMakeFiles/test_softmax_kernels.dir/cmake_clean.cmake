file(REMOVE_RECURSE
  "CMakeFiles/test_softmax_kernels.dir/test_softmax_kernels.cpp.o"
  "CMakeFiles/test_softmax_kernels.dir/test_softmax_kernels.cpp.o.d"
  "test_softmax_kernels"
  "test_softmax_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
