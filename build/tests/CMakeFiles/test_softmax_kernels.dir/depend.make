# Empty dependencies file for test_softmax_kernels.
# This may be replaced when dependencies are built.
