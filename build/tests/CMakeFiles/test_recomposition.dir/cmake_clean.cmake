file(REMOVE_RECURSE
  "CMakeFiles/test_recomposition.dir/test_recomposition.cpp.o"
  "CMakeFiles/test_recomposition.dir/test_recomposition.cpp.o.d"
  "test_recomposition"
  "test_recomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
