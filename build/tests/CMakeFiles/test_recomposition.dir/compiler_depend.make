# Empty compiler generated dependencies file for test_recomposition.
# This may be replaced when dependencies are built.
