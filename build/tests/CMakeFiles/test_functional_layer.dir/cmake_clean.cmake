file(REMOVE_RECURSE
  "CMakeFiles/test_functional_layer.dir/test_functional_layer.cpp.o"
  "CMakeFiles/test_functional_layer.dir/test_functional_layer.cpp.o.d"
  "test_functional_layer"
  "test_functional_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
