# Empty dependencies file for test_functional_layer.
# This may be replaced when dependencies are built.
