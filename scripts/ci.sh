#!/usr/bin/env bash
# Pre-merge gate for softrec. Run from anywhere; operates on the repo
# that contains this script. Stages:
#
#   1. clang-format check     (skipped if clang-format is absent)
#   2. softrec_analyze        (multi-pass static analyzer: fixture
#      self-test, then the tree gate — zero unbaselined findings)
#   3. clang-tidy             (skipped if clang-tidy is absent), then
#      cppcheck               (skipped if cppcheck is absent)
#   4. release build + tests  (-DSOFTREC_WERROR=ON), run six times:
#      serial, SOFTREC_THREADS=4 to exercise the thread pool,
#      SOFTREC_SIMD=off to pin the scalar conversion fallback,
#      SOFTREC_ATTENTION=streaming to serve/decode through the
#      single-pass streaming attention backend,
#      SOFTREC_SERVE_KV_DTYPE=int8 to serve on the quantized KV
#      cache, then SOFTREC_SERVE_PREFILL_CHUNK=3 to serve through
#      the chunked-prefill path
#   5. checked build + tests  (-DSOFTREC_CHECKED_BUILD=ON, WERROR)
#   6. asan-ubsan build + tests (sanitizers + checked mode, WERROR),
#      plus a serve smoke: the serve_throughput bench runs end to end
#      under the sanitizers (reports go to the build dir, not the root)
#   7. tsan build + parallel-runtime tests under SOFTREC_THREADS=4
#      (profiling enabled: test_profiler exercises the counter merge;
#      test_serve exercises queue/pool shutdown ordering;
#      test_admission races concurrent reserves; test_serve_engine
#      drives the async engine's producer/consumer threads;
#      test_streaming_attention runs the tiled kernel's strips)
#   8. bench smoke: micro_kernels, micro_simd, micro_streaming,
#      serve_throughput, and the serve_load admission-regime trace at
#      a CI-sized sequence length; SOFTREC_BENCH_DIR routes every
#      report to the repo root, each expected BENCH_*.json must exist
#      there, and all must pass tools/check_bench_json.py (the
#      serve_throughput smoke includes the int8-vs-f16 KV capacity A/B
#      arm and asserts its >= 1.8x ratio; the serve_load smoke includes
#      the head-of-line arm — 4k-token prompts arriving mid-decode —
#      and asserts chunked prefill's >= 3x active-stream p95 win); plus
#      negative checks that malformed SOFTREC_BENCH_SEQLEN,
#      SOFTREC_ATTENTION, SOFTREC_SERVE_KV_DTYPE, and
#      SOFTREC_SERVE_PREFILL_CHUNK values hard-error instead of
#      falling back
#
# Every stage must pass; the script stops at the first failure.
# A toolchain without clang still runs stages 2 and 4-6, which are the
# load-bearing ones: the static analyzer, the warning-clean release
# build, the invariant-checked build, and the sanitized suite.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== ci: %s ===\n' "$*"; }

step "clang-format (check only)"
if command -v clang-format >/dev/null 2>&1; then
    git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run -Werror
    echo "clang-format: OK"
else
    echo "clang-format not found; SKIP"
fi

step "softrec_analyze self-test (fixtures, tokenizer, SARIF, baseline)"
python3 tools/softrec_analyze --self-test

step "softrec_analyze over src/ (zero unbaselined findings)"
python3 tools/softrec_analyze --root "${ROOT}"

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake --preset tidy >/dev/null
    python3 scripts/run_clang_tidy.py --build-dir build/tidy
else
    echo "clang-tidy not found; SKIP"
fi

step "cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
    cppcheck --enable=warning,performance,portability --std=c++17 \
        --language=c++ -q --inline-suppr --error-exitcode=1 \
        --suppressions-list=tools/cppcheck_suppressions.txt \
        -I src src/
    echo "cppcheck: OK"
else
    echo "cppcheck not found; SKIP"
fi

step "release build (WERROR) + tests"
cmake --preset release -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/release -j "${JOBS}"
ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_THREADS=4 (thread-pool path)"
SOFTREC_THREADS=4 \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_SIMD=off (scalar conversion fallback)"
SOFTREC_SIMD=off \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_ATTENTION=streaming (online-softmax backend)"
SOFTREC_ATTENTION=streaming \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_SERVE_KV_DTYPE=int8 (quantized KV cache)"
SOFTREC_SERVE_KV_DTYPE=int8 \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_SERVE_PREFILL_CHUNK=3 (chunked prefill)"
SOFTREC_SERVE_PREFILL_CHUNK=3 \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "checked build (WERROR) + tests"
cmake --preset checked -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/checked -j "${JOBS}"
ctest --test-dir build/checked --output-on-failure -j "${JOBS}"

step "asan-ubsan build (WERROR) + tests"
cmake --preset asan-ubsan -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/asan-ubsan -j "${JOBS}"
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ctest --test-dir build/asan-ubsan --output-on-failure -j "${JOBS}"

step "serve smoke under asan-ubsan"
cmake --build build/asan-ubsan -j "${JOBS}" --target serve_throughput
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
SOFTREC_BENCH_DIR="${ROOT}/build/asan-ubsan/bench" \
SOFTREC_BENCH_SEQLEN=64 SOFTREC_THREADS=2 \
    ./build/asan-ubsan/bench/serve_throughput >/dev/null

step "tsan build + parallel runtime tests (SOFTREC_THREADS=4)"
cmake --preset tsan -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/tsan -j "${JOBS}" --target \
    test_exec_context test_parallel_determinism \
    test_attention_exec test_functional_layer test_profiler \
    test_serve test_admission test_serve_engine \
    test_streaming_attention
SOFTREC_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build/tsan --output-on-failure -j "${JOBS}" \
    -R 'test_exec_context|test_parallel_determinism|test_attention_exec|test_functional_layer|test_profiler|test_serve|test_admission|test_serve_engine|test_streaming_attention'

step "serve-load smoke: admission regimes under a live trace"
cmake --build build/release -j "${JOBS}" --target serve_load
( cd build/release/bench &&
  SOFTREC_BENCH_DIR="${ROOT}" SOFTREC_THREADS=4 ./serve_load \
      >/dev/null )

step "bench smoke: BENCH JSON schema gate (reports at repo root)"
cmake --build build/release -j "${JOBS}" --target micro_kernels \
    micro_simd micro_streaming serve_throughput
( cd build/release/bench &&
  SOFTREC_BENCH_DIR="${ROOT}" \
  SOFTREC_BENCH_SEQLEN=512 SOFTREC_THREADS=4 ./micro_kernels \
      --benchmark_filter='BM_SafeSoftmax/512' >/dev/null )
( cd build/release/bench &&
  SOFTREC_BENCH_DIR="${ROOT}" \
  SOFTREC_BENCH_SEQLEN=512 ./micro_simd >/dev/null )
( cd build/release/bench &&
  SOFTREC_BENCH_DIR="${ROOT}" \
  SOFTREC_BENCH_SEQLEN=128 SOFTREC_THREADS=4 ./serve_throughput \
      >/dev/null )
( cd build/release/bench &&
  SOFTREC_BENCH_DIR="${ROOT}" \
  SOFTREC_BENCH_SEQLEN=256 SOFTREC_THREADS=4 ./micro_streaming \
      >/dev/null )
for report in BENCH_micro_kernels.json BENCH_micro_simd.json \
              BENCH_micro_streaming.json \
              BENCH_serve_throughput.json BENCH_serve_load.json; do
    if [ ! -f "${ROOT}/${report}" ]; then
        echo "ci: expected bench report ${report} missing at repo root" >&2
        exit 1
    fi
done
python3 tools/check_bench_json.py \
    "${ROOT}/BENCH_micro_kernels.json" \
    "${ROOT}/BENCH_micro_simd.json" \
    "${ROOT}/BENCH_micro_streaming.json" \
    "${ROOT}/BENCH_serve_throughput.json" \
    "${ROOT}/BENCH_serve_load.json"

step "negative: malformed env knobs must hard-error, not fall back"
if SOFTREC_BENCH_SEQLEN=lots ./build/release/bench/micro_simd \
    >/dev/null 2>&1; then
    echo "ci: SOFTREC_BENCH_SEQLEN=lots did not fail" >&2
    exit 1
fi
echo "SOFTREC_BENCH_SEQLEN=lots: rejected (OK)"
if SOFTREC_BENCH_SEQLEN=32 ./build/release/bench/micro_simd \
    >/dev/null 2>&1; then
    echo "ci: SOFTREC_BENCH_SEQLEN=32 (below floor) did not fail" >&2
    exit 1
fi
echo "SOFTREC_BENCH_SEQLEN=32: rejected (OK)"
if SOFTREC_ATTENTION=flash SOFTREC_BENCH_SEQLEN=64 \
    ./build/release/bench/serve_throughput >/dev/null 2>&1; then
    echo "ci: SOFTREC_ATTENTION=flash did not fail" >&2
    exit 1
fi
echo "SOFTREC_ATTENTION=flash: rejected (OK)"
if SOFTREC_SERVE_KV_DTYPE=fp4 SOFTREC_BENCH_SEQLEN=64 \
    ./build/release/bench/serve_throughput >/dev/null 2>&1; then
    echo "ci: SOFTREC_SERVE_KV_DTYPE=fp4 did not fail" >&2
    exit 1
fi
echo "SOFTREC_SERVE_KV_DTYPE=fp4: rejected (OK)"
if SOFTREC_SERVE_PREFILL_CHUNK=weasel SOFTREC_BENCH_SEQLEN=64 \
    ./build/release/bench/serve_throughput >/dev/null 2>&1; then
    echo "ci: SOFTREC_SERVE_PREFILL_CHUNK=weasel did not fail" >&2
    exit 1
fi
echo "SOFTREC_SERVE_PREFILL_CHUNK=weasel: rejected (OK)"

printf '\n=== ci: all gates passed ===\n'
