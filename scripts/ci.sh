#!/usr/bin/env bash
# Pre-merge gate for softrec. Run from anywhere; operates on the repo
# that contains this script. Stages:
#
#   1. clang-format check     (skipped if clang-format is absent)
#   2. softrec_lint           (domain numerics/hygiene lint + self-test)
#   3. clang-tidy             (skipped if clang-tidy is absent)
#   4. release build + tests  (-DSOFTREC_WERROR=ON), run three times:
#      serial, SOFTREC_THREADS=4 to exercise the thread pool, then
#      SOFTREC_SIMD=off to pin the scalar conversion fallback
#   5. checked build + tests  (-DSOFTREC_CHECKED_BUILD=ON, WERROR)
#   6. asan-ubsan build + tests (sanitizers + checked mode, WERROR)
#   7. tsan build + parallel-runtime tests under SOFTREC_THREADS=4
#      (profiling enabled: test_profiler exercises the counter merge)
#   8. bench smoke: micro_kernels and micro_simd at L=512; the emitted
#      BENCH JSON must pass tools/check_bench_json.py
#
# Every stage must pass; the script stops at the first failure.
# A toolchain without clang still runs stages 2 and 4-6, which are the
# load-bearing ones: the domain lint, the warning-clean release build,
# the invariant-checked build, and the sanitized suite.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"
JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n=== ci: %s ===\n' "$*"; }

step "clang-format (check only)"
if command -v clang-format >/dev/null 2>&1; then
    git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run -Werror
    echo "clang-format: OK"
else
    echo "clang-format not found; SKIP"
fi

step "softrec_lint self-test"
python3 tools/softrec_lint.py --self-test

step "softrec_lint over src/"
python3 tools/softrec_lint.py --root "${ROOT}"

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
    cmake --preset tidy >/dev/null
    python3 scripts/run_clang_tidy.py --build-dir build/tidy
else
    echo "clang-tidy not found; SKIP"
fi

step "release build (WERROR) + tests"
cmake --preset release -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/release -j "${JOBS}"
ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_THREADS=4 (thread-pool path)"
SOFTREC_THREADS=4 \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "release tests with SOFTREC_SIMD=off (scalar conversion fallback)"
SOFTREC_SIMD=off \
    ctest --test-dir build/release --output-on-failure -j "${JOBS}"

step "checked build (WERROR) + tests"
cmake --preset checked -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/checked -j "${JOBS}"
ctest --test-dir build/checked --output-on-failure -j "${JOBS}"

step "asan-ubsan build (WERROR) + tests"
cmake --preset asan-ubsan -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/asan-ubsan -j "${JOBS}"
ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1" \
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ctest --test-dir build/asan-ubsan --output-on-failure -j "${JOBS}"

step "tsan build + parallel runtime tests (SOFTREC_THREADS=4)"
cmake --preset tsan -DSOFTREC_WERROR=ON >/dev/null
cmake --build build/tsan -j "${JOBS}" --target \
    test_exec_context test_parallel_determinism \
    test_attention_exec test_functional_layer test_profiler
SOFTREC_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build/tsan --output-on-failure -j "${JOBS}" \
    -R 'test_exec_context|test_parallel_determinism|test_attention_exec|test_functional_layer|test_profiler'

step "bench smoke: BENCH JSON schema gate"
cmake --build build/release -j "${JOBS}" --target micro_kernels \
    micro_simd
( cd build/release/bench &&
  SOFTREC_BENCH_SEQLEN=512 SOFTREC_THREADS=4 ./micro_kernels \
      --benchmark_filter='BM_SafeSoftmax/512' >/dev/null )
( cd build/release/bench &&
  SOFTREC_BENCH_SEQLEN=512 ./micro_simd >/dev/null )
python3 tools/check_bench_json.py \
    build/release/bench/BENCH_micro_kernels.json \
    build/release/bench/BENCH_micro_simd.json

printf '\n=== ci: all gates passed ===\n'
