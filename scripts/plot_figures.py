#!/usr/bin/env python3
"""Plot the paper's figures from the CSV artifacts the benches emit.

Run the figure benches first (they write fig*.csv into the working
directory), then:

    python3 scripts/plot_figures.py [--outdir plots]

Requires matplotlib. Each missing CSV is skipped with a note, so the
script degrades gracefully if only some benches were run.
"""

import argparse
import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    if not os.path.exists(path):
        print(f"skip: {path} not found (run the matching bench first)")
        return None
    with open(path) as handle:
        return list(csv.DictReader(handle))


def plot_fig2(rows, outdir, plt):
    models = [r["model"] for r in rows]
    cats = ["sda_matmul", "softmax", "fc", "feedforward", "other"]
    labels = ["MatMul(SDA)", "Softmax", "FC", "FeedForward", "Other"]
    bottoms = [0.0] * len(models)
    fig, ax = plt.subplots(figsize=(7, 4))
    for cat, label in zip(cats, labels):
        vals = [float(r[cat]) * 100 for r in rows]
        ax.bar(models, vals, bottom=bottoms, label=label)
        bottoms = [b + v for b, v in zip(bottoms, vals)]
    ax.set_ylabel("share of execution time (%)")
    ax.set_title("Fig. 2: execution-time breakdown (A100, L=4096)")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig2_breakdown.png"), dpi=150)
    print("wrote fig2_breakdown.png")


def plot_fig8(rows, outdir, plt):
    models = [r["model"] for r in rows]
    fig, axes = plt.subplots(1, 2, figsize=(10, 4))
    width = 0.35
    x = range(len(models))
    for ax, (sd_key, sdf_key), title in zip(
        axes,
        [("sd_norm_time", "sdf_norm_time"),
         ("sd_norm_bytes", "sdf_norm_bytes")],
        ["(a) normalized time", "(b) normalized off-chip accesses"],
    ):
        ax.bar([i - width / 2 for i in x],
               [float(r[sd_key]) for r in rows], width, label="SD")
        ax.bar([i + width / 2 for i in x],
               [float(r[sdf_key]) for r in rows], width, label="SDF")
        ax.axhline(1.0, color="k", linewidth=0.8, linestyle="--",
                   label="baseline")
        ax.set_xticks(list(x))
        ax.set_xticklabels(models, rotation=20, fontsize=8)
        ax.set_title(title)
        ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig8_recomposition.png"), dpi=150)
    print("wrote fig8_recomposition.png")


def plot_sweep(rows, key, xlabel, name, outdir, plt):
    series = defaultdict(list)
    for r in rows:
        series[r["model"]].append((int(r[key]), float(r["sdf_speedup"])))
    fig, ax = plt.subplots(figsize=(6, 4))
    for model, points in series.items():
        points.sort()
        ax.plot([p[0] for p in points], [p[1] for p in points],
                marker="o", label=model)
    ax.set_xlabel(xlabel)
    ax.set_ylabel("SDF speedup over baseline")
    ax.set_xscale("log", base=2)
    ax.axhline(1.0, color="k", linewidth=0.8, linestyle="--")
    ax.legend(fontsize=8)
    ax.set_title(name)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, f"{name}.png"), dpi=150)
    print(f"wrote {name}.png")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--outdir", default="plots")
    args = parser.parse_args()
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")
    os.makedirs(args.outdir, exist_ok=True)

    rows = read_csv("fig2_breakdown.csv")
    if rows:
        plot_fig2(rows, args.outdir, plt)
    rows = read_csv("fig8_recomposition.csv")
    if rows:
        plot_fig8(rows, args.outdir, plt)
    rows = read_csv("fig9a_seqlen_sweep.csv")
    if rows:
        plot_sweep(rows, "seq_len", "sequence length L",
                   "fig9a_seqlen_sweep", args.outdir, plt)
    rows = read_csv("fig9b_batch_sweep.csv")
    if rows:
        plot_sweep(rows, "batch", "batch size",
                   "fig9b_batch_sweep", args.outdir, plt)


if __name__ == "__main__":
    main()
