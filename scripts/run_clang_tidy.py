#!/usr/bin/env python3
"""Run clang-tidy over every src/ entry of compile_commands.json.

Typical use (the `tidy` preset exports compile commands):

    cmake --preset tidy
    python3 scripts/run_clang_tidy.py --build-dir build/tidy

Behaviour when clang-tidy is not installed: print a SKIP notice and
exit 0, so CI pipelines on toolchains without clang stay green (pass
--require to turn that into a failure instead). Diagnostics from
clang-tidy make the script exit 1; the repo .clang-tidy profile maps
the serious check families to errors.

Exit status: 0 clean or skipped, 1 diagnostics, 2 usage error.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def load_entries(build_dir, source_root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print("run_clang_tidy: %s not found; configure with "
              "`cmake --preset tidy` first" % db_path, file=sys.stderr)
        return None
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    src_prefix = os.path.join(os.path.realpath(source_root), "src") + \
        os.sep
    files = []
    for entry in db:
        path = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if path.startswith(src_prefix) and path.endswith(".cpp"):
            files.append(path)
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build/tidy",
                        help="build tree holding compile_commands.json "
                             "(default: build/tidy)")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary to use")
    parser.add_argument("--jobs", type=int,
                        default=multiprocessing.cpu_count(),
                        help="parallel clang-tidy processes")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of skipping when "
                             "clang-tidy is not installed")
    args = parser.parse_args(argv)

    source_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        msg = "run_clang_tidy: clang-tidy not found on PATH"
        if args.require:
            print(msg, file=sys.stderr)
            return 2
        print(msg + "; SKIP (install clang-tidy to enable this gate)")
        return 0

    files = load_entries(args.build_dir, source_root)
    if files is None:
        return 2
    if not files:
        print("run_clang_tidy: no src/ entries in the compilation "
              "database", file=sys.stderr)
        return 2

    print("run_clang_tidy: %s over %d files (%d jobs)"
          % (tidy, len(files), args.jobs))

    def run_one(path):
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", path],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        return path, proc.returncode, proc.stdout, proc.stderr

    failed = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, rc, out, err in pool.map(run_one, files):
            rel = os.path.relpath(path, source_root)
            if rc != 0 or "warning:" in out or "error:" in out:
                failed += 1
                print("== %s" % rel)
                if out.strip():
                    print(out.rstrip())
                if err.strip():
                    print(err.rstrip(), file=sys.stderr)

    if failed:
        print("run_clang_tidy: diagnostics in %d of %d files"
              % (failed, len(files)), file=sys.stderr)
        return 1
    print("run_clang_tidy: OK (%d files clean)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
