/**
 * @file
 * What-if study: the paper's "memory wall" remark (Section 2.3) —
 * compute scales faster than memory bandwidth, so the softmax layer
 * will matter *more* on future GPUs. This example models hypothetical
 * A100 successors with growing compute-to-bandwidth ratios and shows
 * that the benefit of softmax recomposition grows with them. Also
 * demonstrates how downstream users can define their own GpuSpec.
 */

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/engine.hpp"

using namespace softrec;

namespace {

/** An A100 scaled by independent compute and bandwidth factors. */
GpuSpec
scaledA100(const std::string &name, double compute_factor,
           double bandwidth_factor)
{
    GpuSpec spec = GpuSpec::a100();
    spec.name = name;
    spec.fp16TensorFlops *= compute_factor;
    spec.fp16CudaFlops *= compute_factor;
    spec.dramBandwidth *= bandwidth_factor;
    return spec;
}

} // namespace

int
main()
{
    const ModelConfig model = ModelConfig::bertLarge();
    const int64_t seq_len = 4096;

    std::printf("What-if: %s at L = %lld on hypothetical future GPUs "
                "(tensor compute grows faster than DRAM bandwidth)\n\n",
                model.name.c_str(), (long long)seq_len);

    const std::vector<GpuSpec> gpus = {
        GpuSpec::a100(),
        scaledA100("A100 x2 compute", 2.0, 1.25),
        scaledA100("A100 x4 compute", 4.0, 1.5),
        scaledA100("A100 x8 compute", 8.0, 2.0),
    };

    TextTable table("");
    table.setHeader({"GPU", "FLOPS/BW (FLOP/B)", "baseline latency",
                     "softmax share", "SDF speedup"});
    for (const GpuSpec &spec : gpus) {
        RunConfig run;
        run.seqLen = seq_len;
        run.strategy = Strategy::Baseline;
        const InferenceResult base = runInference(spec, model, run);
        run.strategy = Strategy::Fused;
        const InferenceResult sdf = runInference(spec, model, run);
        table.addRow({
            spec.name,
            strprintf("%.0f",
                      spec.fp16TensorFlops / spec.dramBandwidth),
            formatSeconds(base.seconds),
            strprintf("%.0f%%",
                      100.0 * base.softmaxSeconds() / base.seconds),
            strprintf("%.2fx", base.seconds / sdf.seconds),
        });
    }
    table.print();

    std::printf("\nAs the paper predicts (Section 2.3): every step up "
                "the memory wall moves MatMul time down and leaves "
                "the memory-bound softmax exposed, so eliminating its "
                "off-chip traffic pays more on each successive "
                "generation.\n");
    return 0;
}
