/**
 * @file
 * Sequence-to-sequence scenario: the vanilla encoder-decoder
 * transformer of the paper's background section translating long
 * documents. Shows softmax recomposition applied to all three
 * attention flavours at once — encoder self-attention, decoder causal
 * self-attention, and rectangular decoder-to-encoder cross-attention.
 */

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/seq2seq.hpp"

using namespace softrec;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const Seq2SeqConfig config = Seq2SeqConfig::vanillaBig();

    std::printf("%s on %s: %lld encoder + %lld decoder layers, "
                "D_m = %lld, %lld heads\n\n",
                config.name.c_str(), spec.name.c_str(),
                (long long)config.encoderLayers,
                (long long)config.decoderLayers,
                (long long)config.dModel, (long long)config.numHeads);

    // Long-document translation: a 4096-token source document, and a
    // summary-length vs document-length target to show the
    // rectangular cross-attention at two aspect ratios.
    TextTable table("Translation latency by softmax strategy");
    table.setHeader({"src -> tgt", "Baseline", "SD", "SDF",
                     "SDF speedup", "softmax share (baseline)"});
    struct Case
    {
        int64_t src;
        int64_t tgt;
    };
    for (const Case &c : {Case{4096, 4096}, Case{4096, 1024},
                          Case{1024, 4096}, Case{512, 512}}) {
        Seq2SeqRun run;
        run.srcLen = c.src;
        run.tgtLen = c.tgt;
        run.strategy = Strategy::Baseline;
        const Seq2SeqResult base =
            runSeq2SeqInference(spec, config, run);
        run.strategy = Strategy::Decomposed;
        const Seq2SeqResult sd = runSeq2SeqInference(spec, config, run);
        run.strategy = Strategy::Fused;
        const Seq2SeqResult sdf =
            runSeq2SeqInference(spec, config, run);
        table.addRow({
            strprintf("%lld -> %lld", (long long)c.src,
                      (long long)c.tgt),
            formatSeconds(base.seconds),
            formatSeconds(sd.seconds),
            formatSeconds(sdf.seconds),
            strprintf("%.2fx", base.seconds / sdf.seconds),
            strprintf("%.0f%%",
                      100.0 * base.softmaxSeconds / base.seconds),
        });
    }
    table.print();

    std::printf(
        "\nEvery attention block benefits: the encoder's L_src x "
        "L_src self-attention, the decoder's causal L_tgt x L_tgt "
        "self-attention, and the rectangular L_tgt x L_src "
        "cross-attention all get their softmax recomposed into the "
        "adjacent GEMMs. At 512 -> 512 the attention matrices are "
        "small and the technique is neutral, matching Fig. 9(a).\n");
    return 0;
}
