/**
 * @file
 * End-to-end inference study: run any of the paper's four models on
 * any of the three GPUs at a chosen sequence length and batch size,
 * and print the per-category report under all three softmax
 * strategies.
 *
 * Usage: bert_inference [model] [seq_len] [batch] [gpu]
 *   model: bert | gptneo | bigbird | longformer   (default bert)
 *   seq_len: power-of-two-ish multiple of 64      (default 4096)
 *   batch: >= 1                                   (default 1)
 *   gpu: a100 | 3090 | t4                         (default a100)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/engine.hpp"

using namespace softrec;

namespace {

ModelConfig
pickModel(const std::string &name)
{
    if (name == "bert")
        return ModelConfig::bertLarge();
    if (name == "gptneo")
        return ModelConfig::gptNeo13B();
    if (name == "bigbird")
        return ModelConfig::bigBirdLarge();
    if (name == "longformer")
        return ModelConfig::longformerLarge();
    fatal("unknown model '%s' (want bert|gptneo|bigbird|longformer)",
          name.c_str());
}

GpuSpec
pickGpu(const std::string &name)
{
    if (name == "a100")
        return GpuSpec::a100();
    if (name == "3090")
        return GpuSpec::rtx3090();
    if (name == "t4")
        return GpuSpec::t4();
    fatal("unknown GPU '%s' (want a100|3090|t4)", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const ModelConfig model =
        pickModel(argc > 1 ? argv[1] : "bert");
    const int64_t seq_len = argc > 2 ? std::atoll(argv[2]) : 4096;
    const int64_t batch = argc > 3 ? std::atoll(argv[3]) : 1;
    const GpuSpec spec = pickGpu(argc > 4 ? argv[4] : "a100");

    std::printf("%s on %s, L = %lld, batch = %lld "
                "(%s attention, %lld layers, D_m = %lld)\n\n",
                model.name.c_str(), spec.name.c_str(),
                (long long)seq_len, (long long)batch,
                attentionKindName(model.attention),
                (long long)model.numLayers, (long long)model.dModel);

    TextTable summary("Strategy summary");
    summary.setHeader({"Strategy", "latency", "speedup", "DRAM traffic",
                       "off-chip energy", "kernels"});
    double baseline_seconds = 0.0;

    for (Strategy strategy : allStrategies()) {
        RunConfig run;
        run.seqLen = seq_len;
        run.batch = batch;
        run.strategy = strategy;
        const InferenceResult result = runInference(spec, model, run);
        if (strategy == Strategy::Baseline)
            baseline_seconds = result.seconds;
        summary.addRow({
            strategyName(strategy),
            formatSeconds(result.seconds),
            strprintf("%.2fx", baseline_seconds / result.seconds),
            formatBytes(result.dramBytes()),
            strprintf("%.2f J", result.offChipEnergyJoules),
            strprintf("%lld", (long long)result.kernelLaunches),
        });

        TextTable breakdown(strprintf("Per-category breakdown (%s)",
                                      strategyName(strategy)));
        breakdown.setHeader({"Category", "time", "share", "traffic"});
        for (const auto &[category, totals] : result.categories) {
            breakdown.addRow({
                kernelCategoryName(category),
                formatSeconds(totals.seconds),
                strprintf("%.1f%%",
                          100.0 * totals.seconds / result.seconds),
                formatBytes(totals.dramBytes()),
            });
        }
        breakdown.print();
        std::printf("\n");
    }
    summary.print();
    return 0;
}
