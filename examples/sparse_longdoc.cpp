/**
 * @file
 * Long-document scenario (the paper's motivating workload): generate
 * a synthetic TriviaQA-like corpus, show why long sequence lengths
 * matter (documents lose content when truncated at small L), compare
 * BigBird / Longformer block-sparse attention structures, and measure
 * what softmax recomposition buys on them — including a functional
 * validation of the sparse pipeline on a small slice.
 */

#include <cstdio>

#include "common/exec_context.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/attention_exec.hpp"
#include "model/engine.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/corpus.hpp"

using namespace softrec;

/** Shared context: honors SOFTREC_THREADS. */
static ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

int
main()
{
    // ------------------------------------------------------------------
    // 1. The workload: long documents get truncated at small L.
    // ------------------------------------------------------------------
    CorpusConfig corpus_config;
    corpus_config.numDocuments = 256;
    const SyntheticCorpus corpus(corpus_config);
    std::printf("Synthetic long-document corpus: %lld documents, "
                "mean length %.0f tokens\n",
                (long long)corpus_config.numDocuments,
                corpus.averageLength());
    TextTable trunc("Documents truncated at sequence length L");
    trunc.setHeader({"L", "documents cut short"});
    for (int64_t seq_len : {512, 1024, 2048, 4096, 8192}) {
        trunc.addRow({
            strprintf("%lld", (long long)seq_len),
            strprintf("%.0f%%",
                      100.0 * corpus.fractionLongerThan(seq_len)),
        });
    }
    trunc.print();

    // ------------------------------------------------------------------
    // 2. The attention structures at L = 4096.
    // ------------------------------------------------------------------
    const int64_t seq_len = 4096;
    std::printf("\nBlock-sparse attention structures at L = %lld:\n",
                (long long)seq_len);
    for (const ModelConfig &model :
         {ModelConfig::bigBirdLarge(), ModelConfig::longformerLarge()}) {
        const BsrLayout layout = model.buildLayout(seq_len);
        const SparsityStats stats = analyzeSparsity(layout);
        std::printf("  %-16s %s; rows carry %lld-%lld blocks "
                    "(imbalance %.1fx)\n",
                    model.name.c_str(), layout.toString().c_str(),
                    (long long)stats.minRowBlocks,
                    (long long)stats.maxRowBlocks, stats.imbalance);
    }

    // ------------------------------------------------------------------
    // 3. Functional validation of the sparse pipeline (small slice).
    // ------------------------------------------------------------------
    BigBirdParams small_params;
    small_params.blockSize = 16;
    small_params.windowBlocks = 1;
    small_params.globalBlocks = 1;
    small_params.randomBlocks = 1;
    const BsrLayout small_layout = bigBirdPattern(256, small_params);
    SdaConfig small;
    small.seqLen = 256;
    small.dHead = 32;
    small.layout = &small_layout;
    small.subVector = 16;
    AttentionInputs inputs = makeAttentionInputs(small);
    Rng rng(404);
    fillNormal(inputs.q, rng, 0.0, 0.8);
    fillNormal(inputs.k, rng, 0.0, 0.8);
    fillNormal(inputs.v, rng, 0.0, 0.8);
    const Tensor<float> reference =
        referenceSparseAttention(small, inputs);
    std::printf("\nFunctional sparse-attention check (L = 256, "
                "BigBird-like layout):\n");
    for (Strategy strategy : allStrategies()) {
        const Tensor<Half> out =
            runAttention(execCtx(), small, inputs, strategy);
        std::printf("  %-8s max |out - fp64 reference| = %.2e\n",
                    strategyName(strategy),
                    maxAbsDiff(toFloat(out), reference));
    }

    // ------------------------------------------------------------------
    // 4. What recomposition buys on the sparse models (A100).
    // ------------------------------------------------------------------
    const GpuSpec spec = GpuSpec::a100();
    std::printf("\nModeled end-to-end inference on %s "
                "(L = %lld, batch 1):\n\n",
                spec.name.c_str(), (long long)seq_len);
    TextTable table("");
    table.setHeader({"Model", "Baseline", "SD", "SDF", "SDF speedup",
                     "softmax share (baseline)"});
    for (const ModelConfig &model :
         {ModelConfig::bigBirdLarge(), ModelConfig::longformerLarge()}) {
        RunConfig run;
        run.seqLen = seq_len;
        run.strategy = Strategy::Baseline;
        const auto base = runInference(spec, model, run);
        run.strategy = Strategy::Decomposed;
        const auto sd = runInference(spec, model, run);
        run.strategy = Strategy::Fused;
        const auto sdf = runInference(spec, model, run);
        table.addRow({
            model.name,
            formatSeconds(base.seconds),
            formatSeconds(sd.seconds),
            formatSeconds(sdf.seconds),
            strprintf("%.2fx", base.seconds / sdf.seconds),
            strprintf("%.0f%%",
                      100.0 * base.softmaxSeconds() / base.seconds),
        });
    }
    table.print();

    std::printf("\nSparse attention makes decomposition *itself* a "
                "win (not just fusion): per-sub-vector thread blocks "
                "replace the baseline's worst-case full-row "
                "allocation, whose idle lanes waste most of the "
                "memory bandwidth (paper Section 5.1).\n");
    return 0;
}
