/**
 * @file
 * Quickstart: softmax recomposition on a single attention head.
 *
 * Demonstrates the two halves of the library in ~100 lines:
 *
 *  1. the *functional* side — run one scaled-dot-product-attention
 *     head under Baseline, SD (decomposed), and SDF (fused) and show
 *     all three produce the same numbers;
 *  2. the *performance-model* side — plan the same SDA block at
 *     BERT-large scale on a simulated A100 and show why SDF wins
 *     (attention-matrix sweeps 4 -> 2, softmax traffic eliminated).
 */

#include <cstdio>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/attention_exec.hpp"
#include "core/recomposition.hpp"
#include "sim/gpu.hpp"
#include "tensor/tensor_ops.hpp"

using namespace softrec;

/** Shared context: honors SOFTREC_THREADS. */
static ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

int
main()
{
    // ------------------------------------------------------------------
    // 1. Functional equivalence on a small head.
    // ------------------------------------------------------------------
    SdaConfig small;
    small.seqLen = 128;
    small.dHead = 32;
    small.subVector = 32;
    small.attnTiling.tileM = 32;
    small.attnTiling.tileN = 32;
    small.attnTiling.tileK = 16;

    AttentionInputs inputs = makeAttentionInputs(small);
    Rng rng(2022);
    fillNormal(inputs.q, rng, 0.0, 0.8);
    fillNormal(inputs.k, rng, 0.0, 0.8);
    fillNormal(inputs.v, rng, 0.0, 0.8);

    const Tensor<float> reference =
        referenceDenseAttention(small, inputs);
    std::printf("Functional check, one attention head "
                "(L = %lld, D_head = %lld):\n",
                (long long)small.seqLen, (long long)small.dHead);
    for (Strategy strategy : allStrategies()) {
        const Tensor<Half> out =
            runAttention(execCtx(), small, inputs, strategy);
        std::printf("  %-8s max |out - fp64 reference| = %.2e\n",
                    strategyName(strategy),
                    maxAbsDiff(toFloat(out), reference));
    }

    // ------------------------------------------------------------------
    // 2. Performance model at paper scale (BERT-large SDA block).
    // ------------------------------------------------------------------
    SdaConfig big;
    big.batch = 1;
    big.heads = 16;
    big.seqLen = 4096;
    big.dHead = 64;

    const GpuSpec spec = GpuSpec::a100();
    std::printf("\nModeled SDA block, BERT-large shapes on %s "
                "(L = 4096, 16 heads, FP16):\n",
                spec.name.c_str());
    double baseline_seconds = 0.0;
    for (Strategy strategy : allStrategies()) {
        const SdaSchedule sched =
            buildSdaSchedule(spec, big, strategy);
        Gpu gpu(spec);
        for (const KernelProfile &prof : sched.kernels)
            gpu.launch(prof);
        if (strategy == Strategy::Baseline)
            baseline_seconds = gpu.totalSeconds();
        std::printf("  %-8s %2zu kernels  %9s  traffic %-10s "
                    "attention sweeps %d  speedup %.2fx\n",
                    strategyName(strategy), sched.kernels.size(),
                    formatSeconds(gpu.totalSeconds()).c_str(),
                    formatBytes(gpu.totalDramBytes()).c_str(),
                    sched.attentionSweeps,
                    baseline_seconds / gpu.totalSeconds());
    }

    std::printf("\nWhat happened: decomposing softmax into LS/IR/GS "
                "lets LS fuse into the Q.K^T epilogue and GS into the "
                "P.V prologue, so the 512 MiB attention matrix "
                "crosses the off-chip boundary twice instead of four "
                "times. See DESIGN.md and the bench/ harnesses for "
                "the full-paper reproduction.\n");
    return 0;
}
