/**
 * @file
 * Trace-driven serve-load benchmark for the async engine's admission
 * regimes. Three arms pin the admission thresholds so each regime is
 * actually exercised:
 *
 *   normal  gentle Poisson arrivals under roomy thresholds
 *           (soft 95 / hard 99) — the engine stays in normal mode;
 *   soft    the same Poisson trace with soft-enter pinned to 1% —
 *           every step boundary keeps the engine soft-throttled, so
 *           long prompts bounce off the throttled prompt cap;
 *   hard    bursty arrivals with hard-enter pinned to 2% — the
 *           regime ramps normal→soft→hard and fail-fasts the bulk of
 *           the burst;
 *   hol     head-of-line A/B: an already-active stream decodes while
 *           two 4k-token prompts arrive mid-decode, once with
 *           unchunked prefill (the whole prompt lands between two
 *           decode steps) and once with chunked prefill (one chunk
 *           per step boundary). The active stream's p95 inter-token
 *           latency must improve >= 3x with chunking — asserted, not
 *           just reported.
 *
 * Each arm replays its arrival trace against a live ServeEngine:
 * producers sleep until each request's arrival time, submit, and on
 * accept hand the session to a consumer thread that drains the token
 * stream recording per-token latencies (first token measured from
 * submit, the rest as inter-token deltas). Per arm the report carries
 * goodput (delivered tokens/s), reject rate, p50/p95/p99 token
 * latency, the admission controller's mode residency, and the KV
 * occupancy picture (blocks in use / reserved, actual bytes
 * reserved, storage format) so capacity wins show up in the
 * trajectory, not just tokens/s. Arms honour SOFTREC_SERVE_KV_DTYPE,
 * so the same trace can be replayed on the int8 cache.
 *
 * Writes BENCH_serve_load.json (schema softrec-bench-v1); gated in CI
 * by tools/check_bench_json.py.
 */

#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "model/decode.hpp"
#include "serve/serve_engine.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

constexpr int64_t kGenerateTokens = 6;
constexpr int64_t kTenants = 3;

// Head-of-line arm: a paced foreground stream of 24 tokens with two
// 4k-token prompts landing mid-decode. Chunk 128 splits each prompt
// into 32 chunks, so the worst per-step stall shrinks by an order of
// magnitude while total prefill work is identical.
constexpr int64_t kHolPromptTokens = 4096;
constexpr int64_t kHolForegroundTokens = 24;
constexpr int64_t kHolChunkTokens = 128;

/** One request in an arrival trace. */
struct TraceItem
{
    double atSeconds = 0.0;
    int64_t promptTokens = 0;
    int64_t tenantId = 0;
};

/** Mixed prompt lengths: short/medium/long in rotation. */
int64_t
mixedPromptTokens(int64_t index)
{
    static const int64_t lengths[] = {4, 8, 16};
    return lengths[index % 3];
}

/** Poisson arrivals: exponential interarrival at `rate_per_s`. */
std::vector<TraceItem>
poissonTrace(Rng &rng, int64_t requests, double rate_per_s)
{
    std::vector<TraceItem> trace;
    trace.reserve(size_t(requests));
    double t = 0.0;
    for (int64_t i = 0; i < requests; ++i) {
        t += -std::log(1.0 - rng.uniform()) / rate_per_s;
        TraceItem item;
        item.atSeconds = t;
        item.promptTokens = mixedPromptTokens(i);
        item.tenantId = i % kTenants;
        trace.push_back(item);
    }
    return trace;
}

/** Bursty arrivals: `per_burst` simultaneous requests every gap. */
std::vector<TraceItem>
burstyTrace(int64_t bursts, int64_t per_burst, double gap_seconds)
{
    std::vector<TraceItem> trace;
    trace.reserve(size_t(bursts * per_burst));
    for (int64_t b = 0; b < bursts; ++b) {
        for (int64_t i = 0; i < per_burst; ++i) {
            TraceItem item;
            item.atSeconds = double(b) * gap_seconds;
            item.promptTokens = mixedPromptTokens(b * per_burst + i);
            item.tenantId = i % kTenants;
            trace.push_back(item);
        }
    }
    return trace;
}

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens, int64_t d_model)
{
    Tensor<Half> prompt(Shape({tokens, d_model}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

/** What one arm measured. */
struct ArmResult
{
    int64_t submitted = 0;
    int64_t accepted = 0;
    int64_t rejected = 0;
    int64_t tokensDelivered = 0;
    double seconds = 0.0;
    std::vector<double> tokenLatencies;
    ServeStats stats;
};

/** Replay `trace` against a fresh engine under `config`. */
ArmResult
runArm(const ExecContext &ctx, const DecoderStack &stack,
       const ServeConfig &config, const std::vector<TraceItem> &trace)
{
    ServeEngine engine(ctx, stack, config);
    engine.start();

    std::mutex merge_mutex;
    ArmResult result;
    std::vector<std::thread> consumers;
    consumers.reserve(trace.size());

    Rng prompt_rng(23);
    const double start = engine.nowSeconds();
    for (const TraceItem &item : trace) {
        while (engine.nowSeconds() - start < item.atSeconds)
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));

        ServeRequest request;
        request.tenantId = item.tenantId;
        request.prompt = randomPrompt(prompt_rng, item.promptTokens,
                                      stack.config.dModel);
        request.generateTokens = kGenerateTokens;
        ++result.submitted;
        const double submit_at = engine.nowSeconds();
        SubmitResult submit = engine.submit(std::move(request));
        if (!submit.decision.accepted) {
            SOFTREC_ASSERT(!submit.decision.reason.empty() &&
                               !submit.decision.metric.empty(),
                           "rejection must be structured");
            ++result.rejected;
            continue;
        }
        ++result.accepted;
        consumers.emplace_back(
            [session = std::move(submit.session), submit_at, &engine,
             &merge_mutex, &result]() mutable {
                Tensor<Half> row;
                std::vector<double> latencies;
                double prev = submit_at;
                while (session.stream().next(row)) {
                    const double now = engine.nowSeconds();
                    latencies.push_back(now - prev);
                    prev = now;
                }
                std::lock_guard<std::mutex> lock(merge_mutex);
                result.tokensDelivered += int64_t(latencies.size());
                result.tokenLatencies.insert(
                    result.tokenLatencies.end(), latencies.begin(),
                    latencies.end());
            });
    }

    for (std::thread &consumer : consumers)
        consumer.join();
    engine.waitIdle();
    result.seconds = engine.nowSeconds() - start;
    result.stats = engine.stats();
    return result;
}

/**
 * Head-of-line arm: one already-active stream paced at ~1 ms/token
 * while two 4k-token prompts land mid-decode (after foreground
 * tokens 4 and 8). Returns the foreground stream's per-token
 * latencies; `chunk_tokens` is the A/B knob (0 = unchunked). With
 * maxBatchRows = 2 the second long prompt queues behind the first,
 * so each arm sees the same admission order and the only variable
 * is how prefill interleaves with the foreground's decode steps.
 */
std::vector<double>
runHeadOfLineArm(const ExecContext &ctx, const DecoderStack &stack,
                 int64_t chunk_tokens)
{
    ServeConfig config = ServeConfig::fromEnv();
    config.maxBatchRows = 2;
    config.tokenBudget = 8192;
    config.queueCapacity = 8;
    config.streamCapacity = 4;
    config.admission.softEnterPct = 95;
    config.admission.hardEnterPct = 99;
    config.admission.hysteresisPct = 10;
    config.admission.tenantTokenBudget = 16384;
    config.admission.softPromptCapTokens = kHolPromptTokens;
    config.prefillChunkTokens = chunk_tokens;

    ServeEngine engine(ctx, stack, config);
    engine.start();

    // Long prompts are generated up front so the rng work never
    // lands inside a measured inter-token gap.
    Rng rng(53);
    std::vector<Tensor<Half>> long_prompts;
    long_prompts.push_back(
        randomPrompt(rng, kHolPromptTokens, stack.config.dModel));
    long_prompts.push_back(
        randomPrompt(rng, kHolPromptTokens, stack.config.dModel));

    ServeRequest foreground;
    foreground.tenantId = 0;
    foreground.prompt = randomPrompt(rng, 8, stack.config.dModel);
    foreground.generateTokens = kHolForegroundTokens;
    const double submit_at = engine.nowSeconds();
    SubmitResult active = engine.submit(std::move(foreground));
    SOFTREC_ASSERT(active.decision.accepted,
                   "hol foreground rejected: %s",
                   active.decision.reason.c_str());

    std::vector<ServeSession> background;
    std::vector<double> latencies;
    Tensor<Half> row;
    double prev = submit_at;
    int64_t tokens = 0;
    while (active.session.stream().next(row)) {
        const double now = engine.nowSeconds();
        latencies.push_back(now - prev);
        prev = now;
        ++tokens;
        if (tokens == 4 || tokens == 8) {
            ServeRequest request;
            request.tenantId = tokens / 4; // distinct tenants
            request.prompt = std::move(long_prompts[background.size()]);
            request.generateTokens = 2;
            SubmitResult submit = engine.submit(std::move(request));
            SOFTREC_ASSERT(submit.decision.accepted,
                           "hol long prompt rejected: %s",
                           submit.decision.reason.c_str());
            background.push_back(std::move(submit.session));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SOFTREC_ASSERT(int64_t(latencies.size()) == kHolForegroundTokens,
                   "hol foreground delivered %lld of %lld tokens",
                   (long long)latencies.size(),
                   (long long)kHolForegroundTokens);
    for (ServeSession &session : background) {
        while (session.stream().next(row)) {
        }
    }
    engine.waitIdle();
    return latencies;
}

void
reportArm(BenchReport &report, const std::string &arm,
          const ArmResult &result)
{
    const double goodput =
        result.seconds > 0.0
            ? double(result.tokensDelivered) / result.seconds
            : 0.0;
    const double reject_rate =
        result.submitted > 0
            ? double(result.rejected) / double(result.submitted)
            : 0.0;
    // An arm that delivered nothing (everything rejected) has no
    // percentiles: percentileSeconds hard-errors on an empty sample
    // set, so emit a -1 sentinel — finite for the JSON gate and
    // unmistakable for anything trending the fields.
    const auto token_pct_ms = [&result](double q) {
        if (result.tokenLatencies.empty())
            return -1.0;
        return percentileSeconds(result.tokenLatencies, q) * 1e3;
    };
    report.setDerived(arm + "_goodput_tok_s", goodput);
    report.setDerived(arm + "_reject_rate", reject_rate);
    report.setDerived(arm + "_p50_token_ms", token_pct_ms(0.50));
    report.setDerived(arm + "_p95_token_ms", token_pct_ms(0.95));
    report.setDerived(arm + "_p99_token_ms", token_pct_ms(0.99));
    const AdmissionController::Residency &residency =
        result.stats.residency;
    report.setDerived(
        arm + "_steps_normal",
        double(residency.updatesInMode[size_t(AdmissionMode::Normal)]));
    report.setDerived(
        arm + "_steps_soft",
        double(residency.updatesInMode[size_t(
            AdmissionMode::SoftThrottled)]));
    report.setDerived(
        arm + "_steps_hard",
        double(residency.updatesInMode[size_t(
            AdmissionMode::HardFailFast)]));
    report.setDerived(arm + "_mode_transitions",
                      double(residency.transitions));
    report.setDerived(arm + "_kv_blocks_in_use",
                      double(result.stats.kvBlocksInUse));
    report.setDerived(arm + "_kv_blocks_reserved",
                      double(result.stats.kvBlocksReserved));
    report.setDerived(arm + "_kv_bytes_reserved",
                      double(result.stats.kvBytesReserved));
    report.setDerived(arm + "_kv_token_capacity",
                      double(result.stats.tokenBudget));
    report.setConfig(arm + "_kv_dtype",
                     kvDtypeName(result.stats.kvDtype));
    inform("%s: %.0f tok/s goodput, %.0f%% rejected "
           "(%lld/%lld), token p50 %.2f ms p99 %.2f ms, "
           "residency n/s/h = %lld/%lld/%lld",
           arm.c_str(), goodput, reject_rate * 100.0,
           (long long)result.rejected, (long long)result.submitted,
           token_pct_ms(0.50), token_pct_ms(0.99),
           (long long)residency
               .updatesInMode[size_t(AdmissionMode::Normal)],
           (long long)residency
               .updatesInMode[size_t(AdmissionMode::SoftThrottled)],
           (long long)residency
               .updatesInMode[size_t(AdmissionMode::HardFailFast)]);
}

} // namespace
} // namespace softrec

int
main()
{
    using namespace softrec;

    const int64_t d_model = 32;
    Rng weights_rng(7);
    const DecoderStack stack =
        DecoderStack::random(d_model, /*num_heads=*/2, /*d_ff=*/64,
                             /*num_layers=*/2, weights_rng);
    const ExecContext ctx = ExecContext::fromEnv();

    BenchReport report("serve_load");
    report.setConfig("d_model", d_model);
    report.setConfig("generate_tokens", kGenerateTokens);
    report.setConfig("tenants", kTenants);
    report.setConfig("threads", int64_t(ctx.threads()));

    // Arm "normal": gentle Poisson under roomy thresholds.
    {
        ServeConfig config = ServeConfig::fromEnv();
        config.maxBatchRows = 4;
        config.tokenBudget = 4096;
        config.queueCapacity = 64;
        config.streamCapacity = 64;
        config.admission.softEnterPct = 95;
        config.admission.hardEnterPct = 99;
        config.admission.hysteresisPct = 10;
        config.admission.tenantTokenBudget = 4096;
        config.admission.softPromptCapTokens = 8;
        Rng rng(101);
        const std::vector<TraceItem> trace =
            poissonTrace(rng, /*requests=*/18, /*rate_per_s=*/600.0);
        report.setConfig("normal_requests", int64_t(trace.size()));
        report.setConfig("normal_arrivals", "poisson");
        reportArm(report, "normal", runArm(ctx, stack, config, trace));
    }

    // Arm "soft": the same gentle trace, but soft-enter pinned to 1%
    // so every step boundary holds the engine soft-throttled and the
    // 16-token prompts bounce off the throttled cap of 8.
    {
        ServeConfig config = ServeConfig::fromEnv();
        config.maxBatchRows = 4;
        config.tokenBudget = 4096;
        config.queueCapacity = 64;
        config.streamCapacity = 64;
        config.admission.softEnterPct = 1;
        config.admission.hardEnterPct = 99;
        config.admission.hysteresisPct = 1;
        config.admission.tenantTokenBudget = 4096;
        config.admission.softPromptCapTokens = 8;
        Rng rng(101);
        const std::vector<TraceItem> trace =
            poissonTrace(rng, /*requests=*/18, /*rate_per_s=*/600.0);
        report.setConfig("soft_requests", int64_t(trace.size()));
        report.setConfig("soft_arrivals", "poisson");
        reportArm(report, "soft", runArm(ctx, stack, config, trace));
    }

    // Arm "hard": heavy bursts against thresholds pinned to 1%/2% —
    // the regime ramps to hard-fail-fast and sheds the backlog.
    {
        ServeConfig config = ServeConfig::fromEnv();
        config.maxBatchRows = 2;
        config.tokenBudget = 256;
        config.queueCapacity = 16;
        config.streamCapacity = 64;
        config.admission.softEnterPct = 1;
        config.admission.hardEnterPct = 2;
        config.admission.hysteresisPct = 1;
        config.admission.tenantTokenBudget = 256;
        config.admission.softPromptCapTokens = 16;
        const std::vector<TraceItem> trace =
            burstyTrace(/*bursts=*/4, /*per_burst=*/8,
                        /*gap_seconds=*/0.02);
        report.setConfig("hard_requests", int64_t(trace.size()));
        report.setConfig("hard_arrivals", "bursty");
        reportArm(report, "hard", runArm(ctx, stack, config, trace));
    }

    // Arm "hol": the head-of-line A/B. Unchunked, each 4k-token
    // prompt prefills whole between two decode steps and the active
    // stream eats the entire stall; chunked, the same work lands one
    // chunk per step boundary. The >= 3x p95 improvement is the
    // contract chunked prefill exists to deliver, so it is asserted.
    {
        report.setConfig("hol_prompt_tokens", kHolPromptTokens);
        report.setConfig("hol_foreground_tokens",
                         kHolForegroundTokens);
        report.setConfig("hol_chunk_tokens", kHolChunkTokens);
        const std::vector<double> unchunked =
            runHeadOfLineArm(ctx, stack, /*chunk_tokens=*/0);
        const std::vector<double> chunked =
            runHeadOfLineArm(ctx, stack, kHolChunkTokens);
        const double p95_unchunked =
            percentileSeconds(unchunked, 0.95);
        const double p95_chunked = percentileSeconds(chunked, 0.95);
        const double improvement = p95_unchunked / p95_chunked;
        report.setDerived("hol_unchunked_p95_token_ms",
                          p95_unchunked * 1e3);
        report.setDerived("hol_chunked_p95_token_ms",
                          p95_chunked * 1e3);
        report.setDerived("hol_p95_improvement_x", improvement);
        inform("hol: active-stream p95 %.2f ms unchunked -> %.2f ms "
               "chunked (%.1fx better)",
               p95_unchunked * 1e3, p95_chunked * 1e3, improvement);
        SOFTREC_ASSERT(improvement >= 3.0,
                       "chunked prefill must cut the active stream's "
                       "p95 inter-token latency >= 3x (got %.2fx)",
                       improvement);
    }

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s", path.c_str());
    return 0;
}
