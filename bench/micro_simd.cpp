/**
 * @file
 * Scalar-vs-SIMD A/B micro-benchmarks of the vectorized kernel
 * substrate: batch fp16<->fp32 conversion throughput, the packed-panel
 * GEMM mainloop, and row softmax. Both arms run the same code paths —
 * the backend is switched in-process via setSimdBackend() — so the
 * report isolates exactly what the SIMD conversion paths buy.
 * Writes BENCH_micro_simd.json (schema softrec-bench-v1).
 */

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fp16/half.hpp"
#include "kernels/gemm.hpp"
#include "kernels/softmax_kernels.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

constexpr int kWarmup = 2;
constexpr int kReps = 5;

/** Runs `body` under `backend`, restoring the previous backend. */
template <typename Fn>
double
timedWithBackend(SimdBackend backend, Fn &&body)
{
    const SimdBackend prev = setSimdBackend(backend);
    const double s = bench::medianSeconds(kWarmup, kReps, body);
    setSimdBackend(prev);
    return s;
}

Tensor<Half>
randomHalf(Rng &rng, const Shape &shape)
{
    Tensor<Half> t(shape);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return t;
}

struct ArmTimes
{
    double scalar_s = 0.0;
    double simd_s = 0.0;
};

template <typename Fn>
ArmTimes
runArms(Fn &&body)
{
    ArmTimes t;
    t.scalar_s = timedWithBackend(SimdBackend::Scalar, body);
    t.simd_s = timedWithBackend(detectedSimdBackend(), body);
    return t;
}

void
addArmRows(BenchReport &report, const std::string &stem,
           const ArmTimes &t, uint64_t bytes_read,
           uint64_t bytes_written, int threads)
{
    for (const char *arm : {"scalar", "simd"}) {
        BenchKernelRow row;
        row.name = stem + "." + arm;
        row.ms = (arm[1] == 'c' ? t.scalar_s : t.simd_s) * 1e3;
        row.bytesRead = bytes_read;
        row.bytesWritten = bytes_written;
        row.calls = kReps;
        row.threads = threads;
        report.addKernel(row);
    }
    report.setDerived(stem + "_speedup",
                      t.simd_s > 0.0 ? t.scalar_s / t.simd_s : 0.0);
}

} // namespace
} // namespace softrec

int
main()
{
    using namespace softrec;

    const ExecContext ctx = ExecContext::fromEnv();
    const int64_t L = bench::benchSeqLenFromEnv(4096);
    const int64_t dh = 64;

    BenchReport report("micro_simd");
    report.setConfig("seq_len", L);
    report.setConfig("d_head", dh);
    report.setConfig("threads", int64_t(ctx.threads()));
    report.setConfig("simd_backend",
                     simdBackendName(detectedSimdBackend()));

    Rng rng(7);

    // --- Batch conversion throughput at attention scale (L x dHead).
    {
        const int64_t n = L * dh;
        Tensor<Half> src = randomHalf(rng, Shape({L, dh}));
        std::vector<float> wide(size_t(n), 0.0f);
        Tensor<Half> narrow(Shape({L, dh}));

        const ArmTimes h2f = runArms([&] {
            halfToFloat(src.data(), wide.data(), n);
        });
        addArmRows(report, "conv.h2f", h2f,
                   uint64_t(n) * kFp16Bytes, uint64_t(n) * kFp32Bytes,
                   1);

        const ArmTimes f2h = runArms([&] {
            floatToHalf(wide.data(), narrow.data(), n);
        });
        addArmRows(report, "conv.f2h", f2h,
                   uint64_t(n) * kFp32Bytes, uint64_t(n) * kFp16Bytes,
                   1);
    }

    // --- Packed-panel GEMM mainloop (attention-shaped: k = dHead).
    {
        const int64_t mn = std::min<int64_t>(L, 1024);
        GemmDesc desc;
        desc.name = "bench.gemm";
        desc.m = mn;
        desc.n = mn;
        desc.k = dh;
        Tensor<Half> a = randomHalf(rng, Shape({mn, dh}));
        Tensor<Half> b = randomHalf(rng, Shape({dh, mn}));
        Tensor<Half> c(Shape({mn, mn}));
        GemmOperands ops;
        ops.a = &a;
        ops.b = &b;

        const ArmTimes t = runArms([&] { gemmRun(ctx, desc, ops, c); });
        const uint64_t in_bytes =
            uint64_t((mn + mn) * dh) * kFp16Bytes;
        addArmRows(report, "gemm.mainloop", t, in_bytes,
                   uint64_t(mn * mn) * kFp16Bytes, ctx.threads());
    }

    // --- Row softmax over attention-width rows.
    {
        const int64_t rows = 256;
        SoftmaxShape desc;
        desc.name = "bench.softmax";
        desc.rows = rows;
        desc.cols = L;
        Tensor<Half> in = randomHalf(rng, Shape({rows, L}));
        Tensor<Half> out(Shape({rows, L}));

        const ArmTimes t =
            runArms([&] { rowSoftmaxRun(ctx, desc, in, out); });
        const uint64_t bytes = uint64_t(rows * L) * kFp16Bytes;
        addArmRows(report, "softmax.row", t, bytes, bytes,
                   ctx.threads());
    }

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s (L = %lld, backend = %s)", path.c_str(),
           (long long)L, simdBackendName(detectedSimdBackend()));
    return 0;
}
