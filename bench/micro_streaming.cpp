/**
 * @file
 * Recomposed-vs-streaming attention micro-benchmark: one dense
 * attention head per sequence length, run through the recomposed
 * (Fused-strategy) pipeline and the single-pass streaming kernel,
 * with per-arm profiler traffic and median wall time. The streaming
 * arm must move strictly fewer bytes — it never writes the L x L
 * score matrix — and the report carries the per-L byte and time
 * ratios as derived metrics. Writes BENCH_micro_streaming.json
 * (schema softrec-bench-v1).
 *
 * Sequence lengths: {1024, 4096, 16384} (the paper's evaluation
 * range), or the single SOFTREC_BENCH_SEQLEN point for smoke runs.
 */

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "fp16/half.hpp"
#include "kernels/streaming_attention.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

constexpr int64_t kDHead = 64;

AttentionInputs
randomInputs(Rng &rng, const SdaConfig &config)
{
    auto fill = [&rng](Tensor<Half> &t) {
        for (int64_t i = 0; i < t.numel(); ++i)
            t.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    };
    AttentionInputs inputs = makeAttentionInputs(config);
    fill(inputs.q);
    fill(inputs.k);
    fill(inputs.v);
    return inputs;
}

struct ArmResult
{
    double ms = 0.0;
    uint64_t bytes = 0; //!< all profiler scopes, read + write
};

/** Run one (L, backend) arm under a fresh profiler. */
ArmResult
runArm(BenchReport &report, const std::string &prefix,
       AttentionBackend backend, int64_t seq_len,
       const AttentionInputs &inputs)
{
    SdaConfig config;
    config.seqLen = seq_len;
    config.dHead = kDHead;
    config.backend = backend;

    prof::Profiler profiler;
    ExecContext ctx = ExecContext::fromEnv();
    ctx.profiler = &profiler;

    Tensor<Half> out;
    const double seconds = bench::medianSeconds(1, 3, [&] {
        out = runAttention(ctx, config, inputs, Strategy::Fused);
    });
    SOFTREC_ASSERT(out.numel() == seq_len * kDHead,
                   "arm %s produced the wrong shape", prefix.c_str());

    ArmResult result;
    result.ms = seconds * 1e3;
    for (const auto &[scope_name, totals] : profiler.snapshot()) {
        BenchKernelRow row;
        row.name = prefix + "/" + scope_name;
        row.ms = totals.seconds * 1e3;
        row.bytesRead = totals.bytesRead;
        row.bytesWritten = totals.bytesWritten;
        row.calls = totals.calls;
        row.threads = ctx.threads();
        report.addKernel(row);
        result.bytes += totals.bytesRead + totals.bytesWritten;
    }
    return result;
}

} // namespace
} // namespace softrec

int
main()
{
    using namespace softrec;

    // Fallback 0 = "no override": this bench sweeps its own L set,
    // so the env knob narrows it to a single point for smoke runs.
    const int64_t override_len = bench::benchSeqLenFromEnv(0);
    std::vector<int64_t> lengths;
    if (override_len > 0)
        lengths.push_back(override_len);
    else
        lengths = {1024, 4096, 16384};

    BenchReport report("micro_streaming");
    report.setConfig("d_head", kDHead);
    {
        const ExecContext probe = ExecContext::fromEnv();
        report.setConfig("threads", int64_t(probe.threads()));
    }

    Rng rng(13);
    for (const int64_t seq_len : lengths) {
        SdaConfig shape;
        shape.seqLen = seq_len;
        shape.dHead = kDHead;
        const AttentionInputs inputs = randomInputs(rng, shape);

        const std::string tag =
            strprintf("L%lld", (long long)seq_len);
        const ArmResult recomposed =
            runArm(report, tag + "/recomposed",
                   AttentionBackend::Recomposed, seq_len, inputs);
        const ArmResult streaming =
            runArm(report, tag + "/streaming",
                   AttentionBackend::Streaming, seq_len, inputs);

        // The tentpole claim, asserted where the data is generated:
        // never materializing the score matrix must show up as
        // strictly less measured traffic on the softmax path.
        SOFTREC_ASSERT(streaming.bytes < recomposed.bytes,
                       "streaming moved %llu bytes >= recomposed "
                       "%llu at L=%lld",
                       (unsigned long long)streaming.bytes,
                       (unsigned long long)recomposed.bytes,
                       (long long)seq_len);

        report.setDerived(tag + "_recomposed_ms", recomposed.ms);
        report.setDerived(tag + "_streaming_ms", streaming.ms);
        report.setDerived(tag + "_recomposed_bytes",
                          double(recomposed.bytes));
        report.setDerived(tag + "_streaming_bytes",
                          double(streaming.bytes));
        report.setDerived(tag + "_bytes_ratio",
                          double(streaming.bytes) /
                              double(recomposed.bytes));
        report.setDerived(tag + "_speedup",
                          streaming.ms > 0.0
                              ? recomposed.ms / streaming.ms
                              : 0.0);
        inform("L=%lld: recomposed %.1f ms / %.1f MB, streaming "
               "%.1f ms / %.1f MB (bytes x%.3f, speedup %.2fx)",
               (long long)seq_len, recomposed.ms,
               double(recomposed.bytes) / 1e6, streaming.ms,
               double(streaming.bytes) / 1e6,
               double(streaming.bytes) / double(recomposed.bytes),
               streaming.ms > 0.0 ? recomposed.ms / streaming.ms
                                  : 0.0);
    }

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s", path.c_str());
    return 0;
}
