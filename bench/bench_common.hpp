/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: running
 * all three strategies, formatting ratios, and the paper's published
 * numbers for side-by-side comparison.
 */

#ifndef SOFTREC_BENCH_BENCH_COMMON_HPP
#define SOFTREC_BENCH_BENCH_COMMON_HPP

#include <map>
#include <string>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "model/engine.hpp"
#include "model/model_config.hpp"

namespace softrec {
namespace bench {

/** Baseline / SD / SDF results for one (model, GPU, L, batch). */
struct StrategySweep
{
    InferenceResult baseline;
    InferenceResult decomposed;
    InferenceResult fused;
};

/** Run all three strategies for one configuration. */
inline StrategySweep
runStrategies(const GpuSpec &spec, const ModelConfig &model,
              int64_t seq_len, int64_t batch = 1)
{
    RunConfig run;
    run.seqLen = seq_len;
    run.batch = batch;
    StrategySweep sweep;
    run.strategy = Strategy::Baseline;
    sweep.baseline = runInference(spec, model, run);
    run.strategy = Strategy::Decomposed;
    sweep.decomposed = runInference(spec, model, run);
    run.strategy = Strategy::Fused;
    sweep.fused = runInference(spec, model, run);
    return sweep;
}

/** "1.25x" style formatting. */
inline std::string
ratio(double value)
{
    return strprintf("%.2fx", value);
}

/** "36.2%" style formatting. */
inline std::string
percent(double fraction)
{
    return strprintf("%.1f%%", fraction * 100.0);
}

/** Published end-to-end SDF speedups on A100 (Fig. 8a / abstract). */
inline const std::map<std::string, double> &
paperSpeedupsA100()
{
    static const std::map<std::string, double> values = {
        {"BERT-large", 1.25},
        {"GPT-Neo-1.3B", 1.12},
        {"BigBird-large", 1.57},
        {"Longformer-large", 1.65},
    };
    return values;
}

/** Published SD-only speedups on A100 (Section 5.1). */
inline const std::map<std::string, double> &
paperSdSpeedupsA100()
{
    static const std::map<std::string, double> values = {
        {"BERT-large", 0.94},
        {"GPT-Neo-1.3B", 0.99},
        {"BigBird-large", 1.44},
        {"Longformer-large", 1.49},
    };
    return values;
}

/** Published softmax shares of execution time, A100 L=4096 (Fig. 2). */
inline const std::map<std::string, double> &
paperSoftmaxShares()
{
    static const std::map<std::string, double> values = {
        {"BERT-large", 0.36},
        {"GPT-Neo-1.3B", 0.18},
        {"BigBird-large", 0.40},
        {"Longformer-large", 0.42},
    };
    return values;
}

/** Published SDF speedups on RTX 3090 and T4 (Section 5.1). */
inline const std::map<std::string, std::map<std::string, double>> &
paperSpeedupsOtherGpus()
{
    static const std::map<std::string, std::map<std::string, double>>
        values = {
            {"RTX 3090",
             {{"BERT-large", 1.12},
              {"GPT-Neo-1.3B", 1.05},
              {"BigBird-large", 1.32},
              {"Longformer-large", 1.36}}},
            {"T4",
             {{"BERT-large", 1.22},
              {"GPT-Neo-1.3B", 1.08},
              {"BigBird-large", 1.77},
              {"Longformer-large", 1.87}}},
        };
    return values;
}

} // namespace bench
} // namespace softrec

#endif // SOFTREC_BENCH_BENCH_COMMON_HPP
