/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: running
 * all three strategies, formatting ratios, and the paper's published
 * numbers for side-by-side comparison.
 */

#ifndef SOFTREC_BENCH_BENCH_COMMON_HPP
#define SOFTREC_BENCH_BENCH_COMMON_HPP

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/bench_report.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "model/engine.hpp"
#include "model/model_config.hpp"

namespace softrec {
namespace bench {

/**
 * Warmup + median-of-N wall-clock timing: runs `body` `warmup` times
 * untimed (first-touch page faults, cache fill), then `reps` timed
 * repetitions and returns the median seconds. Single-shot timing is
 * banned in benches — it reports allocation noise, not kernel time.
 */
template <typename Fn>
inline double
medianSeconds(int warmup, int reps, Fn &&body)
{
    SOFTREC_ASSERT(reps >= 1, "medianSeconds needs >= 1 rep");
    for (int i = 0; i < warmup; ++i)
        body();
    std::vector<double> samples;
    samples.reserve(size_t(reps));
    for (int i = 0; i < reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        body();
        const auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double>(stop - start).count());
    }
    std::sort(samples.begin(), samples.end());
    const size_t mid = samples.size() / 2;
    return samples.size() % 2 != 0
        ? samples[mid]
        : 0.5 * (samples[mid - 1] + samples[mid]);
}

/**
 * Measured-bench sequence length: `fallback` (the paper's headline
 * point) unless SOFTREC_BENCH_SEQLEN overrides it, so CI smoke runs
 * and slow containers can shrink the workload without recompiling.
 * Invalid values hard-error (the ServeConfig::fromEnv policy) — a CI
 * smoke run must never quietly benchmark the wrong workload.
 */
inline int64_t
benchSeqLenFromEnv(int64_t fallback)
{
    const char *env = std::getenv("SOFTREC_BENCH_SEQLEN");
    if (env == nullptr || *env == '\0')
        return fallback;
    char *end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 64) {
        fatal("SOFTREC_BENCH_SEQLEN='%s' is invalid: expected an "
              "integer >= 64; unset it to use the default (%lld)",
              env, (long long)fallback);
    }
    return parsed;
}

/** Baseline / SD / SDF results for one (model, GPU, L, batch). */
struct StrategySweep
{
    InferenceResult baseline;
    InferenceResult decomposed;
    InferenceResult fused;
};

/** Run all three strategies for one configuration. */
inline StrategySweep
runStrategies(const GpuSpec &spec, const ModelConfig &model,
              int64_t seq_len, int64_t batch = 1)
{
    RunConfig run;
    run.seqLen = seq_len;
    run.batch = batch;
    StrategySweep sweep;
    run.strategy = Strategy::Baseline;
    sweep.baseline = runInference(spec, model, run);
    run.strategy = Strategy::Decomposed;
    sweep.decomposed = runInference(spec, model, run);
    run.strategy = Strategy::Fused;
    sweep.fused = runInference(spec, model, run);
    return sweep;
}

/**
 * Append one simulated run's per-category totals to a report as
 * kernel rows named "<prefix>/<category>". The simulated GPU executes
 * launches one at a time, so threads is always 1.
 */
inline void
addCategoryRows(BenchReport &report, const std::string &prefix,
                const InferenceResult &result)
{
    for (const auto &[category, totals] : result.categories) {
        BenchKernelRow row;
        row.name = prefix + "/" + kernelCategoryName(category);
        row.ms = totals.seconds * 1e3;
        row.bytesRead = totals.dramReadBytes;
        row.bytesWritten = totals.dramWriteBytes;
        row.calls = totals.launches;
        row.threads = 1;
        report.addKernel(row);
    }
}

/** "1.25x" style formatting. */
inline std::string
ratio(double value)
{
    return strprintf("%.2fx", value);
}

/** "36.2%" style formatting. */
inline std::string
percent(double fraction)
{
    return strprintf("%.1f%%", fraction * 100.0);
}

/** Published end-to-end SDF speedups on A100 (Fig. 8a / abstract). */
inline const std::map<std::string, double> &
paperSpeedupsA100()
{
    static const std::map<std::string, double> values = {
        {"BERT-large", 1.25},
        {"GPT-Neo-1.3B", 1.12},
        {"BigBird-large", 1.57},
        {"Longformer-large", 1.65},
    };
    return values;
}

/** Published SD-only speedups on A100 (Section 5.1). */
inline const std::map<std::string, double> &
paperSdSpeedupsA100()
{
    static const std::map<std::string, double> values = {
        {"BERT-large", 0.94},
        {"GPT-Neo-1.3B", 0.99},
        {"BigBird-large", 1.44},
        {"Longformer-large", 1.49},
    };
    return values;
}

/** Published softmax shares of execution time, A100 L=4096 (Fig. 2). */
inline const std::map<std::string, double> &
paperSoftmaxShares()
{
    static const std::map<std::string, double> values = {
        {"BERT-large", 0.36},
        {"GPT-Neo-1.3B", 0.18},
        {"BigBird-large", 0.40},
        {"Longformer-large", 0.42},
    };
    return values;
}

/** Published SDF speedups on RTX 3090 and T4 (Section 5.1). */
inline const std::map<std::string, std::map<std::string, double>> &
paperSpeedupsOtherGpus()
{
    static const std::map<std::string, std::map<std::string, double>>
        values = {
            {"RTX 3090",
             {{"BERT-large", 1.12},
              {"GPT-Neo-1.3B", 1.05},
              {"BigBird-large", 1.32},
              {"Longformer-large", 1.36}}},
            {"T4",
             {{"BERT-large", 1.22},
              {"GPT-Neo-1.3B", 1.08},
              {"BigBird-large", 1.77},
              {"Longformer-large", 1.87}}},
        };
    return values;
}

} // namespace bench
} // namespace softrec

#endif // SOFTREC_BENCH_BENCH_COMMON_HPP
