/**
 * @file
 * Robustness study: how sensitive are the reproduction's headline
 * conclusions to the model's calibration?
 *
 * The two calibrated quantities with the most leverage are the
 * baseline softmax kernel's quality (its serialization factor, which
 * sets how bad the kernel recomposition replaces actually is) and the
 * block-sparse GEMM efficiency. Both are exposed as runtime knobs
 * through FusionPolicy, so this bench perturbs them +/-20% and checks
 * whether any of the paper's qualitative conclusions flip.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const int64_t seq_len = 4096;

    std::printf("Calibration sensitivity on %s (L = %lld, batch 1): "
                "headline SDF/SD speedups while the baseline kernels "
                "are made 20%% better or worse than calibrated\n\n",
                spec.name.c_str(), (long long)seq_len);

    TextTable table("");
    table.setHeader({"Model", "knob", "-20%", "calibrated", "+20%",
                     "conclusion stable?"});

    auto sweep = [&](const ModelConfig &model, Strategy strategy,
                     const char *knob_name, bool sparse_knob) {
        std::vector<std::string> row = {
            model.name + " " +
                std::string(strategy == Strategy::Fused ? "SDF" : "SD"),
            knob_name};
        std::vector<double> speedups;
        for (double quality : {0.8, 1.0, 1.2}) {
            RunConfig base_run;
            base_run.seqLen = seq_len;
            if (sparse_knob)
                base_run.fusion.sparseMatmulQuality = quality;
            else
                base_run.fusion.softmaxQuality = quality;
            RunConfig opt_run = base_run;
            opt_run.strategy = strategy;
            const double speedup =
                runInference(spec, model, base_run).seconds /
                runInference(spec, model, opt_run).seconds;
            speedups.push_back(speedup);
            row.push_back(ratio(speedup));
        }
        // "Stable" means the sign of the effect never flips across
        // the band (dense SD stays <= ~1, everything else stays > 1).
        bool stable = true;
        for (double s : speedups) {
            if (strategy == Strategy::Decomposed && !model.sparse())
                stable &= s < 1.05;
            else
                stable &= s > 1.05;
        }
        row.push_back(stable ? "yes" : "NO");
        table.addRow(row);
    };

    sweep(ModelConfig::bertLarge(), Strategy::Fused,
          "baseline softmax quality", false);
    sweep(ModelConfig::bertLarge(), Strategy::Decomposed,
          "baseline softmax quality", false);
    sweep(ModelConfig::bigBirdLarge(), Strategy::Fused,
          "baseline softmax quality", false);
    sweep(ModelConfig::bigBirdLarge(), Strategy::Fused,
          "sparse GEMM quality", true);
    sweep(ModelConfig::longformerLarge(), Strategy::Decomposed,
          "baseline softmax quality", false);
    table.print();

    std::printf(
        "\nReading: across a +/-20%% mis-calibration of the baseline "
        "kernels, the magnitudes move but no conclusion flips — SDF "
        "keeps a solid win on every model, dense SD stays roughly "
        "neutral-to-negative, and sparse SD/SDF keep their large "
        "wins. The reproduction's qualitative claims do not sit on a "
        "calibration knife edge.\n");
    return 0;
}
