/**
 * @file
 * google-benchmark micro-benchmarks of the functional CPU kernels:
 * the recomposition math itself (safe vs decomposed softmax), the
 * kernel-level LS/IR/GS pipeline, GEMM epilogues, and block-sparse
 * kernels. These measure the *reference implementations*, not the
 * modeled GPU; they exist to keep the functional substrate honest
 * (e.g. decomposition must not change asymptotic cost).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "core/softmax_math.hpp"
#include "kernels/bsr_gemm.hpp"
#include "kernels/bsr_softmax.hpp"
#include "kernels/gemm.hpp"
#include "kernels/softmax_kernels.hpp"
#include "sparse/patterns.hpp"
#include "tensor/tensor_ops.hpp"
#include "workload/corpus.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

void
BM_SafeSoftmax(benchmark::State &state)
{
    const size_t len = size_t(state.range(0));
    Rng rng(1);
    std::vector<double> x(len);
    for (double &v : x)
        v = rng.normal(0.0, 2.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(safeSoftmax(x));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(len));
}
BENCHMARK(BM_SafeSoftmax)->Arg(512)->Arg(4096);

void
BM_DecomposedSoftmax(benchmark::State &state)
{
    const size_t len = size_t(state.range(0));
    Rng rng(2);
    std::vector<double> x(len);
    for (double &v : x)
        v = rng.normal(0.0, 2.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(decomposedSoftmax(x, 64));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(len));
}
BENCHMARK(BM_DecomposedSoftmax)->Arg(512)->Arg(4096);

void
BM_RowSoftmaxKernel(benchmark::State &state)
{
    const int64_t rows = 64, cols = state.range(0);
    Rng rng(3);
    const Tensor<Half> in = makeAttentionScores(rng, rows, cols);
    Tensor<Half> out(in.shape());
    SoftmaxShape desc;
    desc.rows = rows;
    desc.cols = cols;
    for (auto _ : state)
        rowSoftmaxRun(execCtx(), desc, in, out);
    state.SetItemsProcessed(int64_t(state.iterations()) * rows * cols);
}
BENCHMARK(BM_RowSoftmaxKernel)->Arg(512)->Arg(2048);

void
BM_DecomposedKernelPipeline(benchmark::State &state)
{
    const int64_t rows = 64, cols = state.range(0);
    Rng rng(4);
    const Tensor<Half> in = makeAttentionScores(rng, rows, cols);
    SoftmaxShape sub;
    sub.rows = rows;
    sub.cols = cols;
    sub.subVector = 64;
    const Shape md({rows, sub.numSubVectors()});
    Tensor<Half> x_prime(in.shape()), out(in.shape());
    Tensor<float> lmax(md), lsum(md), recon(md);
    for (auto _ : state) {
        lsRun(execCtx(), sub, in, x_prime, lmax, lsum);
        irRun(execCtx(), sub, lmax, lsum, recon);
        gsRun(execCtx(), sub, x_prime, recon, out);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * rows * cols);
}
BENCHMARK(BM_DecomposedKernelPipeline)->Arg(512)->Arg(2048);

void
BM_GemmPlain(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(5);
    GemmDesc desc;
    desc.m = n;
    desc.n = n;
    desc.k = 64;
    Tensor<Half> a(Shape({n, 64})), b(Shape({64, n})), c(Shape({n, n}));
    fillNormal(a, rng);
    fillNormal(b, rng);
    GemmOperands ops;
    ops.a = &a;
    ops.b = &b;
    for (auto _ : state)
        gemmRun(execCtx(), desc, ops, c);
    state.SetItemsProcessed(int64_t(state.iterations()) * n * n * 64);
}
BENCHMARK(BM_GemmPlain)->Arg(128)->Arg(256);

void
BM_GemmFusedLs(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(6);
    GemmDesc desc;
    desc.m = n;
    desc.n = n;
    desc.k = 64;
    desc.epilogue.scale = 0.125;
    desc.epilogue.localSoftmax = true;
    const int64_t tiles = (n + desc.tiling.tileN - 1) /
                          desc.tiling.tileN;
    Tensor<Half> a(Shape({n, 64})), b(Shape({64, n})), c(Shape({n, n}));
    fillNormal(a, rng);
    fillNormal(b, rng);
    Tensor<float> lmax(Shape({n, tiles})), lsum(Shape({n, tiles}));
    GemmOperands ops;
    ops.a = &a;
    ops.b = &b;
    LsOutputs ls{&lmax, &lsum};
    for (auto _ : state)
        gemmRun(execCtx(), desc, ops, c, &ls);
    state.SetItemsProcessed(int64_t(state.iterations()) * n * n * 64);
}
BENCHMARK(BM_GemmFusedLs)->Arg(128)->Arg(256);

void
BM_BsrSdd(benchmark::State &state)
{
    BigBirdParams params;
    params.blockSize = 32;
    const int64_t seq_len = state.range(0);
    const BsrLayout layout = bigBirdPattern(seq_len, params);
    Rng rng(7);
    Tensor<Half> q(Shape({seq_len, 64})), k(Shape({seq_len, 64}));
    fillNormal(q, rng);
    fillNormal(k, rng);
    BsrSddDesc desc;
    desc.layout = &layout;
    desc.dHead = 64;
    desc.scale = 0.125;
    BsrMatrix s(layout);
    for (auto _ : state)
        bsrSddRun(execCtx(), desc, q, k, s);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            layout.nnzElements());
}
BENCHMARK(BM_BsrSdd)->Arg(256)->Arg(512);

void
BM_BsrSoftmaxPipeline(benchmark::State &state)
{
    BigBirdParams params;
    params.blockSize = 32;
    const int64_t seq_len = state.range(0);
    const BsrLayout layout = bigBirdPattern(seq_len, params);
    Rng rng(8);
    const BsrMatrix in = BsrMatrix::fromDense(
        layout, makeAttentionScores(rng, seq_len, seq_len));
    BsrSoftmaxDesc desc;
    desc.layout = &layout;
    BsrMatrix x_prime(layout), out(layout);
    std::vector<float> lmax, lsum, recon;
    for (auto _ : state) {
        bsrLsRun(execCtx(), desc, in, x_prime, lmax, lsum);
        bsrIrRun(execCtx(), desc, lmax, lsum, recon);
        bsrGsRun(execCtx(), desc, x_prime, recon, out);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            layout.nnzElements());
}
BENCHMARK(BM_BsrSoftmaxPipeline)->Arg(256)->Arg(512);

void
BM_HalfConversion(benchmark::State &state)
{
    Rng rng(9);
    std::vector<float> values(4096);
    for (float &v : values)
        v = float(rng.normal(0.0, 10.0));
    for (auto _ : state) {
        uint32_t acc = 0;
        for (float v : values)
            acc += Half(v).bits();
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 4096);
}
BENCHMARK(BM_HalfConversion);

/**
 * Measured-traffic report: run one attention head under all three
 * strategies with the profiler attached and write
 * BENCH_micro_kernels.json. The derived entries verify the paper's
 * recomposition claim on *measured* counters: the softmax layer's
 * off-chip traffic under SDF (IR plus the fused LS/GS extras) must be
 * far below the baseline kernel's four matrix sweeps.
 *
 * L defaults to 4096 (the paper's headline point); SOFTREC_BENCH_SEQLEN
 * overrides it so CI smoke runs stay fast.
 */
int
writeTrafficReport()
{
    const int64_t seq_len = bench::benchSeqLenFromEnv(4096);

    SdaConfig config;
    config.seqLen = seq_len;
    config.subVector = 64;

    Rng rng(11);
    AttentionInputs inputs = makeAttentionInputs(config);
    fillNormal(inputs.q, rng);
    fillNormal(inputs.k, rng);
    fillNormal(inputs.v, rng);

    BenchReport report("micro_kernels");
    report.setConfig("seq_len", seq_len);
    report.setConfig("d_head", config.dHead);
    report.setConfig("sub_vector", config.subVector);
    report.setConfig("threads",
                     int64_t(ExecContext::fromEnv().threads()));

    const struct
    {
        Strategy strategy;
        const char *prefix;
        const char *derived;
    } kStrategies[] = {
        {Strategy::Baseline, "baseline",
         "softmax_traffic_baseline_bytes"},
        {Strategy::Decomposed, "sd", "softmax_traffic_sd_bytes"},
        {Strategy::Fused, "sdf", "softmax_traffic_sdf_bytes"},
    };

    double baseline_traffic = 0.0, sdf_traffic = 0.0;
    for (const auto &entry : kStrategies) {
        prof::Profiler profiler;
        ExecContext ctx = ExecContext::fromEnv();
        ctx.profiler = &profiler;
        runAttention(ctx, config, inputs, entry.strategy);

        double softmax_bytes = 0.0;
        for (const auto &[name, stats] : profiler.snapshot()) {
            BenchKernelRow row;
            row.name = std::string(entry.prefix) + "/" + name;
            row.ms = stats.seconds * 1e3;
            row.bytesRead = stats.bytesRead;
            row.bytesWritten = stats.bytesWritten;
            row.calls = stats.calls;
            row.threads = stats.maxThreads;
            report.addKernel(row);
            if (name.rfind("softmax.", 0) == 0)
                softmax_bytes +=
                    double(stats.bytesRead + stats.bytesWritten);
        }
        report.setDerived(entry.derived, softmax_bytes);
        if (entry.strategy == Strategy::Baseline)
            baseline_traffic = softmax_bytes;
        if (entry.strategy == Strategy::Fused)
            sdf_traffic = softmax_bytes;
    }
    report.setDerived("softmax_traffic_sdf_over_baseline",
                      baseline_traffic > 0.0
                          ? sdf_traffic / baseline_traffic
                          : 0.0);

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s (L = %lld, SDF/baseline softmax traffic = %.4f)",
           path.c_str(), (long long)seq_len,
           baseline_traffic > 0.0 ? sdf_traffic / baseline_traffic
                                  : 0.0);
    return 0;
}

} // namespace
} // namespace softrec

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return softrec::writeTrafficReport();
}
