/**
 * @file
 * Related-work ablation: softmax recomposition against the other
 * published softmax accelerations the paper discusses —
 *
 *  - the online-normalizer softmax ([21], Milakov & Gimelshein):
 *    fuses the max and sum passes but stays an unfused kernel;
 *  - the fully fused MHA kernel (FasterTransformer/TensorRT): removes
 *    all attention-matrix traffic but only fits short sequences.
 *
 * Part 1 compares the softmax-layer cost of the variants at L = 4096;
 * part 2 sweeps L to locate the crossover where the short-sequence
 * fused kernel stops being available and recomposition takes over.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/exec_context.hpp"
#include "core/recomposition.hpp"
#include "kernels/fused_mha.hpp"
#include "kernels/softmax_kernels.hpp"
#include "model/library_profiles.hpp"
#include "sim/gpu.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();

    // ------------------------------------------------------------------
    // Part 1: softmax-layer variants at L = 4096 (BERT-large shapes).
    // ------------------------------------------------------------------
    std::printf("Part 1: softmax-layer execution time per attention "
                "layer on %s (16 heads, L = 4096)\n\n",
                spec.name.c_str());
    SoftmaxShape softmax;
    softmax.batch = 16;
    softmax.rows = softmax.cols = 4096;

    SdaConfig sda;
    sda.heads = 16;
    sda.seqLen = 4096;
    sda.dHead = 64;

    TextTable part1("");
    part1.setHeader({"Variant", "softmax-side time",
                     "attention-matrix sweeps", "notes"});
    {
        Gpu gpu(spec);
        gpu.launch(rowSoftmaxProfile(spec, softmax));
        part1.addRow({"3-pass row softmax (TRT-style baseline)",
                      formatSeconds(gpu.totalSeconds()), "2 of 4",
                      "serialized max/sum/scale passes"});
    }
    {
        Gpu gpu(spec);
        gpu.launch(onlineRowSoftmaxProfile(spec, softmax));
        part1.addRow({"online-normalizer softmax [21]",
                      formatSeconds(gpu.totalSeconds()), "2 of 4",
                      "one fused max+sum pass; traffic unchanged"});
    }
    {
        Gpu gpu(spec);
        const SdaSchedule sd =
            buildSdaSchedule(spec, sda, Strategy::Decomposed);
        for (const KernelProfile &prof : sd.kernels)
            if (isSoftmaxWork(prof.category))
                gpu.launch(prof);
        part1.addRow({"SD (LS + IR + GS kernels)",
                      formatSeconds(gpu.totalSeconds()), "4 of 6",
                      "pattern matched, not yet fused"});
    }
    {
        Gpu gpu(spec);
        const SdaSchedule sdf =
            buildSdaSchedule(spec, sda, Strategy::Fused);
        for (const KernelProfile &prof : sdf.kernels)
            if (isSoftmaxWork(prof.category))
                gpu.launch(prof);
        part1.addRow({"SDF (this paper): IR kernel only",
                      formatSeconds(gpu.totalSeconds()), "0 of 2",
                      "LS/GS live inside the GEMMs"});
    }
    part1.print();

    // ------------------------------------------------------------------
    // Part 2: short-sequence crossover, end-to-end BERT-large.
    // ------------------------------------------------------------------
    std::printf("\nPart 2: end-to-end BERT-large latency; "
                "FasterTransformer's fused-MHA path vs recomposition\n"
                "(fused MHA available only while K/V fit in shared "
                "memory)\n\n");
    TextTable part2("");
    part2.setHeader({"L", "baseline", "FT fused MHA", "SDF (ours)",
                     "fused MHA usable?"});
    const ModelConfig model = ModelConfig::bertLarge();
    for (int64_t seq_len : {128, 256, 384, 512, 1024, 4096}) {
        RunConfig run;
        run.seqLen = seq_len;
        const auto base = runInference(spec, model, run);
        const auto ft = runLibraryInference(
            spec, model, run, Library::FasterTransformer);
        run.strategy = Strategy::Fused;
        const auto sdf = runInference(spec, model, run);
        FusedMhaDesc mha;
        mha.seqLen = seq_len;
        mha.dHead = model.dHead();
        part2.addRow({
            strprintf("%lld", (long long)seq_len),
            formatSeconds(base.seconds),
            formatSeconds(ft.seconds),
            formatSeconds(sdf.seconds),
            fusedMhaSupported(spec, mha) ? "yes" : "no",
        });
    }
    part2.print();

    std::printf(
        "\nReading: at short L the fully fused MHA kernel is "
        "unbeatable (no attention matrix at all), exactly as the "
        "paper's related-work section says; past its shared-memory "
        "limit (between L = 512 and 1024 here) it disappears and "
        "softmax recomposition is what keeps scaling.\n");
    return 0;
}
