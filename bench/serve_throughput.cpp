/**
 * @file
 * Continuous-batching serving throughput benchmark: a fixed arrival
 * trace of prompt-heavy requests is driven through ServeEngine at
 * batch limits {1, 4, 16} and the bench reports tokens/s plus p50/p95
 * request latency per arm, alongside the profiler's per-kernel rows.
 * A fourth arm repeats the batch-4 trace with the streaming attention
 * backend (SOFTREC_ATTENTION=streaming equivalent) for a prefill
 * recomposed-vs-streaming A/B on the same workload.
 * Writes BENCH_serve_throughput.json (schema softrec-bench-v1).
 *
 * Headline point: prompts of L = 4096 tokens (the paper's evaluation
 * length); SOFTREC_BENCH_SEQLEN shrinks it for CI smoke runs.
 */

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/streaming_attention.hpp"
#include "model/decode.hpp"
#include "serve/serve_engine.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

constexpr int64_t kRequests = 6;
constexpr int64_t kGenerateTokens = 8;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens, int64_t d_model)
{
    Tensor<Half> prompt(Shape({tokens, d_model}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

/** What one drained arm reports. */
struct ArmSummary
{
    int64_t requestsServed = 0;
    int64_t tokensGenerated = 0;
    int64_t decodeSteps = 0;
    double tokensPerSecond = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
};

/**
 * One arm: drain kRequests through a batch-row limit. Round-robin
 * non-blocking drain — a blocking per-stream drain deadlocks on rings
 * shallower than generateTokens.
 */
ArmSummary
runArm(const ExecContext &ctx, const DecoderStack &stack,
       int64_t batch_rows, int64_t prompt_tokens)
{
    ServeConfig config;
    config.maxBatchRows = batch_rows;
    // Roomy budget: this bench measures batching, not budget parking.
    config.tokenBudget =
        kRequests * (prompt_tokens + kGenerateTokens);
    ServeEngine engine(ctx, stack, config);

    struct Pending
    {
        ServeSession session;
        double arrivalSeconds = 0.0;
        double finishSeconds = 0.0;
        bool done = false;
    };
    std::vector<Pending> pending;
    Rng rng(11); // same prompts in every arm
    for (int64_t r = 0; r < kRequests; ++r) {
        ServeRequest request;
        request.id = r + 1;
        request.prompt =
            randomPrompt(rng, prompt_tokens, stack.config.dModel);
        request.generateTokens = kGenerateTokens;
        Pending p;
        p.arrivalSeconds = engine.nowSeconds();
        SubmitResult result = engine.submit(std::move(request));
        SOFTREC_ASSERT(result.decision.accepted,
                       "bench submit rejected: %s",
                       result.decision.reason.c_str());
        p.session = std::move(result.session);
        pending.push_back(std::move(p));
    }

    const double start = engine.nowSeconds();
    engine.start();
    size_t remaining = pending.size();
    Tensor<Half> row;
    while (remaining > 0) {
        bool progressed = false;
        for (Pending &p : pending) {
            if (p.done)
                continue;
            TokenStream &stream = p.session.stream();
            TokenStream::TryNext outcome = stream.tryNext(row);
            while (outcome == TokenStream::TryNext::Token) {
                progressed = true;
                outcome = stream.tryNext(row);
            }
            if (outcome == TokenStream::TryNext::End) {
                p.finishSeconds = stream.finishSeconds();
                p.done = true;
                --remaining;
                progressed = true;
            }
        }
        if (!progressed)
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
    }
    engine.waitIdle(); // let the step counters settle

    ArmSummary summary;
    const ServeStats stats = engine.stats();
    summary.requestsServed = stats.requestsServed;
    summary.tokensGenerated = stats.tokensGenerated;
    summary.decodeSteps = stats.decodeSteps;
    const double seconds = engine.nowSeconds() - start;
    summary.tokensPerSecond =
        seconds > 0.0 ? double(summary.tokensGenerated) / seconds
                      : 0.0;
    std::vector<double> latencies;
    latencies.reserve(pending.size());
    for (const Pending &p : pending)
        latencies.push_back(p.finishSeconds - p.arrivalSeconds);
    summary.p50LatencySeconds = percentileSeconds(latencies, 0.50);
    summary.p95LatencySeconds = percentileSeconds(latencies, 0.95);
    return summary;
}

} // namespace
} // namespace softrec

int
main()
{
    using namespace softrec;

    const int64_t prompt_tokens = bench::benchSeqLenFromEnv(4096);
    const int64_t d_model = 64;
    Rng weights_rng(3);
    const DecoderStack stack =
        DecoderStack::random(d_model, /*num_heads=*/4, /*d_ff=*/128,
                             /*num_layers=*/2, weights_rng);
    // Same weights, streaming attention backend: the A/B arm.
    DecoderStack streaming_stack = stack;
    streaming_stack.config.attention = AttentionBackend::Streaming;

    BenchReport report("serve_throughput");
    report.setConfig("prompt_tokens", prompt_tokens);
    report.setConfig("generate_tokens", kGenerateTokens);
    report.setConfig("requests", kRequests);
    report.setConfig("d_model", d_model);
    report.setConfig("num_layers", int64_t(2));

    struct Arm
    {
        const char *name;
        const DecoderStack *stack;
        int64_t batchRows;
    };
    const Arm arms[] = {
        {"b1", &stack, 1},
        {"b4", &stack, 4},
        {"b16", &stack, 16},
        {"b4_streaming", &streaming_stack, 4},
    };
    for (const Arm &arm : arms) {
        prof::Profiler profiler;
        ExecContext ctx = ExecContext::fromEnv();
        ctx.profiler = &profiler;
        if (arm.batchRows == 1)
            report.setConfig("threads", int64_t(ctx.threads()));

        const ArmSummary summary =
            runArm(ctx, *arm.stack, arm.batchRows, prompt_tokens);
        SOFTREC_ASSERT(summary.requestsServed == kRequests,
                       "arm %s served %lld of %lld requests",
                       arm.name,
                       (long long)summary.requestsServed,
                       (long long)kRequests);

        for (const auto &[scope_name, totals] :
             profiler.snapshot()) {
            BenchKernelRow row;
            row.name = std::string(arm.name) + "/" + scope_name;
            row.ms = totals.seconds * 1e3;
            row.bytesRead = totals.bytesRead;
            row.bytesWritten = totals.bytesWritten;
            row.calls = totals.calls;
            row.threads = ctx.threads();
            report.addKernel(row);
        }
        const std::string prefix = arm.name;
        report.setDerived(prefix + "_tokens_per_s",
                          summary.tokensPerSecond);
        report.setDerived(prefix + "_p50_ms",
                          summary.p50LatencySeconds * 1e3);
        report.setDerived(prefix + "_p95_ms",
                          summary.p95LatencySeconds * 1e3);
        report.setDerived(prefix + "_decode_steps",
                          double(summary.decodeSteps));
        inform("%s: %.1f tok/s, p50 %.1f ms, p95 %.1f ms "
               "(%lld steps)", arm.name,
               summary.tokensPerSecond,
               summary.p50LatencySeconds * 1e3,
               summary.p95LatencySeconds * 1e3,
               (long long)summary.decodeSteps);
    }

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s (prompt_tokens = %lld)", path.c_str(),
           (long long)prompt_tokens);
    return 0;
}
