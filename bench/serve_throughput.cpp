/**
 * @file
 * Continuous-batching serving throughput benchmark: a fixed arrival
 * trace of prompt-heavy requests is driven through ServeLoop at batch
 * limits {1, 4, 16} and the engine reports tokens/s plus p50/p95
 * request latency per arm, alongside the profiler's per-kernel rows.
 * Writes BENCH_serve_throughput.json (schema softrec-bench-v1).
 *
 * Headline point: prompts of L = 4096 tokens (the paper's evaluation
 * length); SOFTREC_BENCH_SEQLEN shrinks it for CI smoke runs.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "kernels/kernel_common.hpp"
#include "model/decode.hpp"
#include "serve/serve_loop.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

constexpr int64_t kRequests = 6;
constexpr int64_t kGenerateTokens = 8;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens, int64_t d_model)
{
    Tensor<Half> prompt(Shape({tokens, d_model}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

/** One arm: drain kRequests through a batch-row limit. */
ServeSummary
runArm(const ExecContext &ctx, const DecoderStack &stack,
       int64_t batch_rows, int64_t prompt_tokens)
{
    ServeConfig config;
    config.maxBatchRows = batch_rows;
    // Roomy budget: this bench measures batching, not budget parking.
    config.tokenBudget =
        kRequests * (prompt_tokens + kGenerateTokens);
    ServeLoop loop(ctx, stack, config);

    Rng rng(11); // same prompts in every arm
    for (int64_t r = 0; r < kRequests; ++r) {
        ServeRequest request;
        request.id = r;
        request.prompt =
            randomPrompt(rng, prompt_tokens, stack.config.dModel);
        request.generateTokens = kGenerateTokens;
        request.arrivalSeconds = loop.nowSeconds();
        const AdmitResult admit = loop.submit(std::move(request));
        SOFTREC_ASSERT(admit.accepted, "bench submit rejected: %s",
                       admit.reason.c_str());
    }
    return loop.run();
}

} // namespace
} // namespace softrec

int
main()
{
    using namespace softrec;

    const int64_t prompt_tokens = bench::benchSeqLenFromEnv(4096);
    const int64_t d_model = 64;
    Rng weights_rng(3);
    const DecoderStack stack =
        DecoderStack::random(d_model, /*num_heads=*/4, /*d_ff=*/128,
                             /*num_layers=*/2, weights_rng);

    BenchReport report("serve_throughput");
    report.setConfig("prompt_tokens", prompt_tokens);
    report.setConfig("generate_tokens", kGenerateTokens);
    report.setConfig("requests", kRequests);
    report.setConfig("d_model", d_model);
    report.setConfig("num_layers", int64_t(2));

    for (const int64_t batch_rows : {int64_t(1), int64_t(4),
                                     int64_t(16)}) {
        prof::Profiler profiler;
        ExecContext ctx = ExecContext::fromEnv();
        ctx.profiler = &profiler;
        if (batch_rows == 1)
            report.setConfig("threads", int64_t(ctx.threads()));

        const ServeSummary summary =
            runArm(ctx, stack, batch_rows, prompt_tokens);
        SOFTREC_ASSERT(summary.requestsServed == kRequests,
                       "arm b%lld served %lld of %lld requests",
                       (long long)batch_rows,
                       (long long)summary.requestsServed,
                       (long long)kRequests);

        const std::string arm =
            strprintf("b%lld", (long long)batch_rows);
        for (const auto &[scope_name, totals] :
             profiler.snapshot()) {
            BenchKernelRow row;
            row.name = arm + "/" + scope_name;
            row.ms = totals.seconds * 1e3;
            row.bytesRead = totals.bytesRead;
            row.bytesWritten = totals.bytesWritten;
            row.calls = totals.calls;
            row.threads = ctx.threads();
            report.addKernel(row);
        }
        report.setDerived(arm + "_tokens_per_s",
                          summary.tokensPerSecond);
        report.setDerived(arm + "_p50_ms",
                          summary.p50LatencySeconds * 1e3);
        report.setDerived(arm + "_p95_ms",
                          summary.p95LatencySeconds * 1e3);
        report.setDerived(arm + "_decode_steps",
                          double(summary.decodeSteps));
        inform("b%lld: %.1f tok/s, p50 %.1f ms, p95 %.1f ms "
               "(%lld steps)", (long long)batch_rows,
               summary.tokensPerSecond,
               summary.p50LatencySeconds * 1e3,
               summary.p95LatencySeconds * 1e3,
               (long long)summary.decodeSteps);
    }

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s (prompt_tokens = %lld)", path.c_str(),
           (long long)prompt_tokens);
    return 0;
}
