/**
 * @file
 * Continuous-batching serving throughput benchmark: a fixed arrival
 * trace of prompt-heavy requests is driven through ServeEngine at
 * batch limits {1, 4, 16} and the bench reports tokens/s plus p50/p95
 * request latency per arm, alongside the profiler's per-kernel rows.
 * A fourth arm repeats the batch-4 trace with the streaming attention
 * backend (SOFTREC_ATTENTION=streaming equivalent) for a prefill
 * recomposed-vs-streaming A/B on the same workload, and a fifth
 * repeats it with the int8 KV cache for a capacity A/B: same
 * fp16-denominated token budget (= same slab byte budget), so the
 * reported KV token capacity must come out >= 1.8x the f16 arm's.
 * Writes BENCH_serve_throughput.json (schema softrec-bench-v1).
 *
 * Headline point: prompts of L = 4096 tokens (the paper's evaluation
 * length); SOFTREC_BENCH_SEQLEN shrinks it for CI smoke runs.
 */

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/bench_report.hpp"
#include "common/exec_context.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "fp16/half.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/streaming_attention.hpp"
#include "model/decode.hpp"
#include "serve/serve_engine.hpp"
#include "tensor/tensor.hpp"

namespace softrec {
namespace {

constexpr int64_t kRequests = 6;
constexpr int64_t kGenerateTokens = 8;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens, int64_t d_model)
{
    Tensor<Half> prompt(Shape({tokens, d_model}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

/** What one drained arm reports. */
struct ArmSummary
{
    int64_t requestsServed = 0;
    int64_t tokensGenerated = 0;
    int64_t decodeSteps = 0;
    double tokensPerSecond = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    int64_t kvTokenCapacity = 0; //!< effective scheduler budget
    int64_t kvBytesReserved = 0;
};

/**
 * One arm: drain kRequests through a batch-row limit. Round-robin
 * non-blocking drain — a blocking per-stream drain deadlocks on rings
 * shallower than generateTokens.
 */
ArmSummary
runArm(const ExecContext &ctx, const DecoderStack &stack,
       int64_t batch_rows, int64_t prompt_tokens, KvDtype kv_dtype)
{
    // fromEnv so a malformed SOFTREC_SERVE_KV_DTYPE (or any serve
    // knob) hard-errors here too — CI's negative check runs this
    // binary. The arm then pins its own dtype: the f16/int8 A/B is
    // the bench's, not the environment's.
    ServeConfig config = ServeConfig::fromEnv();
    config.maxBatchRows = batch_rows;
    // Roomy budget: this bench measures batching, not budget parking.
    // Denominated in fp16 tokens, so both A/B arms describe the same
    // slab byte budget and the int8 arm's *capacity* is the win.
    config.tokenBudget =
        kRequests * (prompt_tokens + kGenerateTokens);
    config.kvDtype = kv_dtype;
    ServeEngine engine(ctx, stack, config);

    struct Pending
    {
        ServeSession session;
        double arrivalSeconds = 0.0;
        double finishSeconds = 0.0;
        bool done = false;
    };
    std::vector<Pending> pending;
    Rng rng(11); // same prompts in every arm
    for (int64_t r = 0; r < kRequests; ++r) {
        ServeRequest request;
        request.id = r + 1;
        request.prompt =
            randomPrompt(rng, prompt_tokens, stack.config.dModel);
        request.generateTokens = kGenerateTokens;
        Pending p;
        p.arrivalSeconds = engine.nowSeconds();
        SubmitResult result = engine.submit(std::move(request));
        SOFTREC_ASSERT(result.decision.accepted,
                       "bench submit rejected: %s",
                       result.decision.reason.c_str());
        p.session = std::move(result.session);
        pending.push_back(std::move(p));
    }

    const double start = engine.nowSeconds();
    engine.start();
    size_t remaining = pending.size();
    Tensor<Half> row;
    while (remaining > 0) {
        bool progressed = false;
        for (Pending &p : pending) {
            if (p.done)
                continue;
            TokenStream &stream = p.session.stream();
            TokenStream::TryNext outcome = stream.tryNext(row);
            while (outcome == TokenStream::TryNext::Token) {
                progressed = true;
                outcome = stream.tryNext(row);
            }
            if (outcome == TokenStream::TryNext::End) {
                p.finishSeconds = stream.finishSeconds();
                p.done = true;
                --remaining;
                progressed = true;
            }
        }
        if (!progressed)
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
    }
    engine.waitIdle(); // let the step counters settle

    ArmSummary summary;
    const ServeStats stats = engine.stats();
    summary.requestsServed = stats.requestsServed;
    summary.tokensGenerated = stats.tokensGenerated;
    summary.decodeSteps = stats.decodeSteps;
    summary.kvTokenCapacity = stats.tokenBudget;
    summary.kvBytesReserved = stats.kvBytesReserved;
    const double seconds = engine.nowSeconds() - start;
    summary.tokensPerSecond =
        seconds > 0.0 ? double(summary.tokensGenerated) / seconds
                      : 0.0;
    std::vector<double> latencies;
    latencies.reserve(pending.size());
    for (const Pending &p : pending)
        latencies.push_back(p.finishSeconds - p.arrivalSeconds);
    summary.p50LatencySeconds = percentileSeconds(latencies, 0.50);
    summary.p95LatencySeconds = percentileSeconds(latencies, 0.95);
    return summary;
}

} // namespace
} // namespace softrec

int
main()
{
    using namespace softrec;

    const int64_t prompt_tokens = bench::benchSeqLenFromEnv(4096);
    const int64_t d_model = 64;
    Rng weights_rng(3);
    const DecoderStack stack =
        DecoderStack::random(d_model, /*num_heads=*/4, /*d_ff=*/128,
                             /*num_layers=*/2, weights_rng);
    // Same weights, streaming attention backend: the A/B arm.
    DecoderStack streaming_stack = stack;
    streaming_stack.config.attention = AttentionBackend::Streaming;

    BenchReport report("serve_throughput");
    report.setConfig("prompt_tokens", prompt_tokens);
    report.setConfig("generate_tokens", kGenerateTokens);
    report.setConfig("requests", kRequests);
    report.setConfig("d_model", d_model);
    report.setConfig("num_layers", int64_t(2));

    struct Arm
    {
        const char *name;
        const DecoderStack *stack;
        int64_t batchRows;
        KvDtype kvDtype;
    };
    const Arm arms[] = {
        {"b1", &stack, 1, KvDtype::F16},
        {"b4", &stack, 4, KvDtype::F16},
        {"b16", &stack, 16, KvDtype::F16},
        {"b4_streaming", &streaming_stack, 4, KvDtype::F16},
        {"b4_int8", &stack, 4, KvDtype::I8},
    };
    int64_t f16_capacity = 0;
    int64_t int8_capacity = 0;
    for (const Arm &arm : arms) {
        prof::Profiler profiler;
        ExecContext ctx = ExecContext::fromEnv();
        ctx.profiler = &profiler;
        if (arm.batchRows == 1)
            report.setConfig("threads", int64_t(ctx.threads()));

        const ArmSummary summary = runArm(
            ctx, *arm.stack, arm.batchRows, prompt_tokens, arm.kvDtype);
        SOFTREC_ASSERT(summary.requestsServed == kRequests,
                       "arm %s served %lld of %lld requests",
                       arm.name,
                       (long long)summary.requestsServed,
                       (long long)kRequests);

        for (const auto &[scope_name, totals] :
             profiler.snapshot()) {
            BenchKernelRow row;
            row.name = std::string(arm.name) + "/" + scope_name;
            row.ms = totals.seconds * 1e3;
            row.bytesRead = totals.bytesRead;
            row.bytesWritten = totals.bytesWritten;
            row.calls = totals.calls;
            row.threads = ctx.threads();
            report.addKernel(row);
        }
        const std::string prefix = arm.name;
        report.setDerived(prefix + "_tokens_per_s",
                          summary.tokensPerSecond);
        report.setDerived(prefix + "_p50_ms",
                          summary.p50LatencySeconds * 1e3);
        report.setDerived(prefix + "_p95_ms",
                          summary.p95LatencySeconds * 1e3);
        report.setDerived(prefix + "_decode_steps",
                          double(summary.decodeSteps));
        report.setDerived(prefix + "_kv_token_capacity",
                          double(summary.kvTokenCapacity));
        report.setDerived(prefix + "_kv_bytes_reserved",
                          double(summary.kvBytesReserved));
        report.setConfig(prefix + "_kv_dtype",
                         kvDtypeName(arm.kvDtype));
        if (std::string(arm.name) == "b4")
            f16_capacity = summary.kvTokenCapacity;
        if (std::string(arm.name) == "b4_int8")
            int8_capacity = summary.kvTokenCapacity;
        inform("%s: %.1f tok/s, p50 %.1f ms, p95 %.1f ms "
               "(%lld steps, %lld KV tokens, %s)", arm.name,
               summary.tokensPerSecond,
               summary.p50LatencySeconds * 1e3,
               summary.p95LatencySeconds * 1e3,
               (long long)summary.decodeSteps,
               (long long)summary.kvTokenCapacity,
               kvDtypeName(arm.kvDtype));
    }

    // The capacity acceptance bar: same trace, same slab byte budget,
    // int8 must admit >= 1.8x the concurrent KV tokens.
    const double capacity_ratio =
        double(int8_capacity) / double(f16_capacity);
    report.setDerived("int8_kv_capacity_ratio", capacity_ratio);
    SOFTREC_ASSERT(capacity_ratio >= 1.8,
                   "int8 KV capacity ratio %.3f below the 1.8x bar "
                   "(f16 %lld vs int8 %lld tokens)", capacity_ratio,
                   (long long)f16_capacity, (long long)int8_capacity);
    inform("int8 KV capacity ratio: %.2fx", capacity_ratio);

    const std::string path = report.defaultPath();
    if (!report.writeFile(path))
        return 1;
    inform("wrote %s (prompt_tokens = %lld)", path.c_str(),
           (long long)prompt_tokens);
    return 0;
}
