/**
 * @file
 * Reproduces Fig. 2: execution-time breakdown of BERT, GPT-Neo,
 * BigBird, and Longformer on an A100 GPU (L = 4096, batch 1), grouped
 * into the paper's categories (SDA MatMul, Softmax, FC, FeedForward,
 * other), plus the softmax share the paper quotes in the text.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const int64_t seq_len = 4096;

    std::printf("Fig. 2: Execution time breakdown on %s "
                "(L = %lld, batch 1, FP16)\n\n",
                spec.name.c_str(), (long long)seq_len);

    TextTable table("Share of end-to-end inference time");
    table.setHeader({"Model", "MatMul(SDA)", "Softmax", "FC",
                     "FeedForward", "Other", "SDA total", "latency"});
    TextTable compare("Softmax share: paper vs model");
    compare.setHeader({"Model", "paper", "model"});

    CsvWriter csv;
    csv.setHeader({"model", "sda_matmul", "softmax", "fc",
                   "feedforward", "other", "latency_ms",
                   "paper_softmax"});
    BenchReport report("fig2_breakdown");
    report.setConfig("gpu", spec.name);
    report.setConfig("seq_len", seq_len);
    report.setConfig("batch", int64_t(1));
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        RunConfig run;
        run.seqLen = seq_len;
        const InferenceResult result = runInference(spec, model, run);
        auto share = [&](KernelCategory category) {
            return result.secondsIn(category) / result.seconds;
        };
        const double softmax_share =
            result.softmaxSeconds() / result.seconds;
        table.addRow({
            model.name,
            percent(share(KernelCategory::SdaMatMul)),
            percent(softmax_share),
            percent(share(KernelCategory::Fc)),
            percent(share(KernelCategory::FeedForward)),
            percent(share(KernelCategory::Other)),
            percent(result.sdaSeconds() / result.seconds),
            formatSeconds(result.seconds),
        });
        compare.addRow({
            model.name,
            percent(paperSoftmaxShares().at(model.name)),
            percent(softmax_share),
        });
        csv.addRow({model.name,
                    strprintf("%.4f", share(KernelCategory::SdaMatMul)),
                    strprintf("%.4f", softmax_share),
                    strprintf("%.4f", share(KernelCategory::Fc)),
                    strprintf("%.4f", share(KernelCategory::FeedForward)),
                    strprintf("%.4f", share(KernelCategory::Other)),
                    strprintf("%.3f", result.seconds * 1e3),
                    strprintf("%.2f", paperSoftmaxShares().at(model.name))});
        addCategoryRows(report, model.name, result);
        report.setDerived("softmax_share_" + model.name, softmax_share);
        report.setDerived("latency_ms_" + model.name,
                          result.seconds * 1e3);
    }
    csv.writeFile("fig2_breakdown.csv");
    report.writeFile(report.defaultPath());
    table.print();
    std::printf("\n");
    compare.print();

    std::printf("\nPaper's headline observations reproduced:\n"
                " - the SDA block dominates at long L (68%% for "
                "BERT-large in the paper);\n"
                " - the softmax layer alone costs as much as the SDA "
                "MatMuls;\n"
                " - sparse attention (BigBird/Longformer) still spends "
                ">40%% of its time in softmax.\n");
    return 0;
}
