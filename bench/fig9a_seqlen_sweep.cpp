/**
 * @file
 * Reproduces Fig. 9(a): end-to-end speedup of softmax recomposition
 * (SDF over baseline) as a function of sequence length on the A100,
 * batch size 1, for all four models.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const std::vector<int64_t> lengths = {512, 1024, 2048, 4096, 8192};

    std::printf("Fig. 9(a): speedup vs sequence length on %s "
                "(batch 1, SDF over baseline)\n\n",
                spec.name.c_str());

    TextTable table("");
    std::vector<std::string> header = {"Model"};
    for (int64_t seq_len : lengths)
        header.push_back(strprintf("L=%lld", (long long)seq_len));
    header.push_back("softmax share @4096");
    table.setHeader(header);

    CsvWriter csv;
    csv.setHeader({"model", "seq_len", "sdf_speedup"});
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        std::vector<std::string> row = {model.name};
        double softmax_share = 0.0;
        for (int64_t seq_len : lengths) {
            const StrategySweep sweep =
                runStrategies(spec, model, seq_len);
            const double speedup =
                sweep.baseline.seconds / sweep.fused.seconds;
            row.push_back(ratio(speedup));
            csv.addRow({model.name,
                        strprintf("%lld", (long long)seq_len),
                        strprintf("%.4f", speedup)});
            if (seq_len == 4096) {
                softmax_share = sweep.baseline.softmaxSeconds() /
                                sweep.baseline.seconds;
            }
        }
        row.push_back(percent(softmax_share));
        table.addRow(row);
    }
    csv.writeFile("fig9a_seqlen_sweep.csv");
    table.print();

    std::printf(
        "\nPaper's trends reproduced:\n"
        " - dense models (BERT, GPT-Neo): longer L grows the softmax "
        "share (O(L^2) vs O(L) work), so the speedup grows;\n"
        " - sparse models (BigBird, Longformer): sparsity grows "
        "linearly with L, starving the baseline softmax's memory "
        "utilization, so the speedup grows faster;\n"
        " - at short L (512) recomposition is neutral.\n");
    return 0;
}
