/**
 * @file
 * Section 6 study: applying softmax recomposition to the training
 * forward pass. The softmax backward (Eq. (3)) depends only on the
 * layer's *output* Y, so recomposition's refusal to materialize the
 * softmax input costs nothing at training time. This bench
 * demonstrates the gradient identity numerically and quantifies the
 * activation-storage traffic the property saves per training step.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/softmax_math.hpp"
#include "kernels/kernel_common.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    std::printf("Section 6: softmax recomposition and the training "
                "forward pass\n\n");

    // 1. Numeric demonstration: gradients from Y alone equal
    //    finite-difference gradients through the full softmax.
    Rng rng(11);
    const size_t n = 64;
    std::vector<double> x(n), dy(n);
    for (size_t i = 0; i < n; ++i) {
        x[i] = rng.normal(0.0, 2.0);
        dy[i] = rng.normal(0.0, 1.0);
    }
    const auto y = safeSoftmax(x);
    const auto dx = softmaxBackward(y, dy);
    double worst = 0.0;
    const double eps = 1e-6;
    for (size_t k = 0; k < n; ++k) {
        auto xp = x, xm = x;
        xp[k] += eps;
        xm[k] -= eps;
        const auto yp = safeSoftmax(xp);
        const auto ym = safeSoftmax(xm);
        double ep = 0.0, em = 0.0;
        for (size_t i = 0; i < n; ++i) {
            ep += dy[i] * yp[i];
            em += dy[i] * ym[i];
        }
        worst = std::max(worst,
                         std::abs(dx[k] - (ep - em) / (2 * eps)));
    }
    std::printf("Gradient check (Eq. (3), input-free backward): max "
                "|analytic - numeric| = %.3e over %zu elements\n\n",
                worst, n);

    // 2. Storage implication per training step, BERT-large shapes.
    TextTable table("Softmax activation storage per training step "
                    "(BERT-large, batch 1)");
    table.setHeader({"L", "store X too (naive)", "store Y only "
                     "(recomposition-compatible)", "saved"});
    for (int64_t seq_len : {1024, 2048, 4096, 8192}) {
        const uint64_t matrix =
            uint64_t(24) * 16 * uint64_t(seq_len) * uint64_t(seq_len) *
            kFp16Bytes;
        table.addRow({
            strprintf("%lld", (long long)seq_len),
            formatBytes(2 * matrix),
            formatBytes(matrix),
            formatBytes(matrix),
        });
    }
    table.print();

    std::printf(
        "\nConclusion (paper Section 6): because dE/dx is expressible "
        "purely in terms of Y, the fused SDF forward pass, which "
        "never materializes the softmax input X in off-chip memory, "
        "remains valid for training; the tables above quantify the "
        "activation traffic that property avoids.\n");
    return worst < 1e-6 ? 0 : 1;
}
