/**
 * @file
 * Reproduces Table 1: specifications of the GPUs used in the
 * evaluation, as consumed by the performance model.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "sim/gpu_spec.hpp"

using namespace softrec;

int
main()
{
    std::printf("Table 1: Specifications of the GPUs used in the "
                "evaluation\n(peak rates at GPU base clock, as in the "
                "paper)\n\n");

    TextTable table("");
    table.setHeader({"", "A100", "RTX 3090", "T4"});
    const auto specs = GpuSpec::all();
    auto row = [&](const std::string &label, auto getter) {
        std::vector<std::string> cells = {label};
        for (const GpuSpec &spec : specs)
            cells.push_back(getter(spec));
        table.addRow(cells);
    };
    row("Memory Bandwidth (GB/s)", [](const GpuSpec &s) {
        return strprintf("%.1f", s.dramBandwidth / Giga);
    });
    row("TFLOPS (FP16 CUDA)", [](const GpuSpec &s) {
        return strprintf("%.1f", s.fp16CudaFlops / Tera);
    });
    row("TFLOPS (FP16 Tensor)", [](const GpuSpec &s) {
        return strprintf("%.1f", s.fp16TensorFlops / Tera);
    });
    row("L1 D$ per SM (KB)", [](const GpuSpec &s) {
        return strprintf("%llu",
                         (unsigned long long)(s.l1PerSm / KiB));
    });
    row("L2 $ (MB)", [](const GpuSpec &s) {
        return strprintf("%llu",
                         (unsigned long long)(s.l2Bytes / MiB));
    });
    table.addSeparator();
    row("SMs (model input)", [](const GpuSpec &s) {
        return strprintf("%d", s.numSms);
    });
    row("Max threads per SM", [](const GpuSpec &s) {
        return strprintf("%d", s.maxThreadsPerSm);
    });
    row("Usable smem per SM (KB)", [](const GpuSpec &s) {
        return strprintf("%llu",
                         (unsigned long long)(s.smemPerSm / KiB));
    });
    row("DRAM energy (pJ/B)", [](const GpuSpec &s) {
        return strprintf("%.0f", s.dramEnergyPerByte * 1e12);
    });
    table.print();
    return 0;
}
