/**
 * @file
 * Reproduces Fig. 7: average execution time of the existing GPU
 * libraries (HuggingFace, FasterTransformer, TensorRT, DeepSpeed) and
 * the paper's baseline implementation, for BERT-large (dense) and
 * BigBird-large (sparse) at L = 4096, batch 1.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "model/library_profiles.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    run.batch = 1;

    std::printf("Fig. 7: Average execution time of GPU libraries and "
                "our baseline on %s (L = 4096, batch 1, synthetic "
                "TriviaQA-like workload)\n\n",
                spec.name.c_str());

    for (const ModelConfig &model :
         {ModelConfig::bertLarge(), ModelConfig::bigBirdLarge()}) {
        TextTable table(model.name);
        table.setHeader({"Library", "latency", "normalized", "kernels"});
        double best = 0.0;
        std::vector<std::pair<Library, InferenceResult>> results;
        for (Library lib : allLibraries()) {
            if (!librarySupports(lib, model))
                continue;
            results.emplace_back(
                lib, runLibraryInference(spec, model, run, lib));
            const double s = results.back().second.seconds;
            if (best == 0.0 || s < best)
                best = s;
        }
        for (const auto &[lib, result] : results) {
            table.addRow({
                libraryShortName(lib),
                formatSeconds(result.seconds),
                ratio(result.seconds / best),
                strprintf("%lld", (long long)result.kernelLaunches),
            });
        }
        for (Library lib : allLibraries()) {
            if (!librarySupports(lib, model)) {
                table.addRow({libraryShortName(lib),
                              "n/a (no block-sparse path)", "-", "-"});
            }
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Paper's observations reproduced: TensorRT is the "
                "best dense library and DeepSpeed the best sparse "
                "one; the paper's baseline (CUTLASS GEMM + TensorRT "
                "softmax / custom block-sparse GEMM) tracks the best "
                "library within a few percent; eager HuggingFace "
                "trails far behind.\n");
    return 0;
}
