/**
 * @file
 * Extension study (paper Section 6, carried through the backward
 * pass): one full training step of the SDA block — forward plus
 * backward — under the baseline and under softmax recomposition, for
 * BERT-large shapes on the A100. Reports step time, off-chip traffic,
 * and the activation bytes that must persist between the passes.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/training.hpp"
#include "sim/gpu.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();

    std::printf("Training-step ablation: SDA block forward + backward "
                "on %s (BERT-large shapes, 16 heads, batch 1)\n\n",
                spec.name.c_str());

    for (int64_t seq_len : {2048, 4096}) {
        SdaConfig config;
        config.heads = 16;
        config.seqLen = seq_len;
        config.dHead = 64;

        TextTable table(strprintf("L = %lld", (long long)seq_len));
        table.setHeader({"Strategy", "forward", "backward", "step",
                         "speedup", "traffic", "activations"});
        double base_step = 0.0;
        for (Strategy strategy : allStrategies()) {
            const SdaTrainingSchedule sched =
                buildSdaTrainingSchedule(spec, config, strategy);
            Gpu fwd(spec), bwd(spec);
            for (const KernelProfile &prof : sched.forward)
                fwd.launch(prof);
            for (const KernelProfile &prof : sched.backward)
                bwd.launch(prof);
            const double step =
                fwd.totalSeconds() + bwd.totalSeconds();
            if (strategy == Strategy::Baseline)
                base_step = step;
            table.addRow({
                strategyName(strategy),
                formatSeconds(fwd.totalSeconds()),
                formatSeconds(bwd.totalSeconds()),
                formatSeconds(step),
                ratio(base_step / step),
                formatBytes(fwd.totalDramBytes() +
                            bwd.totalDramBytes()),
                formatBytes(sched.activationBytes),
            });
        }
        table.print();
        std::printf("\n");
    }

    std::printf(
        "Findings: the forward win carries over unchanged (Eq. (3) "
        "lets the backward work from Y alone, so S is never stored); "
        "the recomposed backward replaces the serialized softmax-"
        "backward kernel with GEMM-fused work at roughly equal "
        "traffic; activation memory for the attention matrices "
        "roughly halves.\n");
    return 0;
}
