/**
 * @file
 * Reproduces Fig. 5: proportion of each sub-layer within the
 * decomposed softmax (SD configuration) on the A100 — (a) execution
 * time breakdown and (b) off-chip memory access breakdown across the
 * LS, IR, and GS kernels.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const int64_t seq_len = 4096;

    std::printf("Fig. 5: Decomposed softmax sub-layer proportions on "
                "%s (L = %lld, batch 1, SD configuration)\n\n",
                spec.name.c_str(), (long long)seq_len);

    TextTable time_table("(a) Execution-time breakdown of LS/IR/GS");
    time_table.setHeader(
        {"Model", "LS", "IR", "GS", "softmax total"});
    TextTable mem_table("(b) Off-chip access breakdown of LS/IR/GS");
    mem_table.setHeader(
        {"Model", "LS", "IR", "GS", "softmax bytes"});

    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        RunConfig run;
        run.seqLen = seq_len;
        run.strategy = Strategy::Decomposed;
        const InferenceResult result = runInference(spec, model, run);

        const double ls_t = result.secondsIn(KernelCategory::SoftmaxLs);
        const double ir_t = result.secondsIn(KernelCategory::SoftmaxIr);
        const double gs_t = result.secondsIn(KernelCategory::SoftmaxGs);
        const double total_t = ls_t + ir_t + gs_t;
        time_table.addRow({
            model.name,
            percent(ls_t / total_t),
            percent(ir_t / total_t),
            percent(gs_t / total_t),
            formatSeconds(total_t),
        });

        const double ls_b =
            double(result.dramBytesIn(KernelCategory::SoftmaxLs));
        const double ir_b =
            double(result.dramBytesIn(KernelCategory::SoftmaxIr));
        const double gs_b =
            double(result.dramBytesIn(KernelCategory::SoftmaxGs));
        const double total_b = ls_b + ir_b + gs_b;
        mem_table.addRow({
            model.name,
            percent(ls_b / total_b),
            percent(ir_b / total_b),
            percent(gs_b / total_b),
            formatBytes(uint64_t(total_b)),
        });
    }
    time_table.print();
    std::printf("\n");
    mem_table.print();

    std::printf("\nPaper's claims reproduced: LS and GS dominate both "
                "time and traffic; IR stays below 12.5%% because its "
                "data is ~T times smaller than the attention matrix "
                "(T = 64 here).\n");
    return 0;
}
