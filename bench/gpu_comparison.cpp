/**
 * @file
 * Reproduces the Section 5.1 cross-GPU results: SDF speedups on the
 * RTX 3090 and T4 alongside the A100, and the softmax-share shifts
 * that explain them (the paper: 3090 = 1.12/1.05/1.32/1.36x,
 * T4 = 1.22/1.08/1.77/1.87x).
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const int64_t seq_len = 4096;

    std::printf("Section 5.1: softmax recomposition across GPUs "
                "(L = %lld, batch 1, SDF over baseline)\n\n",
                (long long)seq_len);

    TextTable table("End-to-end speedup (model / paper)");
    table.setHeader({"Model", "A100", "RTX 3090", "paper 3090", "T4",
                     "paper T4"});
    TextTable shares("Baseline softmax share of execution time");
    shares.setHeader({"Model", "A100", "RTX 3090", "T4"});

    const auto &paper = paperSpeedupsOtherGpus();
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        std::map<std::string, double> speedup;
        std::map<std::string, double> share;
        for (const GpuSpec &spec : GpuSpec::all()) {
            const StrategySweep sweep =
                runStrategies(spec, model, seq_len);
            speedup[spec.name] =
                sweep.baseline.seconds / sweep.fused.seconds;
            share[spec.name] = sweep.baseline.softmaxSeconds() /
                               sweep.baseline.seconds;
        }
        table.addRow({
            model.name,
            ratio(speedup["A100"]),
            ratio(speedup["RTX 3090"]),
            ratio(paper.at("RTX 3090").at(model.name)),
            ratio(speedup["T4"]),
            ratio(paper.at("T4").at(model.name)),
        });
        shares.addRow({
            model.name,
            percent(share["A100"]),
            percent(share["RTX 3090"]),
            percent(share["T4"]),
        });
    }
    table.print();
    std::printf("\n");
    shares.print();

    std::printf("\nPaper's explanation reproduced: the RTX 3090's "
                "lower tensor-FLOPS-to-bandwidth ratio inflates the "
                "MatMul share and shrinks the softmax share, so the "
                "dense speedups drop below the A100's; the sparse "
                "models keep large softmax shares everywhere and win "
                "on every GPU.\n");
    return 0;
}
