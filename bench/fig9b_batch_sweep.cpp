/**
 * @file
 * Reproduces Fig. 9(b): end-to-end speedup of softmax recomposition
 * (SDF over baseline) as a function of batch size on the A100 at
 * L = 4096, plus the Section 5.2 sparse share-shift data (MatMul
 * 17% -> 10%, softmax 40% -> 48% from batch 1 to 8).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const int64_t seq_len = 4096;
    const std::vector<int64_t> batches = {1, 2, 4, 8};

    std::printf("Fig. 9(b): speedup vs batch size on %s "
                "(L = %lld, SDF over baseline)\n\n",
                spec.name.c_str(), (long long)seq_len);

    TextTable table("");
    std::vector<std::string> header = {"Model"};
    for (int64_t batch : batches)
        header.push_back(strprintf("B=%lld", (long long)batch));
    table.setHeader(header);

    CsvWriter csv;
    csv.setHeader({"model", "batch", "sdf_speedup"});
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        std::vector<std::string> row = {model.name};
        for (int64_t batch : batches) {
            const StrategySweep sweep =
                runStrategies(spec, model, seq_len, batch);
            const double speedup =
                sweep.baseline.seconds / sweep.fused.seconds;
            row.push_back(ratio(speedup));
            csv.addRow({model.name, strprintf("%lld", (long long)batch),
                        strprintf("%.4f", speedup)});
        }
        table.addRow(row);
    }
    csv.writeFile("fig9b_batch_sweep.csv");
    table.print();

    // Section 5.2 share shift for sparse attention.
    std::printf("\nSection 5.2: baseline share shift for "
                "BigBird-large (paper: MatMul 17%% -> 10%%, softmax "
                "40%% -> 48%% from batch 1 to 8)\n\n");
    TextTable shares("");
    shares.setHeader({"Batch", "MatMul(SDA) share", "Softmax share"});
    for (int64_t batch : {int64_t(1), int64_t(8)}) {
        RunConfig run;
        run.seqLen = seq_len;
        run.batch = batch;
        const InferenceResult result =
            runInference(spec, ModelConfig::bigBirdLarge(), run);
        shares.addRow({
            strprintf("%lld", (long long)batch),
            percent(result.secondsIn(KernelCategory::SdaMatMul) /
                    result.seconds),
            percent(result.softmaxSeconds() / result.seconds),
        });
    }
    shares.print();

    std::printf("\nPaper's trend reproduced: larger batches amortize "
                "the sparse MatMul's load imbalance across more "
                "thread blocks, which raises the softmax share and "
                "with it the benefit of recomposition.\n");
    return 0;
}
