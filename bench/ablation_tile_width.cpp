/**
 * @file
 * Design ablation: sensitivity of softmax recomposition to the
 * sub-vector width T (= the fused GEMM's output-tile width). The
 * paper argues T >= 32 makes the m'/d'/r' intermediates negligible
 * (their count is 1/T of the attention matrix) and observes real
 * transformer GEMMs use T >= 64 (Section 3.3). This bench sweeps T
 * for BERT-large on the A100 and reports speedup and intermediate
 * traffic.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/recomposition.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::bertLarge();
    const int64_t seq_len = 4096;

    std::printf("Ablation: sub-vector width T for %s on %s "
                "(L = %lld, batch 1, SDF)\n\n",
                model.name.c_str(), spec.name.c_str(),
                (long long)seq_len);

    RunConfig base_run;
    base_run.seqLen = seq_len;
    const InferenceResult baseline =
        runInference(spec, model, base_run);

    TextTable table("");
    table.setHeader({"T", "SDF speedup", "intermediate traffic",
                     "share of attention matrix", "SDA kernels"});
    for (int64_t t : {16, 32, 64, 128, 256}) {
        RunConfig run;
        run.seqLen = seq_len;
        run.strategy = Strategy::Fused;
        run.subVector = t;
        const InferenceResult result = runInference(spec, model, run);

        // Recover the per-layer intermediate traffic from the planner.
        SdaConfig sda;
        sda.batch = 1;
        sda.heads = model.numHeads;
        sda.seqLen = seq_len;
        sda.dHead = model.dHead();
        sda.subVector = t;
        const SdaSchedule sched =
            buildSdaSchedule(spec, sda, Strategy::Fused);
        table.addRow({
            strprintf("%lld", (long long)t),
            ratio(baseline.seconds / result.seconds),
            formatBytes(sched.intermediateBytes * 24),
            percent(double(sched.intermediateBytes) /
                    double(sched.attentionMatrixBytes)),
            strprintf("%zu", sched.kernels.size()),
        });
    }
    table.print();

    std::printf(
        "\nPaper's claim reproduced: the intermediate m'/d'/r' "
        "traffic scales as 1/T and is already negligible at T = 32; "
        "tile widths of 64-128 (what CUTLASS picks for these GEMMs) "
        "sit on the flat part of the curve, so fusing LS at the "
        "GEMM's natural tile width costs nothing.\n");
    return 0;
}
