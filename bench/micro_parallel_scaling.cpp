/**
 * @file
 * Host-parallel scaling of the functional runtime: times one L = 4096
 * functional encoder layer (the heaviest CPU-executed path in the
 * repo) under thread counts {1, 2, 4, 8} and reports the speedup over
 * the serial run. The kernels parallelize over fixed chunk
 * boundaries, so every row of the table computes bit-identical
 * outputs — the bench verifies that too.
 *
 * Each row is the median of kReps timed runs after kWarmup warmup
 * runs (single-shot timing is dominated by first-touch page faults).
 * Results also land in BENCH_micro_parallel_scaling.json.
 * SOFTREC_BENCH_SEQLEN overrides L for quick runs.
 *
 * Speedup is bounded by the machine: on a single-core container the
 * table reports ~1.0x at every thread count by construction, so the
 * hardware concurrency is printed alongside for interpretation.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/exec_context.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "model/functional_layer.hpp"
#include "tensor/tensor_ops.hpp"

using namespace softrec;
using namespace softrec::bench;

namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 5;

} // namespace

int
main()
{
    const int64_t seq_len = benchSeqLenFromEnv(4096);
    FunctionalLayerConfig config;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 128;
    config.strategy = Strategy::Fused;
    config.subVector = 16;

    Rng wrng(1);
    const EncoderLayerWeights weights =
        EncoderLayerWeights::random(config.dModel, config.dFf, wrng);
    Tensor<Half> input(Shape({seq_len, config.dModel}));
    Rng irng(2);
    fillNormal(input, irng, 0.0, 1.0);

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("Host-parallel scaling: functional encoder layer "
                "(L = %lld, dModel = %lld, %lld heads, SDF)\n",
                (long long)seq_len, (long long)config.dModel,
                (long long)config.numHeads);
    std::printf("hardware_concurrency = %u "
                "(speedup is capped by physical cores)\n\n", hw);

    BenchReport report("micro_parallel_scaling");
    report.setConfig("seq_len", seq_len);
    report.setConfig("d_model", config.dModel);
    report.setConfig("num_heads", config.numHeads);
    report.setConfig("strategy", "sdf");
    report.setConfig("warmup", int64_t(kWarmup));
    report.setConfig("reps", int64_t(kReps));
    report.setConfig("hardware_concurrency", int64_t(hw));

    // Serial baseline: median-of-N with the profiler attached on the
    // last run so per-kernel rows land in the JSON too.
    Tensor<Half> serial_out(input.shape());
    const double serial_s = medianSeconds(kWarmup, kReps, [&] {
        serial_out = runEncoderLayer(ExecContext(), config, weights,
                                     input);
    });
    prof::Profiler profiler;
    {
        ExecContext ctx;
        ctx.profiler = &profiler;
        runEncoderLayer(ctx, config, weights, input);
    }
    report.addKernels(profiler);

    TextTable table("Encoder layer wall time by thread count "
                    "(median of 5)");
    table.setHeader({"threads", "seconds", "speedup", "bit-identical"});
    table.addRow({"1", strprintf("%.3f", serial_s), "1.00x", "yes"});
    report.setDerived("seconds_t1", serial_s);

    for (int threads : {2, 4, 8}) {
        ThreadPool pool(threads);
        ExecContext ctx;
        ctx.pool = &pool;
        Tensor<Half> out(input.shape());
        const double seconds = medianSeconds(kWarmup, kReps, [&] {
            out = runEncoderLayer(ctx, config, weights, input);
        });
        bool identical = true;
        for (int64_t i = 0; i < out.numel() && identical; ++i)
            identical = out.at(i).bits() == serial_out.at(i).bits();
        table.addRow({strprintf("%d", threads),
                      strprintf("%.3f", seconds),
                      strprintf("%.2fx", serial_s / seconds),
                      identical ? "yes" : "NO"});
        report.setDerived(strprintf("seconds_t%d", threads), seconds);
        report.setDerived(strprintf("speedup_t%d", threads),
                          serial_s / seconds);
        if (!identical) {
            std::printf("ERROR: %d-thread output diverged from "
                        "serial\n", threads);
            return 1;
        }
    }
    table.print();
    report.writeFile(report.defaultPath());
    std::printf("wrote %s\n", report.defaultPath().c_str());
    return 0;
}
