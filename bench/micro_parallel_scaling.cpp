/**
 * @file
 * Host-parallel scaling of the functional runtime: times one L = 4096
 * functional encoder layer (the heaviest CPU-executed path in the
 * repo) under thread counts {1, 2, 4, 8} and reports the speedup over
 * the serial run. The kernels parallelize over fixed chunk
 * boundaries, so every row of the table computes bit-identical
 * outputs — the bench verifies that too.
 *
 * Speedup is bounded by the machine: on a single-core container the
 * table reports ~1.0x at every thread count by construction, so the
 * hardware concurrency is printed alongside for interpretation.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "model/functional_layer.hpp"
#include "tensor/tensor_ops.hpp"

using namespace softrec;
using namespace softrec::bench;

namespace {

double
timedSeconds(const ExecContext &ctx,
             const FunctionalLayerConfig &config,
             const EncoderLayerWeights &weights,
             const Tensor<Half> &input, Tensor<Half> *out)
{
    const auto start = std::chrono::steady_clock::now();
    Tensor<Half> result = runEncoderLayer(ctx, config, weights, input);
    const auto stop = std::chrono::steady_clock::now();
    if (out != nullptr)
        *out = std::move(result);
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main()
{
    const int64_t seq_len = 4096;
    FunctionalLayerConfig config;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 128;
    config.strategy = Strategy::Fused;
    config.subVector = 16;

    Rng wrng(1);
    const EncoderLayerWeights weights =
        EncoderLayerWeights::random(config.dModel, config.dFf, wrng);
    Tensor<Half> input(Shape({seq_len, config.dModel}));
    Rng irng(2);
    fillNormal(input, irng, 0.0, 1.0);

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("Host-parallel scaling: functional encoder layer "
                "(L = %lld, dModel = %lld, %lld heads, SDF)\n",
                (long long)seq_len, (long long)config.dModel,
                (long long)config.numHeads);
    std::printf("hardware_concurrency = %u "
                "(speedup is capped by physical cores)\n\n", hw);

    // Warm-up + serial baseline.
    Tensor<Half> serial_out(input.shape());
    timedSeconds(ExecContext(), config, weights, input, nullptr);
    const double serial_s =
        timedSeconds(ExecContext(), config, weights, input,
                     &serial_out);

    TextTable table("Encoder layer wall time by thread count");
    table.setHeader({"threads", "seconds", "speedup", "bit-identical"});
    table.addRow({"1", strprintf("%.3f", serial_s), "1.00x", "yes"});

    for (int threads : {2, 4, 8}) {
        ThreadPool pool(threads);
        ExecContext ctx;
        ctx.pool = &pool;
        Tensor<Half> out(input.shape());
        timedSeconds(ctx, config, weights, input, nullptr); // warm-up
        const double seconds =
            timedSeconds(ctx, config, weights, input, &out);
        bool identical = true;
        for (int64_t i = 0; i < out.numel() && identical; ++i)
            identical = out.at(i).bits() == serial_out.at(i).bits();
        table.addRow({strprintf("%d", threads),
                      strprintf("%.3f", seconds),
                      strprintf("%.2fx", serial_s / seconds),
                      identical ? "yes" : "NO"});
        if (!identical) {
            std::printf("ERROR: %d-thread output diverged from "
                        "serial\n", threads);
            return 1;
        }
    }
    table.print();
    return 0;
}
