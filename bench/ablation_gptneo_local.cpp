/**
 * @file
 * Model-fidelity ablation: the paper evaluates GPT-Neo as a dense
 * causal model, but the published GPT-Neo-1.3B actually alternates
 * dense ("global") layers with causal sliding-window ("local",
 * window 256) layers. This bench runs both treatments and checks
 * whether the paper's modeling simplification changes its
 * conclusions about softmax recomposition.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const int64_t seq_len = 4096;

    std::printf("GPT-Neo fidelity ablation on %s (L = %lld, "
                "batch 1)\n\n",
                spec.name.c_str(), (long long)seq_len);

    TextTable table("");
    table.setHeader({"Treatment", "baseline", "softmax share",
                     "SD speedup", "SDF speedup", "traffic (SDF/base)"});
    for (const ModelConfig &model :
         {ModelConfig::gptNeo13B(), ModelConfig::gptNeo13BLocal()}) {
        const StrategySweep sweep =
            runStrategies(spec, model, seq_len);
        table.addRow({
            model.name,
            formatSeconds(sweep.baseline.seconds),
            percent(sweep.baseline.softmaxSeconds() /
                    sweep.baseline.seconds),
            ratio(sweep.baseline.seconds / sweep.decomposed.seconds),
            ratio(sweep.baseline.seconds / sweep.fused.seconds),
            strprintf("%.2f", double(sweep.fused.dramBytes()) /
                                  double(sweep.baseline.dramBytes())),
        });
    }
    table.print();

    std::printf(
        "\nReading: the real alternating-local GPT-Neo spends less "
        "total time in attention (half its layers see only a 256-"
        "token window), which shrinks the dense layers' softmax share "
        "but adds sparse-attention layers whose baseline softmax "
        "suffers the worst-case-row allocation problem; recomposition "
        "still wins, so the paper's dense simplification is "
        "conservative rather than flattering.\n");
    return 0;
}
