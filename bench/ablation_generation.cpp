/**
 * @file
 * Serving-scenario ablation: autoregressive generation with GPT-Neo
 * (long prompt prefill + KV-cache decode). Quantifies where softmax
 * recomposition pays in a generation workload: the prefill phase is
 * exactly the paper's evaluated forward pass, while each decode step
 * has a single 1 x C attention row per head and is bound by weight
 * and KV-cache streaming instead.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "model/decode.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::gptNeo13B();

    std::printf("Generation ablation: %s on %s (prefill + KV-cache "
                "decode, batch 1)\n\n",
                model.name.c_str(), spec.name.c_str());

    TextTable table("");
    table.setHeader({"prompt", "new tokens", "prefill (base)",
                     "prefill (SDF)", "decode", "ms/token",
                     "request speedup"});
    struct Case
    {
        int64_t prompt;
        int64_t tokens;
    };
    for (const Case &c : {Case{4096, 32}, Case{4096, 256},
                          Case{2048, 32}, Case{1024, 256}}) {
        DecodeRun run;
        run.promptLen = c.prompt;
        run.generateTokens = c.tokens;
        run.prefillStrategy = Strategy::Baseline;
        const DecodeResult base = runGeneration(spec, model, run);
        run.prefillStrategy = Strategy::Fused;
        const DecodeResult sdf = runGeneration(spec, model, run);
        table.addRow({
            strprintf("%lld", (long long)c.prompt),
            strprintf("%lld", (long long)c.tokens),
            formatSeconds(base.prefillSeconds),
            formatSeconds(sdf.prefillSeconds),
            formatSeconds(base.decodeSeconds),
            strprintf("%.2f",
                      base.secondsPerToken(c.tokens) * 1e3),
            ratio(base.totalSeconds() / sdf.totalSeconds()),
        });
    }
    table.print();

    std::printf(
        "\nReading: recomposition accelerates the prefill (the "
        "paper's workload) but not the per-token decode, whose "
        "attention is one row per head; request-level speedup "
        "therefore tracks the prefill's share of the request. "
        "Long-prompt, short-output requests - summarization, "
        "question answering over documents - see nearly the full "
        "Fig. 8 benefit.\n");
    return 0;
}
