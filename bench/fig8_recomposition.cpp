/**
 * @file
 * Reproduces Fig. 8: (a) execution time and (b) off-chip memory
 * accesses per inference, normalized to the baseline, when softmax
 * decomposition (SD) and decomposition + fusion (SDF) are applied to
 * BERT, GPT-Neo, BigBird, and Longformer on the A100 (L = 4096,
 * batch 1). Also prints the Section 5.1 side-effect metrics: SDF
 * MatMul-time growth, remaining IR cost, intermediate-value traffic,
 * and the Fig. 6 attention-matrix sweep counts.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace softrec;
using namespace softrec::bench;

int
main()
{
    const GpuSpec spec = GpuSpec::a100();
    const int64_t seq_len = 4096;

    std::printf("Fig. 8: softmax recomposition on %s "
                "(L = %lld, batch 1, FP16)\n\n",
                spec.name.c_str(), (long long)seq_len);

    TextTable time_table(
        "(a) Normalized execution time (lower is better)");
    time_table.setHeader({"Model", "Baseline", "SD", "SDF",
                          "SDF speedup", "paper SDF", "paper SD"});
    TextTable mem_table(
        "(b) Normalized off-chip memory accesses (lower is better)");
    mem_table.setHeader({"Model", "Baseline", "SD", "SDF",
                         "baseline traffic"});
    TextTable side_table("Section 5.1 side effects under SDF");
    side_table.setHeader({"Model", "MatMul time", "IR / base softmax",
                          "intermediates / base softmax bytes",
                          "attention sweeps"});

    CsvWriter csv;
    csv.setHeader({"model", "baseline_ms", "sd_norm_time",
                   "sdf_norm_time", "sd_norm_bytes", "sdf_norm_bytes",
                   "paper_sdf_speedup", "paper_sd_speedup"});

    BenchReport report("fig8_recomposition");
    report.setConfig("gpu", spec.name);
    report.setConfig("seq_len", seq_len);
    report.setConfig("batch", int64_t(1));

    double energy_ratio_sum = 0.0;
    double latency_ratio_sum = 0.0;
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        const StrategySweep sweep =
            runStrategies(spec, model, seq_len);
        const double base_s = sweep.baseline.seconds;
        time_table.addRow({
            model.name + strprintf(" (%s)",
                                   formatSeconds(base_s).c_str()),
            "1.00",
            strprintf("%.2f", sweep.decomposed.seconds / base_s),
            strprintf("%.2f", sweep.fused.seconds / base_s),
            ratio(base_s / sweep.fused.seconds),
            ratio(paperSpeedupsA100().at(model.name)),
            ratio(paperSdSpeedupsA100().at(model.name)),
        });
        const double base_b = double(sweep.baseline.dramBytes());
        mem_table.addRow({
            model.name,
            "1.00",
            strprintf("%.2f", sweep.decomposed.dramBytes() / base_b),
            strprintf("%.2f", sweep.fused.dramBytes() / base_b),
            formatBytes(sweep.baseline.dramBytes()),
        });
        const double matmul_growth =
            sweep.fused.secondsIn(KernelCategory::SdaMatMul) /
            sweep.baseline.secondsIn(KernelCategory::SdaMatMul);
        const double ir_share =
            sweep.fused.secondsIn(KernelCategory::SoftmaxIr) /
            sweep.baseline.softmaxSeconds();
        const double extra_bytes =
            double(sweep.fused.dramBytesIn(KernelCategory::SdaMatMul)) -
            double(sweep.baseline.dramBytesIn(
                KernelCategory::SdaMatMul));
        const double intermediates_share =
            extra_bytes / double(sweep.baseline.softmaxDramBytes());
        side_table.addRow({
            model.name,
            strprintf("+%.0f%%", (matmul_growth - 1.0) * 100.0),
            percent(ir_share),
            percent(intermediates_share),
            strprintf("%d -> %d", sweep.baseline.attentionSweeps,
                      sweep.fused.attentionSweeps),
        });
        energy_ratio_sum += sweep.fused.offChipEnergyJoules /
                            sweep.baseline.offChipEnergyJoules;
        latency_ratio_sum += sweep.fused.seconds / base_s;
        csv.addRow({model.name, strprintf("%.3f", base_s * 1e3),
                    strprintf("%.4f", sweep.decomposed.seconds / base_s),
                    strprintf("%.4f", sweep.fused.seconds / base_s),
                    strprintf("%.4f", sweep.decomposed.dramBytes() / base_b),
                    strprintf("%.4f", sweep.fused.dramBytes() / base_b),
                    strprintf("%.2f", paperSpeedupsA100().at(model.name)),
                    strprintf("%.2f", paperSdSpeedupsA100().at(model.name))});
        addCategoryRows(report, model.name + "/baseline",
                        sweep.baseline);
        addCategoryRows(report, model.name + "/sd", sweep.decomposed);
        addCategoryRows(report, model.name + "/sdf", sweep.fused);
        report.setDerived("sdf_speedup_" + model.name,
                          base_s / sweep.fused.seconds);
        report.setDerived("sdf_norm_bytes_" + model.name,
                          double(sweep.fused.dramBytes()) / base_b);
    }

    csv.writeFile("fig8_recomposition.csv");
    report.writeFile(report.defaultPath());
    time_table.print();
    std::printf("\n");
    mem_table.print();
    std::printf("\n");
    side_table.print();

    std::printf(
        "\nAverages across the four models: latency -%.0f%% "
        "(paper: -28%%), off-chip access energy -%.0f%% "
        "(paper: -29%%).\n"
        "Paper bands for the side effects: MatMul +28..55%%, IR "
        "< 2.9%%, intermediates < 9.3%%, sweeps 4 -> 2 (Fig. 6).\n",
        (1.0 - latency_ratio_sum / 4.0) * 100.0,
        (1.0 - energy_ratio_sum / 4.0) * 100.0);
    return 0;
}
