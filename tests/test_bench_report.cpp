/**
 * @file
 * Unit tests of the BenchReport JSON emitter and its primitives:
 * schema fields, jsonNumber/jsonQuote correctness, locale
 * independence of the formatting paths, and round-tripping a
 * profiler snapshot into kernel rows.
 */

#include <clocale>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/bench_report.hpp"
#include "common/logging.hpp"
#include "common/profiler.hpp"

namespace softrec {
namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(JsonNumber, IntegersAndFractions)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(1.25), "1.25");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
    EXPECT_EQ(jsonNumber(-HUGE_VAL), "null");
}

TEST(JsonQuote, EscapesSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(jsonQuote(std::string("a\x01") + "b"),
              "\"a\\u0001b\"");
}

TEST(BenchReport, EmitsSchemaAndSections)
{
    BenchReport report("unit");
    report.setConfig("seq_len", int64_t(512));
    report.setConfig("gpu", "A100");
    report.setConfig("checked", false);
    report.setConfig("scale", 0.125);
    BenchKernelRow row;
    row.name = "softmax.row";
    row.ms = 1.5;
    row.bytesRead = 1024;
    row.bytesWritten = 2048;
    row.calls = 3;
    row.threads = 4;
    report.addKernel(row);
    report.setDerived("speedup", 1.25);

    const std::string json = report.render();
    EXPECT_TRUE(contains(json, "\"schema\": \"softrec-bench-v1\""));
    EXPECT_TRUE(contains(json, "\"name\": \"unit\""));
    EXPECT_TRUE(contains(json, "\"seq_len\": 512"));
    EXPECT_TRUE(contains(json, "\"gpu\": \"A100\""));
    EXPECT_TRUE(contains(json, "\"checked\": false"));
    EXPECT_TRUE(contains(json, "\"scale\": 0.125"));
    EXPECT_TRUE(contains(json, "\"name\": \"softmax.row\""));
    EXPECT_TRUE(contains(json, "\"ms\": 1.5"));
    EXPECT_TRUE(contains(json, "\"bytes_read\": 1024"));
    EXPECT_TRUE(contains(json, "\"bytes_written\": 2048"));
    EXPECT_TRUE(contains(json, "\"calls\": 3"));
    EXPECT_TRUE(contains(json, "\"threads\": 4"));
    EXPECT_TRUE(contains(json, "\"speedup\": 1.25"));
    EXPECT_EQ(json.back(), '\n');
}

TEST(BenchReport, DefaultPathUsesName)
{
    const char *saved = std::getenv("SOFTREC_BENCH_DIR");
    unsetenv("SOFTREC_BENCH_DIR");
    BenchReport report("micro_kernels");
    EXPECT_EQ(report.defaultPath(), "BENCH_micro_kernels.json");
    if (saved != nullptr)
        setenv("SOFTREC_BENCH_DIR", saved, 1);
}

TEST(BenchReport, BenchDirOverridesTheReportDirectory)
{
    const char *previous = std::getenv("SOFTREC_BENCH_DIR");
    const std::string saved = previous != nullptr ? previous : "";

    BenchReport report("serve_throughput");
    setenv("SOFTREC_BENCH_DIR", "/tmp/reports", 1);
    EXPECT_EQ(report.defaultPath(),
              "/tmp/reports/BENCH_serve_throughput.json");
    // A trailing slash must not produce a double separator.
    setenv("SOFTREC_BENCH_DIR", "/tmp/reports/", 1);
    EXPECT_EQ(report.defaultPath(),
              "/tmp/reports/BENCH_serve_throughput.json");
    // Empty behaves like unset: current working directory.
    setenv("SOFTREC_BENCH_DIR", "", 1);
    EXPECT_EQ(report.defaultPath(), "BENCH_serve_throughput.json");
    unsetenv("SOFTREC_BENCH_DIR");
    EXPECT_EQ(report.defaultPath(), "BENCH_serve_throughput.json");

    if (previous != nullptr)
        setenv("SOFTREC_BENCH_DIR", saved.c_str(), 1);
}

TEST(BenchReport, AddKernelsFromProfiler)
{
    prof::Profiler profiler;
    ExecContext ctx;
    ctx.profiler = &profiler;
    {
        prof::Scope scope(ctx, "kernel.b");
        scope.addWrite(64);
    }
    {
        prof::Scope scope(ctx, "kernel.a");
        scope.addRead(32);
    }
    BenchReport report("unit");
    report.addKernels(profiler);
    const std::string json = report.render();
    EXPECT_TRUE(contains(json, "\"name\": \"kernel.a\""));
    EXPECT_TRUE(contains(json, "\"name\": \"kernel.b\""));
    // Snapshot is a std::map, so rows arrive sorted by name.
    EXPECT_LT(json.find("kernel.a"), json.find("kernel.b"));
}

/**
 * The whole point of std::to_chars + the C-locale vsnprintf guard: a
 * comma-decimal locale must not leak into JSON numbers or any
 * strprintf-formatted float. de_DE may be absent in minimal
 * containers; setlocale then returns nullptr and the test silently
 * degrades to re-checking the C locale, which is still a valid run.
 */
TEST(BenchReport, LocaleIndependentFormatting)
{
    const char *previous = std::setlocale(LC_ALL, nullptr);
    const std::string saved = previous != nullptr ? previous : "C";
    std::setlocale(LC_ALL, "de_DE.UTF-8");

    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(strprintf("%.2f", 1.25), "1.25");
    BenchReport report("locale");
    report.setConfig("scale", 0.125);
    report.setDerived("ratio", 2.5);
    const std::string json = report.render();
    EXPECT_TRUE(contains(json, "\"scale\": 0.125"));
    EXPECT_TRUE(contains(json, "\"ratio\": 2.5"));
    EXPECT_FALSE(contains(json, "0,125"));

    std::setlocale(LC_ALL, saved.c_str());
}

} // namespace
} // namespace softrec
