/**
 * @file
 * Bit-exactness tests of the software binary16 type, including an
 * exhaustive round-trip over all 65,536 bit patterns.
 */

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fp16/half.hpp"

namespace softrec {
namespace {

TEST(Half, ExhaustiveRoundTripThroughFloat)
{
    // Every half value must survive half -> float -> half unchanged
    // (float can represent every binary16 exactly).
    for (uint32_t bits = 0; bits <= 0xffffu; ++bits) {
        const Half h = Half::fromBits(uint16_t(bits));
        if (h.isNan())
            continue; // NaN payloads may legally change
        const Half round_trip(h.toFloat());
        EXPECT_EQ(round_trip.bits(), h.bits()) << "bits=" << bits;
    }
}

TEST(Half, NanSurvivesAsNan)
{
    for (uint32_t bits = 0; bits <= 0xffffu; ++bits) {
        const Half h = Half::fromBits(uint16_t(bits));
        if (!h.isNan())
            continue;
        EXPECT_TRUE(std::isnan(h.toFloat())) << "bits=" << bits;
        EXPECT_TRUE(Half(h.toFloat()).isNan()) << "bits=" << bits;
    }
}

TEST(Half, KnownValues)
{
    EXPECT_EQ(Half(0.0f).bits(), 0x0000u);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
    EXPECT_EQ(Half(1.0f).bits(), 0x3c00u);
    EXPECT_EQ(Half(-1.0f).bits(), 0xbc00u);
    EXPECT_EQ(Half(2.0f).bits(), 0x4000u);
    EXPECT_EQ(Half(0.5f).bits(), 0x3800u);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7bffu); // max finite
    EXPECT_EQ(Half(1.0f / 16384.0f).bits(), 0x0400u); // min normal
    EXPECT_EQ(Half(5.960464477539063e-08f).bits(), 0x0001u); // min subnormal
}

TEST(Half, OverflowSaturatesToInfinity)
{
    EXPECT_TRUE(Half(65520.0f).isInf()); // rounds up past max
    EXPECT_TRUE(Half(1e10f).isInf());
    EXPECT_TRUE(Half(-1e10f).isInf());
    EXPECT_EQ(Half(-1e10f).bits(), 0xfc00u);
    // 65519 rounds down to 65504, not to infinity.
    EXPECT_EQ(Half(65519.0f).bits(), 0x7bffu);
}

TEST(Half, UnderflowFlushesToZeroBelowHalfMinSubnormal)
{
    const float min_subnormal = 5.960464477539063e-08f;
    EXPECT_EQ(Half(min_subnormal * 0.49f).bits(), 0x0000u);
    EXPECT_EQ(Half(-min_subnormal * 0.49f).bits(), 0x8000u);
    // Above half the min subnormal rounds up to it.
    EXPECT_EQ(Half(min_subnormal * 0.51f).bits(), 0x0001u);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10);
    // ties round to the even mantissa (1.0).
    EXPECT_EQ(Half(1.0f + 0.00048828125f).bits(), 0x3c00u);
    // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9; ties to even -> up.
    EXPECT_EQ(Half(1.0f + 3 * 0.00048828125f).bits(), 0x3c02u);
    // Slightly above the tie rounds up.
    EXPECT_EQ(Half(1.0f + 0.0005f).bits(), 0x3c01u);
}

TEST(Half, InfinityAndPredicates)
{
    EXPECT_TRUE(Half::infinity().isInf());
    EXPECT_FALSE(Half::infinity().isNan());
    EXPECT_TRUE(Half(0.0f).isZero());
    EXPECT_TRUE(Half(-0.0f).isZero());
    EXPECT_FALSE(Half(1.0f).isZero());
    EXPECT_TRUE(Half(std::numeric_limits<float>::quiet_NaN()).isNan());
    EXPECT_TRUE(Half(std::numeric_limits<float>::infinity()).isInf());
}

TEST(Half, ArithmeticGoesThroughFloat)
{
    const Half a(1.5f), b(2.25f);
    EXPECT_EQ(float(a + b), 3.75f);
    EXPECT_EQ(float(a - b), -0.75f);
    EXPECT_EQ(float(a * b), 3.375f);
    EXPECT_EQ(float(b / a), 1.5f);
    EXPECT_EQ(float(-a), -1.5f);
    EXPECT_EQ((-a).bits(), 0xbe00u);
}

TEST(Half, Comparisons)
{
    EXPECT_TRUE(Half(1.0f) < Half(2.0f));
    EXPECT_TRUE(Half(2.0f) > Half(1.0f));
    EXPECT_TRUE(Half(1.0f) == Half(1.0f));
    EXPECT_TRUE(Half(1.0f) != Half(2.0f));
    EXPECT_TRUE(Half(1.0f) <= Half(1.0f));
    EXPECT_TRUE(Half(1.0f) >= Half(1.0f));
    // Signed zeros compare equal, like IEEE floats.
    EXPECT_TRUE(Half(0.0f) == Half(-0.0f));
}

TEST(Half, RoundingErrorWithinHalfUlp)
{
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        const float x = float(rng.normal(0.0, 10.0));
        const Half h(x);
        const float back = h.toFloat();
        if (h.isInf())
            continue;
        // |x - fl(x)| <= 2^-11 * |x| for normals.
        const float tol =
            std::max(std::abs(x) * 0.000489f, 6.0e-8f);
        EXPECT_LE(std::abs(back - x), tol) << "x=" << x;
    }
}

TEST(Half, SignedInfinityRoundTrips)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(Half(inf).bits(), 0x7c00u);
    EXPECT_EQ(Half(-inf).bits(), 0xfc00u);
    EXPECT_EQ(Half(inf).toFloat(), inf);
    EXPECT_EQ(Half(-inf).toFloat(), -inf);
    EXPECT_TRUE(Half(-inf).isInf());
    EXPECT_FALSE(Half(-inf).isNan());
    // -inf is how masked logits are encoded; it must survive the
    // half <-> float boundary exactly for masking to be lossless.
    EXPECT_EQ(Half(Half(-inf).toFloat()).bits(), 0xfc00u);
}

TEST(Half, NanVariantsConvertToNan)
{
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    const float snan = std::numeric_limits<float>::signaling_NaN();
    EXPECT_TRUE(Half(qnan).isNan());
    EXPECT_TRUE(Half(-qnan).isNan());
    EXPECT_TRUE(Half(snan).isNan());
    EXPECT_TRUE(std::isnan(Half(qnan).toFloat()));
    // NaN compares unequal to everything, itself included.
    EXPECT_FALSE(Half(qnan) == Half(qnan));
    EXPECT_TRUE(Half(qnan) != Half(qnan));
}

TEST(Half, ExhaustiveSubnormals)
{
    // All 1023 subnormal magnitudes, both signs: value is
    // mantissa * 2^-24 exactly, and float holds that exactly, so the
    // round trip must be bit-identical with no double rounding.
    for (uint32_t mant = 1; mant <= 0x3ffu; ++mant) {
        for (uint32_t sign = 0; sign <= 1; ++sign) {
            const uint16_t bits = uint16_t((sign << 15) | mant);
            const Half h = Half::fromBits(bits);
            const float expected =
                (sign ? -1.0f : 1.0f) *
                std::ldexp(float(mant), -24);
            EXPECT_EQ(h.toFloat(), expected) << "bits=" << bits;
            EXPECT_EQ(Half(expected).bits(), bits) << "bits=" << bits;
            EXPECT_FALSE(h.isZero());
            EXPECT_FALSE(h.isInf());
            EXPECT_FALSE(h.isNan());
        }
    }
    // The subnormal/normal boundary is seamless: the largest
    // subnormal (0x03ff) is immediately below minNormal (0x0400).
    EXPECT_EQ(uint32_t(0x03ffu) + 1u, Half::minNormal().bits());
    EXPECT_LT(Half::fromBits(0x03ff).toFloat(),
              Half::minNormal().toFloat());
}

TEST(Half, UlpBoundaryAt1024)
{
    // In [1024, 2048) the half ulp is exactly 1: every integer is
    // representable and x.5 values are ties.
    for (int i = 1024; i < 2048; i += 97) {
        EXPECT_EQ(Half(float(i)).toFloat(), float(i)) << i;
        // Tie at i + 0.5 rounds to the even integer.
        const float tied = Half(float(i) + 0.5f).toFloat();
        EXPECT_EQ(tied, (i % 2 == 0) ? float(i) : float(i + 1)) << i;
        // Just past the tie rounds up.
        EXPECT_EQ(Half(float(i) + 0.50048828125f).toFloat(),
                  float(i + 1))
            << i;
    }
    // Boundary values bracketing the binade switch.
    EXPECT_EQ(Half(1023.5f).toFloat(), 1023.5f); // ulp still 0.5 below
    EXPECT_EQ(Half(1024.0f).bits(), 0x6400u);
    EXPECT_EQ(Half(2047.0f).toFloat(), 2047.0f); // last ulp-1 integer
    // In [2048, 4096) the ulp is 2: odd integers are ties and round
    // to the even-mantissa neighbour (a multiple of 4 when the even
    // choice falls there).
    EXPECT_EQ(Half(2048.0f).toFloat(), 2048.0f);
    EXPECT_EQ(Half(2049.0f).toFloat(), 2048.0f); // tie to even
    EXPECT_EQ(Half(2051.0f).toFloat(), 2052.0f); // tie to even
    EXPECT_EQ(Half(2050.0f).toFloat(), 2050.0f);
}

TEST(Half, MonotoneConversion)
{
    // Conversion must preserve ordering.
    Rng rng(43);
    for (int i = 0; i < 10000; ++i) {
        const float a = float(rng.normal(0.0, 100.0));
        const float b = float(rng.normal(0.0, 100.0));
        if (a <= b) {
            EXPECT_LE(float(Half(a)), float(Half(b)));
        } else {
            EXPECT_GE(float(Half(a)), float(Half(b)));
        }
    }
}

} // namespace
} // namespace softrec
