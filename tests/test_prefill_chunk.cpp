/**
 * @file
 * Chunk-boundary suite for resumable (chunked) prefill: splitting a
 * prompt into fixed-row chunks must be bit-identical to the one-shot
 * prefill — same stack outputs, same cache contents (including the
 * quantized cache's per-block headers), same subsequent decode
 * steps — for every chunk size, both attention backends, and both
 * KV storage formats. This is what lets the serve engine interleave
 * prefill with decode without perturbing a single generated token.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "kernels/streaming_attention.hpp"
#include "model/decode.hpp"
#include "serve/kv_cache.hpp"

namespace softrec {
namespace {

constexpr int64_t kDm = 32;
constexpr int64_t kHeads = 2;
constexpr int64_t kDff = 48;
constexpr int64_t kLayers = 2;
constexpr int64_t kPrompt = 70; // > 64 so chunk=64 splits for real
constexpr int64_t kDecodeSteps = 3;
constexpr int64_t kBlockTokens = 4;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens)
{
    Tensor<Half> prompt(Shape({tokens, kDm}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

DecoderStack
makeStack(AttentionBackend backend)
{
    Rng rng(11); // same weights in every combination
    DecoderStack stack =
        DecoderStack::random(kDm, kHeads, kDff, kLayers, rng);
    stack.config.attention = backend;
    return stack;
}

/** Drive a full chunked prefill; returns the final chunk's output. */
Tensor<Half>
chunkedPrefill(const ExecContext &ctx, const DecoderStack &stack,
               const Tensor<Half> &prompt, int64_t chunk,
               KvCache &cache)
{
    PrefillState state;
    state.prepare(stack, prompt.shape().dim(0));
    DecodeStepWorkspace ws;
    Tensor<Half> out;
    while (!state.done()) {
        const int64_t rows =
            std::min(chunk, state.promptTokens - state.rowsDone);
        runPrefill(ctx, stack, prompt, rows, cache, state, ws, out);
    }
    return out;
}

/** Every stored row of both caches must dequantize to the same
 *  bits (for I8 this covers payloads and block headers at once). */
void
expectCachesEqual(const KvCache &a, const KvCache &b)
{
    ASSERT_EQ(a.context(), b.context());
    std::vector<float> row_a(size_t(kDm), 0.0f);
    std::vector<float> row_b(size_t(kDm), 0.0f);
    for (int64_t l = 0; l < kLayers; ++l) {
        const KvRowsView views_a[] = {a.kView(l), a.vView(l)};
        const KvRowsView views_b[] = {b.kView(l), b.vView(l)};
        for (int i = 0; i < 2; ++i) {
            for (int64_t pos = 0; pos < a.context(); ++pos) {
                views_a[i].loadRow(pos, 0, kDm, row_a.data());
                views_b[i].loadRow(pos, 0, kDm, row_b.data());
                ASSERT_EQ(std::memcmp(row_a.data(), row_b.data(),
                                      size_t(kDm) * sizeof(float)),
                          0)
                    << (i == 0 ? "k" : "v") << " layer " << l
                    << " row " << pos;
            }
        }
    }
}

void
expectRowBitsEqual(const Tensor<Half> &got, int64_t got_row,
                   const Tensor<Half> &want, int64_t want_row,
                   const char *what)
{
    for (int64_t j = 0; j < got.shape().dim(1); ++j)
        ASSERT_EQ(got.at(got_row, j).bits(),
                  want.at(want_row, j).bits())
            << what << ": column " << j;
}

/** One decode step with a call-lifetime workspace (test-only). */
Tensor<Half>
decodeStep(const ExecContext &ctx, const DecoderStack &stack,
           const Tensor<Half> &inputs,
           const std::vector<KvCache *> &caches)
{
    DecodeStepWorkspace ws;
    Tensor<Half> outputs;
    runDecodeStepInto(ctx, stack, inputs, caches, ws, outputs);
    return outputs;
}

/**
 * The acceptance matrix: chunk in {1, 7, 64, >= prompt} x attention
 * backend x KV dtype. For every cell, chunked and one-shot prefill
 * must agree bit for bit on the stack output's last row, on every
 * cached row, and on kDecodeSteps subsequent decode steps.
 */
TEST(PrefillChunk, ChunkedMatchesUnchunkedBitForBit)
{
    const ExecContext ctx;
    const AttentionBackend backends[] = {AttentionBackend::Recomposed,
                                         AttentionBackend::Streaming};
    const KvDtype dtypes[] = {KvDtype::F16, KvDtype::I8};
    const int64_t chunks[] = {1, 7, 64, kPrompt, kPrompt + 9};
    Rng prompt_rng(29);
    const Tensor<Half> prompt = randomPrompt(prompt_rng, kPrompt);

    for (AttentionBackend backend : backends) {
        const DecoderStack stack = makeStack(backend);
        for (KvDtype dtype : dtypes) {
            // One-shot reference for this (backend, dtype) pair.
            KvSlab ref_slab(kBlockTokens, kDm, 8, dtype);
            KvCache ref_cache(ref_slab, kLayers);
            const Tensor<Half> ref_out =
                runPrefill(ctx, stack, prompt, ref_cache);

            for (int64_t chunk : chunks) {
                SCOPED_TRACE(testing::Message()
                             << "backend "
                             << attentionBackendName(
                                    stack.config.attention)
                             << " dtype "
                             << (dtype == KvDtype::F16 ? "f16"
                                                       : "int8")
                             << " chunk " << chunk);
                KvSlab slab(kBlockTokens, kDm, 8, dtype);
                KvCache cache(slab, kLayers);
                const Tensor<Half> out = chunkedPrefill(
                    ctx, stack, prompt, chunk, cache);
                expectRowBitsEqual(out, out.shape().dim(0) - 1,
                                   ref_out, kPrompt - 1,
                                   "final prefill row");
                expectCachesEqual(cache, ref_cache);

                // The caches must be interchangeable downstream:
                // decode from both, bit-identical at every step.
                KvSlab ref_decode_slab(kBlockTokens, kDm, 8, dtype);
                KvCache ref_decode(ref_decode_slab, kLayers);
                runPrefill(ctx, stack, prompt, ref_decode);
                Tensor<Half> ref_in(Shape({1, kDm}));
                Tensor<Half> in(Shape({1, kDm}));
                std::copy(ref_out.rowPtr(kPrompt - 1),
                          ref_out.rowPtr(kPrompt - 1) + kDm,
                          ref_in.rowPtr(0));
                std::copy(out.rowPtr(out.shape().dim(0) - 1),
                          out.rowPtr(out.shape().dim(0) - 1) + kDm,
                          in.rowPtr(0));
                for (int64_t step = 0; step < kDecodeSteps; ++step) {
                    ref_in = decodeStep(ctx, stack, ref_in,
                                        {&ref_decode});
                    in = decodeStep(ctx, stack, in, {&cache});
                    expectRowBitsEqual(in, 0, ref_in, 0,
                                       "decode step");
                }
            }
        }
    }
}

/** Chunk bookkeeping: bad resumes are bugs, loudly. */
TEST(PrefillChunk, StateGuardsMisuse)
{
    const ExecContext ctx;
    const DecoderStack stack =
        makeStack(AttentionBackend::Recomposed);
    Rng prompt_rng(31);
    const Tensor<Half> prompt = randomPrompt(prompt_rng, 8);
    KvSlab slab(kBlockTokens, kDm, 8, KvDtype::F16);
    DecodeStepWorkspace ws;
    Tensor<Half> out;
    {
        // A chunk past the end of the prompt must throw.
        KvCache cache(slab, kLayers);
        PrefillState state;
        state.prepare(stack, 8);
        runPrefill(ctx, stack, prompt, 6, cache, state, ws, out);
        EXPECT_THROW(runPrefill(ctx, stack, prompt, 3, cache, state,
                                ws, out),
                     std::logic_error);
    }
    {
        // The cache must track the state row for row.
        KvCache cache(slab, kLayers);
        PrefillState state;
        state.prepare(stack, 8);
        runPrefill(ctx, stack, prompt, 4, cache, state, ws, out);
        state.rowsDone = 2; // desync
        EXPECT_THROW(runPrefill(ctx, stack, prompt, 2, cache, state,
                                ws, out),
                     std::logic_error);
    }
    {
        // Zero-row chunks are rejected (progress must be real).
        KvCache cache(slab, kLayers);
        PrefillState state;
        state.prepare(stack, 8);
        EXPECT_THROW(runPrefill(ctx, stack, prompt, 0, cache, state,
                                ws, out),
                     std::logic_error);
    }
}

} // namespace
} // namespace softrec
