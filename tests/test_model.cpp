/**
 * @file
 * Tests of the model configurations and the transformer scheduler.
 */

#include <gtest/gtest.h>

#include "model/schedule.hpp"

namespace softrec {
namespace {

TEST(ModelConfig, PublishedHyperParameters)
{
    const ModelConfig bert = ModelConfig::bertLarge();
    EXPECT_EQ(bert.numLayers, 24);
    EXPECT_EQ(bert.dModel, 1024);
    EXPECT_EQ(bert.numHeads, 16);
    EXPECT_EQ(bert.dHead(), 64);
    EXPECT_EQ(bert.dFf, 4096);
    EXPECT_FALSE(bert.causalMask);
    EXPECT_FALSE(bert.sparse());

    const ModelConfig neo = ModelConfig::gptNeo13B();
    EXPECT_EQ(neo.numLayers, 24);
    EXPECT_EQ(neo.dModel, 2048);
    EXPECT_EQ(neo.dHead(), 128);
    EXPECT_EQ(neo.dFf, 8192);
    EXPECT_TRUE(neo.causalMask);

    const ModelConfig bigbird = ModelConfig::bigBirdLarge();
    EXPECT_EQ(bigbird.attention, AttentionKind::BigBird);
    EXPECT_EQ(bigbird.dModel, 1024);
    EXPECT_TRUE(bigbird.sparse());

    const ModelConfig longformer = ModelConfig::longformerLarge();
    EXPECT_EQ(longformer.attention, AttentionKind::Longformer);
    EXPECT_TRUE(longformer.sparse());

    EXPECT_EQ(ModelConfig::allEvaluated().size(), 4u);
}

TEST(ModelConfig, LayoutBuilders)
{
    const BsrLayout bb = ModelConfig::bigBirdLarge().buildLayout(4096);
    EXPECT_EQ(bb.rows(), 4096);
    EXPECT_EQ(bb.blockSize(), 64);
    EXPECT_LT(bb.density(), 0.25);

    const BsrLayout lf =
        ModelConfig::longformerLarge().buildLayout(4096);
    EXPECT_EQ(lf.rows(), 4096);
    EXPECT_LT(lf.density(), 0.25);

    EXPECT_THROW(ModelConfig::bertLarge().buildLayout(4096),
                 std::runtime_error);
}

TEST(ModelConfig, AttentionKindNames)
{
    EXPECT_STREQ(attentionKindName(AttentionKind::Dense), "dense");
    EXPECT_STREQ(attentionKindName(AttentionKind::BigBird), "bigbird");
    EXPECT_STREQ(attentionKindName(AttentionKind::Longformer),
                 "longformer");
}

int64_t
countByName(const std::vector<KernelProfile> &kernels,
            const std::string &substr)
{
    int64_t count = 0;
    for (const KernelProfile &prof : kernels)
        if (prof.name.find(substr) != std::string::npos)
            ++count;
    return count;
}

TEST(Scheduler, BaselineLayerStructure)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    const auto &layer = sched.layerKernels();

    EXPECT_EQ(countByName(layer, "fc."), 4); // q, k, v, out
    EXPECT_EQ(countByName(layer, "sda.qk"), 1);
    EXPECT_EQ(countByName(layer, "sda.softmax"), 1);
    EXPECT_EQ(countByName(layer, "sda.av"), 1);
    EXPECT_EQ(countByName(layer, "ff."), 4); // ff.1/2, residual, ln
    EXPECT_EQ(countByName(layer, ".ln"), 2);
    EXPECT_EQ(countByName(layer, "residual"), 2);
    EXPECT_EQ(countByName(layer, "sda.scale_mask"), 0); // fused

    // Prologue: embedding + its LayerNorm.
    EXPECT_EQ(sched.prologue().size(), 2u);
    EXPECT_EQ(sched.layout(), nullptr);
}

TEST(Scheduler, FullSequenceRepeatsLayers)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 1024;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    const auto seq = sched.fullSequence();
    EXPECT_EQ(seq.size(), sched.prologue().size() +
                              24 * sched.layerKernels().size());
}

TEST(Scheduler, RunMatchesFullSequence)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 1024;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    Gpu gpu(spec);
    sched.run(gpu);
    EXPECT_EQ(gpu.timeline().size(), sched.fullSequence().size());
}

TEST(Scheduler, StrategySwapsSoftmaxKernels)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    run.strategy = Strategy::Fused;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    const auto &layer = sched.layerKernels();
    EXPECT_EQ(countByName(layer, "sda.qk+ls"), 1);
    EXPECT_EQ(countByName(layer, "sda.av+gs"), 1);
    EXPECT_EQ(countByName(layer, "sda.ir"), 1);
    EXPECT_EQ(countByName(layer, "sda.softmax"), 0);
}

TEST(Scheduler, SparseModelBuildsLayout)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    TransformerScheduler sched(spec, ModelConfig::bigBirdLarge(), run);
    ASSERT_NE(sched.layout(), nullptr);
    EXPECT_EQ(sched.layout()->rows(), 4096);
    // SDA kernels inherit the layout's block grid.
    EXPECT_EQ(sched.sdaSchedule().kernels[0].geom.numBlocks,
              16 * sched.layout()->nnzBlocks());
}

TEST(Scheduler, UnfusedPolicyAddsStandaloneKernels)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    run.fusion.biasFused = false;
    run.fusion.scaleMaskFused = false;
    run.fusion.geluFused = false;
    run.fusion.extraReshapes = 2;
    TransformerScheduler sched(spec, ModelConfig::bertLarge(), run);
    const auto &layer = sched.layerKernels();
    // Separate bias kernels after each of the six GEMMs.
    EXPECT_EQ(countByName(layer, ".bias"), 6);
    EXPECT_EQ(countByName(layer, "sda.scale_mask"), 1);
    EXPECT_EQ(countByName(layer, "extra_reshape"), 2);

    RunConfig fused_run;
    fused_run.seqLen = 2048;
    TransformerScheduler fused(spec, ModelConfig::bertLarge(),
                               fused_run);
    EXPECT_GT(layer.size(), fused.layerKernels().size());
}

TEST(Scheduler, SoftmaxQualityScalesSerialization)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    run.fusion.softmaxQuality = 0.5;
    TransformerScheduler degraded(spec, ModelConfig::bertLarge(), run);
    RunConfig plain;
    plain.seqLen = 2048;
    TransformerScheduler reference(spec, ModelConfig::bertLarge(),
                                   plain);
    double degraded_serial = 0, reference_serial = 0;
    for (const auto &prof : degraded.layerKernels())
        if (prof.category == KernelCategory::Softmax)
            degraded_serial = prof.serializationFactor;
    for (const auto &prof : reference.layerKernels())
        if (prof.category == KernelCategory::Softmax)
            reference_serial = prof.serializationFactor;
    EXPECT_NEAR(degraded_serial, reference_serial * 0.5, 1e-12);
}

TEST(Scheduler, GptNeoUsesCausalMaskAndWideHeads)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    TransformerScheduler sched(spec, ModelConfig::gptNeo13B(), run);
    const KernelProfile *qk = nullptr;
    for (const auto &prof : sched.layerKernels())
        if (prof.name == "sda.qk")
            qk = &prof;
    ASSERT_NE(qk, nullptr);
    // Causal mask adds epilogue flops beyond the scale.
    EXPECT_GT(qk->cudaFlops,
              double(2048) * 2048 * 16); // more than scale alone
}

TEST(Scheduler, GptNeoLocalVariantAlternatesLayers)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 2048;
    TransformerScheduler sched(spec, ModelConfig::gptNeo13BLocal(),
                               run);
    // Two layer variants exist; odd layers are local.
    EXPECT_FALSE(sched.localLayerKernels().empty());
    EXPECT_FALSE(sched.layerIsLocal(0));
    EXPECT_TRUE(sched.layerIsLocal(1));
    // The local layer's attention work is much smaller: window 256
    // of 2048 tokens.
    auto sda_flops = [](const std::vector<KernelProfile> &layer) {
        double flops = 0.0;
        for (const auto &prof : layer)
            if (prof.category == KernelCategory::SdaMatMul)
                flops += prof.tensorFlops;
        return flops;
    };
    EXPECT_LT(sda_flops(sched.localLayerKernels()),
              sda_flops(sched.layerKernels()) * 0.35);
    // Full sequence interleaves both variants.
    const auto seq = sched.fullSequence();
    EXPECT_EQ(seq.size(),
              sched.prologue().size() +
                  12 * sched.layerKernels().size() +
                  12 * sched.localLayerKernels().size());
    // run() agrees with fullSequence().
    Gpu gpu(spec);
    sched.run(gpu);
    EXPECT_EQ(gpu.timeline().size(), seq.size());
}

TEST(Scheduler, DenseModelsHaveNoLocalLayers)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 1024;
    TransformerScheduler sched(spec, ModelConfig::gptNeo13B(), run);
    EXPECT_TRUE(sched.localLayerKernels().empty());
    EXPECT_FALSE(sched.layerIsLocal(1));
}

TEST(ModelConfig, CausalWindowPatternShape)
{
    const BsrLayout layout = causalWindowPattern(512, 64, 2);
    const int64_t n = 8;
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t c = 0; c < n; ++c) {
            const bool keep = c <= r && r - c <= 2;
            EXPECT_EQ(layout.hasBlock(r, c), keep) << r << "," << c;
        }
    }
}

} // namespace
} // namespace softrec
