/**
 * @file
 * Integration tests pinning the paper's quantitative claims as model
 * invariants. These are the regression guards for the calibration: if
 * a model change breaks a headline shape from the paper, a test here
 * fails. Tolerance bands are deliberately loose — they encode "who
 * wins and by roughly what factor", not exact numbers.
 */

#include <gtest/gtest.h>

#include "model/engine.hpp"

namespace softrec {
namespace {

struct StrategyResults
{
    InferenceResult baseline;
    InferenceResult sd;
    InferenceResult sdf;
};

StrategyResults
runAll(const GpuSpec &spec, const ModelConfig &model, int64_t seq_len,
       int64_t batch = 1)
{
    RunConfig run;
    run.seqLen = seq_len;
    run.batch = batch;
    StrategyResults results;
    run.strategy = Strategy::Baseline;
    results.baseline = runInference(spec, model, run);
    run.strategy = Strategy::Decomposed;
    results.sd = runInference(spec, model, run);
    run.strategy = Strategy::Fused;
    results.sdf = runInference(spec, model, run);
    return results;
}

double
speedup(const InferenceResult &base, const InferenceResult &other)
{
    return base.seconds / other.seconds;
}

// ---- Fig. 2: execution-time breakdown, A100, L = 4096 ----

TEST(Fig2, SoftmaxSharesAtLongSequenceLength)
{
    const GpuSpec spec = GpuSpec::a100();
    auto share = [&](const ModelConfig &model) {
        RunConfig run;
        run.seqLen = 4096;
        const auto result = runInference(spec, model, run);
        return result.softmaxSeconds() / result.seconds;
    };
    // Paper: 36% / 18% / 40% / 42%.
    EXPECT_NEAR(share(ModelConfig::bertLarge()), 0.36, 0.06);
    EXPECT_NEAR(share(ModelConfig::gptNeo13B()), 0.18, 0.06);
    EXPECT_NEAR(share(ModelConfig::bigBirdLarge()), 0.40, 0.08);
    EXPECT_NEAR(share(ModelConfig::longformerLarge()), 0.42, 0.08);
}

TEST(Fig2, SdaBlockDominatesBert)
{
    // Paper: SDA is 68% of BERT-large at L = 4096.
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    const auto result =
        runInference(spec, ModelConfig::bertLarge(), run);
    EXPECT_NEAR(result.sdaSeconds() / result.seconds, 0.68, 0.08);
}

TEST(Fig2, SparseAttentionStillSdaDominated)
{
    // Paper: BigBird's SDA is ~57% of the total despite sparsity.
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    const auto result =
        runInference(spec, ModelConfig::bigBirdLarge(), run);
    EXPECT_GT(result.sdaSeconds() / result.seconds, 0.45);
    EXPECT_LT(result.sdaSeconds() / result.seconds, 0.70);
}

// ---- Fig. 8(a): normalized execution time ----

TEST(Fig8a, HeadlineSpeedupsOnA100)
{
    const GpuSpec spec = GpuSpec::a100();
    // Paper: 1.25x / 1.12x / 1.57x / 1.65x end-to-end under SDF.
    const auto bert = runAll(spec, ModelConfig::bertLarge(), 4096);
    EXPECT_NEAR(speedup(bert.baseline, bert.sdf), 1.25, 0.12);
    const auto neo = runAll(spec, ModelConfig::gptNeo13B(), 4096);
    EXPECT_NEAR(speedup(neo.baseline, neo.sdf), 1.12, 0.10);
    const auto bigbird =
        runAll(spec, ModelConfig::bigBirdLarge(), 4096);
    EXPECT_NEAR(speedup(bigbird.baseline, bigbird.sdf), 1.57, 0.18);
    const auto longformer =
        runAll(spec, ModelConfig::longformerLarge(), 4096);
    EXPECT_NEAR(speedup(longformer.baseline, longformer.sdf), 1.65,
                0.18);
}

TEST(Fig8a, DecompositionAloneHurtsDenseHelpsSparse)
{
    const GpuSpec spec = GpuSpec::a100();
    // Paper: SD alone is 0.94x/0.99x (dense) vs 1.44x/1.49x (sparse).
    const auto bert = runAll(spec, ModelConfig::bertLarge(), 4096);
    EXPECT_LT(speedup(bert.baseline, bert.sd), 1.0);
    EXPECT_GT(speedup(bert.baseline, bert.sd), 0.85);
    const auto neo = runAll(spec, ModelConfig::gptNeo13B(), 4096);
    EXPECT_LT(speedup(neo.baseline, neo.sd), 1.02);
    EXPECT_GT(speedup(neo.baseline, neo.sd), 0.90);
    const auto bigbird =
        runAll(spec, ModelConfig::bigBirdLarge(), 4096);
    EXPECT_NEAR(speedup(bigbird.baseline, bigbird.sd), 1.44, 0.15);
    const auto longformer =
        runAll(spec, ModelConfig::longformerLarge(), 4096);
    EXPECT_NEAR(speedup(longformer.baseline, longformer.sd), 1.49,
                0.15);
}

TEST(Fig8a, FusionSideEffectsWithinReportedBands)
{
    const GpuSpec spec = GpuSpec::a100();
    const auto bert = runAll(spec, ModelConfig::bertLarge(), 4096);
    // MatMul time grows 28-55% under SDF (paper Section 5.1).
    const double matmul_growth =
        bert.sdf.secondsIn(KernelCategory::SdaMatMul) /
        bert.baseline.secondsIn(KernelCategory::SdaMatMul);
    EXPECT_GT(matmul_growth, 1.20);
    EXPECT_LT(matmul_growth, 1.60);
    // The remaining IR kernel is a small fraction of the original
    // softmax layer (paper: < 2.9%; we allow a slightly wider band).
    const double ir_share =
        bert.sdf.secondsIn(KernelCategory::SoftmaxIr) /
        bert.baseline.softmaxSeconds();
    EXPECT_LT(ir_share, 0.06);
}

// ---- Fig. 8(b): normalized off-chip memory accesses ----

TEST(Fig8b, TrafficUpUnderSdDownUnderSdf)
{
    const GpuSpec spec = GpuSpec::a100();
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        const auto results = runAll(spec, model, 4096);
        const double sd_ratio = double(results.sd.dramBytes()) /
                                double(results.baseline.dramBytes());
        const double sdf_ratio =
            double(results.sdf.dramBytes()) /
            double(results.baseline.dramBytes());
        EXPECT_GT(sd_ratio, 1.1) << model.name;
        EXPECT_LT(sdf_ratio, 0.92) << model.name;
    }
}

TEST(Fig8b, SoftmaxTrafficReductionBand)
{
    // Paper: kernel fusion cuts softmax-layer off-chip accesses by
    // 1.58x to 2.51x; with SDF only IR traffic remains, so the
    // softmax-category traffic collapses.
    const GpuSpec spec = GpuSpec::a100();
    const auto bert = runAll(spec, ModelConfig::bertLarge(), 4096);
    EXPECT_LT(bert.sdf.softmaxDramBytes(),
              bert.baseline.softmaxDramBytes() / 10);
    // Intermediates added to MatMul stay below ~9.3% of the original
    // softmax traffic (paper Section 5.1).
    const uint64_t matmul_growth =
        bert.sdf.dramBytesIn(KernelCategory::SdaMatMul) -
        bert.baseline.dramBytesIn(KernelCategory::SdaMatMul);
    EXPECT_LT(double(matmul_growth),
              0.10 * double(bert.baseline.softmaxDramBytes()));
}

TEST(Fig8b, EnergyReductionAround29Percent)
{
    // Paper: 29% off-chip access energy reduction on average.
    const GpuSpec spec = GpuSpec::a100();
    double total_ratio = 0.0;
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        const auto results = runAll(spec, model, 4096);
        total_ratio += results.sdf.offChipEnergyJoules /
                       results.baseline.offChipEnergyJoules;
    }
    const double mean_reduction = 1.0 - total_ratio / 4.0;
    EXPECT_NEAR(mean_reduction, 0.29, 0.08);
}

// ---- Fig. 5: decomposed softmax sub-layers ----

TEST(Fig5, LsAndGsDominateIrStaysSmall)
{
    const GpuSpec spec = GpuSpec::a100();
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        RunConfig run;
        run.seqLen = 4096;
        run.strategy = Strategy::Decomposed;
        const auto result = runInference(spec, model, run);
        const double ls = result.secondsIn(KernelCategory::SoftmaxLs);
        const double ir = result.secondsIn(KernelCategory::SoftmaxIr);
        const double gs = result.secondsIn(KernelCategory::SoftmaxGs);
        const double total = ls + ir + gs;
        // Paper Fig. 5: IR < 12.5% of the decomposed softmax; LS and
        // GS split the rest roughly evenly.
        EXPECT_LT(ir / total, 0.125) << model.name;
        EXPECT_NEAR(ls / total, gs / total, 0.10) << model.name;
    }
}

TEST(Fig5, IntermediateDataIsRoughlyOneOverTOfTheMatrix)
{
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    run.strategy = Strategy::Decomposed;
    const auto result =
        runInference(spec, ModelConfig::bertLarge(), run);
    const double ir_bytes =
        double(result.dramBytesIn(KernelCategory::SoftmaxIr));
    const double ls_bytes =
        double(result.dramBytesIn(KernelCategory::SoftmaxLs));
    // IR sweeps only the m'/d'/r' values (12 B per sub-vector); LS
    // sweeps the matrix twice (4 B per element) plus m'/d' (8 B per
    // sub-vector): ratio = 12 / (4T + 8) with T = 64.
    EXPECT_NEAR(ir_bytes / ls_bytes, 12.0 / (4.0 * 64.0 + 8.0), 0.005);
}

// ---- Section 3.3: sub-vector width ----

TEST(Section33, SpeedupFlatForTAboveThirtyTwo)
{
    const GpuSpec spec = GpuSpec::a100();
    const ModelConfig model = ModelConfig::bertLarge();
    RunConfig base_run;
    base_run.seqLen = 4096;
    const double base =
        runInference(spec, model, base_run).seconds;
    auto sdf_speedup = [&](int64_t t) {
        RunConfig run;
        run.seqLen = 4096;
        run.strategy = Strategy::Fused;
        run.subVector = t;
        return base / runInference(spec, model, run).seconds;
    };
    // T >= 32 sits on the flat part of the curve (within ~5%), and
    // T = 16 is measurably worse than T = 64.
    EXPECT_NEAR(sdf_speedup(32), sdf_speedup(128), 0.05);
    EXPECT_LT(sdf_speedup(16), sdf_speedup(64));
}

// ---- Fig. 9: sweeps ----

TEST(Fig9a, SpeedupGrowsWithSequenceLength)
{
    const GpuSpec spec = GpuSpec::a100();
    for (const ModelConfig &model : ModelConfig::allEvaluated()) {
        double prev = 0.0;
        for (int64_t seq_len : {1024, 2048, 4096, 8192}) {
            const auto results = runAll(spec, model, seq_len);
            const double s = speedup(results.baseline, results.sdf);
            EXPECT_GT(s, prev * 0.99) << model.name << " L=" << seq_len;
            prev = s;
        }
        EXPECT_GT(prev, 1.1) << model.name; // meaningful by L = 8192
    }
}

TEST(Fig9b, BatchGrowsSparseSpeedup)
{
    const GpuSpec spec = GpuSpec::a100();
    for (const ModelConfig &model :
         {ModelConfig::bigBirdLarge(), ModelConfig::longformerLarge()}) {
        const auto b1 = runAll(spec, model, 4096, 1);
        const auto b8 = runAll(spec, model, 4096, 8);
        EXPECT_GT(speedup(b8.baseline, b8.sdf),
                  speedup(b1.baseline, b1.sdf))
            << model.name;
    }
}

TEST(Fig9b, BatchRaisesSparseSoftmaxShare)
{
    // Paper Section 5.2: batch 1 -> 8 moves MatMul share 17% -> 10%
    // and softmax share 40% -> 48% for sparse attention.
    const GpuSpec spec = GpuSpec::a100();
    RunConfig run;
    run.seqLen = 4096;
    run.batch = 1;
    const auto b1 =
        runInference(spec, ModelConfig::bigBirdLarge(), run);
    run.batch = 8;
    const auto b8 =
        runInference(spec, ModelConfig::bigBirdLarge(), run);
    const double softmax1 = b1.softmaxSeconds() / b1.seconds;
    const double softmax8 = b8.softmaxSeconds() / b8.seconds;
    EXPECT_GT(softmax8, softmax1);
    const double matmul1 =
        b1.secondsIn(KernelCategory::SdaMatMul) / b1.seconds;
    const double matmul8 =
        b8.secondsIn(KernelCategory::SdaMatMul) / b8.seconds;
    EXPECT_LT(matmul8, matmul1);
}

// ---- Section 5.1: other GPUs ----

TEST(OtherGpus, SparseModelsWinEverywhereDenseWinsModestly)
{
    // Paper: 3090 = 1.12/1.05/1.32/1.36; T4 = 1.22/1.08/1.77/1.87.
    for (const GpuSpec &spec :
         {GpuSpec::rtx3090(), GpuSpec::t4()}) {
        const auto bert = runAll(spec, ModelConfig::bertLarge(), 4096);
        EXPECT_GT(speedup(bert.baseline, bert.sdf), 1.0)
            << spec.name;
        EXPECT_LT(speedup(bert.baseline, bert.sdf), 1.30)
            << spec.name;
        const auto bigbird =
            runAll(spec, ModelConfig::bigBirdLarge(), 4096);
        EXPECT_GT(speedup(bigbird.baseline, bigbird.sdf), 1.25)
            << spec.name;
        const auto longformer =
            runAll(spec, ModelConfig::longformerLarge(), 4096);
        EXPECT_GT(speedup(longformer.baseline, longformer.sdf), 1.25)
            << spec.name;
    }
}

TEST(OtherGpus, RtxDenseSpeedupBelowA100)
{
    // The 3090's lower tensor-FLOPS-to-bandwidth ratio shrinks the
    // softmax share, and with it the benefit (paper Section 5.1).
    const auto a100 =
        runAll(GpuSpec::a100(), ModelConfig::bertLarge(), 4096);
    const auto rtx =
        runAll(GpuSpec::rtx3090(), ModelConfig::bertLarge(), 4096);
    EXPECT_LT(speedup(rtx.baseline, rtx.sdf),
              speedup(a100.baseline, a100.sdf));
}

} // namespace
} // namespace softrec
