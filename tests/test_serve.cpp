/**
 * @file
 * Tests of the continuous-batching serving engine: queue backpressure
 * (reject-with-reason, FIFO, thread safety), scheduler determinism
 * and token-budget enforcement, strict serve configuration, and the
 * batched-equals-serial bit-identity of a full submit-then-drain
 * trace through ServeEngine. (KvSlab/KvCache have their own suite in
 * test_kv_cache.cpp.)
 *
 * The drain traces honour SOFTREC_SERVE_KV_DTYPE so CI's int8 ctest
 * run exercises serving end to end on the quantized cache — the
 * bit-identity claims hold in any format because a request's KV
 * content never depends on batch composition.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/kv_cache.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_engine.hpp"

namespace softrec {
namespace {

constexpr int64_t kDm = 32;

Tensor<Half>
randomPrompt(Rng &rng, int64_t tokens, int64_t d_model = kDm)
{
    Tensor<Half> prompt(Shape({tokens, d_model}));
    for (int64_t i = 0; i < prompt.numel(); ++i)
        prompt.data()[i] = Half(float(rng.normal(0.0, 0.5)));
    return prompt;
}

ServeRequest
makeRequest(Rng &rng, int64_t id, int64_t prompt_tokens,
            int64_t generate_tokens)
{
    ServeRequest request;
    request.id = id;
    request.prompt = randomPrompt(rng, prompt_tokens);
    request.generateTokens = generate_tokens;
    return request;
}

/** RAII environment-variable override with restore. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        had_ = prev != nullptr;
        if (had_)
            saved_ = prev;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string saved_;
};

// --- RequestQueue -----------------------------------------------------

TEST(RequestQueue, RejectsWhenFullWithReason)
{
    Rng rng(1);
    RequestQueue queue(2);
    EXPECT_TRUE(queue.push(makeRequest(rng, 0, 3, 2)).accepted);
    EXPECT_TRUE(queue.push(makeRequest(rng, 1, 3, 2)).accepted);
    const AdmissionDecision full = queue.push(makeRequest(rng, 2, 3, 2));
    EXPECT_FALSE(full.accepted);
    EXPECT_NE(full.reason.find("queue full"), std::string::npos);
    EXPECT_NE(full.reason.find("capacity 2"), std::string::npos);
    EXPECT_EQ(queue.accepted(), 2);
    EXPECT_EQ(queue.rejected(), 1);
}

TEST(RequestQueue, RejectsInvalidRequestsWithReason)
{
    Rng rng(2);
    RequestQueue queue(4);

    ServeRequest empty_prompt = makeRequest(rng, 0, 3, 2);
    empty_prompt.prompt = Tensor<Half>();
    const AdmissionDecision bad_prompt = queue.push(std::move(empty_prompt));
    EXPECT_FALSE(bad_prompt.accepted);
    EXPECT_NE(bad_prompt.reason.find("prompt"), std::string::npos);

    ServeRequest no_tokens = makeRequest(rng, 1, 3, 2);
    no_tokens.generateTokens = 0;
    const AdmissionDecision bad_tokens = queue.push(std::move(no_tokens));
    EXPECT_FALSE(bad_tokens.accepted);
    EXPECT_NE(bad_tokens.reason.find("generateTokens"),
              std::string::npos);
    EXPECT_EQ(queue.size(), 0);
}

TEST(RequestQueue, PopsInFifoOrder)
{
    Rng rng(3);
    RequestQueue queue(8);
    for (int64_t id = 0; id < 5; ++id)
        ASSERT_TRUE(queue.push(makeRequest(rng, id, 2, 1)).accepted);
    for (int64_t id = 0; id < 5; ++id) {
        const auto popped = queue.pop();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(popped->id, id);
    }
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(RequestQueue, ConcurrentProducersNeverBlockOrDrop)
{
    // 4 producers x 16 requests into a 32-deep queue: every push must
    // return (accepted or rejected-with-reason), and accepted count
    // must equal what pop() can drain. Run under tsan in CI.
    RequestQueue queue(32);
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&queue, p] {
            Rng rng(100 + p);
            for (int i = 0; i < 16; ++i) {
                const AdmissionDecision result =
                    queue.push(makeRequest(rng, p * 16 + i, 2, 1));
                if (!result.accepted) {
                    EXPECT_FALSE(result.reason.empty());
                }
            }
        });
    }
    for (std::thread &producer : producers)
        producer.join();
    int64_t drained = 0;
    while (queue.pop().has_value())
        ++drained;
    EXPECT_EQ(drained, queue.accepted());
    EXPECT_EQ(queue.accepted() + queue.rejected(), 64);
}

// --- BatchScheduler ---------------------------------------------------

TEST(BatchScheduler, AdmitsFifoIntoLowestSlots)
{
    Rng rng(4);
    RequestQueue queue(8);
    for (int64_t id = 0; id < 3; ++id)
        ASSERT_TRUE(queue.push(makeRequest(rng, id, 4, 2)).accepted);

    BatchScheduler scheduler(SchedulerConfig{4, 1024});
    std::vector<int64_t> admitted;
    scheduler.admitFrom(queue, &admitted);
    ASSERT_EQ(admitted.size(), 3u);
    for (int64_t s = 0; s < 3; ++s) {
        EXPECT_EQ(admitted[size_t(s)], s);
        EXPECT_EQ(scheduler.slot(s).request.id, s);
        // Admission reserves the footprint but charges nothing: KV
        // lands with prefill progress, not at admission.
        EXPECT_EQ(scheduler.slot(s).context, 0);
        EXPECT_EQ(scheduler.slot(s).promptTokens, 4);
        EXPECT_TRUE(scheduler.slot(s).prefilling());
        EXPECT_EQ(scheduler.slot(s).remaining, 2);
    }
    EXPECT_EQ(scheduler.activeTokens(), 0);
    EXPECT_EQ(scheduler.reservedTokens(), 18);
    for (int64_t s = 0; s < 3; ++s)
        scheduler.notePrefillProgress(s, 4);
    for (int64_t s = 0; s < 3; ++s) {
        EXPECT_EQ(scheduler.slot(s).context, 4);
        EXPECT_FALSE(scheduler.slot(s).prefilling());
    }
    EXPECT_EQ(scheduler.activeTokens(), 12);
}

TEST(BatchScheduler, HonorsTokenBudgetAndParksTheHead)
{
    Rng rng(5);
    RequestQueue queue(8);
    // Finishing footprints: 6+2=8, 6+2=8, 6+2=8; budget 20 admits two.
    for (int64_t id = 0; id < 3; ++id)
        ASSERT_TRUE(queue.push(makeRequest(rng, id, 6, 2)).accepted);

    BatchScheduler scheduler(SchedulerConfig{4, 20});
    std::vector<int64_t> admitted;
    std::vector<int64_t> evicted;
    scheduler.admitFrom(queue, &admitted);
    EXPECT_EQ(admitted.size(), 2u);
    EXPECT_FALSE(scheduler.idle()); // head parked, two active
    EXPECT_EQ(scheduler.reservedTokens(), 16);
    for (int64_t slot : admitted)
        scheduler.notePrefillProgress(slot, 6);

    // No room while both run; the parked head must not be lost.
    scheduler.admitFrom(queue, &admitted);
    EXPECT_TRUE(admitted.empty());

    // Both active requests finish after two steps; the parked head
    // is admitted on the next boundary, preserving FIFO order.
    scheduler.completeStep(&evicted);
    scheduler.completeStep(&evicted);
    EXPECT_EQ(evicted.size(), 2u);
    scheduler.admitFrom(queue, &admitted);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(scheduler.slot(admitted[0]).request.id, 2);
}

TEST(BatchScheduler, ContinuousAdmissionAfterEviction)
{
    Rng rng(6);
    RequestQueue queue(8);
    ASSERT_TRUE(queue.push(makeRequest(rng, 0, 2, 1)).accepted);
    ASSERT_TRUE(queue.push(makeRequest(rng, 1, 2, 3)).accepted);
    ASSERT_TRUE(queue.push(makeRequest(rng, 2, 2, 1)).accepted);

    BatchScheduler scheduler(SchedulerConfig{2, 1024});
    std::vector<int64_t> admitted;
    std::vector<int64_t> evicted;
    scheduler.admitFrom(queue, &admitted);
    EXPECT_EQ(admitted.size(), 2u);
    for (int64_t slot : admitted)
        scheduler.notePrefillProgress(slot, 2);
    // Step 1 finishes request 0; its slot frees for request 2 while
    // request 1 keeps running — continuous batching, no drain barrier.
    scheduler.completeStep(&evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0);
    scheduler.admitFrom(queue, &admitted);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_EQ(admitted[0], 0); // lowest free slot reused
    EXPECT_EQ(scheduler.slot(0).request.id, 2);
    EXPECT_EQ(scheduler.slot(1).request.id, 1);
}

TEST(BatchScheduler, DeterministicUnderAFixedArrivalTrace)
{
    // The same arrival trace must produce the same step-by-step batch
    // composition: replay and compare (slot, id) admission logs.
    auto replay = [] {
        Rng rng(7);
        RequestQueue queue(16);
        BatchScheduler scheduler(SchedulerConfig{3, 64});
        std::vector<std::pair<int64_t, int64_t>> admissions;
        std::vector<int64_t> admitted;
        std::vector<int64_t> active;
        std::vector<int64_t> evicted;
        int64_t next_id = 0;
        for (int64_t step = 0; step < 24; ++step) {
            if (step % 2 == 0 && next_id < 10) {
                const int64_t tokens = 3 + next_id % 4;
                EXPECT_TRUE(
                    queue.push(makeRequest(rng, next_id, tokens,
                                           1 + next_id % 3))
                        .accepted);
                ++next_id;
            }
            scheduler.admitFrom(queue, &admitted);
            for (int64_t slot : admitted) {
                admissions.emplace_back(
                    slot, scheduler.slot(slot).request.id);
                scheduler.notePrefillProgress(
                    slot, scheduler.slot(slot).promptTokens);
            }
            scheduler.activeSlots(&active);
            if (!active.empty())
                scheduler.completeStep(&evicted);
        }
        return admissions;
    };
    const auto first = replay();
    const auto second = replay();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.size(), 10u); // every request admitted once
}

TEST(BatchScheduler, PrefillProgressChargesKvAsChunksLand)
{
    Rng rng(8);
    RequestQueue queue(8);
    ASSERT_TRUE(queue.push(makeRequest(rng, 0, 32, 4)).accepted);
    BatchScheduler scheduler(SchedulerConfig{2, 1024});
    std::vector<int64_t> admitted;
    std::vector<int64_t> active;
    std::vector<int64_t> evicted;
    scheduler.admitFrom(queue, &admitted);
    ASSERT_EQ(admitted.size(), 1u);
    const int64_t s = admitted[0];
    // The full finishing footprint is reserved at admission; the
    // current KV charge follows the chunks as they land.
    EXPECT_EQ(scheduler.reservedTokens(), 36);
    EXPECT_EQ(scheduler.activeTokens(), 0);
    EXPECT_TRUE(scheduler.slot(s).prefilling());
    EXPECT_EQ(scheduler.prefillingRows(), 1);
    scheduler.activeSlots(&active);
    EXPECT_TRUE(active.empty()); // not decode-eligible yet
    // A decode boundary must not advance a slot that took no step.
    scheduler.completeStep(&evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(scheduler.slot(s).remaining, 4);
    EXPECT_EQ(scheduler.slot(s).context, 0);
    scheduler.notePrefillProgress(s, 8);
    EXPECT_EQ(scheduler.activeTokens(), 8);
    EXPECT_EQ(scheduler.reservedTokens(), 36); // unchanged
    scheduler.notePrefillProgress(s, 24);
    EXPECT_FALSE(scheduler.slot(s).prefilling());
    EXPECT_EQ(scheduler.prefillingRows(), 0);
    scheduler.activeSlots(&active);
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0], s);
}

TEST(BatchScheduler, MidDecodeArrivalNeverStallsActiveSlots)
{
    // A long prompt arriving mid-decode streams in chunk by chunk;
    // the already-active slot must stay decode-eligible and advance
    // by exactly one token at every step boundary — delayed by at
    // most the single chunk that runs before each step, never parked
    // behind the whole prompt.
    Rng rng(9);
    RequestQueue queue(8);
    ASSERT_TRUE(queue.push(makeRequest(rng, 0, 2, 8)).accepted);
    BatchScheduler scheduler(SchedulerConfig{2, 4096});
    std::vector<int64_t> admitted;
    std::vector<int64_t> active;
    std::vector<int64_t> evicted;
    scheduler.admitFrom(queue, &admitted);
    ASSERT_EQ(admitted.size(), 1u);
    const int64_t a = admitted[0];
    scheduler.notePrefillProgress(a, 2);
    scheduler.completeStep(&evicted);
    scheduler.completeStep(&evicted); // A is two tokens into decode
    // A 32-token prompt arrives; chunk size 8 -> four boundaries.
    ASSERT_TRUE(queue.push(makeRequest(rng, 1, 32, 2)).accepted);
    scheduler.admitFrom(queue, &admitted);
    ASSERT_EQ(admitted.size(), 1u);
    const int64_t b = admitted[0];
    for (int64_t chunk = 0; chunk < 4; ++chunk) {
        scheduler.notePrefillProgress(b, 8);
        scheduler.activeSlots(&active);
        ASSERT_TRUE(std::find(active.begin(), active.end(), a) !=
                    active.end());
        if (chunk < 3) {
            EXPECT_TRUE(std::find(active.begin(), active.end(), b) ==
                        active.end());
        }
        const int64_t before = scheduler.slot(a).remaining;
        scheduler.completeStep(&evicted);
        EXPECT_EQ(scheduler.slot(a).remaining, before - 1);
    }
    // B joins the batch exactly at the boundary after its last chunk.
    scheduler.activeSlots(&active);
    EXPECT_TRUE(std::find(active.begin(), active.end(), b) !=
                active.end());
}

// --- ServeConfig ------------------------------------------------------

TEST(ServeConfig, EnvOverridesApply)
{
    ScopedEnv rows("SOFTREC_SERVE_BATCH_ROWS", "8");
    ScopedEnv budget("SOFTREC_SERVE_TOKEN_BUDGET", "512");
    ScopedEnv cap("SOFTREC_SERVE_QUEUE_CAP", "5");
    ScopedEnv threads("SOFTREC_THREADS", nullptr);
    const ServeConfig config = ServeConfig::fromEnv();
    EXPECT_EQ(config.maxBatchRows, 8);
    EXPECT_EQ(config.tokenBudget, 512);
    EXPECT_EQ(config.queueCapacity, 5);
}

TEST(ServeConfig, MalformedValuesAreHardErrorsNotFallbacks)
{
    ScopedEnv threads("SOFTREC_THREADS", nullptr);
    {
        ScopedEnv rows("SOFTREC_SERVE_BATCH_ROWS", "lots");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        ScopedEnv budget("SOFTREC_SERVE_TOKEN_BUDGET", "0");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        ScopedEnv cap("SOFTREC_SERVE_QUEUE_CAP", "-3");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
}

TEST(ServeConfig, InvalidThreadsIsAStartupErrorNotSerialFallback)
{
    ScopedEnv threads("SOFTREC_THREADS", "sixteen");
    EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
}

TEST(ServeConfig, ModeAndTenantKnobsApply)
{
    ScopedEnv threads("SOFTREC_THREADS", nullptr);
    ScopedEnv soft("SOFTREC_SERVE_MODE_SOFT_PCT", "40");
    ScopedEnv hard("SOFTREC_SERVE_MODE_HARD_PCT", "80");
    ScopedEnv hyst("SOFTREC_SERVE_MODE_HYSTERESIS_PCT", "15");
    ScopedEnv tenant("SOFTREC_SERVE_TENANT_BUDGET", "4096");
    ScopedEnv prompt("SOFTREC_SERVE_SOFT_PROMPT_CAP", "128");
    ScopedEnv stream("SOFTREC_SERVE_STREAM_CAP", "7");
    const ServeConfig config = ServeConfig::fromEnv();
    EXPECT_EQ(config.admission.softEnterPct, 40);
    EXPECT_EQ(config.admission.hardEnterPct, 80);
    EXPECT_EQ(config.admission.hysteresisPct, 15);
    EXPECT_EQ(config.admission.tenantTokenBudget, 4096);
    EXPECT_EQ(config.admission.softPromptCapTokens, 128);
    EXPECT_EQ(config.streamCapacity, 7);
}

TEST(ServeConfig, BadModeKnobsAreHardErrorsNotFallbacks)
{
    ScopedEnv threads("SOFTREC_THREADS", nullptr);
    {
        // Percentages must stay in [1, 100].
        ScopedEnv soft("SOFTREC_SERVE_MODE_SOFT_PCT", "150");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        ScopedEnv hyst("SOFTREC_SERVE_MODE_HYSTERESIS_PCT", "0");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        ScopedEnv tenant("SOFTREC_SERVE_TENANT_BUDGET", "many");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        // Crossed thresholds would make soft mode unreachable.
        ScopedEnv soft("SOFTREC_SERVE_MODE_SOFT_PCT", "90");
        ScopedEnv hard("SOFTREC_SERVE_MODE_HARD_PCT", "50");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
}

TEST(ServeConfig, KvDtypeKnobParsesStrictly)
{
    ScopedEnv threads("SOFTREC_THREADS", nullptr);
    {
        ScopedEnv dtype("SOFTREC_SERVE_KV_DTYPE", nullptr);
        EXPECT_EQ(ServeConfig::fromEnv().kvDtype, KvDtype::F16);
    }
    {
        ScopedEnv dtype("SOFTREC_SERVE_KV_DTYPE", "f16");
        EXPECT_EQ(ServeConfig::fromEnv().kvDtype, KvDtype::F16);
    }
    {
        ScopedEnv dtype("SOFTREC_SERVE_KV_DTYPE", "int8");
        EXPECT_EQ(ServeConfig::fromEnv().kvDtype, KvDtype::I8);
    }
    {
        // No silent fallback for typos in a capacity-doubling knob.
        ScopedEnv dtype("SOFTREC_SERVE_KV_DTYPE", "fp4");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
}

TEST(ServeConfig, PrefillChunkKnobParsesStrictly)
{
    ScopedEnv threads("SOFTREC_THREADS", nullptr);
    {
        ScopedEnv chunk("SOFTREC_SERVE_PREFILL_CHUNK", nullptr);
        EXPECT_EQ(ServeConfig::fromEnv().prefillChunkTokens, 0);
    }
    {
        ScopedEnv chunk("SOFTREC_SERVE_PREFILL_CHUNK", "7");
        EXPECT_EQ(ServeConfig::fromEnv().prefillChunkTokens, 7);
    }
    {
        // Garbage must stop the server, not silently run unchunked.
        ScopedEnv chunk("SOFTREC_SERVE_PREFILL_CHUNK", "weasel");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        // An explicit 0 is also rejected: only *unset* selects the
        // unchunked path, so a deployment can't half-spell the knob.
        ScopedEnv chunk("SOFTREC_SERVE_PREFILL_CHUNK", "0");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
    {
        ScopedEnv chunk("SOFTREC_SERVE_PREFILL_CHUNK", "-4");
        EXPECT_THROW(ServeConfig::fromEnv(), std::runtime_error);
    }
}

TEST(ServeConfig, ValidateRejectsUnusableLimits)
{
    // samplePressure divides by tokenBudget and queueCapacity every
    // step boundary: a zeroed config must be a startup error (panic
    // from validate), never a divide-by-zero later.
    ServeConfig config;
    config.validate(); // defaults are usable
    {
        ServeConfig bad = config;
        bad.tokenBudget = 0;
        EXPECT_THROW(bad.validate(), std::logic_error);
    }
    {
        ServeConfig bad = config;
        bad.queueCapacity = 0;
        EXPECT_THROW(bad.validate(), std::logic_error);
    }
    {
        ServeConfig bad = config;
        bad.maxBatchRows = 0;
        EXPECT_THROW(bad.validate(), std::logic_error);
    }
    {
        ServeConfig bad = config;
        bad.kvBlockTokens = 0;
        EXPECT_THROW(bad.validate(), std::logic_error);
    }
    {
        ServeConfig bad = config;
        bad.streamCapacity = 0;
        EXPECT_THROW(bad.validate(), std::logic_error);
    }
    {
        ServeConfig bad = config;
        bad.prefillChunkTokens = -1;
        EXPECT_THROW(bad.validate(), std::logic_error);
    }
}

// --- ServeEngine drain traces -----------------------------------------

DecoderStack
testStack(uint64_t seed = 19)
{
    Rng rng(seed);
    return DecoderStack::random(kDm, /*num_heads=*/2, /*d_ff=*/48,
                                /*num_layers=*/2, rng);
}

/** One drained request: submit order, latency clock, last token. */
struct DrainedRequest
{
    int64_t id = 0; //!< trace position, not the engine-assigned id
    double arrivalSeconds = 0.0;
    double finishSeconds = 0.0;
    Tensor<Half> finalRow;
    double latencySeconds() const
    {
        return finishSeconds - arrivalSeconds;
    }
};

/** Aggregate results of one submit-then-drain trace. */
struct DrainSummary
{
    int64_t requestsServed = 0;
    int64_t tokensGenerated = 0;
    int64_t decodeSteps = 0;
    double tokensPerSecond = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    std::vector<DrainedRequest> requests;
};

/**
 * Drain every pending session with a round-robin non-blocking sweep.
 * A blocking per-stream drain would deadlock on rings shallower than
 * generateTokens (engine blocked pushing stream k while we wait on
 * stream j), so each sweep takes whatever every stream has buffered.
 */
struct PendingSession
{
    ServeSession session;
    DrainedRequest record;
    bool done = false;
};

void
drainRoundRobin(std::vector<PendingSession> &pending)
{
    size_t remaining = pending.size();
    Tensor<Half> row;
    while (remaining > 0) {
        bool progressed = false;
        for (PendingSession &p : pending) {
            if (p.done)
                continue;
            TokenStream &stream = p.session.stream();
            TokenStream::TryNext outcome = stream.tryNext(row);
            while (outcome == TokenStream::TryNext::Token) {
                p.record.finalRow = row;
                progressed = true;
                outcome = stream.tryNext(row);
            }
            if (outcome == TokenStream::TryNext::End) {
                EXPECT_EQ(stream.status(), StreamStatus::Finished);
                p.record.finishSeconds = stream.finishSeconds();
                p.done = true;
                --remaining;
                progressed = true;
            }
        }
        // Tokens arrive at decode-step cadence; sleep, don't spin.
        if (!progressed)
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
    }
}

/** Submit the same 5-request trace and drain it through the engine. */
DrainSummary
drainTrace(const DecoderStack &stack, int64_t batch_rows)
{
    ServeConfig config;
    config.maxBatchRows = batch_rows;
    config.tokenBudget = 1024;
    config.kvBlockTokens = 4;
    config.kvDtype = kvDtypeFromEnv(); // CI runs this suite with int8
    // CI also replays the suite with a small chunk so serving runs
    // end to end through chunked prefill.
    config.prefillChunkTokens = prefillChunkTokensFromEnv();
    ServeEngine engine(ExecContext(), stack, config);
    Rng rng(21); // identical prompts in every run
    std::vector<PendingSession> pending;
    for (int64_t id = 0; id < 5; ++id) {
        PendingSession p;
        p.record.id = id;
        p.record.arrivalSeconds = engine.nowSeconds();
        SubmitResult result = engine.submit(
            makeRequest(rng, id, 3 + id % 3, 2 + id % 2));
        EXPECT_TRUE(result.decision.accepted) << result.decision.reason;
        p.session = std::move(result.session);
        pending.push_back(std::move(p));
    }

    const double start = engine.nowSeconds();
    engine.start();
    drainRoundRobin(pending);
    engine.waitIdle(); // let the step counters settle

    DrainSummary summary;
    const ServeStats stats = engine.stats();
    summary.requestsServed = stats.requestsServed;
    summary.tokensGenerated = stats.tokensGenerated;
    summary.decodeSteps = stats.decodeSteps;
    const double seconds = engine.nowSeconds() - start;
    summary.tokensPerSecond =
        seconds > 0.0 ? double(summary.tokensGenerated) / seconds : 0.0;
    std::vector<double> latencies;
    latencies.reserve(pending.size());
    for (PendingSession &p : pending) {
        latencies.push_back(p.record.latencySeconds());
        summary.requests.push_back(std::move(p.record));
    }
    summary.p50LatencySeconds = percentileSeconds(latencies, 0.50);
    summary.p95LatencySeconds = percentileSeconds(latencies, 0.95);
    return summary;
}

TEST(ServeEngineDrain, DrainsEveryRequestAndReportsThroughput)
{
    const DecoderStack stack = testStack();
    const DrainSummary summary = drainTrace(stack, 4);
    EXPECT_EQ(summary.requestsServed, 5);
    // Σ generateTokens for ids 0..4: 2+3+2+3+2.
    EXPECT_EQ(summary.tokensGenerated, 12);
    EXPECT_GT(summary.decodeSteps, 0);
    EXPECT_GT(summary.tokensPerSecond, 0.0);
    EXPECT_GE(summary.p95LatencySeconds, summary.p50LatencySeconds);
    ASSERT_EQ(summary.requests.size(), 5u);
    for (const DrainedRequest &stats : summary.requests) {
        EXPECT_GE(stats.latencySeconds(), 0.0);
        EXPECT_EQ(stats.finalRow.shape(), Shape({1, kDm}));
    }
}

TEST(ServeEngineDrain, BatchedServingIsBitIdenticalToSerial)
{
    // The same trace served one-at-a-time and continuously batched
    // must generate identical final rows: batching is a scheduling
    // decision, never a numerics decision.
    const DecoderStack stack = testStack();
    auto rows_by_id = [](const DrainSummary &summary) {
        std::map<int64_t, std::vector<uint16_t>> rows;
        for (const DrainedRequest &stats : summary.requests) {
            std::vector<uint16_t> bits;
            for (int64_t j = 0; j < kDm; ++j)
                bits.push_back(stats.finalRow.at(0, j).bits());
            rows[stats.id] = bits;
        }
        return rows;
    };
    const auto serial = rows_by_id(drainTrace(stack, 1));
    const auto batched = rows_by_id(drainTrace(stack, 4));
    ASSERT_EQ(serial.size(), 5u);
    EXPECT_EQ(serial, batched);
}

TEST(ServeEngineDrain, SubmitRejectsImpossibleRequests)
{
    const DecoderStack stack = testStack();
    ServeConfig config;
    config.tokenBudget = 16;
    // Pinned: the rejection below asserts against the f16-denominated
    // budget; an int8 environment would rebase it upward.
    config.kvDtype = KvDtype::F16;
    ServeEngine engine(ExecContext(), stack, config);
    Rng rng(31);

    const SubmitResult too_big =
        engine.submit(makeRequest(rng, 0, 14, 4));
    EXPECT_FALSE(too_big.decision.accepted);
    EXPECT_NE(too_big.decision.reason.find("token budget"),
              std::string::npos);

    ServeRequest wrong_width = makeRequest(rng, 1, 3, 1);
    wrong_width.prompt = randomPrompt(rng, 3, kDm * 2);
    const SubmitResult mismatched =
        engine.submit(std::move(wrong_width));
    EXPECT_FALSE(mismatched.decision.accepted);
    EXPECT_NE(mismatched.decision.reason.find("dModel"),
              std::string::npos);
}

TEST(ServeEngineDrain, SlabDrainsBackToZeroAfterRun)
{
    const DecoderStack stack = testStack();
    ServeConfig config;
    config.maxBatchRows = 3;
    config.tokenBudget = 1024;
    config.kvBlockTokens = 2;
    config.kvDtype = kvDtypeFromEnv();
    config.prefillChunkTokens = prefillChunkTokensFromEnv();
    ServeEngine engine(ExecContext(), stack, config);
    Rng rng(37);
    std::vector<PendingSession> pending;
    for (int64_t id = 0; id < 4; ++id) {
        PendingSession p;
        SubmitResult result =
            engine.submit(makeRequest(rng, id, 4, 2));
        ASSERT_TRUE(result.decision.accepted)
            << result.decision.reason;
        p.session = std::move(result.session);
        pending.push_back(std::move(p));
    }
    engine.start();
    drainRoundRobin(pending);
    engine.waitIdle();
    const ServeStats stats = engine.stats();
    EXPECT_EQ(stats.requestsServed, 4);
    EXPECT_EQ(stats.kvBlocksInUse, 0);
    EXPECT_GT(stats.kvBlocksReserved, 0);
    EXPECT_EQ(stats.queueDepth, 0);
    EXPECT_EQ(stats.activeRows, 0);
    EXPECT_EQ(stats.reservedKvTokens, 0);
}

TEST(ServeEngineDrain, ZeroedConfigIsAStartupError)
{
    // The engine proves the pressure-sample divisors at construction
    // (ServeConfig::validate): a zeroed limit must never reach the
    // first step boundary.
    const DecoderStack stack = testStack();
    {
        ServeConfig config;
        config.tokenBudget = 0;
        EXPECT_THROW(ServeEngine(ExecContext(), stack, config),
                     std::logic_error);
    }
    {
        ServeConfig config;
        config.queueCapacity = 0;
        EXPECT_THROW(ServeEngine(ExecContext(), stack, config),
                     std::logic_error);
    }
    {
        ServeConfig config;
        config.prefillChunkTokens = -2;
        EXPECT_THROW(ServeEngine(ExecContext(), stack, config),
                     std::logic_error);
    }
}

} // namespace
} // namespace softrec
