/**
 * @file
 * Tests of cross-attention (rectangular planner path) and the
 * encoder-decoder scheduler.
 */

#include <gtest/gtest.h>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "core/attention_exec.hpp"
#include "model/seq2seq.hpp"
#include "tensor/tensor_ops.hpp"

namespace softrec {
namespace {

/** Shared context: honors SOFTREC_THREADS so suites can run threaded. */
ExecContext
execCtx()
{
    return ExecContext::fromEnv();
}

TEST(CrossAttention, FunctionalEquivalenceAcrossStrategies)
{
    // Rectangular attention: 64 queries over 128 keys.
    SdaConfig config;
    config.seqLen = 64;
    config.kvLen = 128;
    config.dHead = 16;
    config.subVector = 32;
    config.attnTiling.tileM = 32;
    config.attnTiling.tileN = 32;
    config.attnTiling.tileK = 16;
    AttentionInputs inputs = makeAttentionInputs(config);
    EXPECT_EQ(inputs.q.shape(), Shape({64, 16}));
    EXPECT_EQ(inputs.k.shape(), Shape({128, 16}));
    Rng rng(1);
    fillNormal(inputs.q, rng, 0.0, 0.7);
    fillNormal(inputs.k, rng, 0.0, 0.7);
    fillNormal(inputs.v, rng, 0.0, 0.7);

    const Tensor<float> reference =
        referenceDenseAttention(config, inputs);
    for (Strategy strategy : allStrategies()) {
        const Tensor<Half> out =
            runAttention(execCtx(), config, inputs, strategy);
        EXPECT_LT(maxAbsDiff(toFloat(out), reference), 2.5e-2)
            << strategyName(strategy);
    }
}

TEST(CrossAttention, PlannerShapesFollowBothLengths)
{
    SdaConfig config;
    config.heads = 8;
    config.seqLen = 1024;  // decoder queries
    config.kvLen = 4096;   // encoder keys
    config.dHead = 64;
    const auto sched = buildSdaSchedule(GpuSpec::a100(), config,
                                        Strategy::Fused);
    // QK+LS grid: ceil(1024/128) x (4096/64) tiles per head.
    EXPECT_EQ(sched.kernels[0].geom.numBlocks, 8 * 8 * 64);
    EXPECT_EQ(config.attentionMatrixBytes(),
              uint64_t(8) * 1024 * 4096 * 2);
    EXPECT_EQ(sched.attentionSweeps, 2);
}

TEST(CrossAttention, SubVectorMustDivideKeyLength)
{
    SdaConfig config;
    config.seqLen = 512;
    config.kvLen = 100; // not a multiple of 64
    EXPECT_THROW(buildSdaSchedule(GpuSpec::a100(), config,
                                  Strategy::Baseline),
                 std::logic_error);
}

TEST(Seq2SeqConfig, VanillaVariants)
{
    const Seq2SeqConfig base = Seq2SeqConfig::vanillaBase();
    EXPECT_EQ(base.dModel, 512);
    EXPECT_EQ(base.numHeads, 8);
    EXPECT_EQ(base.dHead(), 64);
    const Seq2SeqConfig big = Seq2SeqConfig::vanillaBig();
    EXPECT_EQ(big.dModel, 1024);
    EXPECT_EQ(big.dFf, 4096);
}

TEST(Seq2SeqScheduler, DecoderLayerCarriesBothAttentions)
{
    Seq2SeqRun run;
    run.srcLen = 1024;
    run.tgtLen = 512;
    Seq2SeqScheduler sched(GpuSpec::a100(),
                           Seq2SeqConfig::vanillaBase(), run);
    auto count = [](const std::vector<KernelProfile> &layer,
                    const std::string &substr) {
        int64_t n = 0;
        for (const auto &prof : layer)
            n += prof.name.find(substr) != std::string::npos;
        return n;
    };
    EXPECT_EQ(count(sched.decoderLayer(), "dec.self.sda"), 3);
    EXPECT_EQ(count(sched.decoderLayer(), "dec.cross.sda"), 3);
    EXPECT_EQ(count(sched.encoderLayer(), "enc.self.sda"), 3);
    EXPECT_EQ(count(sched.encoderLayer(), "cross"), 0);
    // Decoder self-attention is causal: its QK kernel carries the
    // mask flops; the cross-attention one does not.
    double self_flops = 0, cross_flops = 0;
    for (const auto &prof : sched.decoderLayer()) {
        if (prof.name == "dec.self.sda.qk")
            self_flops = prof.cudaFlops;
        if (prof.name == "dec.cross.sda.qk")
            cross_flops = prof.cudaFlops;
    }
    // Same element count (512x512 vs 512x1024): normalize per elem.
    EXPECT_GT(self_flops / (512.0 * 512.0),
              cross_flops / (512.0 * 1024.0));
}

TEST(Seq2SeqScheduler, RunLaunchesAllLayers)
{
    Seq2SeqRun run;
    run.srcLen = 512;
    run.tgtLen = 512;
    const Seq2SeqConfig config = Seq2SeqConfig::vanillaBase();
    Seq2SeqScheduler sched(GpuSpec::a100(), config, run);
    Gpu gpu(GpuSpec::a100());
    sched.run(gpu);
    EXPECT_EQ(gpu.timeline().size(),
              sched.prologue().size() +
                  size_t(config.encoderLayers) *
                      sched.encoderLayer().size() +
                  size_t(config.decoderLayers) *
                      sched.decoderLayer().size());
}

TEST(Seq2Seq, RecompositionSpeedsUpLongTranslation)
{
    const GpuSpec spec = GpuSpec::a100();
    const Seq2SeqConfig config = Seq2SeqConfig::vanillaBig();
    Seq2SeqRun run;
    run.srcLen = 4096;
    run.tgtLen = 4096;
    run.strategy = Strategy::Baseline;
    const Seq2SeqResult base = runSeq2SeqInference(spec, config, run);
    run.strategy = Strategy::Fused;
    const Seq2SeqResult sdf = runSeq2SeqInference(spec, config, run);
    EXPECT_GT(base.seconds / sdf.seconds, 1.15);
    EXPECT_LT(sdf.dramBytes, base.dramBytes);
    EXPECT_LT(sdf.softmaxSeconds, base.softmaxSeconds * 0.2);
}

TEST(Seq2Seq, ShortSequencesAreNeutral)
{
    const GpuSpec spec = GpuSpec::a100();
    const Seq2SeqConfig config = Seq2SeqConfig::vanillaBase();
    Seq2SeqRun run;
    run.srcLen = 256;
    run.tgtLen = 256;
    run.strategy = Strategy::Baseline;
    const Seq2SeqResult base = runSeq2SeqInference(spec, config, run);
    run.strategy = Strategy::Fused;
    const Seq2SeqResult sdf = runSeq2SeqInference(spec, config, run);
    EXPECT_NEAR(base.seconds / sdf.seconds, 1.0, 0.1);
}

} // namespace
} // namespace softrec
